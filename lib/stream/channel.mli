(** Stream graft points (§4.4): transforming data as it crosses the kernel
    boundary.

    A channel models one copy-to-user data path. Ungrafted, [transfer] is a
    plain [bcopy] (the paper's 105 us per 8 KB). With a stream graft
    installed, the kernel copies the source into the graft's input area,
    the graft transforms it into its output area (encryption, compression,
    logging, ...), and the kernel hands the output area's contents to the
    destination. Because stream grafts are almost entirely loads and
    stores, they are the worst case for software fault isolation. *)

type t

val buffer_words_8kb : int
(** 2048 words: the paper's 8 KB test buffer. *)

val bcopy_cycles_per_word : int
(** Calibrated so an 8 KB bcopy costs the paper's ~105 us. *)

val create :
  Vino_core.Kernel.t ->
  name:string ->
  ?buffer_words:int ->
  ?budget:int ->
  unit ->
  t
(** [buffer_words] bounds one transfer (default 8 KB); [budget] bounds one
    graft invocation's cycles. *)

val point : t -> (int array, int array) Vino_core.Graft_point.t
val grafted : t -> bool

val install :
  t ->
  cred:Vino_core.Cred.t ->
  ?limits:Vino_txn.Rlimit.t ->
  Vino_misfit.Image.t ->
  (unit, string) result

val transfer : t -> cred:Vino_core.Cred.t -> int array -> int array
(** Move one buffer across the boundary, transformed by the graft if one is
    installed. Must run inside an engine process. *)

val transfers : t -> int
val name : t -> string
