module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point

let buffer_words_8kb = 2048

(* 105 us at 120 MHz over 2048 words is ~6.15 cycles/word. *)
let bcopy_cycles_per_word = 6

type t = {
  cname : string;
  buffer_words : int;
  kernel : Kernel.t;
  point : (int array, int array) Graft_point.t;
  mutable n_transfers : int;
}

let bcopy_cost words = words * bcopy_cycles_per_word

(* Input area at segment offset 0, output area right after it. *)
let setup kernel ~buffer_words cpu (data : int array) =
  let seg = Cpu.segment cpu in
  let words = min (Array.length data) buffer_words in
  (* the kernel's copyin of the source data into the graft segment *)
  Engine.delay (bcopy_cost words);
  Array.iteri
    (fun k v -> if k < words then Mem.store kernel.Kernel.mem (Mem.sandbox seg k) v)
    data;
  Cpu.set_reg cpu 1 seg.Mem.base;
  Cpu.set_reg cpu 2 (seg.Mem.base + buffer_words);
  Cpu.set_reg cpu 3 words

let read_result kernel ~buffer_words cpu (data : int array) =
  let seg = Cpu.segment cpu in
  let words = min (Array.length data) buffer_words in
  Ok
    (Array.init words (fun k ->
         Mem.load kernel.Kernel.mem (Mem.sandbox seg (buffer_words + k))))

let create kernel ~name ?(buffer_words = buffer_words_8kb) ?budget () =
  let point =
    Graft_point.create
      ~name:(Printf.sprintf "%s.copyout" name)
      ~indirection_cost:0 ~check_cost:0 ?budget
      ~default:(fun data ->
        Engine.delay (bcopy_cost (Array.length data));
        Array.copy data)
      ~setup:(setup kernel ~buffer_words)
      ~read_result:(read_result kernel ~buffer_words)
      ()
  in
  let t = { cname = name; buffer_words; kernel; point; n_transfers = 0 } in
  Kernel.on_snapshot kernel (Graft_point.saver point);
  Kernel.on_snapshot kernel (fun () ->
      let n_transfers = t.n_transfers in
      fun () -> t.n_transfers <- n_transfers);
  t

let point t = t.point
let grafted t = Graft_point.grafted t.point

let install t ~cred ?limits image =
  Graft_point.replace t.point t.kernel ~cred
    ~shared_words:(2 * t.buffer_words)
    ?limits image

let transfer t ~cred data =
  if Array.length data > t.buffer_words then
    invalid_arg "Channel.transfer: buffer too large";
  t.n_transfers <- t.n_transfers + 1;
  Graft_point.invoke t.point t.kernel ~cred data

let transfers t = t.n_transfers
let name t = t.cname
