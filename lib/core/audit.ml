module Ring = Vino_trace.Ring
module Trace = Vino_trace.Trace

type event =
  | Load_rejected of { point : string; reason : string }
  | Graft_installed of { point : string; user : string }
  | Graft_removed of { point : string }
  | Graft_failed of { point : string; reason : string }
  | Handler_added of { point : string; handler : int; user : string }
  | Handler_failed of { point : string; handler : int; reason : string }
  | Flow_violation of { point : string; last : string; next : string }
  | Proof_stale of { point : string; reason : string }
  | Admission_rejected of { point : string; tenant : string; reason : string }

type entry = { at_us : float; event : event }
type t = { ring : entry Ring.t }

let default_capacity = 4096
let create ?(capacity = default_capacity) () = { ring = Ring.create ~capacity }

let counter_name = function
  | Load_rejected _ -> "audit.load_rejected"
  | Graft_installed _ -> "audit.graft_installed"
  | Graft_removed _ -> "audit.graft_removed"
  | Graft_failed _ -> "audit.graft_failed"
  | Handler_added _ -> "audit.handler_added"
  | Handler_failed _ -> "audit.handler_failed"
  | Flow_violation _ -> "audit.flow_violation"
  | Proof_stale _ -> "audit.proof_stale"
  | Admission_rejected _ -> "audit.admission_rejected"

let record t ~now_us event =
  Trace.incr (counter_name event);
  Ring.push t.ring { at_us = now_us; event }

let entries t = Ring.to_list t.ring
let count t = Ring.length t.ring
let capacity t = Ring.capacity t.ring
let total t = Ring.total t.ring
let dropped t = Ring.dropped t.ring
let clear t = Ring.clear t.ring

let is_failure = function
  | Load_rejected _ | Graft_failed _ | Handler_failed _ | Flow_violation _
  | Proof_stale _ | Admission_rejected _ ->
      true
  | Graft_installed _ | Graft_removed _ | Handler_added _ -> false

let failures t = List.filter (fun e -> is_failure e.event) (entries t)
let saver t = Ring.saver t.ring

let pp_event ppf = function
  | Load_rejected { point; reason } ->
      Format.fprintf ppf "load rejected at %s: %s" point reason
  | Graft_installed { point; user } ->
      Format.fprintf ppf "graft installed at %s by %s" point user
  | Graft_removed { point } -> Format.fprintf ppf "graft removed from %s" point
  | Graft_failed { point; reason } ->
      Format.fprintf ppf "graft at %s failed: %s" point reason
  | Handler_added { point; handler; user } ->
      Format.fprintf ppf "handler %d added to %s by %s" handler point user
  | Handler_failed { point; handler; reason } ->
      Format.fprintf ppf "handler %d on %s failed: %s" handler point reason
  | Flow_violation { point; last; next } ->
      Format.fprintf ppf "kcall-flow violation in %s: %s after %s" point next
        last
  | Proof_stale { point; reason } ->
      Format.fprintf ppf "stale safety proof for %s: %s" point reason
  | Admission_rejected { point; tenant; reason } ->
      Format.fprintf ppf "admission rejected at %s for %s: %s" point tenant
        reason

let pp ppf t =
  (if dropped t > 0 then
     Format.fprintf ppf "[... %d older entries dropped ...]@." (dropped t));
  List.iter
    (fun e -> Format.fprintf ppf "[%10.1f us] %a@." e.at_us pp_event e.event)
    (entries t)
