(** Buddy allocator for graft segments.

    Each graft receives its own heap and stack (§2) inside one power-of-two
    sized, size-aligned segment of kernel memory, which is exactly the
    invariant {!Vino_vm.Mem.segment} requires for mask+or sandboxing. A
    buddy allocator hands out such segments and coalesces them on free. *)

type t

val create : base:int -> size:int -> t
(** Manage [size] words starting at [base]; both must make [base..base+size]
    splittable into aligned power-of-two blocks ([size] a power of two,
    [base] a multiple of [size]). *)

val alloc : t -> int -> (Vino_vm.Mem.segment, [ `No_memory ]) result
(** [alloc t words] returns a segment of at least [words] words (rounded up
    to a power of two, minimum 8). *)

val free : t -> Vino_vm.Mem.segment -> unit
(** Return a segment; buddies coalesce. @raise Invalid_argument if the
    segment was not allocated from this allocator. *)

val free_words : t -> int
val used_words : t -> int

val chunk_words : int
(** Granularity of the dirty journal (the minimum block size, 8 words). *)

val touched_words : t -> int
(** Total words in chunks ever allocated — the size of the dirty set a
    snapshot must save. Cumulative: [free] does not un-touch. *)

val touched_chunks : t -> int list
(** Base addresses (sorted) of every [chunk_words]-sized chunk ever
    allocated. An address outside this set was never handed out, hence
    never written, hence still zero. *)

type snap
(** Captured allocator tables (free lists, allocation map, journal). *)

val snapshot : t -> snap
(** Structural copy of the allocator's tables. Bucket structure is
    preserved exactly, so a restored allocator replays the same
    allocation addresses the original would have. *)

val restore : t -> snap -> unit
(** Rewind the allocator to the snapshot; re-runnable (each call installs
    fresh copies of the captured tables). *)
