(** The sparse open hash table of graft-callable function ids (§3.3).

    Indirect function calls are checked at run time by probing this table;
    through a sparse open table the paper's average cost is ten to fifteen
    cycles per indirect call. We implement genuine open addressing (linear
    probing at low load factor) and record probe counts so the measured
    average emerges rather than being asserted. *)

type t

val create : ?initial_slots:int -> unit -> t
val add : t -> int -> unit
val remove : t -> int -> unit

val mem : t -> int -> bool
(** Probe for an id, recording the probe count. *)

val cardinal : t -> int
val load_factor : t -> float

val probes_recorded : t -> int
val average_probes : t -> float

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures slots and statistics ({!mem} mutates both);
    the returned thunk restores them (re-runnable). For kernel
    snapshots. *)
