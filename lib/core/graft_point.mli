(** Function graft points (§3.4): replacement of a single member function on
    a kernel object.

    A graft point carries the default kernel implementation, the class
    designer's marshalling of arguments into graft registers/memory, and the
    result extraction *with validation* — the kernel never trusts a value
    returned by a graft (e.g. the page-eviction point verifies the returned
    page belongs to the VAS and is not wired, §4.2.1).

    Invocation follows the paper's wrapper protocol: begin a transaction,
    run the graft under SFI with sliced preemption, validate the result,
    commit — and on any failure (fault, time-out, quota, validation, abort)
    roll the transaction back, forcibly remove the graft, and fall back to
    the default implementation (§3.6). *)

type ('a, 'b) t

val create :
  name:string ->
  ?restricted:bool ->
  ?watchdog:int ->
  ?indirection_cost:int ->
  ?check_cost:int ->
  ?slice:int ->
  ?budget:int ->
  default:('a -> 'b) ->
  setup:(Vino_vm.Cpu.t -> 'a -> unit) ->
  read_result:(Vino_vm.Cpu.t -> 'a -> ('b, string) result) ->
  unit ->
  ('a, 'b) t
(** [restricted] marks global policy points graftable only by privileged
    users (Rule 5). [watchdog] (cycles) bounds one invocation's wall time —
    the defence against covert denial of service (§2.5).
    [indirection_cost] is the VINO-path dispatch cost (default 1 us);
    [check_cost] is charged for result verification. *)

val name : ('a, 'b) t -> string
val restricted : ('a, 'b) t -> bool
val grafted : ('a, 'b) t -> bool
val default_fn : ('a, 'b) t -> 'a -> 'b

val replace :
  ('a, 'b) t ->
  Kernel.t ->
  cred:Cred.t ->
  ?shared_words:int ->
  ?heap_words:int ->
  ?limits:Vino_txn.Rlimit.t ->
  Vino_misfit.Image.t ->
  (unit, string) result
(** Install a graft (Figure 1's [replace]). [shared_words] reserves a
    window at the base of the graft segment that the installing application
    and the graft share; [limits] are the graft's resource limits (default:
    zero — the installer must transfer or delegate, §3.2). Replaces any
    previous graft. *)

val shared_base : ('a, 'b) t -> int option
(** Base address of the shared window, once grafted. *)

val segment : ('a, 'b) t -> Vino_vm.Mem.segment option

val remove : ('a, 'b) t -> Kernel.t -> unit
(** Uninstall and free the segment (also done automatically on abort). *)

val invoke : ('a, 'b) t -> Kernel.t -> cred:Cred.t -> 'a -> 'b
(** Call through the graft point: the graft if installed (transactional,
    validated, with fallback to the default on failure), the default
    otherwise. Must run inside an engine process. *)

(* Statistics. *)

val invocations : ('a, 'b) t -> int
val graft_runs : ('a, 'b) t -> int
val graft_failures : ('a, 'b) t -> int
val last_failure : ('a, 'b) t -> string option

val saver : ('a, 'b) t -> unit -> unit -> unit
(** [saver t ()] captures the installed graft and the statistics; the
    returned thunk restores them (re-runnable). For kernel snapshots —
    register with {!Kernel.on_snapshot} wherever the point's kernel is
    in scope. *)
