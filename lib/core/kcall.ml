module Cpu = Vino_vm.Cpu

type ctx = {
  cpu : Cpu.t;
  txn : Vino_txn.Txn.t option;
  cred : Cred.t;
  limits : Vino_txn.Rlimit.t;
}

type impl = ctx -> Cpu.kstatus
type fn = { id : int; name : string; mutable callable : bool; impl : impl }

type registry = {
  mutable fns : fn list; (* newest first; ids are dense from 0 *)
  by_name : (string, fn) Hashtbl.t;
  by_id : (int, fn) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  { fns = []; by_name = Hashtbl.create 32; by_id = Hashtbl.create 32;
    next_id = 0 }

let register r ~name ?(callable = true) impl =
  if Hashtbl.mem r.by_name name then
    invalid_arg (Printf.sprintf "Kcall.register: duplicate function %S" name);
  let fn = { id = r.next_id; name; callable; impl } in
  r.next_id <- r.next_id + 1;
  r.fns <- fn :: r.fns;
  Hashtbl.replace r.by_name name fn;
  Hashtbl.replace r.by_id fn.id fn;
  fn

let find r id = Hashtbl.find_opt r.by_id id

let set_callable r id v =
  match find r id with
  | None -> invalid_arg (Printf.sprintf "Kcall.set_callable: unknown id %d" id)
  | Some fn -> fn.callable <- v
let id_limit r = r.next_id
let find_by_name r name = Hashtbl.find_opt r.by_name name

let callable_ids r =
  r.fns |> List.filter (fun f -> f.callable) |> List.rev_map (fun f -> f.id)

let names r = List.rev_map (fun f -> f.name) r.fns

(* Trials toggle callable flags (graft install/remove) but never register
   new kcalls; still capture the registration lists for safety. *)
let saver r () =
  let fns = r.fns
  and next_id = r.next_id
  and flags = List.map (fun f -> (f, f.callable)) r.fns in
  fun () ->
    r.fns <- fns;
    r.next_id <- next_id;
    List.iter (fun (f, callable) -> f.callable <- callable) flags
let arg cpu k = Cpu.reg cpu (1 + k)
let return cpu v = Cpu.set_reg cpu 0 v
let ok = Cpu.K_ok
let abort reason = Cpu.K_abort reason
