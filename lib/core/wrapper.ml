module Cpu = Vino_vm.Cpu
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Trace = Vino_trace.Trace
module Span = Vino_trace.Span
module Profile = Vino_trace.Profile

(* Counter handles, interned once at load: the emit sites below
   bump a flat per-sink array instead of hashing a dotted name. *)
let h_kflow_checks = Vino_trace.Counters.handle "kflow.checks"
let h_kflow_violations = Vino_trace.Counters.handle "kflow.violations"
let h_sfi_sandbox_cycles = Vino_trace.Counters.handle "sfi.sandbox_cycles"
let h_sfi_checkcall_cycles = Vino_trace.Counters.handle "sfi.checkcall_cycles"

let env ?flow kernel ~txn ~cred ~limits =
  let dispatch id cpu =
    match Kcall.find kernel.Kernel.registry id with
    | None -> Cpu.K_fault (Cpu.Bad_kcall id)
    | Some fn when not fn.Kcall.callable -> Cpu.K_fault (Cpu.Bad_kcall id)
    | Some fn -> fn.Kcall.impl { Kcall.cpu; txn; cred; limits }
  in
  let kcall =
    match flow with
    | None -> dispatch
    | Some table ->
        (* Kcall-flow integrity: one row/bit test per dispatch against the
           static transition table, before the target runs. The check and
           its cycle charge exist only when enforcement is on, so every
           other configuration's cycle counts are untouched. *)
        let last = ref Vino_verify.Kflow.entry in
        let name id =
          if id = Vino_verify.Kflow.entry then "<entry>"
          else
            match Kcall.find kernel.Kernel.registry id with
            | Some fn -> fn.Kcall.name
            | None -> Printf.sprintf "#%d" id
        in
        fun id cpu ->
          Cpu.charge cpu kernel.Kernel.vm_costs.Vino_vm.Costs.flow_check;
          Trace.incr_h h_kflow_checks;
          if Vino_verify.Kflow.permits table ~last:!last ~next:id then begin
            last := id;
            dispatch id cpu
          end
          else begin
            Trace.incr_h h_kflow_violations;
            let point =
              match txn with Some t -> Txn.name t | None -> "<no-txn>"
            in
            let last = name !last and next = name id in
            Kernel.audit_event kernel
              (Audit.Flow_violation { point; last; next });
            Cpu.K_abort
              (Printf.sprintf "kcall-flow violation: %s after %s" next last)
          end
  in
  let call_ok id = Calltable.mem kernel.Kernel.calltable id in
  let poll =
    match txn with Some t -> Txn.poll t | None -> fun () -> None
  in
  { Cpu.kcall; call_ok; poll }

let default_slice = 10_000
let default_budget = 1_000_000_000

let exec kernel ~txn ~cred ~limits ~seg ~code ?flow ?trans ?mode
    ?(slice = default_slice) ?(budget = default_budget) ~setup () =
  let cpu =
    Cpu.make ~mem:kernel.Kernel.mem ~seg ~costs:kernel.Kernel.vm_costs ()
  in
  setup cpu;
  (* A pinned table (attested call-flow graph) overrides the graft's own;
     with enforcement off, no check is installed at all. *)
  let flow =
    if kernel.Kernel.flow_enforce then
      match kernel.Kernel.flow_pin with Some t -> Some t | None -> flow
    else None
  in
  let e = env ?flow kernel ~txn:(Some txn) ~cred ~limits in
  let mode =
    match mode with Some m -> m | None -> kernel.Kernel.exec_mode
  in
  (* Each slice resumes from the cpu's saved pc, so the step function must
     handle mid-block entry — {!Vino_vm.Jit.run} does. *)
  let step =
    match (mode, trans) with
    | Vino_vm.Jit.Translated, Some tr -> fun () -> Vino_vm.Jit.run e cpu tr
    | Vino_vm.Jit.Translated, None | Vino_vm.Jit.Interp, _ ->
        fun () -> Cpu.run e cpu code
  in
  let synced = ref 0 in
  let sync () =
    let consumed = Cpu.cycles cpu in
    if consumed > !synced then begin
      Engine.delay (consumed - !synced);
      synced := consumed
    end
  in
  let rec go () =
    Cpu.refuel cpu slice;
    let outcome = step () in
    sync ();
    match outcome with
    | Cpu.Out_of_fuel ->
        if Cpu.cycles cpu >= budget then (cpu, Cpu.Out_of_fuel)
        else begin
          (* end of a preemption slice: honour any pending abort *)
          match Txn.poll txn () with
          | Some reason -> (cpu, Cpu.Aborted reason)
          | None -> go ()
        end
    | (Cpu.Halted | Cpu.Faulted _ | Cpu.Aborted _) as final -> (cpu, final)
  in
  (* expose this invocation's transaction so graft points reached
     indirectly (through kernel calls) nest under it (§3.1) *)
  let ((cpu, _) as result) = Txn.with_current kernel.Kernel.txn_mgr txn go in
  if Trace.enabled () then begin
    let now = Engine.now kernel.Kernel.engine in
    let label = Txn.name txn in
    let sb = Cpu.sandbox_cycles cpu and cc = Cpu.checkcall_cycles cpu in
    if sb > 0 then begin
      Trace.add_h h_sfi_sandbox_cycles sb;
      Trace.span Span.Sfi_sandbox ~label ~start:(now - sb) ~dur:sb
    end;
    if cc > 0 then begin
      Trace.add_h h_sfi_checkcall_cycles cc;
      Trace.span Span.Sfi_checkcall ~label ~start:(now - cc) ~dur:cc
    end;
    if sb + cc > 0 then
      Trace.charge
        ~ctx:(Engine.proc_id (Engine.self ()))
        Profile.Sandbox (sb + cc)
  end;
  result
