module Insn = Vino_vm.Insn
module Image = Vino_misfit.Image

type loaded = {
  code : Insn.t array;
  seg : Vino_vm.Mem.segment;
  trans : Vino_vm.Jit.t;
  flow : Vino_verify.Kflow.table;
}

let resolve_reloc kernel (r : Vino_vm.Asm.reloc) =
  match Kcall.find_by_name kernel.Kernel.registry r.name with
  | None -> Error (Printf.sprintf "unresolved kernel function %S" r.name)
  | Some fn when not fn.Kcall.callable ->
      Error (Printf.sprintf "function %S is not graft-callable" r.name)
  | Some fn -> Ok fn.Kcall.id

let check_direct_ids kernel code =
  let bad = ref None in
  Array.iter
    (fun i ->
      match i with
      | Insn.Kcall id when id >= 0 && !bad = None -> (
          match Kcall.find kernel.Kernel.registry id with
          | Some fn when fn.Kcall.callable -> ()
          | Some fn ->
              bad :=
                Some
                  (Printf.sprintf "function %S (id %d) is not graft-callable"
                     fn.Kcall.name id)
          | None -> bad := Some (Printf.sprintf "unknown function id %d" id))
      | _ -> ())
    code;
  match !bad with None -> Ok () | Some e -> Error e

(* Link-time static check. Runs with no entry facts (the linker cannot know
   the graft point's register conventions — the signature attests to any
   seal-time proof), so it can only flag hard errors every execution would
   hit: provably out-of-bounds accesses, indirect calls through a provably
   bad id, malformed code, fall-through off the end. *)
let static_check kernel ~words code =
  let conf =
    Vino_verify.Verify.config ~words:(max 1 words)
      ~callable:(fun id ->
        match Kcall.find kernel.Kernel.registry id with
        | Some fn -> fn.Kcall.callable
        | None -> false)
      ~stage:`Rewritten ()
  in
  let report = Vino_verify.Verify.analyse conf code in
  if Vino_verify.Report.ok report then Ok ()
  else
    Error
      ("static verification failed: "
      ^ Vino_verify.Report.error_summary report)

(* Load-time revalidation of a seal-time safety proof. The signature
   already proves the proof is the one the toolchain derived for this
   code; what it cannot prove is that the *assumptions* the verifier
   discharged obligations against still hold in this kernel, now:

   - every [Checkcall] the rewriter elided was justified by a constant id
     the seal-time callable predicate accepted — if an operator has since
     pulled that function off the graft-callable list, running the image
     would place an unchecked indirect call;
   - every [Sandbox] elision assumed the segment holds at least the
     verifier config's [words] — loading into a smaller segment would
     let a "proven" access land outside it.

   Either staleness refuses the load (and leaves an audit trail): the
   image must be re-sealed under the current configuration. *)
let check_proof kernel ~words (image : Image.t) =
  match image.Image.proof with
  | None -> Ok ()
  | Some p ->
      let stale =
        if words < Vino_verify.Proof.words p then
          Some
            (Printf.sprintf
               "segment of %d words is smaller than the %d the proof assumes"
               words (Vino_verify.Proof.words p))
        else
          List.find_opt
            (fun id ->
              match Kcall.find kernel.Kernel.registry id with
              | Some fn -> not fn.Kcall.callable
              | None -> true)
            (Vino_verify.Proof.calls p)
          |> Option.map
               (Printf.sprintf
                  "proof assumes function id %d is graft-callable; it no \
                   longer is")
      in
      (match stale with
      | None -> Ok ()
      | Some reason ->
          Kernel.audit_event kernel
            (Audit.Proof_stale
               { point = "image " ^ Kernel.digest_hex image.Image.signature;
                 reason });
          Error ("stale safety proof: " ^ reason))

let load kernel ~words (image : Image.t) =
  if not (Image.verify ~key:kernel.Kernel.key image) then
    Error "signature verification failed: code was not processed by MiSFIT"
  else
    let code = Array.copy image.code in
    let rec patch = function
      | [] -> Ok ()
      | r :: rest -> (
          match resolve_reloc kernel r with
          | Error _ as e -> e
          | Ok id ->
              code.(r.Vino_vm.Asm.index) <- Insn.Kcall id;
              patch rest)
    in
    Result.bind (patch image.relocs) @@ fun () ->
    Result.bind (check_direct_ids kernel code) @@ fun () ->
    Result.bind (static_check kernel ~words code) @@ fun () ->
    Result.bind (check_proof kernel ~words image) @@ fun () ->
    match Segalloc.alloc kernel.Kernel.segalloc words with
    | Error `No_memory -> Error "out of graft memory"
    | Ok seg ->
        (* Kcall ids are resolved, so the flow analysis sees concrete
           registry ids; the row space is the registry's id range now. *)
        let flow =
          Vino_verify.Kflow.of_program
            ~nfuncs:(Kcall.id_limit kernel.Kernel.registry)
            code
        in
        Ok
          {
            code;
            seg;
            trans = Kernel.translate kernel ?proof:image.proof code;
            flow;
          }

let flow_of_obj kernel (obj : Vino_vm.Asm.obj) =
  let code = Array.copy obj.code in
  let rec patch = function
    | [] -> Ok ()
    | r :: rest -> (
        match resolve_reloc kernel r with
        | Error _ as e -> e
        | Ok id ->
            code.(r.Vino_vm.Asm.index) <- Insn.Kcall id;
            patch rest)
  in
  Result.bind (patch obj.relocs) @@ fun () ->
  Ok
    (Vino_verify.Kflow.of_program
       ~nfuncs:(Kcall.id_limit kernel.Kernel.registry)
       code)

let unload kernel loaded = Segalloc.free kernel.Kernel.segalloc loaded.seg
