(** Kernel audit trail for graft security events.

    Every decision the protection machinery takes — image rejected,
    graft installed, transaction aborted, graft forcibly removed — is
    recorded with its virtual timestamp, so an operator (or a test) can
    reconstruct exactly how a disaster was survived.

    The trail is a fixed-capacity ring: a long soak or a disaster
    campaign cannot grow it without bound. When full, the oldest entry
    is evicted and counted in {!dropped}. Each recorded event also bumps
    the matching ["audit.<kind>"] counter in {!Vino_trace.Trace}, so the
    trail and the observability counters stay unified. *)

type event =
  | Load_rejected of { point : string; reason : string }
  | Graft_installed of { point : string; user : string }
  | Graft_removed of { point : string }
  | Graft_failed of { point : string; reason : string }
  | Handler_added of { point : string; handler : int; user : string }
  | Handler_failed of { point : string; handler : int; reason : string }
  | Flow_violation of { point : string; last : string; next : string }
      (** a graft attempted kcall [next] when the static kcall-flow table
          permits no [last]→[next] transition; [last] is ["<entry>"] when
          no kernel call had been made yet *)
  | Proof_stale of { point : string; reason : string }
      (** an image carried a safety proof whose load-time assumptions
          (callable set, segment size) no longer hold against this
          kernel — the load is refused rather than run with elided
          checks the proof can no longer justify *)
  | Admission_rejected of { point : string; tenant : string; reason : string }
      (** the admission controller refused a request at [point] on
          behalf of [tenant] — e.g. the multi-tenant serve scenario's
          per-tenant in-flight cap. Counted as a failure: an operator
          reading the trail sees exactly which tenants were shed. *)

type entry = { at_us : float; event : event }
type t

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> unit -> t
(** [capacity] must be positive (default {!default_capacity}). *)

val record : t -> now_us:float -> event -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val count : t -> int
(** Entries currently retained. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded, including evicted ones. *)

val dropped : t -> int
(** Events evicted to make room. *)

val clear : t -> unit
(** Drop every entry and reset {!total}/{!dropped}. *)

val failures : t -> entry list
(** Only rejections/failures. *)

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the ring's contents and accounting; the
    returned thunk restores them (re-runnable). For kernel snapshots. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
