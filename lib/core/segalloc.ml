module Mem = Vino_vm.Mem

type t = {
  base : int;
  size : int;
  (* free.(k) = addresses of free blocks of size [min_block lsl k] *)
  free : (int, unit) Hashtbl.t array;
  mutable allocated : (int, int) Hashtbl.t; (* address -> order *)
  mutable used : int;
  (* Cumulative dirty journal: every min_block-aligned chunk ever handed
     out by [alloc], across the allocator's whole life (frees do not
     un-touch). An untouched chunk was never allocated, hence never
     written (all graft stores are sandboxed into allocated segments),
     hence still zero — so a snapshot need only save touched chunks:
     O(dirty), not O(world). Chunk granularity (not block granularity)
     keeps the journal exact when an address is later re-allocated at a
     different buddy order. *)
  mutable touched : (int, unit) Hashtbl.t;
  mutable touched_words : int;
}

let min_block = 8
let min_order_size = min_block

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let order_count size =
  let rec go k s = if s >= size then k + 1 else go (k + 1) (s * 2) in
  go 0 min_order_size

let order_of_size size =
  let rec go k s = if s >= size then k else go (k + 1) (s * 2) in
  go 0 min_order_size

let block_size order = min_block lsl order

let create ~base ~size =
  if not (is_power_of_two size) || size < min_block then
    invalid_arg "Segalloc.create: size must be a power of two >= 8";
  if base mod size <> 0 then
    invalid_arg "Segalloc.create: base must be size-aligned";
  let orders = order_count size in
  let t =
    {
      base;
      size;
      free = Array.init orders (fun _ -> Hashtbl.create 8);
      allocated = Hashtbl.create 16;
      used = 0;
      touched = Hashtbl.create 64;
      touched_words = 0;
    }
  in
  Hashtbl.replace t.free.(orders - 1) base ();
  t

let rec take_block t order =
  if order >= Array.length t.free then None
  else
    let bucket = t.free.(order) in
    match Hashtbl.fold (fun addr () _ -> Some addr) bucket None with
    | Some addr ->
        Hashtbl.remove bucket addr;
        Some addr
    | None -> (
        (* split a larger block *)
        match take_block t (order + 1) with
        | None -> None
        | Some addr ->
            Hashtbl.replace t.free.(order) (addr + block_size order) ();
            Some addr)

let alloc t words =
  if words <= 0 then invalid_arg "Segalloc.alloc: need a positive size";
  let order = order_of_size (max words min_block) in
  if order >= Array.length t.free then Error `No_memory
  else
    match take_block t order with
    | None -> Error `No_memory
    | Some addr ->
        Hashtbl.replace t.allocated addr order;
        t.used <- t.used + block_size order;
        let limit = addr + block_size order in
        let chunk = ref addr in
        while !chunk < limit do
          if not (Hashtbl.mem t.touched !chunk) then begin
            Hashtbl.replace t.touched !chunk ();
            t.touched_words <- t.touched_words + min_block
          end;
          chunk := !chunk + min_block
        done;
        Ok (Mem.segment ~base:addr ~size:(block_size order))

let buddy_of t addr order =
  let offset = addr - t.base in
  t.base + (offset lxor block_size order)

let free t (seg : Mem.segment) =
  match Hashtbl.find_opt t.allocated seg.Mem.base with
  | None -> invalid_arg "Segalloc.free: segment not allocated here"
  | Some order ->
      if block_size order <> seg.Mem.size then
        invalid_arg "Segalloc.free: segment size mismatch";
      Hashtbl.remove t.allocated seg.Mem.base;
      t.used <- t.used - seg.Mem.size;
      (* coalesce with free buddies as far as possible *)
      let rec give_back addr order =
        if order = Array.length t.free - 1 then
          Hashtbl.replace t.free.(order) addr ()
        else
          let buddy = buddy_of t addr order in
          if Hashtbl.mem t.free.(order) buddy then begin
            Hashtbl.remove t.free.(order) buddy;
            give_back (min addr buddy) (order + 1)
          end
          else Hashtbl.replace t.free.(order) addr ()
      in
      give_back seg.Mem.base order

let free_words t = t.size - t.used
let used_words t = t.used
let chunk_words = min_block
let touched_words t = t.touched_words

let touched_chunks t =
  let chunks = Hashtbl.fold (fun addr () acc -> addr :: acc) t.touched [] in
  List.sort compare chunks

(* ------------------------- snapshot / restore ------------------------- *)

(* [take_block] picks the first free block via [Hashtbl.fold], which is
   bucket-order sensitive — so the snapshot must preserve bucket structure
   exactly, not just the key set. [Hashtbl.copy] copies structure
   verbatim, and copy-of-copy is structurally identical, so a restored
   allocator replays the same allocation addresses a fresh one would. *)

type snap = {
  s_free : (int, unit) Hashtbl.t array;
  s_allocated : (int, int) Hashtbl.t;
  s_used : int;
  s_touched : (int, unit) Hashtbl.t;
  s_touched_words : int;
}

let snapshot t =
  {
    s_free = Array.map Hashtbl.copy t.free;
    s_allocated = Hashtbl.copy t.allocated;
    s_used = t.used;
    s_touched = Hashtbl.copy t.touched;
    s_touched_words = t.touched_words;
  }

let restore t s =
  Array.iteri (fun k bucket -> t.free.(k) <- Hashtbl.copy bucket) s.s_free;
  t.allocated <- Hashtbl.copy s.s_allocated;
  t.used <- s.s_used;
  t.touched <- Hashtbl.copy s.s_touched;
  t.touched_words <- s.s_touched_words
