(** Event graft points (§3.5): dropping whole services into the kernel.

    Servers (HTTP, NFS, ...) are modelled as handlers for streams of
    external events. An event graft point corresponds to one such external
    event (a TCP connection established on a port, a UDP packet arriving).
    Unlike function graft points, grafted handlers are *added*, in an
    application-specified order, rather than replacing anything. When the
    event occurs, VINO spawns a worker thread per handler, begins a
    transaction, copies the event payload into the handler's segment and
    invokes it; when the handler returns the worker commits and exits. A
    handler whose transaction aborts is removed. *)

type t

val create : name:string -> ?restricted:bool -> ?budget:int -> unit -> t

val name : t -> string
val handler_count : t -> int

val add_handler :
  t ->
  Kernel.t ->
  cred:Cred.t ->
  ?order:int ->
  ?payload_words:int ->
  ?heap_words:int ->
  ?limits:Vino_txn.Rlimit.t ->
  Vino_misfit.Image.t ->
  (int, string) result
(** Returns a handler id. [order] positions the handler among those already
    added (lower runs first; default: after all). [payload_words] sizes the
    window events are copied into (default 2048). *)

val remove_handler : t -> Kernel.t -> int -> unit

val dispatch : t -> Kernel.t -> payload:int array -> unit
(** Deliver one event: spawn one worker process per live handler (in
    order), each running its handler inside a fresh transaction. Handler
    entry convention: r1 = payload address, r2 = payload length. *)

val events_delivered : t -> int
val handler_failures : t -> int
val results : t -> (int * int) list
(** [(handler_id, r0)] pairs from the most recent dispatch, completion
    order. *)

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the handler list (with per-handler liveness)
    and statistics; the returned thunk restores them (re-runnable). For
    kernel snapshots. *)
