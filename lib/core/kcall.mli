(** Registry of kernel functions reachable from grafts.

    VINO kernel developers maintain a list of graft-callable functions
    (§3.3). Every registered function has an id (what [Kcall]/[Kcallr]
    instructions name) and a [callable] flag: functions that return private
    data, change state unrecoverably (e.g. [shutdown]) or are otherwise off
    the list are registered with [callable = false] so the linker, the
    run-time call table and the dispatcher all reject them (Rules 4, 6, 7).

    Implementations receive a {!ctx}: the graft's CPU state (to read
    argument registers and write results), the invocation's transaction (so
    accessor functions can push undo records) and the credentials the graft
    runs with (so they can perform the same permission checks system calls
    do). Kernel-side work should be charged to the engine clock with
    {!Vino_sim.Engine.delay}. *)

type ctx = {
  cpu : Vino_vm.Cpu.t;
  txn : Vino_txn.Txn.t option;
  cred : Cred.t;
  limits : Vino_txn.Rlimit.t;  (** effective limits (the graft's, §3.2) *)
}

type impl = ctx -> Vino_vm.Cpu.kstatus

type fn = private {
  id : int;
  name : string;
  mutable callable : bool;  (** mutate via {!set_callable} only *)
  impl : impl;
}

type registry

val create : unit -> registry

val register : registry -> name:string -> ?callable:bool -> impl -> fn
(** [callable] defaults to [true].
    @raise Invalid_argument on duplicate names. *)

val find : registry -> int -> fn option
val find_by_name : registry -> string -> fn option

val set_callable : registry -> int -> bool -> unit
(** Re-flag an already-registered function (an operator pulling a function
    off — or restoring it to — the graft-callable list at run time). Use
    {!Kernel.set_callable} so the runtime call table stays in sync.
    @raise Invalid_argument on an unknown id. *)

val id_limit : registry -> int
(** One past the highest assigned id (ids are dense from 0): the row space
    a kcall-flow transition table built now must cover. *)

val callable_ids : registry -> int list
val names : registry -> string list

val saver : registry -> unit -> unit -> unit
(** [saver r ()] captures the registration lists and every function's
    [callable] flag; the returned thunk restores them (re-runnable).
    For kernel snapshots. *)

(* Argument/result register conventions. *)

val arg : Vino_vm.Cpu.t -> int -> int
(** [arg cpu k] reads argument [k] (0-based, registers r1..r4). *)

val return : Vino_vm.Cpu.t -> int -> unit
(** Write the function result into r0. *)

val ok : Vino_vm.Cpu.kstatus
val abort : string -> Vino_vm.Cpu.kstatus
