(** The dynamic linker (§3.3, §3.4).

    Loading a graft image performs the static half of VINO's protection:

    - recompute the image checksum and compare it with the saved signature —
      code not processed by the trusted toolchain never enters the kernel
      (Rule 6);
    - resolve every named kernel-call relocation against the registry and
      reject any target that is missing or not on the graft-callable list
      (Rules 4 and 7) — direct calls are checked here, once, at link time;
    - check any raw function ids embedded in the code the same way;
    - run the static graft verifier ({!Vino_verify.Verify}) over the code
      and reject hard errors: provably out-of-bounds memory accesses,
      indirect calls through a provably unknown id, malformed or
      fall-through code;
    - revalidate any carried safety proof's load-time assumptions: the
      requested segment must be at least as large as the proof assumed,
      and every kernel function a [Checkcall] elision relied on must
      still be graft-callable — otherwise the proof is stale
      ({!Audit.Proof_stale}) and the load is refused;
    - allocate the graft's segment (heap + stack + shared window) from
      kernel memory.

    An image that passes with a proof is translated proof-carrying
    ({!Kernel.translate} with the proof): proven-safe accesses compile to
    bare superinstructions.

    Indirect calls cannot be checked statically; MiSFIT's [Checkcall]
    instructions handle those at run time against {!Calltable}. *)

type loaded = {
  code : Vino_vm.Insn.t array;
  seg : Vino_vm.Mem.segment;
  trans : Vino_vm.Jit.t;
      (** closure-threaded translation of [code], from the kernel's cache
          ({!Kernel.translate}); wrappers use it when the kernel's
          [exec_mode] is [Translated] *)
  flow : Vino_verify.Kflow.table;
      (** bitset kcall-flow transition table compiled from the post-link
          code; wrappers enforce it at dispatch when the kernel's
          [flow_enforce] is set *)
}

val load :
  Kernel.t -> words:int -> Vino_misfit.Image.t -> (loaded, string) result
(** [words] is the requested segment size (rounded up to a power of two). *)

val unload : Kernel.t -> loaded -> unit
(** Return the graft's segment to the allocator. *)

val flow_of_obj :
  Kernel.t -> Vino_vm.Asm.obj -> (Vino_verify.Kflow.table, string) result
(** Kcall-flow transition table of an (unsealed) object: relocations are
    resolved against the registry exactly as {!load} does, but no segment
    is allocated and nothing is installed. This is how a campaign pins a
    witness protocol's table ([Kernel.flow_pin]) before installing a
    hijacked variant, and how the CLI reports a graph pre-install. *)
