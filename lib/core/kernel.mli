(** The VINO kernel object: engine, memory, transaction manager, the
    graft-callable function registry and call table, and the signing key the
    dynamic linker verifies images against.

    Subsystems (file system, virtual memory, scheduler, network) are built
    on top of this record: they register their graft-callable accessor
    functions here and create graft points in the {!Namespace}. *)

type cached = { tr : Vino_vm.Jit.t; mutable last_use : int }
(** A translation-cache entry: the compiled graft plus its LRU use stamp
    (a [jit_clock] value, not virtual time — cache management costs no
    simulated cycles). *)

type jit_cache_stats = {
  jit_hits : int;
  jit_misses : int;
  jit_evictions : int;
  jit_entries : int;  (** live entries, [<= jit_cache_cap] *)
}

type strategy =
  | Txn_undo
      (** the paper's recovery: per-change undo records, replayed on
          abort (default) *)
  | Snapshot_rollback
      (** checkpoint the kernel's dirty set before each graft dispatch
          and restore it wholesale on fault: per-record undo charges are
          suppressed and checkpoint/restore copy charges
          ({!Vino_txn.Tcosts.t.snap_word}/[restore_word] over the
          allocator's touched words) are levied at dispatch instead *)

type t = {
  engine : Vino_sim.Engine.t;
  wheel : Vino_sim.Tick.t;
  mem : Vino_vm.Mem.t;  (** physical memory backing graft segments *)
  txn_mgr : Vino_txn.Txn.mgr;
  registry : Kcall.registry;
  calltable : Calltable.t;  (** runtime hash of callable ids (§3.3) *)
  segalloc : Segalloc.t;
  key : string;  (** trusted toolchain signing key *)
  vm_costs : Vino_vm.Costs.t;
  costs : Vino_txn.Tcosts.t;
  audit : Audit.t;  (** trail of graft security events *)
  translations : (Vino_misfit.Sign.t * int, cached) Hashtbl.t;
      (** translation cache, keyed by post-link code signature plus the
          carried proof's hash (0 when there is none): sandboxed and
          proof-carrying translations of the same code coexist, and a
          changed proof can never serve a stale compiled graft. Guarded
          by [translations_mu]; bounded by [jit_cache_cap] with LRU
          eviction. *)
  translations_mu : Mutex.t;
      (** serialises cache access — concurrent [translate] on a shared
          kernel under a domain pool would race the non-thread-safe
          Hashtbl *)
  mutable jit_cache_cap : int;
      (** capacity of [translations] (>= 1); reaching it evicts the
          least-recently-used entry. Set via {!create} or
          {!set_jit_cache_cap}. *)
  mutable jit_clock : int;  (** LRU use-stamp source, under the mutex *)
  mutable jit_hits : int;
  mutable jit_misses : int;
  mutable jit_evictions : int;
  mutable exec_mode : Vino_vm.Jit.mode;
      (** how wrappers execute graft code (default
          {!Vino_vm.Jit.default_mode}) *)
  mutable flow_enforce : bool;
      (** when true, wrappers enforce each graft's static kcall-flow
          transition table at dispatch (default false: flow checking is an
          opt-in third protection mechanism, like seal-time verification) *)
  mutable flow_pin : Vino_verify.Kflow.table option;
      (** when set, wrappers enforce this table instead of the loaded
          graft's own — modeling an attested compile-time call-flow graph
          (SFIP-style) that the running code must honour. Disaster
          campaigns use it to pin a witness protocol and then install a
          hijacked variant. *)
  mutable strategy : strategy;
      (** recovery strategy charged at graft dispatch; set via
          {!set_strategy} so the transaction manager's undo charging
          stays in sync *)
  mutable snap_savers : (unit -> unit -> unit) list;
      (** snapshot registry, newest first: each saver captures one
          component's state and returns its restore thunk. Register via
          {!on_snapshot}. *)
}

val create :
  ?mem_words:int ->
  ?tick:int ->
  ?key:string ->
  ?vm_costs:Vino_vm.Costs.t ->
  ?costs:Vino_txn.Tcosts.t ->
  ?jit_cache_cap:int ->
  ?exec_mode:Vino_vm.Jit.mode ->
  ?flow_enforce:bool ->
  unit ->
  t
(** A fresh kernel with [mem_words] (default 2^20) of graft memory, the
    standard 10 ms timeout tick and a translation cache of
    [jit_cache_cap] entries (default {!default_jit_cache_cap}, clamped
    to >= 1). *)

val default_jit_cache_cap : int
(** 256 entries. *)

val set_jit_cache_cap : t -> int -> unit
(** Re-bound the translation cache (clamped to >= 1), evicting
    least-recently-used entries immediately if the new capacity is
    exceeded. *)

val jit_cache_stats : t -> jit_cache_stats
(** Lifetime hit/miss/eviction counts and the current entry count of the
    translation cache. Deterministic — kept per kernel, independent of
    any installed trace sink (which receives the same counts as
    [jit.hits] / [jit.misses] / [jit.evictions] counters). *)

val translation_stats : t -> (string * int * int) list
(** Per-entry [(key, blocks, fused pairs)] of the translation cache, in a
    stable sorted order so the listing is CI-diffable. The key renders the
    code digest losslessly ([%016x] over the full 63-bit value — no
    [max_int] masking, which aliased digests differing in the top bit)
    and appends ["/p<hash>"] for proof-carrying entries. *)

val digest_hex : Vino_misfit.Sign.t -> string
(** The lossless digest rendering used by {!translation_stats}. *)

val translate :
  t -> ?proof:Vino_verify.Proof.t -> Vino_vm.Insn.t array -> Vino_vm.Jit.t
(** Translation of [code] under this kernel's cost table, cached by the
    {!Vino_misfit.Sign} digest of the post-link instruction words plus
    the proof's {!Vino_verify.Proof.hash}: loading the same graft twice
    compiles it once, and the same code with a different (or no)
    certificate compiles separately. With [proof], accesses its safe map
    marks are compiled to bare superinstructions
    ({!Vino_vm.Jit.translate}'s [safe]); the caller must have validated
    the proof's assumptions against this kernel first ({!Linker.load}
    does). Thread-safe. *)

val register_kcall :
  t -> name:string -> ?callable:bool -> Kcall.impl -> Kcall.fn
(** Register a kernel function and, when callable, enter it in the runtime
    call table. *)

val set_callable : t -> int -> bool -> unit
(** Re-flag a registered function and keep the runtime call table in
    sync. Loaded grafts are not revoked retroactively, but any image
    whose proof assumed the old callable set is rejected at its next
    {!Linker.load} (stale proof).
    @raise Invalid_argument on an unknown id. *)

val seal :
  ?optimize:bool ->
  ?verify:Vino_verify.Verify.config ->
  t ->
  Vino_vm.Asm.obj ->
  (Vino_misfit.Image.t, string) result
(** Run the toolchain (MiSFIT + signing) with this kernel's key.

    With [verify], the static graft verifier runs first and proven-safe
    sites keep their raw instructions ({!Vino_misfit.Rewrite.process}). If
    the config carries no [callable] predicate, the kernel supplies one
    from its registry, so constant indirect-call ids can be proven and
    their [Checkcall] probes elided. *)

val seal_unsafe : t -> Vino_vm.Asm.obj -> Vino_misfit.Image.t
(** Sign without SFI — measurement configurations only. *)

val run : ?until:int -> t -> unit
(** Drive the simulation. *)

val now_us : t -> float

val audit_event : t -> Audit.event -> unit
(** Record a security event at the current virtual time. *)

val make_lock :
  t ->
  ?policy:Vino_txn.Lock_policy.t ->
  ?timeout:int ->
  name:string ->
  unit ->
  Vino_txn.Lock.t
(** A lock on this kernel's engine/wheel/costs, automatically enrolled
    in the snapshot registry. *)

(* Crash-consistent snapshots. *)

type snap
(** A captured kernel: every registered saver's state, taken together.
    O(dirty), not O(world) — graft memory saves only the segment
    allocator's touched chunks, and subsystem savers copy counters and
    small tables. *)

val on_snapshot : t -> (unit -> unit -> unit) -> unit
(** [on_snapshot t saver] enrolls a component: at {!snapshot} time
    [saver ()] captures its state and returns the thunk {!restore} will
    run. Restore thunks run oldest-registration-first (the engine's
    built-in saver first) and must be re-runnable — every call restores
    from the capture, enabling double-restore. Subsystem constructors
    that receive the kernel enroll themselves here. *)

val snapshot : t -> snap
(** Capture a warmed, never-run kernel. Raises [Invalid_argument] if any
    transaction is live (mid-transaction snapshot refused) or if the
    engine has already executed events — one-shot continuations cannot
    be forked, so only the pre-run state (daemons spawned, workloads
    scheduled, grafts not yet driven) is a valid fork point.

    The JIT translation cache is deliberately not captured: translations
    are pure, cost no virtual cycles, and staying warm across restores
    is the point of forking. *)

val restore : t -> snap -> unit
(** Rewind the kernel to the snapshot. Safe to call repeatedly with the
    same snapshot (each restore copies from the capture).
    @raise Invalid_argument if [snap] was taken from a different kernel. *)

val set_strategy : t -> strategy -> unit
(** Select the recovery strategy charged at graft dispatch, keeping the
    transaction manager's undo charging in sync: [Snapshot_rollback]
    suppresses per-undo-record charges in favour of dispatch-time
    checkpoint/restore copy charges. State recovery itself still runs
    through the undo log either way — the strategy changes the cost
    model, not the mechanism's correctness. *)

val strategy : t -> strategy
