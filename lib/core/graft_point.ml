module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit
module Image = Vino_misfit.Image
module Trace = Vino_trace.Trace
module Span = Vino_trace.Span

(* Counter handles, interned once at load: the emit sites below
   bump a flat per-sink array instead of hashing a dotted name. *)
let h_graft_invocations = Vino_trace.Counters.handle "graft.invocations"
let h_graft_runs = Vino_trace.Counters.handle "graft.runs"

let trace_ctx () = Engine.proc_id (Engine.self ())

type grafted = {
  loaded : Linker.loaded;
  cred : Cred.t;
  limits : Rlimit.t;
  shared_words : int;
}

type ('a, 'b) t = {
  gname : string;
  grestricted : bool;
  watchdog : int option;
  indirection_cost : int;
  check_cost : int;
  slice : int;
  budget : int;
  default : 'a -> 'b;
  setup : Cpu.t -> 'a -> unit;
  read_result : Cpu.t -> 'a -> ('b, string) result;
  mutable graft : grafted option;
  mutable n_invocations : int;
  mutable n_graft_runs : int;
  mutable n_failures : int;
  mutable failure : string option;
}

let create ~name ?(restricted = false) ?watchdog
    ?(indirection_cost = Vino_txn.Tcosts.us 1.)
    ?(check_cost = Vino_txn.Tcosts.us 2.) ?(slice = Wrapper.default_slice)
    ?(budget = Wrapper.default_budget) ~default ~setup ~read_result () =
  {
    gname = name;
    grestricted = restricted;
    watchdog;
    indirection_cost;
    check_cost;
    slice;
    budget;
    default;
    setup;
    read_result;
    graft = None;
    n_invocations = 0;
    n_graft_runs = 0;
    n_failures = 0;
    failure = None;
  }

let saver t () =
  let graft = t.graft
  and n_invocations = t.n_invocations
  and n_graft_runs = t.n_graft_runs
  and n_failures = t.n_failures
  and failure = t.failure in
  fun () ->
    t.graft <- graft;
    t.n_invocations <- n_invocations;
    t.n_graft_runs <- n_graft_runs;
    t.n_failures <- n_failures;
    t.failure <- failure

let name t = t.gname
let restricted t = t.grestricted
let grafted t = t.graft <> None
let default_fn t = t.default
let invocations t = t.n_invocations
let graft_runs t = t.n_graft_runs
let graft_failures t = t.n_failures
let last_failure t = t.failure

let shared_base t =
  match t.graft with
  | Some g when g.shared_words > 0 -> Some g.loaded.Linker.seg.Mem.base
  | Some _ | None -> None

let segment t =
  match t.graft with Some g -> Some g.loaded.Linker.seg | None -> None

let remove t kernel =
  match t.graft with
  | None -> ()
  | Some g ->
      Linker.unload kernel g.loaded;
      t.graft <- None;
      Kernel.audit_event kernel (Audit.Graft_removed { point = t.gname })

let default_heap_words = 1024
let stack_words = 256

let replace t kernel ~cred ?(shared_words = 0) ?(heap_words = default_heap_words)
    ?limits image =
  if t.grestricted && not (Cred.is_privileged cred) then
    Error
      (Printf.sprintf
         "graft point %S is restricted to privileged users (Rule 5)" t.gname)
  else
    let words = shared_words + heap_words + stack_words in
    match Linker.load kernel ~words image with
    | Error reason as e ->
        Kernel.audit_event kernel
          (Audit.Load_rejected { point = t.gname; reason });
        e
    | Ok loaded ->
        remove t kernel;
        let limits = match limits with Some l -> l | None -> Rlimit.zero () in
        t.graft <- Some { loaded; cred; limits; shared_words };
        Kernel.audit_event kernel
          (Audit.Graft_installed { point = t.gname; user = cred.Cred.user });
        Ok ()

let fail t kernel reason =
  t.n_failures <- t.n_failures + 1;
  t.failure <- Some reason;
  Kernel.audit_event kernel (Audit.Graft_failed { point = t.gname; reason });
  (* "the graft is forcibly removed from the kernel, so that new
     invocations use normal kernel code" (§3.6) *)
  remove t kernel

let invoke t kernel ~cred:_ arg =
  t.n_invocations <- t.n_invocations + 1;
  Engine.delay t.indirection_cost;
  if Trace.enabled () then begin
    Trace.incr_h h_graft_invocations;
    Trace.span Span.Dispatch ~label:t.gname
      ~start:(Engine.now kernel.Kernel.engine - t.indirection_cost)
      ~dur:t.indirection_cost
  end;
  match t.graft with
  | None -> t.default arg
  | Some g ->
      t.n_graft_runs <- t.n_graft_runs + 1;
      let inv_start = Engine.now kernel.Kernel.engine in
      if Trace.enabled () then begin
        Trace.incr_h h_graft_runs;
        Trace.push_frame ~ctx:(trace_ctx ()) ~point:t.gname ~now:inv_start
      end;
      (* Close this invocation's profiler frame. Called exactly once per
         run, after the transaction is resolved but before any kernel
         fallback code — the default path is not graft time. *)
      let finish () =
        if Trace.enabled () then begin
          let now = Engine.now kernel.Kernel.engine in
          Trace.pop_frame ~ctx:(trace_ctx ()) ~now;
          Trace.span Span.Graft_invoke ~label:t.gname ~start:inv_start
            ~dur:(now - inv_start)
        end
      in
      (* nest under the invoking graft's transaction, if any: "any graft
         can abort without aborting its calling graft" (§3.1) *)
      let parent = Txn.current kernel.Kernel.txn_mgr in
      let txn = Txn.begin_ kernel.Kernel.txn_mgr ?parent ~name:t.gname () in
      (* Snapshot_rollback: checkpoint the kernel's dirty set (the
         segment allocator's touched words, bcopy-priced) before the
         graft runs; the matching restore charge is levied in [abandon].
         Under Txn_undo both charges are zero and per-undo-record costs
         apply instead. *)
      let rollback_charge cost_per_word =
        match kernel.Kernel.strategy with
        | Kernel.Txn_undo -> ()
        | Kernel.Snapshot_rollback ->
            Engine.delay
              (Segalloc.touched_words kernel.Kernel.segalloc * cost_per_word)
      in
      rollback_charge kernel.Kernel.costs.Vino_txn.Tcosts.snap_word;
      let cancel_watchdog =
        match t.watchdog with
        | None -> fun () -> ()
        | Some w ->
            Tick.arm kernel.Kernel.wheel ~after:w (fun () ->
                Txn.request_abort txn
                  (Printf.sprintf "graft point %S: watchdog expired" t.gname))
      in
      let cpu, outcome =
        Wrapper.exec kernel ~txn ~cred:g.cred ~limits:g.limits
          ~seg:g.loaded.Linker.seg ~code:g.loaded.Linker.code
          ~flow:g.loaded.Linker.flow ~trans:g.loaded.Linker.trans
          ~slice:t.slice ~budget:t.budget
          ~setup:(fun cpu -> t.setup cpu arg)
          ()
      in
      cancel_watchdog ();
      let abandon reason =
        rollback_charge kernel.Kernel.costs.Vino_txn.Tcosts.restore_word;
        if Txn.is_active txn then Txn.abort txn ~reason;
        (* this invocation owns the frame outright: nothing below holds
           onto [txn], so its frame goes back to the manager's arena *)
        Txn.recycle txn;
        finish ();
        fail t kernel reason;
        t.default arg
      in
      (match outcome with
      | Cpu.Halted -> (
          Engine.delay t.check_cost;
          match t.read_result cpu arg with
          | Ok result -> (
              match Txn.commit txn with
              | Ok () ->
                  Txn.recycle txn;
                  finish ();
                  result
              | Error reason ->
                  Txn.recycle txn;
                  finish ();
                  fail t kernel reason;
                  t.default arg)
          | Error why ->
              abandon (Printf.sprintf "result validation failed: %s" why))
      | Cpu.Faulted f -> abandon (Format.asprintf "%a" Cpu.pp_fault f)
      | Cpu.Aborted reason -> abandon reason
      | Cpu.Out_of_fuel -> abandon "CPU budget exhausted")
