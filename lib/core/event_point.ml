module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit

type handler = {
  hid : int;
  order : int;
  loaded : Linker.loaded;
  cred : Cred.t;
  limits : Rlimit.t;
  payload_words : int;
  mutable dead : bool;
}

type t = {
  ename : string;
  erestricted : bool;
  budget : int;
  mutable handlers : handler list; (* sorted by (order, hid) *)
  mutable next_hid : int;
  mutable n_events : int;
  mutable n_failures : int;
  mutable last_results : (int * int) list;
}

let create ~name ?(restricted = false) ?(budget = Wrapper.default_budget) () =
  {
    ename = name;
    erestricted = restricted;
    budget;
    handlers = [];
    next_hid = 0;
    n_events = 0;
    n_failures = 0;
    last_results = [];
  }

let saver t () =
  let handlers = t.handlers
  and dead_flags = List.map (fun h -> (h, h.dead)) t.handlers
  and next_hid = t.next_hid
  and n_events = t.n_events
  and n_failures = t.n_failures
  and last_results = t.last_results in
  fun () ->
    t.handlers <- handlers;
    List.iter (fun (h, dead) -> h.dead <- dead) dead_flags;
    t.next_hid <- next_hid;
    t.n_events <- n_events;
    t.n_failures <- n_failures;
    t.last_results <- last_results

let name t = t.ename
let handler_count t = List.length t.handlers
let events_delivered t = t.n_events
let handler_failures t = t.n_failures
let results t = List.rev t.last_results

let sort_handlers hs =
  List.sort
    (fun a b ->
      match compare a.order b.order with 0 -> compare a.hid b.hid | c -> c)
    hs

let add_handler t kernel ~cred ?order ?(payload_words = 2048)
    ?(heap_words = 1024) ?limits image =
  if t.erestricted && not (Cred.is_privileged cred) then
    Error
      (Printf.sprintf "event point %S is restricted to privileged users"
         t.ename)
  else
    let words = payload_words + heap_words + 256 in
    match Linker.load kernel ~words image with
    | Error reason as e ->
        Kernel.audit_event kernel
          (Audit.Load_rejected { point = t.ename; reason });
        e
    | Ok loaded ->
        let order =
          match order with
          | Some o -> o
          | None ->
              1 + List.fold_left (fun acc h -> max acc h.order) (-1) t.handlers
        in
        let hid = t.next_hid in
        t.next_hid <- hid + 1;
        let limits = match limits with Some l -> l | None -> Rlimit.zero () in
        let h =
          { hid; order; loaded; cred; limits; payload_words; dead = false }
        in
        t.handlers <- sort_handlers (h :: t.handlers);
        Kernel.audit_event kernel
          (Audit.Handler_added
             { point = t.ename; handler = hid; user = cred.Cred.user });
        Ok hid

let remove_handler t kernel hid =
  t.handlers <-
    List.filter
      (fun h ->
        if h.hid = hid then begin
          Linker.unload kernel h.loaded;
          false
        end
        else true)
      t.handlers

let run_handler t kernel h payload =
  (* workers are fresh processes, so there is normally no enclosing
     transaction; pick one up if an in-kernel caller dispatched inline *)
  let parent = Txn.current kernel.Kernel.txn_mgr in
  let txn =
    Txn.begin_ kernel.Kernel.txn_mgr ?parent
      ~name:(Printf.sprintf "%s#%d" t.ename h.hid)
      ()
  in
  let len = min (Array.length payload) h.payload_words in
  let seg = h.loaded.Linker.seg in
  let setup cpu =
    Mem.blit_in kernel.Kernel.mem seg.Mem.base (Array.sub payload 0 len);
    Cpu.set_reg cpu 1 seg.Mem.base;
    Cpu.set_reg cpu 2 len
  in
  let cpu, outcome =
    Wrapper.exec kernel ~txn ~cred:h.cred ~limits:h.limits ~seg
      ~code:h.loaded.Linker.code ~flow:h.loaded.Linker.flow
      ~trans:h.loaded.Linker.trans ~budget:t.budget ~setup ()
  in
  let fail reason =
    if Txn.is_active txn then Txn.abort txn ~reason;
    t.n_failures <- t.n_failures + 1;
    h.dead <- true;
    Kernel.audit_event kernel
      (Audit.Handler_failed { point = t.ename; handler = h.hid; reason });
    remove_handler t kernel h.hid
  in
  match outcome with
  | Cpu.Halted -> (
      match Txn.commit txn with
      | Ok () -> t.last_results <- (h.hid, Cpu.reg cpu 0) :: t.last_results
      | Error reason -> fail reason)
  | Cpu.Faulted f -> fail (Format.asprintf "%a" Cpu.pp_fault f)
  | Cpu.Aborted reason -> fail reason
  | Cpu.Out_of_fuel -> fail "CPU budget exhausted"

let dispatch t kernel ~payload =
  t.n_events <- t.n_events + 1;
  t.last_results <- [];
  List.iter
    (fun h ->
      if not h.dead then
        ignore
          (Engine.spawn kernel.Kernel.engine
             ~name:(Printf.sprintf "%s-worker-%d" t.ename h.hid)
             (fun () -> run_handler t kernel h payload)))
    t.handlers
