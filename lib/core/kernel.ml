module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Trace = Vino_trace.Trace

(* Counter handles, interned once at load: the emit sites below
   bump a flat per-sink array instead of hashing a dotted name. *)
let h_jit_evictions = Vino_trace.Counters.handle "jit.evictions"
let h_jit_hits = Vino_trace.Counters.handle "jit.hits"
let h_jit_misses = Vino_trace.Counters.handle "jit.misses"

type cached = { tr : Vino_vm.Jit.t; mutable last_use : int }

type jit_cache_stats = {
  jit_hits : int;
  jit_misses : int;
  jit_evictions : int;
  jit_entries : int;
}

type strategy = Txn_undo | Snapshot_rollback

type t = {
  engine : Engine.t;
  wheel : Tick.t;
  mem : Vino_vm.Mem.t;
  txn_mgr : Vino_txn.Txn.mgr;
  registry : Kcall.registry;
  calltable : Calltable.t;
  segalloc : Segalloc.t;
  key : string;
  vm_costs : Vino_vm.Costs.t;
  costs : Vino_txn.Tcosts.t;
  audit : Audit.t;
  translations : (Vino_misfit.Sign.t * int, cached) Hashtbl.t;
  translations_mu : Mutex.t;
  mutable jit_cache_cap : int;
  mutable jit_clock : int;
  mutable jit_hits : int;
  mutable jit_misses : int;
  mutable jit_evictions : int;
  mutable exec_mode : Vino_vm.Jit.mode;
  mutable flow_enforce : bool;
  mutable flow_pin : Vino_verify.Kflow.table option;
  mutable strategy : strategy;
  mutable snap_savers : (unit -> unit -> unit) list; (* newest first *)
}

let default_key = "vino-misfit-toolchain"
let default_jit_cache_cap = 256

let create ?(mem_words = 1 lsl 20) ?tick ?(key = default_key)
    ?(vm_costs = Vino_vm.Costs.default) ?(costs = Vino_txn.Tcosts.default)
    ?(jit_cache_cap = default_jit_cache_cap) ?exec_mode
    ?(flow_enforce = false) () =
  let engine = Engine.create () in
  let wheel = Tick.create engine ?tick () in
  let t =
    {
      engine;
      wheel;
      mem = Vino_vm.Mem.create mem_words;
      txn_mgr = Vino_txn.Txn.create_mgr engine ~wheel ~costs ();
      registry = Kcall.create ();
      calltable = Calltable.create ();
      (* the lower half of memory is kernel-reserved; graft segments are
         carved from the upper half, so no graft segment can cover kernel
         data *)
      segalloc = Segalloc.create ~base:(mem_words / 2) ~size:(mem_words / 2);
      key;
      vm_costs;
      costs;
      audit = Audit.create ();
      translations = Hashtbl.create 16;
      translations_mu = Mutex.create ();
      jit_cache_cap = max 1 jit_cache_cap;
      jit_clock = 0;
      jit_hits = 0;
      jit_misses = 0;
      jit_evictions = 0;
      exec_mode =
        (match exec_mode with
        | Some m -> m
        | None -> !Vino_vm.Jit.default_mode);
      flow_enforce;
      flow_pin = None;
      strategy = Txn_undo;
      snap_savers = [];
    }
  in
  (* Built-in savers, registered oldest-first so restore replays them in
     this order (engine first: everything else assumes virtual time is
     already rewound). The JIT translation cache is deliberately NOT
     captured: translations are pure functions of (code, proof, costs),
     cost no virtual cycles, and staying warm across restores is the
     point of forking — only the trace-level hit/miss counters differ,
     which no fingerprint reads. *)
  let engine_saver () =
    let s = Engine.snapshot t.engine in
    fun () -> Engine.restore t.engine s
  in
  (* Graft memory restores in O(dirty): only chunks the segment allocator
     ever handed out can be non-zero (all graft stores are sandboxed into
     allocated segments and [Mem.create] zeroes). Capture their images;
     on restore zero every *currently* touched chunk (the cumulative
     journal guarantees captured ⊆ current — read it before the allocator
     tables are rewound), then lay the captured images back in. *)
  let seg_mem_saver () =
    let seg = Segalloc.snapshot t.segalloc in
    let images =
      List.map
        (fun addr -> (addr, Vino_vm.Mem.blit_out t.mem addr Segalloc.chunk_words))
        (Segalloc.touched_chunks t.segalloc)
    in
    fun () ->
      List.iter
        (fun addr -> Vino_vm.Mem.fill t.mem addr Segalloc.chunk_words 0)
        (Segalloc.touched_chunks t.segalloc);
      Segalloc.restore t.segalloc seg;
      List.iter (fun (addr, img) -> Vino_vm.Mem.blit_in t.mem addr img) images
  in
  let fields_saver () =
    let exec_mode = t.exec_mode
    and flow_enforce = t.flow_enforce
    and flow_pin = t.flow_pin
    and strategy = t.strategy
    and savers = t.snap_savers in
    fun () ->
      t.exec_mode <- exec_mode;
      t.flow_enforce <- flow_enforce;
      t.flow_pin <- flow_pin;
      t.strategy <- strategy;
      t.snap_savers <- savers
  in
  t.snap_savers <-
    [
      fields_saver;
      Audit.saver t.audit;
      Calltable.saver t.calltable;
      Kcall.saver t.registry;
      Vino_txn.Txn.saver t.txn_mgr;
      seg_mem_saver;
      engine_saver;
    ];
  t

(* Translations are cached per kernel, keyed by the signature of the
   post-link code (relocations already patched to concrete [Kcall] ids) —
   not the image signature, because the registry may assign different ids
   to the same image across loads — paired with the hash of the carried
   proof (0 when there is none): the same post-link stream translated
   with and without a certificate compiles differently, and a changed
   proof must never serve a stale compiled graft. The mutex makes the
   cache safe under concurrent loads from a domain pool ([Pool.map] /
   [-j N]); OCaml's Hashtbl is not. Holding it across the translation
   serialises same-kernel compiles, which is fine — translations are
   pure and loads are not the hot path.

   The cache is bounded: [jit_cache_cap] entries, LRU eviction. Evicting
   an entry never invalidates running grafts — {!Linker.load} stores the
   [Jit.t] in its [loaded] record, so eviction only forces a later load
   of the same code to re-translate. Use stamps come from [jit_clock],
   advanced under the mutex, so a serial run's eviction order is a pure
   function of the load sequence. Hit/miss/eviction counts are kept both
   per kernel (deterministic, readable without a trace sink) and as
   {!Vino_trace.Trace} counters ([jit.hits] / [jit.misses] /
   [jit.evictions]) for traced reports. *)
let evict_over_cap t =
  (* caller holds [translations_mu] *)
  while Hashtbl.length t.translations > t.jit_cache_cap do
    let victim =
      Hashtbl.fold
        (fun key c acc ->
          match acc with
          | Some (_, best) when best <= c.last_use -> acc
          | _ -> Some (key, c.last_use))
        t.translations None
    in
    match victim with
    | Some (key, _) ->
        Hashtbl.remove t.translations key;
        t.jit_evictions <- t.jit_evictions + 1;
        Trace.incr_h h_jit_evictions
    | None -> assert false
  done

let translate t ?proof code =
  let sign =
    Vino_misfit.Sign.digest ~key:t.key (Vino_vm.Encode.to_words code)
  in
  let key = (sign, Vino_verify.Proof.hash_opt proof) in
  Mutex.protect t.translations_mu @@ fun () ->
  t.jit_clock <- t.jit_clock + 1;
  match Hashtbl.find_opt t.translations key with
  | Some c ->
      t.jit_hits <- t.jit_hits + 1;
      Trace.incr_h h_jit_hits;
      c.last_use <- t.jit_clock;
      c.tr
  | None ->
      t.jit_misses <- t.jit_misses + 1;
      Trace.incr_h h_jit_misses;
      let safe = Option.map Vino_verify.Proof.safe proof in
      let tr = Vino_vm.Jit.translate ~costs:t.vm_costs ?safe code in
      Hashtbl.add t.translations key { tr; last_use = t.jit_clock };
      evict_over_cap t;
      tr

let set_jit_cache_cap t cap =
  Mutex.protect t.translations_mu @@ fun () ->
  t.jit_cache_cap <- max 1 cap;
  evict_over_cap t

let jit_cache_stats t =
  Mutex.protect t.translations_mu @@ fun () ->
  {
    jit_hits = t.jit_hits;
    jit_misses = t.jit_misses;
    jit_evictions = t.jit_evictions;
    jit_entries = Hashtbl.length t.translations;
  }

(* Losslessly hex-format a digest or proof hash: [%x] prints the int as
   unsigned 63-bit, so 16 digits are injective — masking with [max_int]
   (the old bug) aliased values differing only in the top bit. *)
let hex_int n = Printf.sprintf "%016x" n
let digest_hex sign = hex_int (sign : Vino_misfit.Sign.t :> int)

(* Stable, CI-diffable listing of the translation cache: sorted by digest,
   not hash-table iteration order. Proof-carrying entries render as
   "<digest>/p<proof-hash>". *)
let translation_stats t =
  Mutex.protect t.translations_mu @@ fun () ->
  Hashtbl.fold
    (fun (sign, phash) c acc ->
      ( (digest_hex sign
         ^ if phash = 0 then "" else "/p" ^ hex_int phash),
        Vino_vm.Jit.block_count c.tr,
        Vino_vm.Jit.fused_pairs c.tr )
      :: acc)
    t.translations []
  |> List.sort compare

let register_kcall t ~name ?callable impl =
  let fn = Kcall.register t.registry ~name ?callable impl in
  if fn.Kcall.callable then Calltable.add t.calltable fn.Kcall.id;
  fn

let set_callable t id callable =
  Kcall.set_callable t.registry id callable;
  if callable then Calltable.add t.calltable id
  else Calltable.remove t.calltable id

(* Offline callable predicate from the registry (not {!Calltable.mem},
   which records run-time probe statistics the benchmarks measure). *)
let callable_of_registry t id =
  match Kcall.find t.registry id with
  | Some fn -> fn.Kcall.callable
  | None -> false

let seal ?optimize ?verify t obj =
  let verifier =
    Option.map
      (fun (c : Vino_verify.Verify.config) ->
        match c.callable with
        | Some _ -> c
        | None -> { c with callable = Some (callable_of_registry t) })
      verify
  in
  Vino_misfit.Image.seal ?optimize ?verifier ~key:t.key obj
let seal_unsafe t obj = Vino_misfit.Image.seal_unsafe ~key:t.key obj
let run ?until t = Engine.run ?until t.engine
let now_us t = Engine.now_us t.engine

let audit_event t event = Audit.record t.audit ~now_us:(now_us t) event

let on_snapshot t f = t.snap_savers <- f :: t.snap_savers

let set_strategy t s =
  t.strategy <- s;
  Vino_txn.Txn.set_charge_undo t.txn_mgr (s = Txn_undo)

let strategy t = t.strategy

type snap = { owner : t; restores : (unit -> unit) list }

let snapshot t =
  if Vino_txn.Txn.live t.txn_mgr > 0 then
    invalid_arg
      "Kernel.snapshot: refused mid-transaction (live transactions would \
       fork parked continuations)";
  if Engine.has_run t.engine then
    invalid_arg
      "Kernel.snapshot: engine has already run; snapshot a freshly built \
       kernel before driving it";
  (* rev_map replays savers oldest-first: the engine rewinds before any
     subsystem state is laid back down *)
  { owner = t; restores = List.rev_map (fun f -> f ()) t.snap_savers }

let restore t s =
  if s.owner != t then
    invalid_arg "Kernel.restore: snapshot belongs to a different kernel";
  List.iter (fun f -> f ()) s.restores

let make_lock t ?policy ?timeout ~name () =
  let lock =
    Vino_txn.Lock.create t.engine ~wheel:t.wheel ~costs:t.costs ?policy
      ?timeout ~name ()
  in
  on_snapshot t (Vino_txn.Lock.saver lock);
  lock
