module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick

type t = {
  engine : Engine.t;
  wheel : Tick.t;
  mem : Vino_vm.Mem.t;
  txn_mgr : Vino_txn.Txn.mgr;
  registry : Kcall.registry;
  calltable : Calltable.t;
  segalloc : Segalloc.t;
  key : string;
  vm_costs : Vino_vm.Costs.t;
  costs : Vino_txn.Tcosts.t;
  audit : Audit.t;
  translations : (Vino_misfit.Sign.t, Vino_vm.Jit.t) Hashtbl.t;
  mutable exec_mode : Vino_vm.Jit.mode;
  mutable flow_enforce : bool;
  mutable flow_pin : Vino_verify.Kflow.table option;
}

let default_key = "vino-misfit-toolchain"

let create ?(mem_words = 1 lsl 20) ?tick ?(key = default_key)
    ?(vm_costs = Vino_vm.Costs.default) ?(costs = Vino_txn.Tcosts.default)
    ?exec_mode ?(flow_enforce = false) () =
  let engine = Engine.create () in
  let wheel = Tick.create engine ?tick () in
  {
    engine;
    wheel;
    mem = Vino_vm.Mem.create mem_words;
    txn_mgr = Vino_txn.Txn.create_mgr engine ~wheel ~costs ();
    registry = Kcall.create ();
    calltable = Calltable.create ();
    (* the lower half of memory is kernel-reserved; graft segments are
       carved from the upper half, so no graft segment can cover kernel
       data *)
    segalloc = Segalloc.create ~base:(mem_words / 2) ~size:(mem_words / 2);
    key;
    vm_costs;
    costs;
    audit = Audit.create ();
    translations = Hashtbl.create 16;
    exec_mode =
      (match exec_mode with
      | Some m -> m
      | None -> !Vino_vm.Jit.default_mode);
    flow_enforce;
    flow_pin = None;
  }

(* Translations are cached per kernel, keyed by the signature of the
   post-link code (relocations already patched to concrete [Kcall] ids) —
   not the image signature, because the registry may assign different ids
   to the same image across loads. *)
let translate t code =
  let sign =
    Vino_misfit.Sign.digest ~key:t.key (Vino_vm.Encode.to_words code)
  in
  match Hashtbl.find_opt t.translations sign with
  | Some tr -> tr
  | None ->
      let tr = Vino_vm.Jit.translate ~costs:t.vm_costs code in
      Hashtbl.add t.translations sign tr;
      tr

(* Stable, CI-diffable listing of the translation cache: sorted by digest,
   not hash-table iteration order. *)
let translation_stats t =
  Hashtbl.fold
    (fun sign tr acc ->
      ( Printf.sprintf "%014x" ((sign : Vino_misfit.Sign.t :> int) land max_int),
        Vino_vm.Jit.block_count tr,
        Vino_vm.Jit.fused_pairs tr )
      :: acc)
    t.translations []
  |> List.sort compare

let register_kcall t ~name ?callable impl =
  let fn = Kcall.register t.registry ~name ?callable impl in
  if fn.Kcall.callable then Calltable.add t.calltable fn.Kcall.id;
  fn

(* Offline callable predicate from the registry (not {!Calltable.mem},
   which records run-time probe statistics the benchmarks measure). *)
let callable_of_registry t id =
  match Kcall.find t.registry id with
  | Some fn -> fn.Kcall.callable
  | None -> false

let seal ?optimize ?verify t obj =
  let verifier =
    Option.map
      (fun (c : Vino_verify.Verify.config) ->
        match c.callable with
        | Some _ -> c
        | None -> { c with callable = Some (callable_of_registry t) })
      verify
  in
  Vino_misfit.Image.seal ?optimize ?verifier ~key:t.key obj
let seal_unsafe t obj = Vino_misfit.Image.seal_unsafe ~key:t.key obj
let run ?until t = Engine.run ?until t.engine
let now_us t = Engine.now_us t.engine

let audit_event t event = Audit.record t.audit ~now_us:(now_us t) event

let make_lock t ?policy ?timeout ~name () =
  Vino_txn.Lock.create t.engine ~wheel:t.wheel ~costs:t.costs ?policy ?timeout
    ~name ()
