(** Sliced, transactional execution of graft code.

    The wrapper runs a graft invocation on the graft VM in preemptible
    slices: after each slice the consumed cycles are charged to the virtual
    clock (so lock time-outs, watchdogs and other kernel activity interleave
    with graft execution exactly as a preemptible kernel interleaves with a
    running thread), and the transaction's abort flag is polled. An
    invocation also carries a total CPU budget, beyond which it is cut off
    like any runaway thread (Rule 1/2). *)

val env :
  ?flow:Vino_verify.Kflow.table ->
  Kernel.t ->
  txn:Vino_txn.Txn.t option ->
  cred:Cred.t ->
  limits:Vino_txn.Rlimit.t ->
  Vino_vm.Cpu.env
(** The kernel-call/checkcall/poll environment a graft executes under. The
    dispatcher refuses ids that are absent or not graft-callable; [call_ok]
    probes the runtime call table.

    With [flow], every dispatch is first checked against the kcall-flow
    transition table — an O(1) row/bit test charged at
    [vm_costs.flow_check] — and an out-of-graph transition aborts the
    invocation's transaction ([K_abort]) before the target function runs,
    bumping [kflow.violations] and the audit trail. The "last kcall" state
    lives in the environment, so one [env] spans one graft invocation
    (slices included) in either execution mode. *)

val default_slice : int
val default_budget : int

val exec :
  Kernel.t ->
  txn:Vino_txn.Txn.t ->
  cred:Cred.t ->
  limits:Vino_txn.Rlimit.t ->
  seg:Vino_vm.Mem.segment ->
  code:Vino_vm.Insn.t array ->
  ?flow:Vino_verify.Kflow.table ->
  ?trans:Vino_vm.Jit.t ->
  ?mode:Vino_vm.Jit.mode ->
  ?slice:int ->
  ?budget:int ->
  setup:(Vino_vm.Cpu.t -> unit) ->
  unit ->
  Vino_vm.Cpu.t * Vino_vm.Cpu.outcome
(** Must run inside an engine process. Advances the virtual clock by every
    cycle the graft consumes.

    [mode] (default: the kernel's [exec_mode]) selects the step function:
    [Translated] runs the closure-threaded [trans] when one is supplied,
    falling back to the interpreter otherwise; [Interp] always interprets
    [code]. Both produce bit-identical cpu state and outcomes.

    [flow] is the graft's kcall-flow table; it is enforced only when the
    kernel's [flow_enforce] is set, and [Kernel.flow_pin] (an attested
    graph) overrides it. Both step functions dispatch kernel calls through
    the same environment closure, so enforcement is identical in interp
    and translated modes. *)
