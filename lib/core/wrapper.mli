(** Sliced, transactional execution of graft code.

    The wrapper runs a graft invocation on the graft VM in preemptible
    slices: after each slice the consumed cycles are charged to the virtual
    clock (so lock time-outs, watchdogs and other kernel activity interleave
    with graft execution exactly as a preemptible kernel interleaves with a
    running thread), and the transaction's abort flag is polled. An
    invocation also carries a total CPU budget, beyond which it is cut off
    like any runaway thread (Rule 1/2). *)

val env :
  Kernel.t ->
  txn:Vino_txn.Txn.t option ->
  cred:Cred.t ->
  limits:Vino_txn.Rlimit.t ->
  Vino_vm.Cpu.env
(** The kernel-call/checkcall/poll environment a graft executes under. The
    dispatcher refuses ids that are absent or not graft-callable; [call_ok]
    probes the runtime call table. *)

val default_slice : int
val default_budget : int

val exec :
  Kernel.t ->
  txn:Vino_txn.Txn.t ->
  cred:Cred.t ->
  limits:Vino_txn.Rlimit.t ->
  seg:Vino_vm.Mem.segment ->
  code:Vino_vm.Insn.t array ->
  ?trans:Vino_vm.Jit.t ->
  ?mode:Vino_vm.Jit.mode ->
  ?slice:int ->
  ?budget:int ->
  setup:(Vino_vm.Cpu.t -> unit) ->
  unit ->
  Vino_vm.Cpu.t * Vino_vm.Cpu.outcome
(** Must run inside an engine process. Advances the virtual clock by every
    cycle the graft consumes.

    [mode] (default: the kernel's [exec_mode]) selects the step function:
    [Translated] runs the closure-threaded [trans] when one is supplied,
    falling back to the interpreter otherwise; [Interp] always interprets
    [code]. Both produce bit-identical cpu state and outcomes. *)
