type t = { uid : int; user : string; limits : Vino_txn.Rlimit.t }

let root = { uid = 0; user = "root"; limits = Vino_txn.Rlimit.unlimited () }

(* Atomic: credentials may be minted from parallel worker domains
   (Vino_par.Pool); uids must stay unique. *)
let next_uid = Atomic.make 1000

let user ?uid name ~limits =
  let uid =
    match uid with
    | Some u -> u
    | None -> Atomic.fetch_and_add next_uid 1
  in
  { uid; user = name; limits }

let is_privileged t = t.uid = 0
let pp ppf t = Format.fprintf ppf "%s(%d)" t.user t.uid
