(* Open addressing with linear probing and tombstones. Slots hold:
   [-1] empty, [-2] tombstone, otherwise the stored id (ids are >= 0). *)

let empty = -1
let tombstone = -2

type t = {
  mutable slots : int array;
  mutable count : int;
  mutable dead : int; (* tombstones *)
  mutable probes : int;
  mutable lookups : int;
}

let make_slots n = Array.make n empty

let create ?(initial_slots = 64) () =
  {
    slots = make_slots initial_slots;
    count = 0;
    dead = 0;
    probes = 0;
    lookups = 0;
  }

let slot_for slots id = id * 2654435761 land max_int mod Array.length slots

let rec insert_raw slots id k =
  let k = k mod Array.length slots in
  if slots.(k) = empty then slots.(k) <- id
  else if slots.(k) = id then ()
  else insert_raw slots id (k + 1)

let resize t =
  let old = t.slots in
  t.slots <- make_slots (2 * Array.length old);
  t.dead <- 0;
  Array.iter
    (fun id -> if id >= 0 then insert_raw t.slots id (slot_for t.slots id))
    old

(* keep the table sparse (the paper's 10-15 cycle probes need it): resize
   beyond 1/4 occupancy, counting tombstones, which resizing clears *)
let maybe_resize t =
  if 4 * (t.count + t.dead + 1) > Array.length t.slots then resize t

let add t id =
  if id < 0 then invalid_arg "Calltable.add: ids must be non-negative";
  maybe_resize t;
  let n = Array.length t.slots in
  let start = slot_for t.slots id in
  (* the id may sit past a tombstone, so probe for it before inserting *)
  let rec present k =
    if t.slots.(k) = id then true
    else if t.slots.(k) = empty then false
    else present ((k + 1) mod n)
  in
  if not (present start) then begin
    let rec place k =
      if t.slots.(k) = empty || t.slots.(k) = tombstone then begin
        if t.slots.(k) = tombstone then t.dead <- t.dead - 1;
        t.slots.(k) <- id;
        t.count <- t.count + 1
      end
      else place ((k + 1) mod n)
    in
    place start
  end

let remove t id =
  let n = Array.length t.slots in
  let rec go k =
    if t.slots.(k) = id then begin
      t.slots.(k) <- tombstone;
      t.dead <- t.dead + 1;
      t.count <- t.count - 1
    end
    else if t.slots.(k) = empty then ()
    else go ((k + 1) mod n)
  in
  go (slot_for t.slots id)

let mem t id =
  t.lookups <- t.lookups + 1;
  let n = Array.length t.slots in
  let rec go k probes =
    let probes = probes + 1 in
    if t.slots.(k) = id then begin
      t.probes <- t.probes + probes;
      true
    end
    else if t.slots.(k) = empty then begin
      t.probes <- t.probes + probes;
      false
    end
    else go ((k + 1) mod n) probes
  in
  go (slot_for t.slots id) 0

let cardinal t = t.count
let load_factor t = float_of_int t.count /. float_of_int (Array.length t.slots)
let probes_recorded t = t.probes

let average_probes t =
  if t.lookups = 0 then 0.
  else float_of_int t.probes /. float_of_int t.lookups

(* [mem] mutates probes/lookups, so even read-only trials dirty the
   table; capture everything. *)
let saver t () =
  let slots = Array.copy t.slots
  and count = t.count
  and dead = t.dead
  and probes = t.probes
  and lookups = t.lookups in
  fun () ->
    t.slots <- Array.copy slots;
    t.count <- count;
    t.dead <- dead;
    t.probes <- probes;
    t.lookups <- lookups
