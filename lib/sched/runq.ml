module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Graft_point = Vino_core.Graft_point
module Calltable = Vino_core.Calltable
module Txn = Vino_txn.Txn

type delegate_request = { self : int; runnable : int list }

type task = {
  tid : int;
  tname : string;
  delegate : (delegate_request, int) Graft_point.t;
  mutable group : int option;
}

type t = {
  kernel : Kernel.t;
  tslice : int;
  switch_cost : int;
  graft_support : bool;
  delegate_budget : int option;
  lock : Vino_txn.Lock.t;
  lock_name : string;
  tasks : (int, task) Hashtbl.t;
  valid_tids : Calltable.t;
  queue : int Queue.t;
  mutable next_tid : int;
  mutable n_switches : int;
  mutable n_redirects : int;
  mutable n_invalid : int;
}

(* The process list is written above the first 64 words of the graft
   segment, which are reserved as the application-shared window (e.g. for
   handoff flags). *)
let list_area = 64
let max_listed = 64

(* Atomic: run queues are created from parallel worker domains (one
   kernel per bench/campaign unit); instance numbers must stay unique. *)
let instances = Atomic.make 0

let create kernel ?(timeslice = Vino_txn.Tcosts.us 10_000.)
    ?(switch_cost = Vino_txn.Tcosts.us 27.) ?(graft_support = true)
    ?delegate_budget () =
  let instance = 1 + Atomic.fetch_and_add instances 1 in
  let lock =
    Kernel.make_lock kernel
      ~timeout:(Vino_txn.Tcosts.us 200.)
      ~name:(Printf.sprintf "process-list-%d" instance)
      ()
  in
  let lock_name = Printf.sprintf "sched.proclist-lock:%d" instance in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:lock_name (fun ctx ->
        match ctx.Kcall.txn with
        | None -> Kcall.abort "process-list lock outside a transaction"
        | Some txn -> (
            match Txn.acquire_lock txn lock Exclusive with
            | Ok () -> Kcall.ok
            | Error reason -> Kcall.abort reason))
  in
  let t =
    {
      kernel;
      tslice = timeslice;
      switch_cost;
      graft_support;
      delegate_budget;
      lock;
      lock_name;
      tasks = Hashtbl.create 64;
      valid_tids = Calltable.create ();
      queue = Queue.create ();
      next_tid = 1;
      n_switches = 0;
      n_redirects = 0;
      n_invalid = 0;
    }
  in
  Kernel.on_snapshot kernel (Calltable.saver t.valid_tids);
  Kernel.on_snapshot kernel (fun () ->
      (* task records are shared across the capture (their [group] field
         is restored individually); the queue is rebuilt in FIFO order *)
      let tasks = Hashtbl.copy t.tasks
      and groups =
        Hashtbl.fold (fun tid task acc -> (tid, task.group) :: acc) t.tasks []
      and queued = Queue.fold (fun acc tid -> tid :: acc) [] t.queue
      and next_tid = t.next_tid
      and n_switches = t.n_switches
      and n_redirects = t.n_redirects
      and n_invalid = t.n_invalid in
      fun () ->
        Hashtbl.reset t.tasks;
        Hashtbl.iter (Hashtbl.replace t.tasks) tasks;
        List.iter
          (fun (tid, group) ->
            match Hashtbl.find_opt t.tasks tid with
            | Some task -> task.group <- group
            | None -> ())
          groups;
        Queue.clear t.queue;
        List.iter (fun tid -> Queue.push tid t.queue) (List.rev queued);
        t.next_tid <- next_tid;
        t.n_switches <- n_switches;
        t.n_redirects <- n_redirects;
        t.n_invalid <- n_invalid);
  t

let setup kernel cpu req =
  let seg = Cpu.segment cpu in
  Cpu.set_reg cpu 1 req.self;
  let listed = List.filteri (fun k _ -> k < max_listed) req.runnable in
  List.iteri
    (fun k tid ->
      Mem.store kernel.Kernel.mem (Mem.sandbox seg (list_area + k)) tid)
    listed;
  Cpu.set_reg cpu 2 (seg.Vino_vm.Mem.base + list_area);
  Cpu.set_reg cpu 3 (List.length listed)

let spawn_task t ~name =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let delegate =
    Graft_point.create
      ~name:(Printf.sprintf "%s.schedule-delegate" name)
      ?budget:t.delegate_budget
      ~default:(fun req -> req.self)
      ~setup:(setup t.kernel)
      ~read_result:(fun cpu _ -> Ok (Cpu.reg cpu 0))
      ()
  in
  let task = { tid; tname = name; delegate; group = None } in
  Hashtbl.replace t.tasks tid task;
  Calltable.add t.valid_tids tid;
  Queue.push tid t.queue;
  Kernel.on_snapshot t.kernel (Graft_point.saver delegate);
  task

let task_id task = task.tid
let task_name task = task.tname
let delegate_point task = task.delegate

let remove_task t task =
  Hashtbl.remove t.tasks task.tid;
  Calltable.remove t.valid_tids task.tid;
  (* lazy removal from the queue: skipped when popped *)
  ()

let join_group _t task ~group = task.group <- Some group

let same_group a b =
  match (a.group, b.group) with
  | Some g1, Some g2 -> g1 = g2
  | _, _ -> false

let runnable_snapshot t =
  Queue.fold (fun acc tid -> tid :: acc) [] t.queue |> List.rev

let rec pop_live t =
  match Queue.pop t.queue with
  | exception Queue.Empty -> None
  | tid -> (
      match Hashtbl.find_opt t.tasks tid with
      | Some task -> Some task
      | None -> pop_live t (* task was removed; skip its stale entry *))

let schedule t ~cred =
  match pop_live t with
  | None -> None
  | Some task ->
      Queue.push task.tid t.queue;
      let req = { self = task.tid; runnable = runnable_snapshot t } in
      let suggestion =
        if t.graft_support then
          Graft_point.invoke task.delegate t.kernel ~cred req
        else Graft_point.default_fn task.delegate req
      in
      let chosen =
        if suggestion = task.tid then task
        else if not (Calltable.mem t.valid_tids suggestion) then begin
          t.n_invalid <- t.n_invalid + 1;
          task
        end
        else
          match Hashtbl.find_opt t.tasks suggestion with
          | Some target when same_group task target ->
              t.n_redirects <- t.n_redirects + 1;
              target
          | Some _ | None ->
              (* delegating outside the consenting group is antisocial
                 (Rule 8): ignored *)
              t.n_invalid <- t.n_invalid + 1;
              task
      in
      t.n_switches <- t.n_switches + 1;
      Engine.delay t.switch_cost;
      Some chosen

let switches t = t.n_switches
let delegate_redirects t = t.n_redirects
let invalid_delegations t = t.n_invalid
let timeslice t = t.tslice
let proclist_lock t = t.lock
let proclist_lock_name t = t.lock_name
