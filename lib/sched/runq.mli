(** The kernel run queue and the schedule-delegate graft point (§4.3).

    Each user-level process has a kernel thread; when the thread is chosen
    to run, its [schedule-delegate] function runs and may return the id of
    another thread to run in its place (a client handing its timeslice to
    the database server, a UI thread handing off to the video thread). The
    default delegate returns the thread itself.

    The id returned by a delegate is verified by probing a hash table of
    valid thread ids, and must belong to a task that has joined the same
    scheduling group as the delegator — a graft can only affect processes
    that agreed to participate (Rule 8; Cao's principle). An invalid or
    foreign id falls back to the original choice. *)

type task

type delegate_request = {
  self : int;
  runnable : int list;  (** snapshot of the process list *)
}

type t

val create :
  Vino_core.Kernel.t ->
  ?timeslice:int ->
  ?switch_cost:int ->
  ?graft_support:bool ->
  ?delegate_budget:int ->
  unit ->
  t
(** [switch_cost] is one context switch — choose + switch kernel threads +
    switch VM context, 27 us so a switch-and-back pair costs the paper's
    54 us. [timeslice] defaults to 10 ms. [graft_support:false] removes the
    delegate indirection entirely (the measurement "base path").
    [delegate_budget] bounds one delegate invocation's cycles. Also
    registers a graft-callable function that locks the process list for
    delegate grafts (see {!proclist_lock_name}). *)

val proclist_lock : t -> Vino_txn.Lock.t
(** The process-list lock itself — the disaster rig checks it for leaked
    holders after recovery. *)

val proclist_lock_name : t -> string

val spawn_task : t -> name:string -> task
val task_id : task -> int
val task_name : task -> string
val remove_task : t -> task -> unit

val delegate_point :
  task -> (delegate_request, int) Vino_core.Graft_point.t

val join_group : t -> task -> group:int -> unit
(** Opt in to delegation group [group]; delegates may only redirect among
    tasks sharing a group. *)

val schedule : t -> cred:Vino_core.Cred.t -> task option
(** Pick the next task round-robin, run its delegate, validate the returned
    id, charge the context-switch cost, and return the task that actually
    gets the CPU. [None] if the queue is empty. Must run inside an engine
    process. *)

val switches : t -> int
val delegate_redirects : t -> int
val invalid_delegations : t -> int
val timeslice : t -> int
