(** The kernel-wide observability sink.

    A {!t} bundles a fixed-capacity ring of {!Span.t}s, a table of
    monotonic {!Counters}, and a per-graft cycle {!Profile}. The
    instrumented hot paths ({!Vino_core.Graft_point}, {!Vino_core.Wrapper},
    {!Vino_txn.Txn}, {!Vino_txn.Lock}, {!Vino_sim.Engine}, the fs cache)
    report through the module-level emit functions below, which write to
    the currently installed sink — or do nothing at all when none is
    installed.

    Zero-cost when disabled: tracing never calls {!Vino_sim.Engine.delay}
    or charges any virtual cycles, so with no sink installed (and equally
    with any sink installed) every measured cycle count is bit-identical
    to an uninstrumented build. The disabled path is one domain-local
    load and branch of host work. The golden test in [test/test_trace.ml]
    holds Table 3 to this.

    The installed sink is {e domain-local} ([Domain.DLS]): a worker
    domain spawned by {!Vino_par.Pool} sees no sink unless it installs
    its own, so parallel kernels cannot race on or interleave into one
    stream. [Vino_par.Pool.map_scoped] gives each parallel item a private
    sink and {!absorb}s them into the caller's in item order. *)

type t

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] defaults to {!default_span_capacity}. *)

val default_span_capacity : int
(** 65536 spans. *)

(** {1 Installing a sink} *)

val install : t -> unit
(** Make [t] the current sink (replacing any other). *)

val uninstall : unit -> unit

val current : unit -> t option

val enabled : unit -> bool

val with_t : t -> (unit -> 'a) -> 'a
(** Install [t], run the thunk, restore the previous sink (also on
    exceptions). Installation is domain-local. *)

val absorb : t -> unit
(** Merge a (quiescent) sink into the currently installed one, if any:
    counters and per-graft profile aggregates are summed, spans appended
    in order. Absorbing per-item sinks in item order reconstructs what a
    serial run under one sink would have recorded. No-op when no sink is
    installed or when the argument {e is} the installed sink. *)

(** {1 Emitting (instrumentation side)}

    All of these are no-ops when no sink is installed. *)

val span : Span.kind -> label:string -> start:int -> dur:int -> unit
val incr : ?by:int -> string -> unit

(** Handle-based counter bumps: one domain-local load, one array add —
    no hashing, no allocation. Intern the handle once at module load
    with {!Counters.handle}; [add_h] takes its non-negative amount as a
    bare [int] (no option boxing on the call site). *)

val incr_h : Counters.handle -> unit

val add_h : Counters.handle -> int -> unit
val push_frame : ctx:int -> point:string -> now:int -> unit
val charge : ctx:int -> Profile.bucket -> int -> unit
val pop_frame : ctx:int -> now:int -> unit

(** {1 Reading a sink} *)

val spans : t -> Span.t list
(** Retained spans, oldest first. *)

val spans_dropped : t -> int
val spans_total : t -> int
val counters : t -> (string * int) list
val counter_value : t -> string -> int
val profile : t -> Profile.row list
val clear : t -> unit

(** {1 Reports} *)

val pp_report : ?span_tail:int -> Format.formatter -> t -> unit
(** Per-graft cycle profile, counter inventory, and the last
    [span_tail] (default 20) spans. *)

val report_json : ?scenario:string -> t -> Json.t
(** [{ scenario; profile; counters; spans = {capacity; retained;
    dropped; tail} }] — see DESIGN.md §10 for the schema. *)
