type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string v =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun k item ->
            if k > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun k (name, item) ->
            if k > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape name);
            Buffer.add_string b "\": ";
            go (depth + 1) item)
          fields;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' ->
                Buffer.add_char b '\n';
                go ()
            | 'r' ->
                Buffer.add_char b '\r';
                go ()
            | 't' ->
                Buffer.add_char b '\t';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
                | Some _ -> Buffer.add_char b '?'
                | None -> fail "bad \\u escape");
                go ()
            | _ -> fail "unknown escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (name, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List items -> items | _ -> []
let string_value = function String s -> Some s | _ -> None

let int_value = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
