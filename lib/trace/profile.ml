type bucket = Sandbox | Txn | Undo

type row = {
  point : string;
  invocations : int;
  total : int;
  sandbox : int;
  txn : int;
  undo : int;
  body : int;
}

type frame = {
  point : string;
  start : int;
  mutable f_sandbox : int;
  mutable f_txn : int;
  mutable f_undo : int;
  mutable f_nested : int; (* cycles spent inside nested invocations *)
}

type agg = {
  mutable invocations : int;
  mutable a_total : int;
  mutable a_sandbox : int;
  mutable a_txn : int;
  mutable a_undo : int;
}

type t = {
  stacks : (int, frame list) Hashtbl.t; (* proc id -> innermost first *)
  aggs : (string, agg) Hashtbl.t;
}

let create () = { stacks = Hashtbl.create 16; aggs = Hashtbl.create 16 }

let stack t ctx =
  match Hashtbl.find_opt t.stacks ctx with Some s -> s | None -> []

let push_frame t ~ctx ~point ~now =
  let f =
    { point; start = now; f_sandbox = 0; f_txn = 0; f_undo = 0; f_nested = 0 }
  in
  Hashtbl.replace t.stacks ctx (f :: stack t ctx)

let charge t ~ctx bucket n =
  match stack t ctx with
  | [] -> ()
  | f :: _ -> (
      match bucket with
      | Sandbox -> f.f_sandbox <- f.f_sandbox + n
      | Txn -> f.f_txn <- f.f_txn + n
      | Undo -> f.f_undo <- f.f_undo + n)

let agg_for t point =
  match Hashtbl.find_opt t.aggs point with
  | Some a -> a
  | None ->
      let a =
        { invocations = 0; a_total = 0; a_sandbox = 0; a_txn = 0; a_undo = 0 }
      in
      Hashtbl.add t.aggs point a;
      a

let pop_frame t ~ctx ~now =
  match stack t ctx with
  | [] -> ()
  | f :: rest ->
      (if rest = [] then Hashtbl.remove t.stacks ctx
       else Hashtbl.replace t.stacks ctx rest);
      let elapsed = now - f.start in
      (* the parent sees this whole invocation as nested time, not body *)
      (match rest with
      | parent :: _ -> parent.f_nested <- parent.f_nested + elapsed
      | [] -> ());
      let a = agg_for t f.point in
      a.invocations <- a.invocations + 1;
      a.a_total <- a.a_total + (elapsed - f.f_nested);
      a.a_sandbox <- a.a_sandbox + f.f_sandbox;
      a.a_txn <- a.a_txn + f.f_txn;
      a.a_undo <- a.a_undo + f.f_undo

(* Fold [src]'s closed-frame aggregates into [into]. Open frames (live
   stacks) are not merged: absorb is only meaningful between runs, when
   every invocation has popped. *)
let absorb src ~into =
  Hashtbl.iter
    (fun point (a : agg) ->
      let d = agg_for into point in
      d.invocations <- d.invocations + a.invocations;
      d.a_total <- d.a_total + a.a_total;
      d.a_sandbox <- d.a_sandbox + a.a_sandbox;
      d.a_txn <- d.a_txn + a.a_txn;
      d.a_undo <- d.a_undo + a.a_undo)
    src.aggs

let rows t =
  Hashtbl.fold
    (fun point a acc ->
      ({
        point;
        invocations = a.invocations;
        total = a.a_total;
        sandbox = a.a_sandbox;
        txn = a.a_txn;
        undo = a.a_undo;
        body = a.a_total - a.a_sandbox - a.a_txn - a.a_undo;
      }
        : row)
      :: acc)
    t.aggs []
  |> List.sort (fun (a : row) (b : row) -> compare a.point b.point)

let pp ppf t =
  Format.fprintf ppf "%-28s %6s %10s %9s %9s %9s %9s@\n" "graft point" "invok"
    "cycles" "sandbox" "body" "txn" "undo";
  List.iter
    (fun (r : row) ->
      Format.fprintf ppf "%-28s %6d %10d %9d %9d %9d %9d@\n" r.point
        r.invocations r.total r.sandbox r.body r.txn r.undo)
    (rows t)
