(* Handles are process-wide: interning "txn.begins" in any domain or
   table yields the same small integer, so a handle baked into a module
   at load time indexes every sink's flat array. The registry is tiny
   (dozens of names, touched once per name) and mutex-protected; the
   hot path never takes the lock. *)
type handle = int

let reg_lock = Mutex.create ()
let reg_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let reg_names = ref (Array.make 16 "")
let reg_count = ref 0

let handle name =
  Mutex.protect reg_lock (fun () ->
      match Hashtbl.find_opt reg_ids name with
      | Some id -> id
      | None ->
          let id = !reg_count in
          let cap = Array.length !reg_names in
          if id = cap then begin
            let bigger = Array.make (2 * cap) "" in
            Array.blit !reg_names 0 bigger 0 cap;
            reg_names := bigger
          end;
          !reg_names.(id) <- name;
          Hashtbl.add reg_ids name id;
          reg_count := id + 1;
          id)

let handle_name h = Mutex.protect reg_lock (fun () -> !reg_names.(h))

(* [fast] batches handle increments as plain array adds; they fold into
   the string-keyed table the first time anything reads it ([flush]).
   Each table lives in one domain (sinks are domain-local), so the two
   representations never race. *)
type t = { tbl : (string, int ref) Hashtbl.t; mutable fast : int array }

let create () : t = { tbl = Hashtbl.create 64; fast = Array.make 16 0 }

let tbl_incr tbl ?(by = 1) name =
  if by < 0 then invalid_arg "Counters.incr: counters are monotonic";
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add tbl name (ref by)

let incr t ?by name = tbl_incr t.tbl ?by name

let add_h t h n =
  if n < 0 then invalid_arg "Counters.add_h: counters are monotonic";
  if n = 0 then
    (* A zero add must still materialize the counter, exactly as the
       string path does — [flush] cannot tell a zero-added slot from an
       untouched one, so it lands in the table here instead. *)
    tbl_incr t.tbl ~by:0 (handle_name h)
  else begin
    let f = t.fast in
    let cap = Array.length f in
    if h < cap then f.(h) <- f.(h) + n
    else begin
      let bigger = Array.make (max (2 * cap) (h + 1)) 0 in
      Array.blit f 0 bigger 0 cap;
      bigger.(h) <- n;
      t.fast <- bigger
    end
  end

let incr_h t h = add_h t h 1

let flush t =
  let f = t.fast in
  for h = 0 to Array.length f - 1 do
    let v = f.(h) in
    if v <> 0 then begin
      tbl_incr t.tbl ~by:v (handle_name h);
      f.(h) <- 0
    end
  done

let value t name =
  flush t;
  match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0

let snapshot t =
  flush t;
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.tbl []
  |> List.sort compare

(* Integer addition commutes, so summing per-worker counter tables in
   any order reproduces the serial totals exactly. *)
let absorb src ~into =
  flush src;
  Hashtbl.iter (fun name r -> incr into ~by:!r name) src.tbl

let clear t =
  Hashtbl.reset t.tbl;
  Array.fill t.fast 0 (Array.length t.fast) 0
