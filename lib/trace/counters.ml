type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Counters.incr: counters are monotonic";
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let value t name =
  match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort compare

let clear = Hashtbl.reset
