type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Counters.incr: counters are monotonic";
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let value t name =
  match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort compare

(* Integer addition commutes, so summing per-worker counter tables in
   any order reproduces the serial totals exactly. *)
let absorb src ~into =
  Hashtbl.iter (fun name r -> incr into ~by:!r name) src

let clear = Hashtbl.reset
