(** Named monotonic counters, one table per trace sink.

    Counters only ever increase (enforced), so a reader can difference
    two snapshots taken at any two points of a run and trust the result.
    Names are dotted [subsystem.event] slugs — see DESIGN.md §10 for the
    inventory the kernel instrumentation emits. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** [by] defaults to 1 and must be non-negative. *)

(** {1 Pre-interned handles}

    Hashing a dotted name on every bump is the dominant cost of a hot
    emit site. A {!handle} interns the name once (typically at module
    load) into a process-wide id; {!incr_h}/{!add_h} then bump a flat
    per-table int array — no hashing, no allocation — and the batched
    values fold into the string-keyed table the first time anything
    reads it. Handle and string increments to the same name always sum
    into one counter. *)

type handle

val handle : string -> handle
(** Intern [name]. Idempotent: the same name yields the same handle in
    every domain and for every table. *)

val handle_name : handle -> string

val incr_h : t -> handle -> unit
(** Bump by one. Equivalent to [incr t (handle_name h)], minus the
    hashing. *)

val add_h : t -> handle -> int -> unit
(** Bump by [n] (non-negative). No optional argument, so a call site
    passes the amount without boxing it. *)

val value : t -> string -> int
(** 0 for a counter never incremented. *)

val snapshot : t -> (string * int) list
(** Sorted by name. *)

val absorb : t -> into:t -> unit
(** Add every counter of the first table into [into]. Addition commutes,
    so absorbing per-worker tables in any order reproduces the totals a
    single serial table would hold. *)

val clear : t -> unit
