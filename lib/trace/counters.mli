(** Named monotonic counters, one table per trace sink.

    Counters only ever increase (enforced), so a reader can difference
    two snapshots taken at any two points of a run and trust the result.
    Names are dotted [subsystem.event] slugs — see DESIGN.md §10 for the
    inventory the kernel instrumentation emits. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** [by] defaults to 1 and must be non-negative. *)

val value : t -> string -> int
(** 0 for a counter never incremented. *)

val snapshot : t -> (string * int) list
(** Sorted by name. *)

val absorb : t -> into:t -> unit
(** Add every counter of the first table into [into]. Addition commutes,
    so absorbing per-worker tables in any order reproduces the totals a
    single serial table would hold. *)

val clear : t -> unit
