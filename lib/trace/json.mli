(** A deliberately tiny JSON layer (the toolchain ships no JSON
    library): enough to emit the bench/trace reports and to parse them
    back in the CI regression gate. Numbers are kept as either exact
    ints (cycle counts — what the gate compares) or floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Multi-line, two-space indent, stable key order as given. *)

val of_string : string -> (t, string) result
(** Strict enough for round-tripping our own output; errors carry an
    offset. *)

(** Accessors for the gate; all total. *)

val member : string -> t -> t option
val to_list : t -> t list
val string_value : t -> string option
val int_value : t -> int option
(** Ints, and floats with no fractional part. *)
