(** Trace spans: timed intervals on the simulation's virtual clock.

    A span records that some named piece of kernel machinery ran for
    [dur] cycles ending around [start + dur]. Spans carry no host-time
    information at all — both endpoints are virtual cycles at
    {!Vino_vm.Costs.mhz} — so a same-seed re-run of any workload
    produces a bit-identical span stream. *)

type kind =
  | Graft_invoke  (** whole graft-point invocation (graft installed) *)
  | Dispatch  (** graft-point indirection, grafted or not *)
  | Sfi_sandbox  (** aggregate Sandbox-instruction cycles of one exec *)
  | Sfi_checkcall  (** aggregate Checkcall-instruction cycles of one exec *)
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Undo_replay  (** undo-log replay during an abort *)
  | Lock_acquire  (** the acquisition charge itself *)
  | Lock_wait  (** blocked time between enqueue and grant/give-up *)
  | Lock_timeout  (** a lock time-out fired (instantaneous) *)

val kind_name : kind -> string
val all_kinds : kind list

type t = {
  kind : kind;
  label : string;  (** graft point, transaction or lock name *)
  start : int;  (** virtual cycles *)
  dur : int;  (** virtual cycles *)
}

val pp : Format.formatter -> t -> unit
