(** Fixed-capacity ring buffer with oldest-first eviction.

    The observability layer must never let a long soak or disaster
    campaign exhaust memory, so both trace spans and the kernel audit
    trail retain only the newest [capacity] entries; everything older is
    evicted and counted in {!dropped}. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1). Evicts the oldest entry (and bumps {!dropped}) when full. *)

val length : 'a t -> int
(** Entries currently retained. *)

val total : 'a t -> int
(** Entries ever pushed, including dropped ones. *)

val dropped : 'a t -> int
(** Entries evicted to make room. *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val absorb : 'a t -> into:'a t -> unit
(** Append [src]'s retained entries (oldest first) into [into], carrying
    over [src]'s {!total}/{!dropped} accounting. Equivalent to pushing
    [src]'s whole stream into [into] as long as [src] never overflowed;
    if it did, the dropped entries are counted but obviously not
    replayed. [src] is left untouched. *)

val clear : 'a t -> unit
(** Drop every entry and reset the {!total}/{!dropped} accounting. *)

val saver : 'a t -> unit -> unit -> unit
(** [saver t ()] captures the buffer and accounting; the returned thunk
    restores them in place (re-runnable). For kernel snapshots. *)
