type 'a t = {
  cap : int;
  buf : 'a option array;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable n_total : int;
  mutable n_dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    cap = capacity;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    n_total = 0;
    n_dropped = 0;
  }

let capacity t = t.cap
let length t = t.len
let total t = t.n_total
let dropped t = t.n_dropped

let push t x =
  t.buf.(t.head) <- Some x;
  t.head <- (t.head + 1) mod t.cap;
  if t.len = t.cap then t.n_dropped <- t.n_dropped + 1
  else t.len <- t.len + 1;
  t.n_total <- t.n_total + 1

let iter f t =
  let start = (t.head - t.len + t.cap) mod t.cap in
  for k = 0 to t.len - 1 do
    match t.buf.((start + k) mod t.cap) with
    | Some x -> f x
    | None -> ()
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

(* Append [src]'s retained entries (oldest first) into [into], and carry
   over entries [src] itself already dropped so total/dropped accounting
   matches a single ring that saw the concatenated stream. *)
let absorb src ~into =
  into.n_total <- into.n_total + src.n_dropped;
  into.n_dropped <- into.n_dropped + src.n_dropped;
  iter (fun x -> push into x) src

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0;
  t.n_total <- 0;
  t.n_dropped <- 0

let saver t () =
  let buf = Array.copy t.buf
  and head = t.head
  and len = t.len
  and n_total = t.n_total
  and n_dropped = t.n_dropped in
  fun () ->
    Array.blit buf 0 t.buf 0 t.cap;
    t.head <- head;
    t.len <- len;
    t.n_total <- n_total;
    t.n_dropped <- n_dropped
