type t = {
  ring : Span.t Ring.t;
  ctrs : Counters.t;
  prof : Profile.t;
}

let default_span_capacity = 65536

let create ?(span_capacity = default_span_capacity) () =
  {
    ring = Ring.create ~capacity:span_capacity;
    ctrs = Counters.create ();
    prof = Profile.create ();
  }

(* The installed sink. Domain-local: each domain installs and reads its
   own sink, so the parallel fan-out (Vino_par.Pool) can run one kernel
   per worker domain without the streams racing or mixing — a worker sees
   no sink unless it installs one. Within a domain, scoping with [with_t]
   keeps concurrent kernels (the bench harness) from mixing streams,
   exactly as before. *)
let sink : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set sink (Some t)
let uninstall () = Domain.DLS.set sink None
let current () = Domain.DLS.get sink
let enabled () = Domain.DLS.get sink <> None

let with_t t f =
  let saved = Domain.DLS.get sink in
  Domain.DLS.set sink (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink saved) f

let span kind ~label ~start ~dur =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Ring.push t.ring { Span.kind; label; start; dur }

let incr ?by name =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Counters.incr t.ctrs ?by name

let incr_h h =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Counters.incr_h t.ctrs h

let add_h h n =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Counters.add_h t.ctrs h n

let push_frame ~ctx ~point ~now =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Profile.push_frame t.prof ~ctx ~point ~now

let charge ~ctx bucket n =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Profile.charge t.prof ~ctx bucket n

let pop_frame ~ctx ~now =
  match Domain.DLS.get sink with
  | None -> ()
  | Some t -> Profile.pop_frame t.prof ~ctx ~now

(* Merge [src] into the caller's installed sink (no-op when none is
   installed): counters and profile aggregates are summed, spans are
   appended in [src]'s order. Used by [Vino_par.Pool.map_scoped] to fold
   per-worker sinks back into the main one in item-index order, which
   reproduces exactly what a serial run under a single sink records. *)
let absorb src =
  match Domain.DLS.get sink with
  | None -> ()
  | Some dst when dst == src -> ()
  | Some dst ->
      Ring.absorb src.ring ~into:dst.ring;
      Counters.absorb src.ctrs ~into:dst.ctrs;
      Profile.absorb src.prof ~into:dst.prof

let spans t = Ring.to_list t.ring
let spans_dropped t = Ring.dropped t.ring
let spans_total t = Ring.total t.ring
let counters t = Counters.snapshot t.ctrs
let counter_value t name = Counters.value t.ctrs name
let profile t = Profile.rows t.prof

let clear t =
  Ring.clear t.ring;
  Counters.clear t.ctrs

let last k xs =
  let n = List.length xs in
  List.filteri (fun i _ -> i >= n - k) xs

let pp_report ?(span_tail = 20) ppf t =
  Format.fprintf ppf "== per-graft cycle accounting ==@\n%a@\n" Profile.pp
    t.prof;
  Format.fprintf ppf "== counters ==@\n";
  (match counters t with
  | [] -> Format.fprintf ppf "(none)@\n"
  | cs ->
      List.iter
        (fun (name, v) -> Format.fprintf ppf "%-28s %12d@\n" name v)
        cs);
  Format.fprintf ppf "@\n== spans (last %d of %d; %d dropped) ==@\n" span_tail
    (spans_total t) (spans_dropped t);
  List.iter
    (fun s -> Format.fprintf ppf "%a@\n" Span.pp s)
    (last span_tail (spans t))

let span_json (s : Span.t) =
  Json.Obj
    [
      ("kind", Json.String (Span.kind_name s.kind));
      ("label", Json.String s.label);
      ("start_cycles", Json.Int s.start);
      ("dur_cycles", Json.Int s.dur);
    ]

let profile_json (r : Profile.row) =
  Json.Obj
    [
      ("point", Json.String r.point);
      ("invocations", Json.Int r.invocations);
      ("total_cycles", Json.Int r.total);
      ("sandbox_cycles", Json.Int r.sandbox);
      ("body_cycles", Json.Int r.body);
      ("txn_cycles", Json.Int r.txn);
      ("undo_cycles", Json.Int r.undo);
    ]

let report_json ?scenario t =
  let fields =
    (match scenario with
    | Some s -> [ ("scenario", Json.String s) ]
    | None -> [])
    @ [
        ("schema", Json.String "vino-trace-v1");
        ("profile", Json.List (List.map profile_json (profile t)));
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters t)) );
        ( "spans",
          Json.Obj
            [
              ("capacity", Json.Int (Ring.capacity t.ring));
              ("retained", Json.Int (Ring.length t.ring));
              ("dropped", Json.Int (spans_dropped t));
              ("total", Json.Int (spans_total t));
              ("tail", Json.List (List.map span_json (last 100 (spans t))));
            ] );
      ]
  in
  Json.Obj fields
