type kind =
  | Graft_invoke
  | Dispatch
  | Sfi_sandbox
  | Sfi_checkcall
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Undo_replay
  | Lock_acquire
  | Lock_wait
  | Lock_timeout

let kind_name = function
  | Graft_invoke -> "graft.invoke"
  | Dispatch -> "graft.dispatch"
  | Sfi_sandbox -> "sfi.sandbox"
  | Sfi_checkcall -> "sfi.checkcall"
  | Txn_begin -> "txn.begin"
  | Txn_commit -> "txn.commit"
  | Txn_abort -> "txn.abort"
  | Undo_replay -> "undo.replay"
  | Lock_acquire -> "lock.acquire"
  | Lock_wait -> "lock.wait"
  | Lock_timeout -> "lock.timeout"

let all_kinds =
  [
    Graft_invoke; Dispatch; Sfi_sandbox; Sfi_checkcall; Txn_begin; Txn_commit;
    Txn_abort; Undo_replay; Lock_acquire; Lock_wait; Lock_timeout;
  ]

type t = { kind : kind; label : string; start : int; dur : int }

let pp ppf t =
  Format.fprintf ppf "[%10d +%-8d] %-14s %s" t.start t.dur (kind_name t.kind)
    t.label
