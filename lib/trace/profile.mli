(** Per-graft cycle accounting.

    Each graft-point invocation opens a frame; the transaction, lock,
    undo and SFI machinery charge cycles to the innermost open frame of
    their engine process while it runs. Closing the frame folds the
    charges into a per-graft-point aggregate that splits the
    invocation's virtual cycles into four buckets:

    - [sandbox]: Sandbox/Checkcall instruction cycles (MiSFIT overhead)
    - [txn]: transaction begin/commit/abort and lock-manager charges
    - [undo]: undo-log pushes and abort-time replay
    - [body]: everything else the invocation spent, excluding nested
      graft invocations (those are accounted to their own point)

    Frames are keyed by the simulation process id, so charges made by a
    concurrent process never land in a blocked invocation's frame. *)

type bucket = Sandbox | Txn | Undo

type row = {
  point : string;
  invocations : int;
  total : int;  (** cycles, nested invocations excluded *)
  sandbox : int;
  txn : int;
  undo : int;
  body : int;  (** [total - sandbox - txn - undo] *)
}

type t

val create : unit -> t

val push_frame : t -> ctx:int -> point:string -> now:int -> unit
(** Open an invocation frame for engine process [ctx]. *)

val charge : t -> ctx:int -> bucket -> int -> unit
(** Charge cycles to process [ctx]'s innermost frame; ignored if the
    process has no open frame. *)

val pop_frame : t -> ctx:int -> now:int -> unit
(** Close the innermost frame and fold it into the aggregates. The
    frame's full duration is subtracted from the parent frame's totals
    (as a nested invocation) if one is open. *)

val absorb : t -> into:t -> unit
(** Fold the first profile's per-point aggregates into [into]. Only
    closed frames are merged; call it between runs, when every
    invocation has popped. *)

val rows : t -> row list
(** Sorted by point name. *)

val pp : Format.formatter -> t -> unit
