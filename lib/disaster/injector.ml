module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Mutate = Vino_vm.Mutate

type kind =
  | Wild_store
  | Bad_call
  | Infinite_loop
  | Lock_hog
  | Resource_hog
  | Undo_bomb
  | Nested_fault
  | Flow_hijack

let all =
  [
    Wild_store;
    Bad_call;
    Infinite_loop;
    Lock_hog;
    Resource_hog;
    Undo_bomb;
    Nested_fault;
    Flow_hijack;
  ]

let name = function
  | Wild_store -> "wild-store"
  | Bad_call -> "bad-call"
  | Infinite_loop -> "infinite-loop"
  | Lock_hog -> "lock-hog"
  | Resource_hog -> "resource-hog"
  | Undo_bomb -> "undo-bomb"
  | Nested_fault -> "nested-fault"
  | Flow_hijack -> "flow-hijack"

type rig = {
  lock_kcall : string;
  alloc_kcall : string;
  state_kcall : string;
  bad_undo_kcall : string;
  nest_kcall : string;
  secret_id : int;
  kernel_words : int;
}

type expectation = Rejected | Contained | Recovered

let expectation_name = function
  | Rejected -> "rejected"
  | Contained -> "contained"
  | Recovered -> "recovered"

type post = Word_untouched of int | Flow_violation_audited

type variant = {
  kind : kind;
  source : Asm.item list;
  expect : expectation;
  posts : post list;
  wants_contender : bool;
  note : string;
  flow_witness : Asm.item list option;
}

(* An unmistakable arithmetic fault: the VM kills the graft, the wrapper
   aborts its transaction. *)
let div0 : Asm.item list =
  [ Li (Asm.r12, 1); Li (Asm.r13, 0); Alu (Insn.Div, Asm.r12, Asm.r12, Asm.r13) ]

let plain kind source expect note =
  {
    kind;
    source;
    expect;
    posts = [];
    wants_contender = false;
    note;
    flow_witness = None;
  }

let apply kind ~rng ~rig source =
  match kind with
  | Wild_store ->
      (* A store aimed into kernel-reserved memory. MiSFIT's sandbox
         sequence forces the address into the graft's own segment, so the
         kernel word must come through untouched — and the graft is allowed
         to survive (a confined store is not detected, only defanged). *)
      let addr = Seed.range rng ~lo:64 ~hi:(rig.kernel_words / 2) in
      let value = 0x0BAD + Seed.int rng 0x1000 in
      {
        kind;
        source =
          Mutate.splice_prelude
            ~prelude:
              [ Li (Asm.r13, addr); Li (Asm.r12, value); St (Asm.r12, Asm.r13, 0) ]
            source;
        expect = Contained;
        posts = [ Word_untouched addr ];
        wants_contender = false;
        note = Printf.sprintf "store to kernel word %d" addr;
        flow_witness = None;
      }
  | Bad_call ->
      let bad_id =
        if Seed.bool rng then rig.secret_id else 7_000 + Seed.int rng 1_000
      in
      if Seed.bool rng then
        (* The id is a visible constant: the static verifier proves the
           indirect call can only reach a non-callable id, so the linker
           must refuse the load outright. *)
        plain kind
          (Mutate.splice_prelude
             ~prelude:[ Li (Asm.r13, bad_id); Asm.Kcallr Asm.r13 ]
             source)
          Rejected
          (Printf.sprintf "provable indirect call to id %d" bad_id)
      else
        (* Laundered through memory: statically opaque, so the runtime
           Checkcall probe is what catches it. *)
        plain kind
          (Mutate.splice_prelude
             ~prelude:
               [
                 Li (Asm.r12, bad_id);
                 Asm.Push Asm.r12;
                 Asm.Pop Asm.r13;
                 Asm.Kcallr Asm.r13;
               ]
             source)
          Recovered
          (Printf.sprintf "opaque indirect call to id %d" bad_id)
  | Infinite_loop ->
      let source' =
        if Seed.bool rng then Mutate.splice_prelude ~prelude:Mutate.diverge source
        else Mutate.before_returns ~payload:Mutate.diverge source
      in
      plain kind source' Recovered "spin past the cycle budget"
  | Lock_hog ->
      {
        kind;
        source =
          Mutate.splice_prelude
            ~prelude:(Asm.Kcall rig.lock_kcall :: Mutate.diverge)
            source;
        expect = Recovered;
        posts = [];
        wants_contender = true;
        note = "take the rig lock, then spin";
        flow_witness = None;
      }
  | Resource_hog ->
      let words = Seed.range rng ~lo:(1 lsl 14) ~hi:(1 lsl 20) in
      plain kind
        (Mutate.splice_prelude
           ~prelude:[ Li (Asm.r1, words); Asm.Kcall rig.alloc_kcall ]
           source)
        Recovered
        (Printf.sprintf "allocate %d words against a zero limit" words)
  | Undo_bomb ->
      let d1 = 1 + Seed.int rng 5 and d2 = 1 + Seed.int rng 5 in
      plain kind
        (Mutate.splice_prelude
           ~prelude:
             ([
                Asm.Li (Asm.r1, d1);
                Asm.Kcall rig.state_kcall;
                Asm.Kcall rig.bad_undo_kcall;
                Asm.Li (Asm.r1, d2);
                Asm.Kcall rig.state_kcall;
              ]
             @ div0)
           source)
        Recovered "fault with a raising entry planted mid-undo-log"
  | Nested_fault ->
      let spin = Seed.bool rng in
      let crash = if spin then Mutate.diverge else div0 in
      {
        kind;
        source =
          Mutate.splice_prelude
            ~prelude:(Asm.Kcall rig.nest_kcall :: crash)
            source;
        expect = Recovered;
        posts = [];
        wants_contender = spin;
        note =
          (if spin then
             "commit a nested txn (lock + undo merge into parent), then spin"
           else "commit a nested txn (lock + undo merge into parent), then fault");
        flow_witness = None;
      }
  | Flow_hijack ->
      (* Individually-legal kcalls in a statically-illegal order. The
         witness source is the protocol an attested compile-time call-flow
         graph would describe (lock first, then mutate state under it);
         the campaign pins the witness's transition table and installs the
         variant, so the kernel believes the graft's flow graph is the
         witness's. Two shapes: mutate-before-lock trips the entry row on
         the very first kcall; replaying the state mutation trips a
         missing state→state edge after real work (with undo) has been
         done. *)
      let d = 1 + Seed.int rng 7 in
      let witness_prelude =
        [
          Asm.Li (Asm.r1, d);
          Asm.Kcall rig.lock_kcall;
          Asm.Kcall rig.state_kcall;
        ]
      in
      let swap = Seed.bool rng in
      let hijack_prelude =
        if swap then
          [
            Asm.Li (Asm.r1, d);
            Asm.Kcall rig.state_kcall;
            Asm.Kcall rig.lock_kcall;
          ]
        else witness_prelude @ [ Asm.Kcall rig.state_kcall ]
      in
      {
        kind;
        source = Mutate.splice_prelude ~prelude:hijack_prelude source;
        expect = Recovered;
        posts = [ Flow_violation_audited ];
        wants_contender = false;
        note =
          (if swap then
             Printf.sprintf "state-add(%d) before lock (entry-row violation)"
               d
           else
             Printf.sprintf
               "state-add(%d) replayed after the protocol (missing edge)" d);
        flow_witness = Some (Mutate.splice_prelude ~prelude:witness_prelude source);
      }
