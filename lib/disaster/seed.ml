(* Deterministic splitmix64-style generator. The disaster rig's whole
   contract is "identical outcomes on re-run with the same seed", so it
   cannot use [Random] (global state, version-dependent algorithm): every
   draw comes from this self-contained stream. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let next64 t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (next64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Seed.int: bound must be positive";
  bits t mod bound

let range t ~lo ~hi =
  if hi <= lo then invalid_arg "Seed.range: empty range";
  lo + int t (hi - lo)

let pick t = function
  | [] -> invalid_arg "Seed.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let bool t = int t 2 = 1

(* An independent stream for injection [index] of campaign [seed]: mixing
   through the generator itself decorrelates neighbouring indices. *)
let derive ~seed index =
  let t = make seed in
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int (index + 1)) gamma);
  make (bits t)
