(** Seeded fault-injection campaigns (the disaster rig's driver).

    A campaign of [count] injections walks the (family x injector) product
    — index [i] hits family [i mod 5] with injector [(i / 5) mod 7], so any
    count >= 35 covers every combination — building a fresh {!Site} per
    injection, deriving its misbehaving graft from the campaign seed,
    running the workload, and checking every post-recovery invariant.

    Each injection is (by default) run twice with the same derived seed;
    differing fingerprints are reported as a determinism violation.

    Trials normally {e fork} a warmed site: each worker domain builds one
    site per family, snapshots its kernel right after creation
    ({!Vino_core.Kernel.snapshot}), and restores that snapshot before
    every trial instead of rebuilding the world. The restored site is
    byte-equivalent to a fresh one — same fingerprints, same report —
    while skipping the dominant site-construction cost. *)

type record = {
  index : int;
  family : Site.family;
  kind : Injector.kind;
  note : string;  (** the injector's seeded parameters *)
  expect : Injector.expectation;
  observed : Injector.expectation;
  violations : string list;  (** empty iff every invariant held *)
  fingerprint : string;
      (** seeded variant parameters + outcome + virtual time +
          txn/lock/audit counters; otherwise name-free so process-global
          counters don't alias as nondeterminism *)
  vtime : int;  (** virtual cycles the injection's kernel ran for *)
}

type report = { seed : int; count : int; records : record list }

val combo : int -> Site.family * Injector.kind
(** The (family, injector) pair campaign index [i] hits. *)

val run_injection : seed:int -> index:int -> record
(** One injection of campaign [seed] (fresh site, no determinism re-run). *)

val run :
  ?check_determinism:bool ->
  ?fork:bool ->
  ?recheck_every:int ->
  ?strategy:Vino_core.Kernel.strategy ->
  ?pool:Vino_par.Pool.t ->
  seed:int ->
  count:int ->
  unit ->
  report
(** With [?pool], trials fan out across domains; every trial is a pure
    function of [seed] and its index, so the report is identical at any
    pool size.

    [fork] (default [true]) restores a per-domain warmed site snapshot
    instead of building a fresh site per trial; pass [~fork:false] when
    per-trial host-side state must not persist (e.g. under tracing, where
    the warm JIT cache would skew translation counters).

    [recheck_every] (default 1: every trial) samples the same-seed
    determinism re-run to every [n]-th index; [0] disables it, as does
    [~check_determinism:false].

    [strategy] (default {!Vino_core.Kernel.Txn_undo}) selects the
    recovery cost model charged at graft dispatch and on faults. *)

val ok : report -> bool

val total_vtime : report -> int
(** Sum of every record's virtual elapsed cycles (throughput support). *)

val violations : report -> string list
(** All violations, each prefixed with its injection's index/family/kind. *)

val families_covered : report -> int
val injectors_covered : report -> int
val pp : Format.formatter -> report -> unit
