(** Disaster sites: the five graft-point families the fault-injection
    campaigns run against (paper §4: read-ahead, page eviction, scheduling
    delegation, stream transforms, event handlers).

    A site is one fresh kernel with one family's subsystem built on it, the
    {!Injector.rig} the fault injectors aim at, and everything the
    post-recovery invariant checks need to probe. Sites are throwaway: one
    injection, one site. *)

type family =
  | Fs_readahead
  | Vmem_evict
  | Sched_delegate
  | Stream_copy
  | Net_handler

val all_families : family list
val family_name : family -> string

type t = {
  family : family;
  kernel : Vino_core.Kernel.t;
  cred : Vino_core.Cred.t;
  rig : Injector.rig;
  rig_lock : Vino_txn.Lock.t;
  state_cell : int ref;
  state_initial : int;
  locks : (string * Vino_txn.Lock.t) list;
      (** every lock an injection could leak, with a report label *)
  daemons : string list;
      (** kernel processes allowed to remain blocked after the queue drains
          (the disk and prefetch daemons idle waiting for work) *)
  healthy : Vino_vm.Asm.item list;  (** the family's well-behaved graft *)
  install : Vino_misfit.Image.t -> (unit, string) result;
  grafted : unit -> bool;
  force_remove : unit -> unit;
      (** idempotent; also clears any pinned kcall-flow table, whose
          attested graph belonged to the removed graft *)
  drive : unit -> unit;
      (** queue the family workload; caller runs the engine *)
  drive_once : unit -> unit;
      (** queue a single graft-consulting operation (measurement support) *)
  check_default : unit -> (unit, string) result;
      (** after removal: the point must serve the default path and produce
          the default's result (drives the engine itself) *)
  baseline_used_words : int;
      (** graft-segment words allocated before any graft was installed *)
}

val graft_budget : int
(** Cycle budget given to every graft invocation on a site. *)

val create : family -> t

val spawn_contender : t -> delay:int -> unit
(** Spawn an innocent transaction that takes the rig lock after [delay]
    cycles, holds it briefly and commits — the waiter whose time-out aborts
    a lock-hogging graft. Call before running the engine. *)

val pin_flow_witness : t -> Vino_vm.Asm.item list -> unit
(** Compile [witness]'s kcall-flow transition table ({!Vino_core.Linker}),
    pin it on the site's kernel and enable flow enforcement — modeling an
    attested call-flow graph the installed graft must honour. Call before
    installing a {!Injector.Flow_hijack} variant.
    @raise Failure if the witness does not assemble or link. *)
