(** The misbehaviour catalogue (paper §2, Table 7's fault classes).

    Each injector is a seeded source-to-source rewrite that turns a healthy
    graft into a misbehaving variant, plus the containment outcome the
    kernel is expected to produce for it. The rewrites are IR-level
    ({!Vino_vm.Mutate}): they run before the MiSFIT toolchain, so the
    variant goes through exactly the sealing, verification, linking and
    wrapping a real graft would. *)

type kind =
  | Wild_store  (** store aimed outside the data segment *)
  | Bad_call  (** indirect call to a non-callable address *)
  | Infinite_loop  (** spin past the invocation's cycle budget *)
  | Lock_hog  (** hold a lock past its time-out *)
  | Resource_hog  (** allocate past the resource limit *)
  | Undo_bomb  (** fault with a raising entry planted in the undo log *)
  | Nested_fault  (** fault after committing a nested transaction *)
  | Flow_hijack
      (** individually-legal kcalls in a statically-illegal order, against
          a pinned witness flow graph (kcall-flow integrity) *)

val all : kind list
val name : kind -> string

type rig = {
  lock_kcall : string;  (** acquires the rig lock under the current txn *)
  alloc_kcall : string;  (** charges r1 words against the graft's limits *)
  state_kcall : string;  (** adds r1 to the rig cell, pushing its undo *)
  bad_undo_kcall : string;  (** pushes an undo entry that raises *)
  nest_kcall : string;
      (** begins a child txn, mutates the cell and takes the rig lock under
          it, then commits the child (merging both into the graft's txn) *)
  secret_id : int;  (** a registered but non-graft-callable function id *)
  kernel_words : int;  (** physical memory size (wild-store targets) *)
}
(** What a disaster site exposes for injectors to aim at. *)

type expectation =
  | Rejected  (** the linker's static check must refuse the load *)
  | Contained
      (** SFI defangs it: kernel memory intact, universal invariants hold;
          the graft may survive (confinement is not detection) or may still
          be removed if the confined damage breaks its own results *)
  | Recovered  (** transaction abort + forcible removal, default resumed *)

val expectation_name : expectation -> string

type post =
  | Word_untouched of int
      (** kernel word that must still hold its pre-injection value *)
  | Flow_violation_audited
      (** the audit trail must attribute a kcall-flow violation *)

type variant = {
  kind : kind;
  source : Vino_vm.Asm.item list;
  expect : expectation;
  posts : post list;
  wants_contender : bool;
      (** needs an innocent competing transaction (to drive the lock
          time-out path) *)
  note : string;  (** seeded parameters, for the report *)
  flow_witness : Vino_vm.Asm.item list option;
      (** when set, the campaign pins this source's kcall-flow table
          ([Kernel.flow_pin], via {!Site.pin_flow_witness}) before
          installing [source] — the attested protocol the hijacked variant
          violates *)
}

val apply : kind -> rng:Seed.t -> rig:rig -> Vino_vm.Asm.item list -> variant
(** Derive a misbehaving variant of [source]. Consumes draws from [rng];
    equal seeds give equal variants. *)
