(** Self-contained deterministic PRNG (splitmix64) for fault-injection
    campaigns: same seed, same draws, on every run and every platform. *)

type t

val make : int -> t
val bits : t -> int
(** A non-negative pseudo-random int. *)

val int : t -> int -> int
(** [int t bound] in [\[0, bound)]. @raise Invalid_argument if bound <= 0. *)

val range : t -> lo:int -> hi:int -> int
(** In [\[lo, hi)]. *)

val pick : t -> 'a list -> 'a
val bool : t -> bool

val derive : seed:int -> int -> t
(** An independent stream for injection [index] of campaign [seed]. *)
