(* Post-recovery invariant checks (the ISSUE's "did the kernel actually
   survive" list). Each check returns violation strings; an empty list
   means the invariant holds. *)

module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock
module Kernel = Vino_core.Kernel
module Audit = Vino_core.Audit
module Segalloc = Vino_core.Segalloc

let check_universal (site : Site.t) =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let engine = site.kernel.Kernel.engine in
  let mgr = site.kernel.Kernel.txn_mgr in
  (match Engine.failures engine with
  | [] -> ()
  | fs ->
      List.iter
        (fun (name, exn) ->
          add "process %S died: %s" name (Printexc.to_string exn))
        fs);
  List.iter
    (fun name ->
      if not (List.mem name site.daemons) then
        add "process %S still blocked after the queue drained" name)
    (Engine.blocked engine);
  (match Txn.live mgr with
  | 0 -> ()
  | n -> add "%d transaction(s) still unresolved" n);
  (match Txn.undo_live mgr with
  | 0 -> ()
  | n -> add "%d undo entr(ies) still live (logs not empty)" n);
  List.iter
    (fun (label, lock) ->
      (match Lock.holders lock with
      | [] -> ()
      | hs ->
          add "lock %S leaked %d holder(s): %s" label (List.length hs)
            (String.concat ", " (List.map fst hs)));
      match Lock.waiters lock with
      | [] -> ()
      | ws ->
          add "lock %S leaked %d waiter(s): %s" label (List.length ws)
            (String.concat ", " (List.map fst ws)))
    site.locks;
  if !(site.state_cell) <> site.state_initial then
    add "rig state cell not rolled back: %d, expected %d" !(site.state_cell)
      site.state_initial;
  List.rev !violations

let check_segments_restored (site : Site.t) =
  let used = Segalloc.used_words site.kernel.Kernel.segalloc in
  if used = site.baseline_used_words then []
  else
    [
      Printf.sprintf
        "graft segments leaked: %d words allocated, baseline was %d" used
        site.baseline_used_words;
    ]

let check_posts (site : Site.t) posts =
  List.concat_map
    (function
      | Injector.Word_untouched addr ->
          let v = Vino_vm.Mem.load site.kernel.Kernel.mem addr in
          if v = 0 then []
          else
            [
              Printf.sprintf
                "kernel word %d corrupted: holds %d (SFI containment failed)"
                addr v;
            ]
      | Injector.Flow_violation_audited ->
          let audited =
            List.exists
              (fun (e : Audit.entry) ->
                match e.event with
                | Audit.Flow_violation _ -> true
                | _ -> false)
              (Audit.entries site.kernel.Kernel.audit)
          in
          if audited then []
          else
            [
              "no kcall-flow violation in the audit trail (the hijack was \
               not attributed)";
            ])
    posts
