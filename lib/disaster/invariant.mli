(** Post-recovery invariants: what must be true of a disaster site after an
    injected graft has been dealt with. Every check returns a list of
    human-readable violations; empty means the invariant holds. *)

val check_universal : Site.t -> string list
(** The invariants every injection must leave intact: no process died of an
    uncaught exception, nothing non-daemon is blocked, [Txn.live = 0], undo
    logs empty ([Txn.undo_live = 0]), no lock holds a leaked holder or
    waiter, and the rig state cell is back at its initial value. *)

val check_segments_restored : Site.t -> string list
(** After forcible removal the graft-segment allocator must be back at the
    site's pre-graft baseline (no leaked segments). *)

val check_posts : Site.t -> Injector.post list -> string list
(** Injector-specific postconditions (e.g. a wild store's target word must
    be untouched). *)
