(* The campaign driver: seeded fault-injection sweeps across the five
   graft-point families, with post-recovery invariant checks after every
   injection and a same-seed re-run to pin determinism. *)

module Asm = Vino_vm.Asm
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock
module Kernel = Vino_core.Kernel
module Audit = Vino_core.Audit

type record = {
  index : int;
  family : Site.family;
  kind : Injector.kind;
  note : string;
  expect : Injector.expectation;
  observed : Injector.expectation;
  violations : string list;
  fingerprint : string;
  vtime : int;
}

type report = { seed : int; count : int; records : record list }

(* index -> (family, injector): walking the index covers the full 5 x 8
   product every 40 injections, whatever the count. *)
let combo index =
  let families = Site.all_families and kinds = Injector.all in
  let nf = List.length families in
  ( List.nth families (index mod nf),
    List.nth kinds (index / nf mod List.length kinds) )

let expectation_violation ~expect ~observed =
  match (expect, observed) with
  | Injector.Rejected, Injector.Rejected
  | Injector.Recovered, Injector.Recovered
  (* Confinement is not detection: a contained graft may also die of its
     own confined damage and be removed. *)
  | Injector.Contained, (Injector.Contained | Injector.Recovered) ->
      []
  | _ ->
      [
        Printf.sprintf "expected %s, observed %s"
          (Injector.expectation_name expect)
          (Injector.expectation_name observed);
      ]

(* Everything observable that could differ if the run were not a pure
   function of the seed: the variant's seeded parameters, outcome, virtual
   time, transaction and lock traffic, audit volume. Deliberately name-free
   otherwise, so per-process-global counters (uids, instance numbers) don't
   alias as nondeterminism. *)
let fingerprint (site : Site.t) ~note ~observed =
  let engine = site.kernel.Kernel.engine in
  let mgr = site.kernel.Kernel.txn_mgr in
  Printf.sprintf "[%s] %s now=%d txn=%d/%d/%d undo=%d/%d lock=%d/%d/%d audit=%d"
    note
    (Injector.expectation_name observed)
    (Engine.now engine) (Txn.begins mgr) (Txn.commits mgr) (Txn.aborts mgr)
    (Txn.undo_failures mgr)
    (Txn.deferred_failures mgr)
    (Lock.acquisitions site.rig_lock)
    (Lock.timeouts_fired site.rig_lock)
    (Lock.holder_aborts_requested site.rig_lock)
    (Audit.count site.kernel.Kernel.audit)

(* Warmed sites, one per family per worker domain: [Site.create] only
   builds subsystems and schedules their daemons — it never steps the
   engine — so the kernel snapshot taken right after creation is valid and
   restoring it is byte-equivalent to building a fresh site (the only
   divergence is process-global name counters, which no fingerprint
   reads). Creation dominates a trial, so forking amortises it away. *)
let warmed : (Site.family, Site.t * Kernel.snap) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let forked_site family =
  let cache = Domain.DLS.get warmed in
  match Hashtbl.find_opt cache family with
  | Some (site, snap) ->
      Kernel.restore site.Site.kernel snap;
      site
  | None ->
      let site = Site.create family in
      let snap = Kernel.snapshot site.Site.kernel in
      Hashtbl.replace cache family (site, snap);
      site

let inject (site : Site.t) ~kind ~seed ~index =
  let rng = Seed.derive ~seed index in
  let variant = Injector.apply kind ~rng ~rig:site.rig site.healthy in
  Option.iter (Site.pin_flow_witness site) variant.Injector.flow_witness;
  let install_result =
    match Asm.assemble variant.source with
    | Error e -> Error ("assemble: " ^ e)
    | Ok obj -> (
        match Kernel.seal site.kernel obj with
        | Error e -> Error e
        | Ok image -> site.install image)
  in
  let observed =
    match install_result with
    | Error _reason ->
        (* The load was refused; the workload must still run, served
           entirely by the default path. *)
        site.drive ();
        Kernel.run site.kernel;
        Injector.Rejected
    | Ok () ->
        site.drive ();
        if variant.wants_contender then
          Site.spawn_contender site ~delay:(4_000 + Seed.int rng 4_000);
        Kernel.run site.kernel;
        if site.grafted () then Injector.Contained else Injector.Recovered
  in
  site.force_remove ();
  let violations =
    Invariant.check_universal site
    @ Invariant.check_segments_restored site
    @ Invariant.check_posts site variant.posts
    @ expectation_violation ~expect:variant.expect ~observed
    @ (match site.check_default () with Ok () -> [] | Error e -> [ e ])
  in
  {
    index;
    family = site.family;
    kind;
    note = variant.note;
    expect = variant.expect;
    observed;
    violations;
    fingerprint = fingerprint site ~note:variant.note ~observed;
    vtime = Engine.now site.kernel.Kernel.engine;
  }

let run_injection ~seed ~index =
  let family, kind = combo index in
  inject (Site.create family) ~kind ~seed ~index

let run_trial ~check_determinism ~fork ~recheck_every ~strategy ~seed index =
  let run_once () =
    let family, kind = combo index in
    let site = if fork then forked_site family else Site.create family in
    Kernel.set_strategy site.Site.kernel strategy;
    inject site ~kind ~seed ~index
  in
  let r1 = run_once () in
  let recheck =
    check_determinism && recheck_every > 0 && index mod recheck_every = 0
  in
  if not recheck then r1
  else
    let r2 = run_once () in
    if String.equal r1.fingerprint r2.fingerprint then r1
    else
      {
        r1 with
        violations =
          r1.violations
          @ [
              Printf.sprintf "nondeterministic: re-run gave %S, first run %S"
                r2.fingerprint r1.fingerprint;
            ];
      }

(* Every trial is a pure function of (seed, index): a forked trial restores
   its domain's warmed site to the post-creation snapshot, a fresh trial
   builds its own site; records come back in index order whatever the
   schedule. *)
let run ?(check_determinism = true) ?(fork = true) ?(recheck_every = 1)
    ?(strategy = Kernel.Txn_undo) ?pool ~seed ~count () =
  let records =
    Vino_par.Pool.map_scoped ?pool
      (run_trial ~check_determinism ~fork ~recheck_every ~strategy ~seed)
      (List.init count Fun.id)
  in
  { seed; count; records }

let total_vtime report =
  List.fold_left (fun acc r -> acc + r.vtime) 0 report.records

let violations report =
  List.concat_map
    (fun r ->
      List.map
        (fun v ->
          Printf.sprintf "#%d %s/%s: %s" r.index
            (Site.family_name r.family)
            (Injector.name r.kind) v)
        r.violations)
    report.records

let ok report = List.for_all (fun r -> r.violations = []) report.records

let distinct of_record report =
  List.sort_uniq compare (List.map of_record report.records)

let families_covered report =
  List.length (distinct (fun r -> r.family) report)

let injectors_covered report = List.length (distinct (fun r -> r.kind) report)

let outcome_count report o =
  List.length (List.filter (fun r -> r.observed = o) report.records)

let pp ppf report =
  let open Format in
  fprintf ppf "disaster campaign: seed=%d count=%d@," report.seed report.count;
  fprintf ppf "  coverage: %d/%d families, %d/%d injectors@,"
    (families_covered report)
    (List.length Site.all_families)
    (injectors_covered report)
    (List.length Injector.all);
  fprintf ppf "  outcomes: %d rejected at load, %d contained, %d recovered@,"
    (outcome_count report Injector.Rejected)
    (outcome_count report Injector.Contained)
    (outcome_count report Injector.Recovered);
  match violations report with
  | [] -> fprintf ppf "  invariants: all hold@,"
  | vs ->
      fprintf ppf "  INVARIANT VIOLATIONS (%d):@," (List.length vs);
      List.iter (fun v -> fprintf ppf "    %s@," v) vs
