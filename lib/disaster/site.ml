(* A disaster site: one kernel with one graft-point family set up, plus the
   rig the injectors aim at (a lock, a resource limit, an undoable state
   cell, a non-callable function) and the probes the invariant checks read.

   Each campaign injection builds a *fresh* site, so no state leaks between
   injections and a same-seed re-run sees bit-identical initial conditions. *)

module Asm = Vino_vm.Asm
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock
module Rlimit = Vino_txn.Rlimit
module Tcosts = Vino_txn.Tcosts
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Cred = Vino_core.Cred
module Graft_point = Vino_core.Graft_point
module Event_point = Vino_core.Event_point
module Segalloc = Vino_core.Segalloc

type family = Fs_readahead | Vmem_evict | Sched_delegate | Stream_copy | Net_handler

let all_families =
  [ Fs_readahead; Vmem_evict; Sched_delegate; Stream_copy; Net_handler ]

let family_name = function
  | Fs_readahead -> "fs.read-ahead"
  | Vmem_evict -> "vmem.evict"
  | Sched_delegate -> "sched.delegate"
  | Stream_copy -> "stream.copy"
  | Net_handler -> "net.handler"

type t = {
  family : family;
  kernel : Kernel.t;
  cred : Cred.t;
  rig : Injector.rig;
  rig_lock : Lock.t;
  state_cell : int ref;
  state_initial : int;
  locks : (string * Lock.t) list;  (** every lock the family can leak *)
  daemons : string list;  (** processes allowed to idle blocked *)
  healthy : Asm.item list;
  install : Vino_misfit.Image.t -> (unit, string) result;
  grafted : unit -> bool;
  force_remove : unit -> unit;
  drive : unit -> unit;  (** queue the family workload (before [run]) *)
  drive_once : unit -> unit;  (** a single graft-consulting operation *)
  check_default : unit -> (unit, string) result;
      (** after removal: the point must serve the default path correctly
          (runs the engine itself) *)
  baseline_used_words : int;  (** segment allocation before any graft *)
}

(* Small memory, fast tick: lock time-outs land on 50 us boundaries and a
   200k-cycle budget kills runaway grafts in simulated microseconds, so a
   hundred-injection campaign stays cheap. *)
let mem_words = 1 lsl 16
let tick_cycles = 6_000 (* 50 us *)
let graft_budget = 200_000
let rig_lock_timeout = 12_000 (* 100 us, ~2 ticks *)

let fresh_kernel () = Kernel.create ~mem_words ~tick:tick_cycles ()

(* The rig every site exposes. Registered on the site's own kernel. *)
let register_rig kernel =
  let state_cell = ref 0 in
  let rig_lock =
    Kernel.make_lock kernel ~timeout:rig_lock_timeout ~name:"disaster-rig" ()
  in
  let reg name ?callable impl =
    Kernel.register_kcall kernel ~name ?callable impl
  in
  let in_txn ctx f =
    match ctx.Kcall.txn with
    | None -> Kcall.abort "disaster rig: no current transaction"
    | Some txn -> f txn
  in
  let (_ : Kcall.fn) =
    reg "disaster.lock" (fun ctx ->
        in_txn ctx (fun txn ->
            match Txn.acquire_lock txn rig_lock Exclusive with
            | Ok () -> Kcall.ok
            | Error reason -> Kcall.abort reason))
  in
  let (_ : Kcall.fn) =
    reg "disaster.alloc" (fun ctx ->
        let words = Kcall.arg ctx.Kcall.cpu 0 in
        match Rlimit.request ctx.Kcall.limits Memory_words words with
        | Ok () -> Kcall.ok
        | Error `Denied ->
            Kcall.abort
              (Printf.sprintf "resource limit: %d words denied" words))
  in
  let (_ : Kcall.fn) =
    reg "disaster.state-add" (fun ctx ->
        in_txn ctx (fun txn ->
            let d = Kcall.arg ctx.Kcall.cpu 0 in
            state_cell := !state_cell + d;
            Txn.push_undo txn ~label:"disaster.state-add" (fun () ->
                state_cell := !state_cell - d);
            Kcall.ok))
  in
  let (_ : Kcall.fn) =
    reg "disaster.bad-undo" (fun ctx ->
        in_txn ctx (fun txn ->
            Txn.push_undo txn ~label:"disaster.bad-undo" (fun () ->
                failwith "disaster.bad-undo: undo entry raises");
            Kcall.ok))
  in
  let (_ : Kcall.fn) =
    reg "disaster.nest" (fun ctx ->
        in_txn ctx (fun parent ->
            (* Mutate the cell and take the rig lock under a *child*
               transaction, then commit it: both the undo entry and the
               lock merge into the graft's transaction. A fault after this
               call exercises merged-state recovery (and, with a contender,
               the re-pointed lock owner). *)
            let child =
              Txn.begin_ kernel.Kernel.txn_mgr ~parent ~name:"disaster-nest" ()
            in
            state_cell := !state_cell + 100;
            Txn.push_undo child ~label:"disaster.nest-add" (fun () ->
                state_cell := !state_cell - 100);
            match Txn.acquire_lock child rig_lock Exclusive with
            | Ok () -> (
                match Txn.commit child with
                | Ok () -> Kcall.ok
                | Error reason -> Kcall.abort reason)
            | Error reason ->
                Txn.abort child ~reason;
                Kcall.abort reason))
  in
  let secret =
    reg "disaster.secret" ~callable:false (fun _ctx -> Kcall.ok)
  in
  (* the undoable state cell is trial-mutable: enroll it so a forked trial
     starts from the same value a fresh site would *)
  Kernel.on_snapshot kernel (fun () ->
      let v = !state_cell in
      fun () -> state_cell := v);
  let rig =
    {
      Injector.lock_kcall = "disaster.lock";
      alloc_kcall = "disaster.alloc";
      state_kcall = "disaster.state-add";
      bad_undo_kcall = "disaster.bad-undo";
      nest_kcall = "disaster.nest";
      secret_id = secret.Kcall.id;
      kernel_words = mem_words;
    }
  in
  (rig, rig_lock, state_cell)

(* An innocent competing transaction: takes the rig lock, holds it briefly,
   commits. Against a lock-hogging graft this is the waiter whose time-out
   asks the hog's transaction to abort. *)
let spawn_contender site ~delay =
  let kernel = site.kernel in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"contender" (fun () ->
         Engine.delay delay;
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"contender" () in
         match Txn.acquire_lock txn site.rig_lock Exclusive with
         | Ok () ->
             Engine.delay 1_500;
             ignore (Txn.commit txn)
         | Error reason -> Txn.abort txn ~reason))

(* Generic post-recovery default-path check for function graft points: the
   ungrafted point must produce exactly what the default implementation
   produces. *)
let graft_default_check kernel ~cred ~point ~mk_req () =
  if Graft_point.grafted point then
    Error
      (Printf.sprintf "%s: graft still installed after forcible removal"
         (Graft_point.name point))
  else begin
    let outcome = ref (Error "default-path check did not run") in
    ignore
      (Engine.spawn kernel.Kernel.engine ~name:"default-check" (fun () ->
           let req = mk_req () in
           let got = Graft_point.invoke point kernel ~cred req in
           let want = Graft_point.default_fn point req in
           outcome :=
             (if got = want then Ok ()
              else
                Error
                  (Graft_point.name point
                 ^ ": default path no longer produces the default result"))));
    Kernel.run kernel;
    !outcome
  end

let point_install point kernel ~cred ~shared_words ~heap_words image =
  Graft_point.replace point kernel ~cred ~shared_words ~heap_words image

let baseline kernel = Segalloc.used_words kernel.Kernel.segalloc

(* ------------------------- fs: read-ahead ----------------------------- *)

let fs_site () =
  let kernel = fresh_kernel () in
  let rig, rig_lock, state_cell = register_rig kernel in
  let cred = Cred.user "disaster-app" ~limits:(Rlimit.unlimited ()) in
  let disk = Vino_fs.Disk.create kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:64 () in
  let blocks = 256 in
  let file =
    Vino_fs.File.openf ~kernel ~cache ~disk ~name:"disaster.db" ~first_block:0
      ~blocks ~ra_budget:graft_budget ()
  in
  let point = Vino_fs.File.ra_point file in
  let workload reads =
    ignore
      (Engine.spawn kernel.Kernel.engine ~name:"fs-workload" (fun () ->
           List.iter
             (fun block ->
               Vino_fs.Readahead.announce kernel point ((block + 1) mod blocks);
               ignore (Vino_fs.File.read file ~cred ~block))
             reads))
  in
  {
    family = Fs_readahead;
    kernel;
    cred;
    rig;
    rig_lock;
    state_cell;
    state_initial = 0;
    locks =
      [ ("rig", rig_lock); ("pattern-buffer", Vino_fs.File.ra_lock file) ];
    daemons = [ "disk"; "prefetchd" ];
    healthy =
      Vino_fs.Readahead.app_directed_source
        ~lock_kcall:(Vino_fs.File.ra_lock_name file);
    install =
      point_install point kernel ~cred ~shared_words:16 ~heap_words:64;
    grafted = (fun () -> Graft_point.grafted point);
    force_remove =
      (fun () ->
        if Graft_point.grafted point then Graft_point.remove point kernel;
        (* any pinned attested graph belonged to the removed graft;
           enforcement stays on against the defaults' own tables *)
        kernel.Kernel.flow_pin <- None);
    drive = (fun () -> workload [ 5; 17; 18; 90; 91; 92 ]);
    drive_once = (fun () -> workload [ 33 ]);
    check_default =
      graft_default_check kernel ~cred ~point ~mk_req:(fun () ->
          {
            Vino_fs.File.offset_block = 30;
            size_blocks = 1;
            last_block = 29;
            file_blocks = blocks;
          });
    baseline_used_words = baseline kernel;
  }

(* ------------------------- vmem: eviction ----------------------------- *)

let vmem_site () =
  let kernel = fresh_kernel () in
  let rig, rig_lock, state_cell = register_rig kernel in
  let cred = Cred.user "disaster-app" ~limits:(Rlimit.unlimited ()) in
  let frames = 24 in
  let table = Vino_vmem.Frame.create_table ~frames in
  let evictor = Vino_vmem.Evict.create kernel ~frames:table () in
  let vas =
    Vino_vmem.Vas.create kernel ~evict_budget:graft_budget ~name:"disaster-vas"
      ()
  in
  Vino_vmem.Evict.register_vas evictor vas;
  let point = Vino_vmem.Vas.evict_point vas in
  let touch_range lo hi =
    for vpage = lo to hi do
      ignore (Vino_vmem.Evict.touch evictor vas ~vpage)
    done
  in
  {
    family = Vmem_evict;
    kernel;
    cred;
    rig;
    rig_lock;
    state_cell;
    state_initial = 0;
    locks = [ ("rig", rig_lock); ("hot-pages", Vino_vmem.Vas.hot_lock vas) ];
    daemons = [];
    healthy =
      Vino_vmem.Grafts.protect_hot_pages_source
        ~lock_kcall:(Vino_vmem.Vas.lock_name vas) ();
    install =
      point_install point kernel ~cred ~shared_words:64 ~heap_words:256;
    grafted = (fun () -> Graft_point.grafted point);
    force_remove =
      (fun () ->
        if Graft_point.grafted point then Graft_point.remove point kernel;
        (* any pinned attested graph belonged to the removed graft;
           enforcement stays on against the defaults' own tables *)
        kernel.Kernel.flow_pin <- None);
    drive =
      (fun () ->
        ignore
          (Engine.spawn kernel.Kernel.engine ~name:"vmem-workload" (fun () ->
               (* Fill every frame, declare a working set, then fault in
                  more pages than fit: each fault consults the graft. *)
               touch_range 0 (frames - 1);
               Vino_vmem.Vas.protect_pages kernel vas [ 0; 1; 2 ];
               touch_range frames (frames + 8))));
    drive_once =
      (fun () ->
        ignore
          (Engine.spawn kernel.Kernel.engine ~name:"vmem-once" (fun () ->
               ignore (Vino_vmem.Evict.select_replacement evictor ~cred))));
    check_default =
      graft_default_check kernel ~cred ~point ~mk_req:(fun () ->
          { Vino_vmem.Vas.victim = 3; candidates = [ 4; 5; 6 ] });
    baseline_used_words = baseline kernel;
  }

(* ------------------------ sched: delegation --------------------------- *)

let sched_site () =
  let kernel = fresh_kernel () in
  let rig, rig_lock, state_cell = register_rig kernel in
  let cred = Cred.user "disaster-app" ~limits:(Rlimit.unlimited ()) in
  let runq =
    Vino_sched.Runq.create kernel ~delegate_budget:graft_budget ()
  in
  let a = Vino_sched.Runq.spawn_task runq ~name:"disaster-a" in
  let b = Vino_sched.Runq.spawn_task runq ~name:"disaster-b" in
  Vino_sched.Runq.join_group runq a ~group:1;
  Vino_sched.Runq.join_group runq b ~group:1;
  let point = Vino_sched.Runq.delegate_point a in
  let schedule_n n =
    ignore
      (Engine.spawn kernel.Kernel.engine ~name:"sched-workload" (fun () ->
           for _ = 1 to n do
             ignore (Vino_sched.Runq.schedule runq ~cred)
           done))
  in
  {
    family = Sched_delegate;
    kernel;
    cred;
    rig;
    rig_lock;
    state_cell;
    state_initial = 0;
    locks =
      [ ("rig", rig_lock); ("proclist", Vino_sched.Runq.proclist_lock runq) ];
    daemons = [];
    healthy =
      Vino_sched.Grafts.handoff_source ~target:(Vino_sched.Runq.task_id b);
    install = point_install point kernel ~cred ~shared_words:4 ~heap_words:32;
    grafted = (fun () -> Graft_point.grafted point);
    force_remove =
      (fun () ->
        if Graft_point.grafted point then Graft_point.remove point kernel;
        (* any pinned attested graph belonged to the removed graft;
           enforcement stays on against the defaults' own tables *)
        kernel.Kernel.flow_pin <- None);
    drive = (fun () -> schedule_n 8);
    drive_once = (fun () -> schedule_n 2);
    check_default =
      graft_default_check kernel ~cred ~point ~mk_req:(fun () ->
          {
            Vino_sched.Runq.self = Vino_sched.Runq.task_id a;
            runnable =
              [ Vino_sched.Runq.task_id a; Vino_sched.Runq.task_id b ];
          });
    baseline_used_words = baseline kernel;
  }

(* ------------------------- stream: transfer --------------------------- *)

let stream_site () =
  let kernel = fresh_kernel () in
  let rig, rig_lock, state_cell = register_rig kernel in
  let cred = Cred.user "disaster-app" ~limits:(Rlimit.unlimited ()) in
  let channel =
    Vino_stream.Channel.create kernel ~name:"disaster-chan" ~buffer_words:64
      ~budget:graft_budget ()
  in
  let point = Vino_stream.Channel.point channel in
  let data = Array.init 48 (fun k -> (7 * k) + 1) in
  let transfer_n n =
    ignore
      (Engine.spawn kernel.Kernel.engine ~name:"stream-workload" (fun () ->
           for _ = 1 to n do
             ignore (Vino_stream.Channel.transfer channel ~cred data)
           done))
  in
  {
    family = Stream_copy;
    kernel;
    cred;
    rig;
    rig_lock;
    state_cell;
    state_initial = 0;
    locks = [ ("rig", rig_lock) ];
    daemons = [];
    healthy = Vino_stream.Grafts.xor_encrypt_source ~key:0x5C;
    install = (fun image -> Vino_stream.Channel.install channel ~cred image);
    grafted = (fun () -> Vino_stream.Channel.grafted channel);
    force_remove =
      (fun () ->
        if Graft_point.grafted point then Graft_point.remove point kernel;
        kernel.Kernel.flow_pin <- None);
    drive = (fun () -> transfer_n 3);
    drive_once = (fun () -> transfer_n 1);
    check_default =
      graft_default_check kernel ~cred ~point
        ~mk_req:(fun () -> Array.copy data);
    baseline_used_words = baseline kernel;
  }

(* ------------------------- net: http handler -------------------------- *)

let net_site () =
  let kernel = fresh_kernel () in
  let rig, rig_lock, state_cell = register_rig kernel in
  let cred = Cred.user "disaster-app" ~limits:(Rlimit.unlimited ()) in
  let httpd = Vino_net.Httpd.create kernel ~budget:graft_budget () in
  Vino_net.Httpd.add_document httpd ~path:42 ~size:1234;
  let point = Vino_net.Port.event_point (Vino_net.Httpd.port httpd) in
  let handler_id = ref None in
  Kernel.on_snapshot kernel (fun () ->
      let v = !handler_id in
      fun () -> handler_id := v);
  let get_n n =
    for _ = 1 to n do
      Vino_net.Httpd.get httpd ~path:42
    done
  in
  {
    family = Net_handler;
    kernel;
    cred;
    rig;
    rig_lock;
    state_cell;
    state_initial = 0;
    locks = [ ("rig", rig_lock) ];
    daemons = [];
    healthy = Vino_net.Httpd.server_source;
    install =
      (fun image ->
        match Event_point.add_handler point kernel ~cred image with
        | Ok id ->
            handler_id := Some id;
            Ok ()
        | Error e -> Error e);
    grafted = (fun () -> Event_point.handler_count point > 0);
    force_remove =
      (fun () ->
        (match !handler_id with
        | Some id when Event_point.handler_count point > 0 ->
            Event_point.remove_handler point kernel id
        | _ -> ());
        kernel.Kernel.flow_pin <- None);
    drive = (fun () -> get_n 3);
    drive_once = (fun () -> get_n 1);
    check_default =
      (fun () ->
        (* An event point has no default implementation; "the default path
           resumed" means the port serves a *fresh, healthy* handler
           correctly after the disaster. *)
        if Event_point.handler_count point > 0 then
          Error "net.handler: faulty handler still installed after removal"
        else
          let before = List.length (Vino_net.Httpd.responses httpd) in
          match Vino_net.Httpd.install httpd ~cred with
          | Error e -> Error ("net.handler: healthy re-install failed: " ^ e)
          | Ok id -> (
              Vino_net.Httpd.get httpd ~path:42;
              Kernel.run kernel;
              let after = Vino_net.Httpd.responses httpd in
              Event_point.remove_handler point kernel id;
              match List.filteri (fun k _ -> k >= before) after with
              | [ (200, 1234) ] -> Ok ()
              | _ -> Error "net.handler: healthy handler did not serve a 200"));
    baseline_used_words = baseline kernel;
  }

let create = function
  | Fs_readahead -> fs_site ()
  | Vmem_evict -> vmem_site ()
  | Sched_delegate -> sched_site ()
  | Stream_copy -> stream_site ()
  | Net_handler -> net_site ()

(* Pin the witness protocol's kcall-flow table and turn enforcement on:
   from here on, the kernel believes every graft's call-flow graph is the
   witness's (an attested compile-time graph), so a variant making the same
   kcalls in a different order trips the transition check at dispatch. *)
let pin_flow_witness (site : t) witness =
  match Asm.assemble witness with
  | Error e -> failwith ("flow witness assemble: " ^ e)
  | Ok obj -> (
      match Vino_core.Linker.flow_of_obj site.kernel obj with
      | Error e -> failwith ("flow witness link: " ^ e)
      | Ok table ->
          site.kernel.Kernel.flow_enforce <- true;
          site.kernel.Kernel.flow_pin <- Some table)
