type fault =
  | Memory_fault of { addr : int; write : bool }
  | Division_by_zero
  | Bad_pc of int
  | Bad_call_target of int
  | Bad_kcall of int
  | Call_stack_overflow
  | Call_stack_underflow

type outcome = Halted | Faulted of fault | Out_of_fuel | Aborted of string

type t = {
  regs : int array;
  mem : Mem.t;
  seg : Mem.segment;
  costs : Costs.t;
  checked : bool;
  check_access_cost : int;
  mutable fuel : int;
  mutable pc : int;
  mutable cycles : int;
  mutable callstack : int array;
  mutable depth : int;
  mutable insns : int;
  mutable accesses : int;
  mutable sandbox_cy : int;
  mutable checkcall_cy : int;
}

type kstatus = K_ok | K_abort of string | K_fault of fault

type env = {
  kcall : int -> t -> kstatus;
  call_ok : int -> bool;
  poll : unit -> string option;
}

let env_trusted =
  {
    kcall = (fun id _ -> K_fault (Bad_kcall id));
    call_ok = (fun _ -> true);
    poll = (fun () -> None);
  }

let max_call_depth = 4096

let default_check_access_cost = 20

let make ~mem ~seg ?(costs = Costs.default) ?(checked = false)
    ?(check_access_cost = default_check_access_cost) ?(fuel = max_int) () =
  let t =
    {
      regs = Array.make Insn.num_regs 0;
      mem;
      seg;
      costs;
      checked;
      check_access_cost;
      fuel;
      pc = 0;
      cycles = 0;
      callstack = [||];
      depth = 0;
      insns = 0;
      accesses = 0;
      sandbox_cy = 0;
      checkcall_cy = 0;
    }
  in
  t.regs.(Insn.sp) <- seg.Mem.base + seg.Mem.size;
  t

(* Rewind to the state [make] would produce, without allocating: the
   invoke hot path recycles one cpu per (graft, path) instead of churning
   a fresh record + register file per invocation. *)
let reset ?(fuel = max_int) t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.regs.(Insn.sp) <- t.seg.Mem.base + t.seg.Mem.size;
  t.fuel <- fuel;
  t.pc <- 0;
  t.cycles <- 0;
  t.depth <- 0;
  t.insns <- 0;
  t.accesses <- 0;
  t.sandbox_cy <- 0;
  t.checkcall_cy <- 0

let reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- v
let cycles t = t.cycles
let charge t n = t.cycles <- t.cycles + n
let insns_executed t = t.insns
let refuel t extra = t.fuel <- t.cycles + extra
let fuel_left t = max 0 (t.fuel - t.cycles)
let mem_accesses t = t.accesses
let sandbox_cycles t = t.sandbox_cy
let checkcall_cycles t = t.checkcall_cy
let mem t = t.mem
let segment t = t.seg

(* Internal control signal for one instruction step. *)
type step = Next | Goto of int | Stop of outcome

exception Fault_exn of fault

(* The call stack is a preallocated int array indexed by [depth] — an
   [int list] would cons one cell per [Call], which the zero-allocation
   invoke path (bench/wall.ml --check) forbids. The array grows by
   doubling on first use and is retained across [reset], so after warmup
   pushes never allocate; entries above [depth] are stale garbage. *)
let push_call t ret =
  if t.depth >= max_call_depth then raise (Fault_exn Call_stack_overflow);
  if t.depth >= Array.length t.callstack then begin
    let grown = Array.make (max 16 (2 * Array.length t.callstack)) 0 in
    Array.blit t.callstack 0 grown 0 t.depth;
    t.callstack <- grown
  end;
  t.callstack.(t.depth) <- ret;
  t.depth <- t.depth + 1

(* Top-of-stack-first, matching what the old list representation held. *)
let call_stack t = List.init t.depth (fun i -> t.callstack.(t.depth - 1 - i))

(* In checked mode every access is bounds-checked against the segment by
   the execution environment itself — the "interpreted extension" model of
   the paper's related work — at a per-access interpretation cost. *)
let guard t ~write addr =
  if t.checked then begin
    t.cycles <- t.cycles + t.check_access_cost;
    if not (Mem.in_segment t.seg addr) then
      raise (Fault_exn (Memory_fault { addr; write }))
  end;
  addr

let step env t (i : Insn.t) : step =
  let r = t.regs in
  match i with
  | Li (rd, v) ->
      r.(rd) <- v;
      Next
  | Mov (rd, rs) ->
      r.(rd) <- r.(rs);
      Next
  | Alu (op, rd, ra, rb) ->
      let v =
        try Insn.eval_alu op r.(ra) r.(rb)
        with Division_by_zero -> raise (Fault_exn Division_by_zero)
      in
      r.(rd) <- v;
      Next
  | Alui (op, rd, ra, imm) ->
      let v =
        try Insn.eval_alu op r.(ra) imm
        with Division_by_zero -> raise (Fault_exn Division_by_zero)
      in
      r.(rd) <- v;
      Next
  | Ld (rd, rb, off) ->
      t.accesses <- t.accesses + 1;
      r.(rd) <- Mem.load t.mem (guard t ~write:false (r.(rb) + off));
      Next
  | St (rv, rb, off) ->
      t.accesses <- t.accesses + 1;
      Mem.store t.mem (guard t ~write:true (r.(rb) + off)) r.(rv);
      Next
  | Br (c, ra, rb, target) ->
      if Insn.eval_cond c r.(ra) r.(rb) then Goto target else Next
  | Jmp target -> Goto target
  | Call target ->
      push_call t (t.pc + 1);
      Goto target
  | Callr rr ->
      push_call t (t.pc + 1);
      Goto r.(rr)
  | Ret ->
      if t.depth = 0 then Stop Halted
        (* top-level return: graft entry completed *)
      else begin
        t.depth <- t.depth - 1;
        Goto t.callstack.(t.depth)
      end
  | Kcall id -> (
      match env.kcall id t with
      | K_ok -> Next
      | K_abort reason -> Stop (Aborted reason)
      | K_fault f -> Stop (Faulted f))
  | Kcallr rr -> (
      match env.kcall r.(rr) t with
      | K_ok -> Next
      | K_abort reason -> Stop (Aborted reason)
      | K_fault f -> Stop (Faulted f))
  | Push rv ->
      t.accesses <- t.accesses + 1;
      r.(Insn.sp) <- r.(Insn.sp) - 1;
      Mem.store t.mem (guard t ~write:true r.(Insn.sp)) r.(rv);
      Next
  | Pop rd ->
      t.accesses <- t.accesses + 1;
      r.(rd) <- Mem.load t.mem (guard t ~write:false r.(Insn.sp));
      r.(Insn.sp) <- r.(Insn.sp) + 1;
      Next
  | Sandbox rr ->
      r.(rr) <- Mem.sandbox t.seg r.(rr);
      Next
  | Checkcall rr ->
      if env.call_ok r.(rr) then Next
      else raise (Fault_exn (Bad_call_target r.(rr)))
  | Halt -> Stop Halted

let run ?(poll_every = 32) env t prog =
  let len = Array.length prog in
  let rec loop since_poll =
    if t.cycles > t.fuel then Out_of_fuel
    else if since_poll >= poll_every then
      match env.poll () with
      | Some reason -> Aborted reason
      | None -> loop 0
    else if t.pc < 0 || t.pc >= len then Faulted (Bad_pc t.pc)
    else
      let i = prog.(t.pc) in
      t.insns <- t.insns + 1;
      let cost = Costs.insn t.costs i in
      t.cycles <- t.cycles + cost;
      (* split out the SFI overhead so the observability layer can
         attribute sandbox cycles within an invocation *)
      (match i with
      | Insn.Sandbox _ -> t.sandbox_cy <- t.sandbox_cy + cost
      | Insn.Checkcall _ -> t.checkcall_cy <- t.checkcall_cy + cost
      | _ -> ());
      match step env t i with
      | Next ->
          t.pc <- t.pc + 1;
          loop (since_poll + 1)
      | Goto target ->
          t.pc <- target;
          loop (since_poll + 1)
      | Stop o -> o
      | exception Fault_exn f -> Faulted f
      | exception Mem.Fault { addr; write } ->
          Faulted (Memory_fault { addr; write })
  in
  loop 0

let pp_fault ppf = function
  | Memory_fault { addr; write } ->
      Format.fprintf ppf "memory fault (%s addr %d)"
        (if write then "store to" else "load from")
        addr
  | Division_by_zero -> Format.fprintf ppf "division by zero"
  | Bad_pc pc -> Format.fprintf ppf "control transfer outside program (%d)" pc
  | Bad_call_target id ->
      Format.fprintf ppf "indirect call to non-callable id %d" id
  | Bad_kcall id -> Format.fprintf ppf "kernel call to unknown id %d" id
  | Call_stack_overflow -> Format.fprintf ppf "call stack overflow"
  | Call_stack_underflow -> Format.fprintf ppf "call stack underflow"

let pp_outcome ppf = function
  | Halted -> Format.fprintf ppf "halted"
  | Faulted f -> Format.fprintf ppf "faulted: %a" pp_fault f
  | Out_of_fuel -> Format.fprintf ppf "out of fuel"
  | Aborted reason -> Format.fprintf ppf "aborted: %s" reason
