type t = {
  alu : int;
  li : int;
  mov : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
  call : int;
  ret : int;
  kcall : int;
  push : int;
  pop : int;
  sandbox : int;
  checkcall : int;
  halt : int;
  flow_check : int;
}

let default =
  {
    alu = 1;
    li = 1;
    mov = 1;
    load = 2;
    store = 2;
    branch = 2;
    jump = 1;
    call = 35;
    ret = 5;
    kcall = 60;
    push = 2;
    pop = 2;
    sandbox = 4;
    checkcall = 12;
    halt = 1;
    flow_check = 3;
  }

let insn c : Insn.t -> int = function
  | Li _ -> c.li
  | Mov _ -> c.mov
  | Alu _ | Alui _ -> c.alu
  | Ld _ -> c.load
  | St _ -> c.store
  | Br _ -> c.branch
  | Jmp _ -> c.jump
  | Call _ | Callr _ -> c.call
  | Ret -> c.ret
  | Kcall _ | Kcallr _ -> c.kcall
  | Push _ -> c.push
  | Pop _ -> c.pop
  | Sandbox _ -> c.sandbox
  | Checkcall _ -> c.checkcall
  | Halt -> c.halt

let mhz = 120.
let us_of_cycles cy = float_of_int cy /. mhz
(* Round to nearest: truncation loses a cycle whenever [us *. mhz] lands
   just below an integer, breaking the [cycles_of_us (us_of_cycles n) = n]
   roundtrip the reports rely on. *)
let cycles_of_us us = int_of_float (Float.round (us *. mhz))
