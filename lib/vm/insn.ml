type reg = int

let num_regs = 16
let sp = 15
let scratch = 14

type cond = Eq | Ne | Lt | Le | Gt | Ge
type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type t =
  | Li of reg * int
  | Mov of reg * reg
  | Alu of alu * reg * reg * reg
  | Alui of alu * reg * reg * int
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Br of cond * reg * reg * int
  | Jmp of int
  | Call of int
  | Callr of reg
  | Ret
  | Kcall of int
  | Kcallr of reg
  | Push of reg
  | Pop of reg
  | Sandbox of reg
  | Checkcall of reg
  | Halt

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> a / b
  | Rem -> a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  (* OCaml's lsl/asr are unspecified outside [0, Sys.int_size]; the VM
     clamps so shifts are total and deterministic on every word size
     (the old [b land 63] mask was still unspecified on 32-bit hosts) *)
  | Shl -> if b < 0 then a else if b >= Sys.int_size then 0 else a lsl b
  | Shr ->
      if b < 0 then a
      else if b >= Sys.int_size then if a < 0 then -1 else 0
      else a asr b

let is_memory_access = function
  | Ld _ | St _ | Push _ | Pop _ -> true
  | Li _ | Mov _ | Alu _ | Alui _ | Br _ | Jmp _ | Call _ | Callr _ | Ret
  | Kcall _ | Kcallr _ | Sandbox _ | Checkcall _ | Halt ->
      false

let map_targets f = function
  | Br (c, a, b, t) -> Br (c, a, b, f t)
  | Jmp t -> Jmp (f t)
  | Call t -> Call (f t)
  | ( Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Callr _ | Ret | Kcall _
    | Kcallr _ | Push _ | Pop _ | Sandbox _ | Checkcall _ | Halt ) as i ->
      i

let registers_used = function
  | Li (r, _) -> [ r ]
  | Mov (a, b) -> [ a; b ]
  | Alu (_, a, b, c) -> [ a; b; c ]
  | Alui (_, a, b, _) -> [ a; b ]
  | Ld (a, b, _) -> [ a; b ]
  | St (a, b, _) -> [ a; b ]
  | Br (_, a, b, _) -> [ a; b ]
  | Jmp _ | Call _ | Kcall _ | Ret | Halt -> []
  | Callr r | Kcallr r | Push r | Pop r | Sandbox r | Checkcall r -> [ r ]

let validate ~program_length i =
  let bad_reg = List.exists (fun r -> r < 0 || r >= num_regs) in
  let target_of = function
    | Br (_, _, _, t) | Jmp t | Call t -> Some t
    | Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Callr _ | Ret | Kcall _
    | Kcallr _ | Push _ | Pop _ | Sandbox _ | Checkcall _ | Halt ->
        None
  in
  if bad_reg (registers_used i) then Error "register number out of range"
  else
    match target_of i with
    | Some t when t < 0 || t >= program_length ->
        Error (Printf.sprintf "control-flow target %d out of program" t)
    | Some _ | None -> Ok ()

let string_of_cond = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let string_of_alu = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let pp ppf i =
  let f fmt = Format.fprintf ppf fmt in
  match i with
  | Li (r, v) -> f "li    r%d, %d" r v
  | Mov (a, b) -> f "mov   r%d, r%d" a b
  | Alu (op, d, a, b) -> f "%-5s r%d, r%d, r%d" (string_of_alu op) d a b
  | Alui (op, d, a, v) -> f "%-4si r%d, r%d, %d" (string_of_alu op) d a v
  | Ld (d, b, o) -> f "ld    r%d, %d(r%d)" d o b
  | St (v, b, o) -> f "st    r%d, %d(r%d)" v o b
  | Br (c, a, b, t) -> f "b%s   r%d, r%d, @%d" (string_of_cond c) a b t
  | Jmp t -> f "jmp   @%d" t
  | Call t -> f "call  @%d" t
  | Callr r -> f "callr r%d" r
  | Ret -> f "ret"
  | Kcall id -> f "kcall #%d" id
  | Kcallr r -> f "kcallr r%d" r
  | Push r -> f "push  r%d" r
  | Pop r -> f "pop   r%d" r
  | Sandbox r -> f "sfi.sandbox r%d" r
  | Checkcall r -> f "sfi.checkcall r%d" r
  | Halt -> f "halt"

let pp_program ppf prog =
  Array.iteri (fun k i -> Format.fprintf ppf "%4d: %a@." k pp i) prog
