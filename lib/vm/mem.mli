(** Word-addressed simulated physical memory and graft segments.

    The kernel owns one flat memory; every loaded graft is assigned a
    power-of-two sized {!segment} of it (its heap, stack and any shared
    buffers the kernel maps in). MiSFIT's [Sandbox] instruction forces an
    address into the segment with one mask and one or — the classic
    Wahbe-style sandboxing the paper uses — so a rewritten graft can fault
    on neither loads nor stores outside its segment. *)

type t

type segment = { base : int; size : int }
(** [size] must be a power of two and [base] a multiple of [size], so that
    [base lor (addr land (size-1))] always lands inside the segment. *)

exception Fault of { addr : int; write : bool }
(** Raised on an out-of-memory-bounds access (an un-sandboxed wild access). *)

val create : int -> t
(** [create words] allocates a zeroed memory of [words] words. *)

val size : t -> int
val load : t -> int -> int
val store : t -> int -> int -> unit

val unsafe_load : t -> int -> int
val unsafe_store : t -> int -> int -> unit
(** Unchecked accesses for callers that can prove the address in bounds.
    {!Jit} uses them for sandboxed accesses after validating once per run
    that the segment lies inside memory: [sandbox] confines the address
    to the segment, so the bounds proof is structural, not trusted. *)

val segment : base:int -> size:int -> segment
(** @raise Invalid_argument if the alignment/power-of-two invariant fails. *)

val in_segment : segment -> int -> bool

val sandbox : segment -> int -> int
(** [sandbox seg addr] is [seg.base lor (addr land (seg.size - 1))]: the
    address a MiSFIT-rewritten access actually uses. *)

val blit_in : t -> int -> int array -> unit
(** [blit_in mem addr src] copies [src] into memory starting at [addr].
    Atomic: the whole range is validated before any word is written, so a
    faulting blit leaves memory untouched. *)

val blit_out : t -> int -> int -> int array
(** [blit_out mem addr len] copies [len] words starting at [addr]. The
    range is validated up front. *)

val fill : t -> int -> int -> int -> unit
(** [fill mem addr len v] stores [v] into [len] words from [addr].
    Atomic, like {!blit_in}. *)
