(** Closure-threaded translation of graft programs.

    {!Cpu.run} is a switch-dispatch interpreter: every instruction
    re-matches its constructor, re-looks-up its cycle cost and re-checks
    fuel and the abort poll. [translate] does all of that once, at link
    time: the program is decomposed into basic blocks, each instruction
    becomes a pre-resolved OCaml closure (direct threading), hot
    superinstruction pairs are fused, and the fuel/poll checks are hoisted
    to block boundaries.

    The translation is {b bit-identical} to the interpreter at every
    observable point: [cycles], [insns_executed], [mem_accesses],
    [sandbox_cycles], [checkcall_cycles], registers, memory, [pc], the
    call stack and the final {!Cpu.outcome} all match {!Cpu.run} exactly —
    including mid-slice [Out_of_fuel] (the wrapper refuels and resumes at
    an arbitrary program counter) and abort-poll delivery within
    [poll_every] instructions. A block executes on the fast path only when
    its statically-known cost provably cannot cross the fuel limit or a
    poll point; otherwise execution falls back to per-instruction slow
    closures with interpreter-exact semantics. See DESIGN.md §11 for the
    equivalence argument. *)

type t
(** A translated program. Immutable; safe to reuse across invocations and
    to cache per kernel keyed by graft signature. *)

type mode = Interp | Translated

val default_mode : mode ref
(** Execution mode newly created kernels pick up ([Translated] unless the
    CLI's [--mode interp] flag says otherwise). *)

val translate :
  ?costs:Costs.t -> ?safe:bool array -> ?xblock:bool -> Insn.t array -> t
(** Compile a validated program against a cost table. [costs] must equal
    the table the executing {!Cpu.t} was created with, or cycle accounting
    diverges from the interpreter.

    [xblock] (default [true]) widens superinstruction fusion across
    basic-block boundaries: a block that ends only because its successor
    is a branch target (an unconditional fallthrough into a join point)
    compiles through the join into one segment with a single tail
    fuel/poll check, capped at the poll interval. The join pc keeps its
    own tail for entries that arrive by branching, so every pc remains a
    valid entry point and the equivalence argument is unchanged.

    [safe] is a per-pc proof map (one entry per instruction): [true] at a
    [Ld]/[St] asserts a static verifier proved the access in-segment for
    the running configuration, so it can never fault. Such accesses are
    compiled as bare superinstructions — straight-line closures with no
    counter flush or pc store, like [Mov] — and fuse with a following
    non-faulting ALU op. Observable equivalence with the interpreter is
    preserved because a flush only becomes visible at a fault, kernel
    call, poll or block exit, and by assumption no elided access can
    fault. The caller is responsible for the map's soundness (the linker
    re-validates the proof's assumptions before passing it); a map whose
    length does not match the program is ignored. *)

val run : ?poll_every:int -> Cpu.env -> Cpu.t -> t -> Cpu.outcome
(** Drop-in replacement for [Cpu.run env cpu (source t)]. Starts from the
    cpu's current [pc] (0 on a fresh cpu; wherever the previous slice
    stopped after a refuel). Checked-mode cpus fall back to the
    interpreter: per-access bounds checking is the interpretation model
    the paper compares against, so translating it away would be
    measurement fraud. A cpu whose segment is malformed or not contained
    in its memory also falls back (the sandboxed-access
    superinstructions assume confinement; see DESIGN.md §16).

    Allocation-free in steady state on the translated path: the driver
    context is recycled through a per-domain pool, so a translated
    invocation that neither faults nor aborts performs zero minor-heap
    allocations (the [bench/wall.ml --check] allocation gate). *)

val source : t -> Insn.t array
(** The program the translation was built from. *)

(* Translation statistics, for [vino inspect]. *)

val block_count : t -> int
val fused_pairs : t -> int

val elided_accesses : t -> int
(** Accesses compiled bare (non-flushing) under a proof map. *)
