(** IR surgery over graft source.

    Fault injectors (and other source-to-source passes) derive variants of
    a graft by splicing instruction fragments into its [Asm.item] list.
    These combinators keep the result assemblable: every fragment label is
    renamed with a prefix proven fresh against the host source, so splicing
    never captures a branch or collides with an existing label. Fragments
    must be label-closed (branch only to labels they define). *)

val defined_labels : Asm.item list -> string list

val rename_labels : prefix:string -> Asm.item list -> Asm.item list
(** Prefix every [Label] definition and every [Br]/[Jmp]/[Call] target. *)

val fresh_prefix :
  ?base:string -> fragment:Asm.item list -> Asm.item list -> string
(** A prefix (["<base><k>_"], default base ["__mut"]) such that renaming
    [fragment] with it collides with none of [source]'s labels. *)

val splice_prelude :
  ?base:string -> prelude:Asm.item list -> Asm.item list -> Asm.item list
(** Run [prelude] before the graft's first instruction (label-renamed to
    freshness). The graft's own code is untouched, so if the prelude falls
    through, the original behaviour follows. *)

val before_returns :
  ?base:string -> payload:Asm.item list -> Asm.item list -> Asm.item list
(** Insert a fresh-labelled copy of [payload] before every [Ret] and
    [Halt], i.e. on every exit path. *)

val diverge : Asm.item list
(** A label-closed fragment that spins forever — splice it where execution
    must never come back (cycle-bound and time-out injections). *)
