(** Instruction set of the graft virtual machine.

    The graft VM is the stand-in for the paper's i386 target: grafts are
    expressed in this small RISC-like IR, the MiSFIT rewriter
    ({!Vino_misfit.Rewrite}) inserts [Sandbox] and [Checkcall] instructions
    into it, and {!Cpu} interprets it under a deterministic cycle-cost model.

    Memory is word addressed. Branch, jump and call targets are instruction
    indices into the program array (the symbolic assembler {!Asm} resolves
    labels to indices). *)

type reg = int
(** Register number, [0 <= r < num_regs]. By convention [r0] holds return
    values, [r1]..[r4] hold kernel-call arguments, {!sp} is the stack
    pointer and {!scratch} is reserved for MiSFIT-inserted sandboxing code
    (graft code must not use it; the rewriter rejects code that does). *)

val num_regs : int

val sp : reg
(** Stack-pointer register (r15). *)

val scratch : reg
(** Register reserved for SFI address sandboxing (r14). *)

type cond = Eq | Ne | Lt | Le | Gt | Ge

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type t =
  | Li of reg * int  (** [rd <- imm] *)
  | Mov of reg * reg  (** [rd <- rs] *)
  | Alu of alu * reg * reg * reg  (** [rd <- rs1 op rs2] *)
  | Alui of alu * reg * reg * int  (** [rd <- rs op imm] *)
  | Ld of reg * reg * int  (** [rd <- mem.(rs + off)] *)
  | St of reg * reg * int  (** [mem.(rb + off) <- rv]; [St (rv, rb, off)] *)
  | Br of cond * reg * reg * int  (** branch to index if [rs1 cond rs2] *)
  | Jmp of int
  | Call of int  (** intra-graft call; pushes return pc on the call stack *)
  | Callr of reg  (** indirect intra-graft call through a register *)
  | Ret
  | Kcall of int  (** direct call of the graft-callable kernel function [id] *)
  | Kcallr of reg  (** indirect kernel call; id taken from the register *)
  | Push of reg  (** [sp <- sp-1; mem.(sp) <- r] (lowered by the rewriter) *)
  | Pop of reg  (** [r <- mem.(sp); sp <- sp+1] (lowered by the rewriter) *)
  | Sandbox of reg  (** SFI: force the register into the graft segment *)
  | Checkcall of reg  (** SFI: abort unless the register holds a callable id *)
  | Halt

val eval_cond : cond -> int -> int -> bool

val eval_alu : alu -> int -> int -> int
(** Shift semantics are total and host-independent: a negative shift
    amount is a no-op, an amount of at least [Sys.int_size] saturates
    ([Shl] to 0, [Shr] to the sign word: -1 for negative operands, else
    0); in-range amounts are the native [lsl]/[asr].
    @raise Division_by_zero on [Div]/[Rem] with a zero divisor. *)

val is_memory_access : t -> bool
(** True for [Ld], [St], [Push] and [Pop]. *)

val map_targets : (int -> int) -> t -> t
(** Apply a function to every control-flow target (used by the rewriter to
    remap branch targets after instruction insertion). *)

val registers_used : t -> reg list
(** Every register the instruction reads or writes. *)

val validate : program_length:int -> t -> (unit, string) result
(** Check register numbers and static control-flow targets. *)

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> t array -> unit
