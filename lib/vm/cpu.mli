(** Interpreter for graft programs.

    The CPU executes one graft invocation at a time on behalf of a kernel
    thread. It charges virtual cycles per instruction ({!Costs}), enforces a
    fuel limit (the CPU quota the kernel grants the invocation), and polls an
    abort flag so that the transaction manager can asynchronously kill a
    misbehaving graft (paper §2.2: grafts must be preemptible). *)

type fault =
  | Memory_fault of { addr : int; write : bool }
      (** wild access outside physical memory (un-sandboxed code only) *)
  | Division_by_zero
  | Bad_pc of int  (** control transferred outside the program *)
  | Bad_call_target of int  (** [Checkcall] found a non-callable id *)
  | Bad_kcall of int  (** kernel dispatcher rejected the function id *)
  | Call_stack_overflow
  | Call_stack_underflow

type outcome =
  | Halted  (** normal completion; result in register 0 *)
  | Faulted of fault
  | Out_of_fuel  (** CPU quota exhausted *)
  | Aborted of string  (** asynchronous abort observed at a poll point *)

type t = {
  regs : int array;
  mem : Mem.t;
  seg : Mem.segment;
  costs : Costs.t;
  checked : bool;
  check_access_cost : int;
  mutable fuel : int;
  mutable pc : int;
  mutable cycles : int;
  mutable callstack : int array;
      (** Preallocated return-address stack; only the first [depth]
          entries are live. Push through {!push_call} — it grows the
          array and enforces {!max_call_depth}. *)
  mutable depth : int;
  mutable insns : int;
  mutable accesses : int;
  mutable sandbox_cy : int;
  mutable checkcall_cy : int;
}
(** Mutable per-invocation machine state. The record is concrete so that
    {!Jit} can compile closures that update it directly; everything else
    should go through the accessors below, which define the stable API. *)

type kstatus =
  | K_ok
  | K_abort of string  (** kernel function decided to abort the transaction *)
  | K_fault of fault

type env = {
  kcall : int -> t -> kstatus;  (** graft-callable function dispatcher *)
  call_ok : int -> bool;  (** runtime predicate behind [Checkcall] *)
  poll : unit -> string option;  (** asynchronous abort request, if any *)
}

val env_trusted : env
(** An environment with no kernel calls, permissive [Checkcall] and no abort
    source; used by unit tests and baseline measurements. *)

exception Fault_exn of fault
(** Raised internally by instruction implementations; {!run} (and
    {!Jit.run}) turn it into [Faulted]. Exposed so the translator can
    reproduce fault behaviour exactly. *)

val max_call_depth : int
val default_check_access_cost : int

val push_call : t -> int -> unit
(** Push a return address, growing the stack array if needed (amortised
    allocation-free: the array is retained across {!reset}).
    @raise Fault_exn on {!max_call_depth} overflow. *)

val call_stack : t -> int list
(** The live return addresses, most recent first. For tests and
    debugging; the hot path never materialises this list. *)

val make :
  mem:Mem.t ->
  seg:Mem.segment ->
  ?costs:Costs.t ->
  ?checked:bool ->
  ?check_access_cost:int ->
  ?fuel:int ->
  unit ->
  t
(** [fuel] is the cycle budget for the invocation (default: unlimited). The
    stack pointer starts at the top of the segment.

    [checked] selects the interpreted-extension execution model the paper's
    related work compares against (§5, [16]): the environment bounds-checks
    every access against the segment (faulting instead of sandboxing) and
    charges [check_access_cost] cycles per access — safety through
    interpretation, at interpretation prices. Off by default (MiSFIT-style
    protection is the paper's mechanism). *)

val reset : ?fuel:int -> t -> unit
(** Rewind to the state {!make} would produce (zeroed registers and
    counters, stack pointer at the top of the segment, pc 0) without
    allocating, so a hot loop can recycle one cpu across invocations.
    [fuel] defaults to unlimited, like {!make}. *)

val run : ?poll_every:int -> env -> t -> Insn.t array -> outcome
(** Execute from instruction 0 until an {!outcome} is reached. [poll_every]
    (default 32) is the instruction interval between abort-flag polls —
    the preemption granularity. *)

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit

val cycles : t -> int
(** Virtual cycles consumed so far by this invocation. *)

val charge : t -> int -> unit
(** Charge extra cycles (used by kernel functions invoked via [Kcall] to
    bill their own work against the graft invocation). *)

val refuel : t -> int -> unit
(** [refuel t n] grants [n] more cycles from the current consumption point;
    the invocation wrapper uses this to execute grafts in preemptible
    slices. *)

val fuel_left : t -> int

val insns_executed : t -> int
val mem_accesses : t -> int

val sandbox_cycles : t -> int
(** Cycles charged to [Sandbox] instructions so far — the part of
    {!cycles} that is MiSFIT address-sandboxing overhead. *)

val checkcall_cycles : t -> int
(** Cycles charged to [Checkcall] instructions so far. *)

val mem : t -> Mem.t
val segment : t -> Mem.segment
val pp_fault : Format.formatter -> fault -> unit
val pp_outcome : Format.formatter -> outcome -> unit
