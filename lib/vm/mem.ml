type t = { data : int array }
type segment = { base : int; size : int }

exception Fault of { addr : int; write : bool }

let create words =
  if words <= 0 then invalid_arg "Mem.create: size must be positive";
  { data = Array.make words 0 }

let size t = Array.length t.data

let load t addr =
  if addr < 0 || addr >= Array.length t.data then
    raise (Fault { addr; write = false })
  else t.data.(addr)

let store t addr v =
  if addr < 0 || addr >= Array.length t.data then
    raise (Fault { addr; write = true })
  else t.data.(addr) <- v

(* For callers that can prove the address in bounds — the JIT's
   confined sandboxed accesses, where [sandbox] plus a validated segment
   makes the bounds argument airtight. Not for code acting on behalf of
   an unproven graft address. *)
let unsafe_load t addr = Array.unsafe_get t.data addr
let unsafe_store t addr v = Array.unsafe_set t.data addr v

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let segment ~base ~size =
  if not (is_power_of_two size) then
    invalid_arg "Mem.segment: size must be a power of two";
  if base < 0 || base land (size - 1) <> 0 then
    invalid_arg "Mem.segment: base must be size-aligned";
  { base; size }

let in_segment seg addr = addr >= seg.base && addr < seg.base + seg.size
let sandbox seg addr = seg.base lor (addr land (seg.size - 1))

(* Validate a whole range up front so the bulk operations below are
   atomic: a faulting blit/fill must leave memory untouched, not mutate a
   prefix before hitting the out-of-range tail. The fault carries the
   first address the old word-at-a-time loop would have rejected. *)
let check_range t ~write addr len =
  if len > 0 then
    let size = Array.length t.data in
    if addr < 0 then raise (Fault { addr; write })
    else if addr + len > size then raise (Fault { addr = max addr size; write })

let blit_in t addr src =
  check_range t ~write:true addr (Array.length src);
  Array.iteri (fun k v -> t.data.(addr + k) <- v) src

let blit_out t addr len =
  check_range t ~write:false addr len;
  Array.init len (fun k -> t.data.(addr + k))

let fill t addr len v =
  check_range t ~write:true addr len;
  if len > 0 then Array.fill t.data addr len v
