(* IR surgery over graft source: splice fragments into an [Asm.item] list
   without capturing or colliding with its labels. The disaster rig uses
   this to derive misbehaving variants of healthy grafts; the combinators
   are generic so other passes can reuse them. *)

let defined_labels items =
  List.filter_map (function Asm.Label l -> Some l | _ -> None) items

let rename_labels ~prefix items =
  let map l = prefix ^ l in
  List.map
    (function
      | Asm.Label l -> Asm.Label (map l)
      | Asm.Br (c, a, b, l) -> Asm.Br (c, a, b, map l)
      | Asm.Jmp l -> Asm.Jmp (map l)
      | Asm.Call l -> Asm.Call (map l)
      | other -> other)
    items

(* A prefix such that no renamed fragment label collides with (or shadows)
   a label of [source]. *)
let fresh_prefix ?(base = "__mut") ~fragment source =
  let slabels = defined_labels source in
  let flabels = defined_labels fragment in
  let rec pick k =
    let prefix = Printf.sprintf "%s%d_" base k in
    if List.exists (fun l -> List.mem (prefix ^ l) slabels) flabels then
      pick (k + 1)
    else prefix
  in
  pick 0

let splice_prelude ?base ~prelude source =
  let prefix = fresh_prefix ?base ~fragment:prelude source in
  rename_labels ~prefix prelude @ source

let before_returns ?(base = "__mut") ~payload source =
  let n = ref 0 in
  List.concat_map
    (function
      | (Asm.Ret | Asm.Halt) as exit_item ->
          let prefix =
            fresh_prefix
              ~base:(Printf.sprintf "%s_r%d_" base !n)
              ~fragment:payload source
          in
          incr n;
          rename_labels ~prefix payload @ [ exit_item ]
      | other -> [ other ])
    source

let diverge = [ Asm.Label "spin"; Asm.Jmp "spin" ]
