(* Closure-threaded translation of graft programs.

   The interpreter ({!Cpu.run}) pays a constructor match, a cost-table
   lookup, a fuel check and a poll check on every instruction. Here all
   of that is done once, at translation time:

   - the program is split into basic blocks (leaders: pc 0, every
     branch/jump/call target, every instruction after a terminator);
   - each block's total cycle cost and instruction count are computed
     statically from the cost table;
   - every instruction is compiled to a pre-resolved closure; the block
     body is the chain of those closures (direct threading);
   - hot superinstruction pairs are fused ([Sandbox]+[Ld]/[St] — the
     MiSFIT access sequence — plus [Li]+[Alu(i)] and [Alu(i)]+[Br]);
   - the fuel and abort-poll checks run once per block, not once per
     instruction.

   Equivalence with the interpreter is maintained exactly; the argument
   (DESIGN.md §11) rests on two mechanisms:

   Fast-path entry conditions. A block body runs only when
   [cycles + cost <= fuel] (no intermediate instruction could have seen
   [cycles > fuel], because cycles grow monotonically by partial sums of
   [cost]) and [since_poll + len <= poll_every] (no intermediate
   instruction could have reached a poll point). Within the body,
   instructions that cannot fault or observe the machine accumulate
   their cycle/instruction counts statically; any instruction that can
   fault, stop, or hand the cpu to kernel code (memory access, Div/Rem,
   Checkcall, Kcall, every terminator) first flushes the accumulated
   counts and stores its own pc, so the architectural state at every
   observable point — fault, abort, kernel call — is exactly what the
   interpreter would expose.

   Careful path. When an entry condition fails, or when execution
   resumes mid-block (the wrapper refuels and re-enters at an arbitrary
   pc), the driver executes per-instruction slow closures with the
   interpreter's exact per-instruction semantics (and no fusion) until
   control reaches a block head again. The driver itself re-checks fuel,
   poll and pc bounds in the interpreter's order before every step. *)

type mode = Interp | Translated

let default_mode = ref Translated

type ctx = {
  (* [cpu]/[env] are mutable only so a finished run can park the context
     in a per-domain pool without retaining the machine it ran. *)
  mutable cpu : Cpu.t;
  mutable env : Cpu.env;
  (* Closures hand control back as a bare pc (no allocation on the hot
     transfer path); to finish instead, a closure calls {!finish}, which
     raises this flag and parks the outcome. The driver reads and the
     run entry resets them. *)
  mutable fin : bool;
  mutable out : Cpu.outcome;
  (* Blocks extend through a not-taken conditional branch; when a branch
     inside a body is taken, the body exits early and records here how
     many of the block's instructions it did NOT execute, so the driver
     can correct its poll-counter bookkeeping. Zero otherwise. *)
  mutable back : int;
}

let finish ctx o =
  ctx.fin <- true;
  ctx.out <- o;
  0

type t = {
  source : Insn.t array;
  nblocks : int;
  fused : int;
  elided : int;
  (* Accesses compiled as bare (non-flushing) superinstructions because a
     carried proof marks them unable to fault. *)
  (* Per-pc tails: [body_of_pc.(pc)] executes from [pc] to the end of
     its basic block, charging [cost_of_pc.(pc)] cycles over
     [len_of_pc.(pc)] instructions. Compiling every suffix (not just
     block heads) keeps execution on the fast path when a slice or an
     abort poll resumes mid-block. *)
  body_of_pc : (ctx -> int) array;
  cost_of_pc : int array;
  len_of_pc : int array;
  (* Power-of-two compiled prefixes of the same tails: [grade_body.(j)]
     holds the prefix of length [2^j] (when strictly shorter than the
     full tail), with its cost and length beside it (length 0 = absent).
     When the full tail cannot fit the remaining poll window or fuel,
     the driver takes the longest grade that fits; because every length
     down to one instruction is available, any remainder decomposes
     exactly into compiled segments — a loop out of phase with the poll
     grid never falls back to slow stepping, it just lands on the poll
     point through a couple of shorter compiled hops. *)
  grade_body : (ctx -> int) array array;
  grade_cost : int array array;
  grade_len : int array array;
  (* Unrolled self-loops: when the tail at [pc] ends with a [Jmp] back
     to a head [h <= pc] whose own tail is the full loop body (a
     straight-line loop), [exact_body.(pc).(room)] consumes the
     remaining poll window — all [room] instructions — in a single
     dispatch: it finishes the current pass, chains whole compiled
     copies of the body (each copy's final jump falls directly into the
     next copy's first closure), and ends with a compiled prefix of the
     next pass cut at exactly the window boundary. The pending
     cycle/insn/access counts thread across the copies, so the whole
     window flushes once, at its end. One driver dispatch per poll
     window, from any loop phase, with no division and no
     remainder hops. [exact_cost.(pc).(room)] is the cycle charge of
     that chain, checked against the fuel budget before dispatch (an
     under-fuelled window degrades to the graded path, which meters
     fuel per hop). A zero-length array marks a non-loop pc; an early
     exit reports its not-run remainder through [ctx.back] like any
     inline branch. *)
  exact_body : (ctx -> int) array array;
  exact_cost : int array array;
  slow : (ctx -> int) array;
}

let source t = t.source
let block_count t = t.nblocks
let fused_pairs t = t.fused
let elided_accesses t = t.elided

(* -------------------------------------------------------------------- *)
(* Pre-resolved operators                                                *)
(* -------------------------------------------------------------------- *)

let cond_fn : Insn.cond -> int -> int -> bool = function
  | Eq -> fun a b -> a = b
  | Ne -> fun a b -> a <> b
  | Lt -> fun a b -> a < b
  | Le -> fun a b -> a <= b
  | Gt -> fun a b -> a > b
  | Ge -> fun a b -> a >= b

(* Operators that cannot fault, encoded as small integers and evaluated
   by {!eval_opc}'s inline match inside closure bodies. The match
   compiles to a jump table whose target the branch predictor pins in a
   loop; calling a per-operator closure instead would spill the body's
   live registers around every call — measurably slower on the fused hot
   path. Shift clamping matches {!Insn.eval_alu} exactly. *)
let opcode : Insn.alu -> int option = function
  | Add -> Some 0
  | Sub -> Some 1
  | Mul -> Some 2
  | And -> Some 3
  | Or -> Some 4
  | Xor -> Some 5
  | Shl -> Some 6
  | Shr -> Some 7
  | Div | Rem -> None

let[@inline] eval_opc o a b =
  match o with
  | 0 -> a + b
  | 1 -> a - b
  | 2 -> a * b
  | 3 -> a land b
  | 4 -> a lor b
  | 5 -> a lxor b
  | 6 -> if b < 0 then a else if b >= Sys.int_size then 0 else a lsl b
  | _ ->
      if b < 0 then a
      else if b >= Sys.int_size then if a < 0 then -1 else 0
      else a asr b

(* Div/Rem share the interpreter's code path, fault mapping included. *)
let faulting_alu op a b =
  try Insn.eval_alu op a b
  with Division_by_zero -> raise (Cpu.Fault_exn Cpu.Division_by_zero)

(* Instructions that end a basic block. [Kcall]/[Kcallr] terminate
   because the kernel function receives the cpu: it may observe any
   counter, charge cycles or refuel, so state must be architecturally
   exact before dispatch and the driver's checks must rerun after. *)
let terminates : Insn.t -> bool = function
  | Br _ | Jmp _ | Call _ | Callr _ | Ret | Kcall _ | Kcallr _ | Halt -> true
  | Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Push _ | Pop _ | Sandbox _
  | Checkcall _ ->
      false

(* -------------------------------------------------------------------- *)
(* Fast path: block bodies                                               *)
(* -------------------------------------------------------------------- *)

(* A recognized access-group superinstruction. Two cores qualify:
   - confined: the access reads or writes the register the preceding
     [Sandbox] just confined, at offset 0 — the only address shapes
     MiSFIT emits — so when the segment lies inside memory the access
     cannot fault;
   - bare: a proof-elided access ([safe_at]), non-faulting by carried
     certificate, at any base/offset.
   Either way the whole group compiles as one straight-line,
   non-flushing closure. An ALU op forming the address before the group
   and an ALU op after it (consuming a load's datum, or the loop
   bookkeeping after a store) fuse into the same closure. *)
type confined = {
  c_pre : (int * int * int * int * bool) option;
      (* (opcode, rd, ra, operand, operand_is_immediate) *)
  c_sb : int;  (* pc of the Sandbox, for its cycle attribution;
                  -1 for a bare (proof-elided) core *)
  c_dst : int;  (* register receiving the sandboxed address *)
  c_src : int;  (* register holding the raw address (confined) or the
                  access base register (bare) *)
  c_off : int;  (* access offset: 0 for confined cores, any for bare *)
  c_acc : int;  (* pc of the Ld/St *)
  c_tail : (int * int * int * int * bool) option;
  c_stop : int;  (* first pc after the group *)
}


let alu_parts : Insn.t -> (int * int * int * int * bool) option
    = function
  | Alu (op, rd, ra, rb) -> (
      match opcode op with
      | Some o -> Some (o, rd, ra, rb, false)
      | None -> None)
  | Alui (op, rd, ra, imm) -> (
      match opcode op with
      | Some o -> Some (o, rd, ra, imm, true)
      | None -> None)
  | _ -> None

let confined_at prog ~safe_at ~stop pc : confined option =
  let pre, p =
    if pc + 1 < stop then
      match alu_parts prog.(pc) with
      | Some parts -> (Some parts, pc + 1)
      | None -> (None, pc)
    else (None, pc)
  in
  let core =
    if p + 2 < stop then
      match ((prog.(p) : Insn.t), prog.(p + 1), prog.(p + 2)) with
      | Mov (ra, rs), Sandbox a, (Ld (_, b, 0) | St (_, b, 0))
        when a = ra && b = ra ->
          Some (p + 1, ra, rs, 0, p + 2)
      | _ -> None
    else None
  in
  let core =
    match core with
    | Some _ -> core
    | None ->
        if p + 1 < stop then
          match ((prog.(p) : Insn.t), prog.(p + 1)) with
          | Sandbox rs, (Ld (_, b, 0) | St (_, b, 0)) when b = rs ->
              Some (p, rs, rs, 0, p + 1)
          | _ -> None
        else None
  in
  let core =
    (* A proof-elided access needs no sandbox: the bare [Ld]/[St] itself
       is the core, at whatever base/offset the verified code uses. *)
    match core with
    | Some _ -> core
    | None ->
        if p < stop then
          match (prog.(p) : Insn.t) with
          | (Ld (_, b, off) | St (_, b, off)) when safe_at p ->
              Some (-1, b, b, off, p)
          | _ -> None
        else None
  in
  match core with
  | None -> None
  | Some (c_sb, c_dst, c_src, c_off, c_acc) ->
      let c_tail =
        (* after a load the tail ALU typically consumes the datum; after
           a store it is the loop bookkeeping (index increment) — either
           way it is straight-line and non-faulting, so it rides along *)
        if c_acc + 1 < stop then alu_parts prog.(c_acc + 1) else None
      in
      let c_stop = c_acc + 1 + match c_tail with Some _ -> 1 | None -> 0 in
      Some { c_pre = pre; c_sb; c_dst; c_src; c_off; c_acc; c_tail; c_stop }

(* Compile instructions [start, stop) into one closure chain. [pend_c] /
   [pend_i] / [pend_a] are cycles/instructions/memory-accesses executed
   since the last flush; they are added to the cpu before anything that
   can fault, stop or observe it, together with that instruction's own
   charge (the interpreter charges an instruction before executing it).
   [safe_at pc] holds when a carried verification proof guarantees the
   access at [pc] cannot fault: such a [Ld]/[St] is compiled like any
   other non-faulting straight-line instruction — no flush, no pc store —
   and its access count joins the pending accumulator. *)
(* Fast bodies index the register file with compile-time register
   numbers that [translate] validates up front (a program that fails
   validation gets slow stubs only — see [regs_ok] there), and the
   program array with indices guarded by [stop <= Array.length prog],
   so indexing inside [compile_block] is unchecked: the [Array] shadow
   is scoped to this submodule. The slow path and everything else keep
   checked indexing. *)
module Fast_body = struct
  module Array = struct
    include Stdlib.Array

    external get : 'a array -> int -> 'a = "%array_unsafe_get"
    external set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
  end

  let compile_block ~costs ~safe_at ?chain ?(extra_back = 0)
      ?(pend0 = (0, 0, 0, 0)) prog ~start ~stop ~fused ~elided =
  (* [chain] turns this block into one copy of an unrolled self-loop:
     the block-final [Jmp] (whose target is [start] by construction at
     the call site) falls straight into the next copy's first closure
     instead of handing the target back to the driver. It is a
     compile-time continuation: invoked once, during compilation, with
     the pending cycle/insn/access/sandbox counts accumulated up to and
     including the jump, and expected to return the next copy compiled
     with those counts as its [pend0] — so a whole unrolled window
     flushes once, at its final flush point, instead of once per copy.
     Anything observable inside a copy (a fault, a kcall, a taken
     branch) still flushes the carried pends first, exactly as within a
     single block. [extra_back] is the instruction count of the copies
     that follow, added to an inline branch's not-run remainder so the
     driver's poll arithmetic covers the whole unrolled sequence. *)
  let cost_of pc = Costs.insn costs prog.(pc) in
  let rec comp pc pend_c pend_i pend_a pend_s : ctx -> int =
    if pc >= stop then
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        if pend_s <> 0 then t.sandbox_cy <- t.sandbox_cy + pend_s;
        t.cycles <- t.cycles + pend_c;
        t.insns <- t.insns + pend_i;
        t.accesses <- t.accesses + pend_a;
        pc
    else
      let own = cost_of pc in
      let next = pc + 1 in
      match (prog.(pc) : Insn.t) with
      (* ---- fused superinstructions ---- *)
      | Br (bc, bra, brb, btarget)
        when next < stop
             && (match confined_at prog ~safe_at ~stop next with
                | Some g1 -> (
                    g1.c_stop < stop - 1
                    &&
                    match confined_at prog ~safe_at ~stop g1.c_stop with
                    | Some g2 -> (
                        g2.c_stop = stop - 1
                        &&
                        match prog.(g2.c_stop) with
                        | Jmp _ -> true
                        | _ -> false)
                    | None -> false)
                | None -> false) -> (
          (* The complete rhythm of a transform loop — guard branch, two
             access groups (load side, store side), loop-closing jump —
             as one closure. Both groups are non-faulting (confined or
             proof-elided, see {!confined_at}), so nothing between the
             branch test and the jump's flush can observe the machine:
             one flush at the jump covers the whole pass. The taken
             branch exits early exactly like an inline [Br]. *)
          let g1 = Option.get (confined_at prog ~safe_at ~stop next) in
          let g2 = Option.get (confined_at prog ~safe_at ~stop g1.c_stop) in
          let jpc = g2.c_stop in
          let jtarget =
            match (prog.(jpc) : Insn.t) with
            | Jmp target -> target
            | _ -> assert false
          in
          fused := !fused + (stop - pc - 1);
          if g1.c_sb < 0 then incr elided;
          if g2.c_sb < 0 then incr elided;
          let seg_cost lo hi =
            let c = ref 0 in
            for m = lo to hi - 1 do
              c := !c + cost_of m
            done;
            !c
          in
          let cmp = cond_fn bc in
          let dc_br = pend_c + own
          and di_br = pend_i + 1
          and da_br = pend_a in
          let back = stop - next + extra_back in
          let sb1 = if g1.c_sb < 0 then 0 else cost_of g1.c_sb in
          let sb2 = if g2.c_sb < 0 then 0 else cost_of g2.c_sb in
          let dc = pend_c + seg_cost pc stop
          and di = pend_i + (stop - pc)
          and da = pend_a + 2 in
          let ps = pend_s + sb1 + sb2 in
          let part (g : confined) =
            let pre_o, pre_d, pre_a, pre_x, pre_imm =
              match g.c_pre with
              | Some (f, d, a, x, im) -> (f, d, a, x, im)
              | None -> (-1, 0, 0, 0, false)
            in
            let tl_o, tl_d, tl_a, tl_x, tl_imm =
              match g.c_tail with
              | Some (f, d, a, x, im) -> (f, d, a, x, im)
              | None -> (-1, 0, 0, 0, false)
            in
            let is_ld, rw =
              match (prog.(g.c_acc) : Insn.t) with
              | Ld (rd, _, _) -> (true, rd)
              | St (rv, _, _) -> (false, rv)
              | _ -> assert false
            in
            ( pre_o, pre_d, pre_a, pre_x, pre_imm, g.c_sb >= 0, is_ld, rw,
              g.c_dst, g.c_src, g.c_off, tl_o, tl_d, tl_a, tl_x, tl_imm )
          in
          let ( p1o, p1d, p1a, p1x, p1i, p1sb, p1ld, p1rw, p1dst, p1src,
                p1off, q1o, q1d, q1a, q1x, q1i ) =
            part g1
          in
          let ( p2o, p2d, p2a, p2x, p2i, p2sb, p2ld, p2rw, p2dst, p2src,
                p2off, q2o, q2d, q2a, q2x, q2i ) =
            part g2
          in
          let effects ctx =
            let t : Cpu.t = ctx.cpu in
            let r = t.regs in
            if p1o >= 0 then
              r.(p1d) <- eval_opc p1o r.(p1a) (if p1i then p1x else r.(p1x));
            if p1sb then begin
              let x = Mem.sandbox t.seg r.(p1src) in
              r.(p1dst) <- x;
              if p1ld then r.(p1rw) <- Mem.unsafe_load t.mem x
              else Mem.unsafe_store t.mem x r.(p1rw)
            end
            else if p1ld then r.(p1rw) <- Mem.load t.mem (r.(p1src) + p1off)
            else Mem.store t.mem (r.(p1src) + p1off) r.(p1rw);
            if q1o >= 0 then
              r.(q1d) <- eval_opc q1o r.(q1a) (if q1i then q1x else r.(q1x));
            if p2o >= 0 then
              r.(p2d) <- eval_opc p2o r.(p2a) (if p2i then p2x else r.(p2x));
            if p2sb then begin
              let x = Mem.sandbox t.seg r.(p2src) in
              r.(p2dst) <- x;
              if p2ld then r.(p2rw) <- Mem.unsafe_load t.mem x
              else Mem.unsafe_store t.mem x r.(p2rw)
            end
            else if p2ld then r.(p2rw) <- Mem.load t.mem (r.(p2src) + p2off)
            else Mem.store t.mem (r.(p2src) + p2off) r.(p2rw);
            if q2o >= 0 then
              r.(q2d) <- eval_opc q2o r.(q2a) (if q2i then q2x else r.(q2x))
          in
          let taken ctx =
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc_br;
            t.insns <- t.insns + di_br;
            t.accesses <- t.accesses + da_br;
            ctx.back <- back;
            btarget
          in
          match chain with
          | None ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                if cmp t.regs.(bra) t.regs.(brb) then taken ctx
                else begin
                  effects ctx;
                  if ps <> 0 then t.sandbox_cy <- t.sandbox_cy + ps;
                  t.cycles <- t.cycles + dc;
                  t.insns <- t.insns + di;
                  t.accesses <- t.accesses + da;
                  jtarget
                end
          | Some kont ->
              (* The whole pass's counts ride into the next copy's
                 pending accumulators: nothing between here and the
                 chain's next flush point can observe the machine. *)
              let g = kont dc di da ps in
              (* The canonical transform-loop pass — [Ge] guard on the
                 index, address = base + index on both sides, a datum
                 op after the load, the index advance after the store —
                 is the shape this arm exists for, so it gets a fully
                 specialized closure: every shape test and opcode
                 below is resolved here, at build time. The register
                 writes are identical to [effects]'s, in the same
                 order. *)
              let canon =
                (match bc with Ge -> true | _ -> false)
                && p1o = 0 && (not p1i) && p1ld && q1o >= 0
                && p2o = 0 && (not p2i) && (not p2ld)
                && q2o = 0 && q2i
              in
              if canon && p1sb && p2sb then
                fun ctx ->
                  let t : Cpu.t = ctx.cpu in
                  let r = t.regs in
                  if r.(bra) >= r.(brb) then taken ctx
                  else begin
                    r.(p1d) <- r.(p1a) + r.(p1x);
                    let x = Mem.sandbox t.seg r.(p1src) in
                    r.(p1dst) <- x;
                    r.(p1rw) <- Mem.unsafe_load t.mem x;
                    r.(q1d) <-
                      eval_opc q1o r.(q1a) (if q1i then q1x else r.(q1x));
                    r.(p2d) <- r.(p2a) + r.(p2x);
                    let x2 = Mem.sandbox t.seg r.(p2src) in
                    r.(p2dst) <- x2;
                    Mem.unsafe_store t.mem x2 r.(p2rw);
                    r.(q2d) <- r.(q2a) + q2x;
                    g ctx
                  end
              else if canon && (not p1sb) && not p2sb then
                fun ctx ->
                  let t : Cpu.t = ctx.cpu in
                  let r = t.regs in
                  if r.(bra) >= r.(brb) then taken ctx
                  else begin
                    r.(p1d) <- r.(p1a) + r.(p1x);
                    r.(p1rw) <- Mem.load t.mem (r.(p1src) + p1off);
                    r.(q1d) <-
                      eval_opc q1o r.(q1a) (if q1i then q1x else r.(q1x));
                    r.(p2d) <- r.(p2a) + r.(p2x);
                    Mem.store t.mem (r.(p2src) + p2off) r.(p2rw);
                    r.(q2d) <- r.(q2a) + q2x;
                    g ctx
                  end
              else
                fun ctx ->
                  let t : Cpu.t = ctx.cpu in
                  if cmp t.regs.(bra) t.regs.(brb) then taken ctx
                  else begin
                    effects ctx;
                    g ctx
                  end)
      | (Alu _ | Alui _ | Mov _ | Sandbox _ | Ld _ | St _)
        when Option.is_some (confined_at prog ~safe_at ~stop pc) -> (
          (* An access-group superinstruction (see {!confined_at}): the
             accessed address is the just-sandboxed register at offset 0,
             so it is inside the segment by construction — or the access
             carries a proof making it non-faulting outright (bare core).
             The driver only takes the fast path when the segment lies
             inside memory ({!seg_confined}), so the access cannot fault
             — no flush, no pc store; every count joins the pending
             accumulator like any straight-line instruction. [sandbox_cy]
             joins a fourth pending accumulator ([pend_s]) dumped at the
             next flush point — the earliest the interpreter's value is
             observable, by which time it includes this charge either
             way. The optional address-forming prelude and trailing ALU
             ops ride along: they are non-faulting and sequenced exactly
             as the interpreter would, so the whole compute/sandbox/
             access/consume rhythm of a MiSFIT (or verified) loop body is
             one closure. *)
          match confined_at prog ~safe_at ~stop pc with
          | None -> assert false
          | Some c ->
              let count = c.c_stop - pc in
              fused := !fused + (count - 1);
              if c.c_sb < 0 then incr elided;
              let cost = ref 0 in
              for m = pc to c.c_stop - 1 do
                cost := !cost + cost_of m
              done;
              let sb = if c.c_sb < 0 then 0 else cost_of c.c_sb in
              let pend_c = pend_c + !cost
              and pend_i = pend_i + count
              and pend_a = pend_a + 1 in
              let ps = pend_s + sb in
              let has_pre, o1, d1, a1, x1, imm1 =
                match c.c_pre with
                | Some (f, d, a, x, im) -> (true, f, d, a, x, im)
                | None -> (false, 0, 0, 0, 0, false)
              in
              let has_tail, o2, d2, a2, x2, imm2 =
                match c.c_tail with
                | Some (f, d, a, x, im) -> (true, f, d, a, x, im)
                | None -> (false, 0, 0, 0, 0, false)
              in
              let dst = c.c_dst and src = c.c_src in
              (* A loop-closing [Jmp] right after the group fuses too:
                 the flush it would perform moves into the confined
                 closure, which then hands the branch target straight
                 back to the driver — one closure for the whole
                 compute/sandbox/access/advance/jump rhythm. *)
              let jmp_target =
                if c.c_stop = stop - 1 then
                  match (prog.(c.c_stop) : Insn.t) with
                  | Jmp target -> Some target
                  | _ -> None
                else None
              in
              let bare = c.c_sb < 0 in
              let off = c.c_off in
              match ((prog.(c.c_acc) : Insn.t), jmp_target) with
              | Ld (rd, _, _), None when not bare ->
                  let after = comp c.c_stop pend_c pend_i pend_a ps in
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    let x = Mem.sandbox t.seg r.(src) in
                    r.(dst) <- x;
                    r.(rd) <- Mem.unsafe_load t.mem x;
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2));
                    after ctx
              | St (rv, _, _), None when not bare ->
                  let after = comp c.c_stop pend_c pend_i pend_a ps in
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    let x = Mem.sandbox t.seg r.(src) in
                    r.(dst) <- x;
                    Mem.unsafe_store t.mem x r.(rv);
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2));
                    after ctx
              | Ld (rd, _, _), None ->
                  let after = comp c.c_stop pend_c pend_i pend_a ps in
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    r.(rd) <- Mem.load t.mem (r.(src) + off);
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2));
                    after ctx
              | St (rv, _, _), None ->
                  let after = comp c.c_stop pend_c pend_i pend_a ps in
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    Mem.store t.mem (r.(src) + off) r.(rv);
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2));
                    after ctx
              | Ld (rd, _, _), Some target ->
                  incr fused;
                  let dc = pend_c + cost_of c.c_stop
                  and di = pend_i + 1
                  and da = pend_a in
                  let effects ctx =
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    if bare then r.(rd) <- Mem.load t.mem (r.(src) + off)
                    else begin
                      let x = Mem.sandbox t.seg r.(src) in
                      r.(dst) <- x;
                      r.(rd) <- Mem.unsafe_load t.mem x
                    end;
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2))
                  in
                  (match chain with
                  | None ->
                      fun ctx ->
                        effects ctx;
                        let t : Cpu.t = ctx.cpu in
                        if ps <> 0 then t.sandbox_cy <- t.sandbox_cy + ps;
                        t.cycles <- t.cycles + dc;
                        t.insns <- t.insns + di;
                        t.accesses <- t.accesses + da;
                        target
                  | Some kont ->
                      let g = kont dc di da ps in
                      fun ctx ->
                        effects ctx;
                        g ctx)
              | St (rv, _, _), Some target ->
                  incr fused;
                  let dc = pend_c + cost_of c.c_stop
                  and di = pend_i + 1
                  and da = pend_a in
                  let effects ctx =
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    if has_pre then
                      r.(d1) <- eval_opc o1 r.(a1) (if imm1 then x1 else r.(x1));
                    if bare then Mem.store t.mem (r.(src) + off) r.(rv)
                    else begin
                      let x = Mem.sandbox t.seg r.(src) in
                      r.(dst) <- x;
                      Mem.unsafe_store t.mem x r.(rv)
                    end;
                    if has_tail then
                      r.(d2) <- eval_opc o2 r.(a2) (if imm2 then x2 else r.(x2))
                  in
                  (match chain with
                  | None ->
                      fun ctx ->
                        effects ctx;
                        let t : Cpu.t = ctx.cpu in
                        if ps <> 0 then t.sandbox_cy <- t.sandbox_cy + ps;
                        t.cycles <- t.cycles + dc;
                        t.insns <- t.insns + di;
                        t.accesses <- t.accesses + da;
                        target
                  | Some kont ->
                      let g = kont dc di da ps in
                      fun ctx ->
                        effects ctx;
                        g ctx)
              | _ -> assert false)
      | Mov (ra, rs)
        when pc + 2 < stop
             && (match (prog.(next), prog.(pc + 2)) with
                | Sandbox a, (Ld (_, b, _) | St (_, b, _)) ->
                    a = ra && b = ra
                | _ -> false) -> (
          (* The full MiSFIT access sequence:
             [Mov a,s; Sandbox a; Ld/St _,a,off]. The raw address is
             visible in [a] only between the first two instructions,
             where nothing can observe it, so the three collapse into
             sandbox-then-access. *)
          fused := !fused + 2;
          let sb = cost_of next in
          let dc = pend_c + own + sb + cost_of (pc + 2)
          and di = pend_i + 3
          and da = pend_a + 1 in
          let acc_pc = pc + 2 in
          let after = comp (pc + 3) 0 0 0 0 in
          match (prog.(acc_pc) : Insn.t) with
          | Ld (rd, _, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                let x = Mem.sandbox t.seg r.(rs) in
                r.(ra) <- x;
                t.sandbox_cy <- t.sandbox_cy + sb;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- acc_pc;
                t.accesses <- t.accesses + da;
                r.(rd) <- Mem.load t.mem (x + off);
                after ctx
          | St (rv, _, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                let x = Mem.sandbox t.seg r.(rs) in
                r.(ra) <- x;
                t.sandbox_cy <- t.sandbox_cy + sb;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- acc_pc;
                t.accesses <- t.accesses + da;
                Mem.store t.mem (x + off) r.(rv);
                after ctx
          | _ -> assert false)
      | Sandbox rs
        when next < stop
             && (match prog.(next) with
                | Ld _ | St _ -> true
                | _ -> false) -> (
          incr fused;
          let dc = pend_c + own + cost_of next
          and di = pend_i + 2
          and da = pend_a + 1 in
          let after = comp (pc + 2) 0 0 0 0 in
          match (prog.(next) : Insn.t) with
          | Ld (rd, rb, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rs) <- Mem.sandbox t.seg r.(rs);
                t.sandbox_cy <- t.sandbox_cy + own;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- next;
                t.accesses <- t.accesses + da;
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                after ctx
          | St (rv, rb, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rs) <- Mem.sandbox t.seg r.(rs);
                t.sandbox_cy <- t.sandbox_cy + own;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- next;
                t.accesses <- t.accesses + da;
                Mem.store t.mem (r.(rb) + off) r.(rv);
                after ctx
          | _ -> assert false)
      (* A proof-elided access followed by a non-faulting ALU op: both are
         straight-line, so they fuse like [Li]+[Alu]. *)
      | Ld (rd, rb, off)
        when safe_at pc
             && next < stop
             && (match prog.(next) with
                | Alu (op, _, _, _) | Alui (op, _, _, _) ->
                    opcode op <> None
                | _ -> false) -> (
          incr fused;
          incr elided;
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2
          and pend_a = pend_a + 1 in
          match (prog.(next) : Insn.t) with
          | Alu (op, d2, a2, b2) ->
              let o = Option.get (opcode op) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                r.(d2) <- eval_opc o r.(a2) r.(b2);
                after ctx
          | Alui (op, d2, a2, i2) ->
              let o = Option.get (opcode op) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                r.(d2) <- eval_opc o r.(a2) i2;
                after ctx
          | _ -> assert false)
      | Li (rd, v)
        when next < stop
             && (match prog.(next) with
                | Alu (op, _, _, _) | Alui (op, _, _, _) ->
                    opcode op <> None
                | _ -> false) -> (
          incr fused;
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op, d2, a2, b2) ->
              let o = Option.get (opcode op) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- v;
                r.(d2) <- eval_opc o r.(a2) r.(b2);
                after ctx
          | Alui (op, d2, a2, imm) ->
              let o = Option.get (opcode op) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- v;
                r.(d2) <- eval_opc o r.(a2) imm;
                after ctx
          | _ -> assert false)
      | Li (rd, v)
        when next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- v;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alu (op, rd, ra, rb)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let o = Option.get (opcode op) in
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) r.(rb);
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alui (op, rd, ra, imm)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let o = Option.get (opcode op) in
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) imm;
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alu (op, rd, ra, rb)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with Jmp _ -> true | _ -> false) -> (
          match (prog.(next) : Insn.t) with
          | Jmp target ->
              incr fused;
              let o = Option.get (opcode op) in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              (match chain with
              | None ->
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    r.(rd) <- eval_opc o r.(ra) r.(rb);
                    if pend_s <> 0 then
                      t.sandbox_cy <- t.sandbox_cy + pend_s;
                    t.cycles <- t.cycles + dc;
                    t.insns <- t.insns + di;
                    t.accesses <- t.accesses + da;
                    target
              | Some kont ->
                  let g = kont dc di da pend_s in
                  fun ctx ->
                    let r = (ctx.cpu : Cpu.t).regs in
                    r.(rd) <- eval_opc o r.(ra) r.(rb);
                    g ctx)
          | _ -> assert false)
      | Alui (op, rd, ra, imm)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with Jmp _ -> true | _ -> false) -> (
          match (prog.(next) : Insn.t) with
          | Jmp target ->
              incr fused;
              let o = Option.get (opcode op) in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              (match chain with
              | None ->
                  fun ctx ->
                    let t : Cpu.t = ctx.cpu in
                    let r = t.regs in
                    r.(rd) <- eval_opc o r.(ra) imm;
                    if pend_s <> 0 then
                      t.sandbox_cy <- t.sandbox_cy + pend_s;
                    t.cycles <- t.cycles + dc;
                    t.insns <- t.insns + di;
                    t.accesses <- t.accesses + da;
                    target
              | Some kont ->
                  let g = kont dc di da pend_s in
                  fun ctx ->
                    let r = (ctx.cpu : Cpu.t).regs in
                    r.(rd) <- eval_opc o r.(ra) imm;
                    g ctx)
          | _ -> assert false)
      | Alu (op1, d1, a1, b1)
        when opcode op1 <> None
             && next < stop
             && (match prog.(next) with
                | Alu (op2, _, _, _) | Alui (op2, _, _, _) ->
                    opcode op2 <> None
                | _ -> false) -> (
          incr fused;
          let o1 = Option.get (opcode op1) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op2, d2, a2, b2) ->
              let o2 = Option.get (opcode op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- eval_opc o1 r.(a1) r.(b1);
                r.(d2) <- eval_opc o2 r.(a2) r.(b2);
                after ctx
          | Alui (op2, d2, a2, i2) ->
              let o2 = Option.get (opcode op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- eval_opc o1 r.(a1) r.(b1);
                r.(d2) <- eval_opc o2 r.(a2) i2;
                after ctx
          | _ -> assert false)
      | Alui (op1, d1, a1, i1)
        when opcode op1 <> None
             && next < stop
             && (match prog.(next) with
                | Alu (op2, _, _, _) | Alui (op2, _, _, _) ->
                    opcode op2 <> None
                | _ -> false) -> (
          incr fused;
          let o1 = Option.get (opcode op1) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op2, d2, a2, b2) ->
              let o2 = Option.get (opcode op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- eval_opc o1 r.(a1) i1;
                r.(d2) <- eval_opc o2 r.(a2) r.(b2);
                after ctx
          | Alui (op2, d2, a2, i2) ->
              let o2 = Option.get (opcode op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- eval_opc o1 r.(a1) i1;
                r.(d2) <- eval_opc o2 r.(a2) i2;
                after ctx
          | _ -> assert false)
      (* An address-forming ALU op feeding a proof-elided access: both are
         straight-line and non-faulting, so they fuse — the mirror image
         of the [Ld]+[Alu] pattern above, covering the compute-address /
         access / compute-next rhythm of verified loop bodies. *)
      | Alu (op, rd, ra, rb)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with
                | Ld _ | St _ -> safe_at next
                | _ -> false) -> (
          incr fused;
          incr elided;
          let o = Option.get (opcode op) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2
          and pend_a = pend_a + 1 in
          let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
          match (prog.(next) : Insn.t) with
          | Ld (rd2, rb2, off2) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) r.(rb);
                r.(rd2) <- Mem.load t.mem (r.(rb2) + off2);
                after ctx
          | St (rv2, rb2, off2) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) r.(rb);
                Mem.store t.mem (r.(rb2) + off2) r.(rv2);
                after ctx
          | _ -> assert false)
      | Alui (op, rd, ra, imm)
        when opcode op <> None
             && next < stop
             && (match prog.(next) with
                | Ld _ | St _ -> safe_at next
                | _ -> false) -> (
          incr fused;
          incr elided;
          let o = Option.get (opcode op) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2
          and pend_a = pend_a + 1 in
          let after = comp (pc + 2) pend_c pend_i pend_a pend_s in
          match (prog.(next) : Insn.t) with
          | Ld (rd2, rb2, off2) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) imm;
                r.(rd2) <- Mem.load t.mem (r.(rb2) + off2);
                after ctx
          | St (rv2, rb2, off2) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- eval_opc o r.(ra) imm;
                Mem.store t.mem (r.(rb2) + off2) r.(rv2);
                after ctx
          | _ -> assert false)
      (* ---- straight-line instructions ---- *)
      | Li (rd, v) ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
          fun ctx ->
            (ctx.cpu : Cpu.t).regs.(rd) <- v;
            after ctx
      | Mov (rd, rs) ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
          fun ctx ->
            let r = (ctx.cpu : Cpu.t).regs in
            r.(rd) <- r.(rs);
            after ctx
      | Sandbox rr ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.regs.(rr) <- Mem.sandbox t.seg t.regs.(rr);
            t.sandbox_cy <- t.sandbox_cy + own;
            after ctx
      | Alu (op, rd, ra, rb) -> (
          match opcode op with
          | Some o ->
              let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- eval_opc o r.(ra) r.(rb);
                after ctx
          | None ->
              let dc = pend_c + own
              and di = pend_i + 1
              and da = pend_a in
              let after = comp next 0 0 0 0 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                t.pc <- pc;
                let r = t.regs in
                r.(rd) <- faulting_alu op r.(ra) r.(rb);
                after ctx)
      | Alui (op, rd, ra, imm) -> (
          match opcode op with
          | Some o ->
              let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- eval_opc o r.(ra) imm;
                after ctx
          | None ->
              let dc = pend_c + own
              and di = pend_i + 1
              and da = pend_a in
              let after = comp next 0 0 0 0 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                t.pc <- pc;
                let r = t.regs in
                r.(rd) <- faulting_alu op r.(ra) imm;
                after ctx)
      (* Proof-elided accesses: the address is provably in-segment for the
         running segment, so the access can never fault and is compiled
         like [Mov] — no counter flush, no pc store. The pending access
         count keeps it observable exactly where the interpreter would
         expose it (the next fault, kernel call or block exit). *)
      | Ld (rd, rb, off) when safe_at pc ->
          incr elided;
          let after = comp next (pend_c + own) (pend_i + 1) (pend_a + 1) pend_s in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
            after ctx
      | St (rv, rb, off) when safe_at pc ->
          incr elided;
          let after = comp next (pend_c + own) (pend_i + 1) (pend_a + 1) pend_s in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
            after ctx
      | Ld (rd, rb, off) ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
            after ctx
      | St (rv, rb, off) ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
            after ctx
      | Push rv ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            let r = t.regs in
            r.(Insn.sp) <- r.(Insn.sp) - 1;
            Mem.store t.mem r.(Insn.sp) r.(rv);
            after ctx
      | Pop rd ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            let r = t.regs in
            r.(rd) <- Mem.load t.mem r.(Insn.sp);
            r.(Insn.sp) <- r.(Insn.sp) + 1;
            after ctx
      | Checkcall rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          let after = comp next 0 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.checkcall_cy <- t.checkcall_cy + own;
            t.pc <- pc;
            let id = t.regs.(rr) in
            if ctx.env.call_ok id then after ctx
            else raise (Cpu.Fault_exn (Cpu.Bad_call_target id))
      (* ---- conditional branch inside the block ---- *)
      | Br (c, ra, rb, target) when next < stop ->
          (* Not taken: fall through inline, costs still pending. Taken:
             flush, record the unexecuted remainder for the driver's
             poll counter, and exit early. *)
          let cmp = cond_fn c in
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          let back = stop - next + extra_back in
          let after = comp next (pend_c + own) (pend_i + 1) pend_a pend_s in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if cmp t.regs.(ra) t.regs.(rb) then begin
              if pend_s <> 0 then
                t.sandbox_cy <- t.sandbox_cy + pend_s;
              t.cycles <- t.cycles + dc;
              t.insns <- t.insns + di;
              t.accesses <- t.accesses + da;
              ctx.back <- back;
              target
            end
            else after ctx
      (* ---- terminators ---- *)
      | Br (c, ra, rb, target) ->
          let cmp = cond_fn c in
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            if cmp t.regs.(ra) t.regs.(rb) then target else next
      | Jmp target -> (
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          match chain with
          | None ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                if pend_s <> 0 then
                  t.sandbox_cy <- t.sandbox_cy + pend_s;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                target
          | Some kont ->
              (* A chained loop-closing jump vanishes at compile time:
                 the next copy's first closure IS this jump's closure,
                 entered with the jump's counts still pending. *)
              kont dc di da pend_s)
      | Call target ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            Cpu.push_call t next;
            target
      | Callr rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            Cpu.push_call t next;
            t.regs.(rr)
      | Ret ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            if t.depth = 0 then begin
              t.pc <- pc;
              finish ctx Cpu.Halted
            end
            else begin
              t.depth <- t.depth - 1;
              t.callstack.(t.depth)
            end
      | Kcall id ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            (match ctx.env.kcall id t with
            | Cpu.K_ok -> next
            | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
            | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
      | Kcallr rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            (match ctx.env.kcall t.regs.(rr) t with
            | Cpu.K_ok -> next
            | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
            | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
      | Halt ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if pend_s <> 0 then
              t.sandbox_cy <- t.sandbox_cy + pend_s;
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            finish ctx Cpu.Halted
  in
  let c0, i0, a0, s0 = pend0 in
  comp start c0 i0 a0 s0

(* -------------------------------------------------------------------- *)
(* Careful path: one interpreter-exact closure per instruction           *)
(* -------------------------------------------------------------------- *)

(* The driver has already re-checked fuel/poll/bounds and stored [pc],
   exactly as the interpreter's loop head does; each closure replicates
   one loop iteration: charge, attribute, step. *)
end

let compile_block = Fast_body.compile_block

let compile_slow ~costs pc (i : Insn.t) : ctx -> int =
  let cost = Costs.insn costs i in
  let next = pc + 1 in
  match i with
  | Li (rd, v) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.regs.(rd) <- v;
        next
  | Mov (rd, rs) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        let r = t.regs in
        r.(rd) <- r.(rs);
        next
  | Alu (op, rd, ra, rb) -> (
      match opcode op with
      | Some o ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- eval_opc o r.(ra) r.(rb);
            next
      | None ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- faulting_alu op r.(ra) r.(rb);
            next)
  | Alui (op, rd, ra, imm) -> (
      match opcode op with
      | Some o ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- eval_opc o r.(ra) imm;
            next
      | None ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- faulting_alu op r.(ra) imm;
            next)
  | Ld (rd, rb, off) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
        next
  | St (rv, rb, off) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
        next
  | Push rv ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        let r = t.regs in
        r.(Insn.sp) <- r.(Insn.sp) - 1;
        Mem.store t.mem r.(Insn.sp) r.(rv);
        next
  | Pop rd ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        let r = t.regs in
        r.(rd) <- Mem.load t.mem r.(Insn.sp);
        r.(Insn.sp) <- r.(Insn.sp) + 1;
        next
  | Sandbox rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.sandbox_cy <- t.sandbox_cy + cost;
        t.regs.(rr) <- Mem.sandbox t.seg t.regs.(rr);
        next
  | Checkcall rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.checkcall_cy <- t.checkcall_cy + cost;
        let id = t.regs.(rr) in
        if ctx.env.call_ok id then next
        else raise (Cpu.Fault_exn (Cpu.Bad_call_target id))
  | Br (c, ra, rb, target) ->
      let cmp = cond_fn c in
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        if cmp t.regs.(ra) t.regs.(rb) then target else next
  | Jmp target ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        target
  | Call target ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        Cpu.push_call t next;
        target
  | Callr rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        Cpu.push_call t next;
        t.regs.(rr)
  | Ret ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        if t.depth = 0 then finish ctx Cpu.Halted
        else begin
          t.depth <- t.depth - 1;
          t.callstack.(t.depth)
        end
  | Kcall id ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        (match ctx.env.kcall id t with
        | Cpu.K_ok -> next
        | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
        | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
  | Kcallr rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        (match ctx.env.kcall t.regs.(rr) t with
        | Cpu.K_ok -> next
        | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
        | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
  | Halt ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        finish ctx Cpu.Halted

(* -------------------------------------------------------------------- *)
(* Translation                                                           *)
(* -------------------------------------------------------------------- *)

(* Cross-block fusion cap: a fused segment longer than the poll interval
   could never pass the fast-entry poll condition, so extending past it
   only costs translation time. *)
let xblock_cap = 32

(* Prefix-ladder levels: lengths 2^0 .. 2^5; 32 covers a full default
   poll window, so any remainder a tail entry can face is expressible. *)
let grade_levels = 6

(* The abort-poll interval {!Cpu.run} defaults to; unrolled self-loop
   tails are sized so a whole window's worth of iterations fits. *)
let default_poll_every = 32

let translate ?(costs = Costs.default) ?safe ?(xblock = true) prog =
  let source = Array.copy prog in
  let prog = source in
  let n = Array.length prog in
  (* [safe.(pc)] licenses compiling the access at [pc] without fault
     handling. A map of the wrong length means the proof was derived from
     different code; ignore it rather than mis-align indices. *)
  let safe_at =
    match safe with
    | Some m when Array.length m = n -> fun pc -> Array.unsafe_get m pc
    | Some _ | None -> fun _ -> false
  in
  (* Unchecked register indexing in fast bodies is licensed by this scan;
     a program with an out-of-range register number (impossible through
     the assembler, but [translate] is a public API) runs entirely on
     slow stubs, whose checked accesses raise exactly what the
     interpreter would. *)
  let regs_ok =
    Array.for_all
      (fun i ->
        List.for_all
          (fun r -> r >= 0 && r < Insn.num_regs)
          (Insn.registers_used i))
      prog
  in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc i ->
      (match (i : Insn.t) with
      | Br (_, _, _, target) | Jmp target | Call target ->
          if target >= 0 && target < n then leader.(target) <- true
      | _ -> ());
      (* A conditional branch falls through into its block (the body
         exits early when taken), so unlike the other terminators it
         does not force a leader at pc + 1. *)
      match (i : Insn.t) with
      | Br _ -> ()
      | i -> if terminates i && pc + 1 < n then leader.(pc + 1) <- true)
    prog;
  let fused = ref 0 in
  let elided = ref 0 in
  let nblocks = ref 0 in
  let slow = Array.mapi (fun k i -> compile_slow ~costs k i) prog in
  let body_of_pc = Array.make n (fun ctx -> finish ctx Cpu.Halted) in
  let cost_of_pc = Array.make n 0 in
  let len_of_pc = Array.make n 0 in
  let grade_body =
    Array.init grade_levels (fun _ ->
        Array.make n (fun ctx -> finish ctx Cpu.Halted))
  in
  let grade_cost = Array.init grade_levels (fun _ -> Array.make n 0) in
  let grade_len = Array.init grade_levels (fun _ -> Array.make n 0) in
  let exact_body = Array.make n [||] in
  let exact_cost = Array.make n [||] in
  (* Compiling a tail for every suffix of a block is quadratic in block
     length; past this cap a pc keeps its slow closure as a
     one-instruction tail (same semantics, and the fast-entry conditions
     stay trivially exact), bounding translation to [tail_cap * n]
     closures. Suffixes longer than the poll interval could never pass
     the fast-entry poll condition anyway. *)
  let tail_cap = 64 in
  let ends pc =
    match (prog.(pc) : Insn.t) with
    | Br _ -> false (* extends through its fall-through *)
    | i -> terminates i
  in
  (* The tail at [k] compiles to the end of [k]'s basic block — or, with
     cross-block fusion on, through any chain of unconditional
     fallthroughs into successor blocks (a leader reached without a
     terminator is straight-line control flow: the leader merely marks a
     join point some branch also targets). The join-point pc keeps its
     own tail for entries that arrive by branching, so extending the
     fallthrough tail past it never orphans an entry point. *)
  let tail_stop k =
    let cap = if xblock then min n (k + xblock_cap) else n in
    let j = ref k in
    while
      (not (ends !j)) && !j + 1 < cap && (xblock || not leader.(!j + 1))
    do
      incr j
    done;
    !j + 1
  in
  let pc = ref 0 in
  while !pc < n do
    let start = !pc in
    let j = ref start in
    while (not (ends !j)) && !j + 1 < n && not leader.(!j + 1) do
      incr j
    done;
    let bstop = !j + 1 in
    let scrap = ref 0 in
    for k = start to bstop - 1 do
      let stop = tail_stop k in
      let sum_cost lo hi =
        let cost = ref 0 in
        for m = lo to hi - 1 do
          cost := !cost + Costs.insn costs prog.(m)
        done;
        !cost
      in
      if regs_ok && stop - k <= tail_cap then begin
        let f = if k = start then fused else scrap in
        let e = if k = start then elided else scrap in
        body_of_pc.(k) <-
          compile_block ~costs ~safe_at prog ~start:k ~stop ~fused:f
            ~elided:e;
        len_of_pc.(k) <- stop - k;
        cost_of_pc.(k) <- sum_cost k stop;
        (* Prefix ladder: one compiled prefix per power-of-two length
           strictly shorter than the full tail. *)
        let flen = stop - k in
        for j = 0 to grade_levels - 1 do
          let gl = 1 lsl j in
          if gl < flen then begin
            grade_body.(j).(k) <-
              compile_block ~costs ~safe_at prog ~start:k ~stop:(k + gl)
                ~fused:scrap ~elided:scrap;
            grade_len.(j).(k) <- gl;
            grade_cost.(j).(k) <- sum_cost k (k + gl)
          end
        done
      end
      else begin
        (* Slow closures expect [cpu.pc] to be current (the slow driver
           branch stores it); the fast branch does not, so do it here. *)
        let s = slow.(k) in
        (body_of_pc.(k) <-
           fun ctx ->
             let t : Cpu.t = ctx.cpu in
             t.pc <- k;
             s ctx);
        len_of_pc.(k) <- 1;
        cost_of_pc.(k) <- Costs.insn costs prog.(k)
      end
    done;
    incr nblocks;
    pc := bstop
  done;
  (* Unrolled self-loops, second pass (every tail is compiled by now). A
     head [h] whose full tail ends with [Jmp h] is a straight-line loop
     body. Every pc inside the loop gets one closure chain per possible
     remaining-window size, consuming exactly that many instructions:
     the rest of the current pass, whole copies of the body, and a
     prefix of the last pass cut at the window boundary — so a dispatch
     from any loop phase consumes its entire poll window in one hop.
     The copies are compiled back-to-front through the [chain]
     continuation, threading the pending accumulators across copy
     boundaries: each chained loop-closing jump dissolves into the next
     copy at compile time, and the whole window flushes once, at its
     end (or at whatever observable event — a taken guard, a fault —
     cuts it short, which flushes the carried pends first exactly as
     within a single block). [extra_back] extends an early exit's
     not-run count over the chained copies, keeping the driver's poll
     arithmetic exact. *)
  let scrap = ref 0 in
  for h = 0 to n - 1 do
    let flen = len_of_pc.(h) in
    let stop = h + flen in
    if
      flen > 1
      && flen <= default_poll_every
      && Array.length exact_body.(h) = 0
      && stop <= n
      &&
      match (prog.(stop - 1) : Insn.t) with
      | Jmp target -> target = h
      | _ -> false
    then begin
      let sum_cost lo hi =
        let cost = ref 0 in
        for m = lo to hi - 1 do
          cost := !cost + Costs.insn costs prog.(m)
        done;
        !cost
      in
      let lcost = cost_of_pc.(h) in
      (* [window start room pend]: a chain executing exactly [room]
         unrolled instructions from [start], entered with [pend]
         already accumulated. *)
      let rec window start room pend =
        let p = stop - start in
        if room <= p then
          compile_block ~costs ~safe_at ~pend0:pend prog ~start
            ~stop:(start + room) ~fused:scrap ~elided:scrap
        else
          compile_block ~costs ~safe_at ~pend0:pend
            ~chain:(fun c i a s -> window h (room - p) (c, i, a, s))
            ~extra_back:(room - p) prog ~start ~stop ~fused:scrap
            ~elided:scrap
      in
      for k = h to stop - 1 do
        let p = stop - k in
        if len_of_pc.(k) = p && Array.length exact_body.(k) = 0 then begin
          let pcost = sum_cost k stop in
          let xb = Array.make (default_poll_every + 1) body_of_pc.(k) in
          let xc = Array.make (default_poll_every + 1) 0 in
          for room = 1 to default_poll_every do
            xb.(room) <- window k room (0, 0, 0, 0);
            xc.(room) <-
              (if room < p then sum_cost k (k + room)
               else
                 let rest = room - p in
                 pcost + (rest / flen * lcost) + sum_cost h (h + (rest mod flen)))
          done;
          exact_body.(k) <- xb;
          exact_cost.(k) <- xc
        end
      done
    end
  done;
  {
    source;
    nblocks = !nblocks;
    fused = !fused;
    elided = !elided;
    body_of_pc;
    cost_of_pc;
    len_of_pc;
    grade_body;
    grade_cost;
    grade_len;
    exact_body;
    exact_cost;
    slow;
  }

(* -------------------------------------------------------------------- *)
(* Driver                                                                *)
(* -------------------------------------------------------------------- *)

(* The non-flushing sandboxed-access superinstructions assume every
   sandboxed address is a valid memory address, which holds exactly when
   the segment is well-formed (power-of-two size, aligned base — the
   {!Mem.segment} invariant, re-checked because the record type is open)
   and lies inside memory. Checked once per run; a cpu that fails gets
   the interpreter, which is trivially exact. *)
let seg_confined (cpu : Cpu.t) =
  let { Mem.base; size } = cpu.seg in
  size > 0
  && size land (size - 1) = 0
  && base >= 0
  && base land (size - 1) = 0
  && base + size <= Mem.size cpu.mem

(* One iteration per control transfer, replicating the interpreter's
   loop-head checks in its exact order: fuel, poll, pc bounds. [cpu.pc]
   is written only where it is observable — on every exit and before
   each slow step (fast bodies store it themselves ahead of anything
   that can fault or call out). Any in-range pc has a fast tail running
   to the end of its block/segment, so resuming mid-block (after a poll
   reset or a refueled slice) stays on the fast path; the bounds check
   above makes the unsafe array reads safe. A top-level function rather
   than a closure so entering costs no allocation. *)

let rec drive t ctx len poll_every pc since_poll =
  let cpu = ctx.cpu in
  if cpu.Cpu.cycles > cpu.fuel then begin
    cpu.pc <- pc;
    Cpu.Out_of_fuel
  end
  else if since_poll >= poll_every then begin
    cpu.pc <- pc;
    match ctx.env.Cpu.poll () with
    | Some reason -> Cpu.Aborted reason
    | None -> drive t ctx len poll_every pc 0
  end
  else if pc < 0 || pc >= len then begin
    cpu.pc <- pc;
    Cpu.Faulted (Cpu.Bad_pc pc)
  end
  else
    let xb = Array.unsafe_get t.exact_body pc in
    if Array.length xb > 0 then begin
      (* Inside a straight-line self-loop: consume the whole remaining
         poll window in one dispatch — the rest of this pass, chained
         whole iterations, and a compiled prefix of the final pass cut
         exactly at the window boundary. The pending counts thread
         across the chained copies and flush once, at the window's end
         (or at whatever observable event cuts it short). An
         under-fuelled window takes the graded path instead, which
         meters fuel hop by hop. *)
      let room = poll_every - since_poll in
      let ri = if room > default_poll_every then default_poll_every
               else room in
      if
        cpu.cycles + Array.unsafe_get (Array.unsafe_get t.exact_cost pc) ri
        <= cpu.fuel
      then begin
        let pc' = Array.unsafe_get xb ri ctx in
        let walked = since_poll + ri in
        if ctx.fin then ctx.out
        else if ctx.back = 0 then drive t ctx len poll_every pc' walked
        else begin
          let w = walked - ctx.back in
          ctx.back <- 0;
          drive t ctx len poll_every pc' w
        end
      end
      else fallback t ctx len poll_every pc since_poll room
    end
    else
    let tail_len = Array.unsafe_get t.len_of_pc pc in
    let walked = since_poll + tail_len in
    if
      walked <= poll_every
      && cpu.cycles + Array.unsafe_get t.cost_of_pc pc <= cpu.fuel
    then
      let pc' = Array.unsafe_get t.body_of_pc pc ctx in
      if ctx.fin then ctx.out
      else if ctx.back = 0 then drive t ctx len poll_every pc' walked
      else begin
        (* A conditional branch inside the body was taken: the tail's
           last [ctx.back] instructions did not run. *)
        let w = walked - ctx.back in
        ctx.back <- 0;
        drive t ctx len poll_every pc' w
      end
    else begin
      (* The full tail cannot fit the remaining window (or fuel): take
         the longest power-of-two prefix that does. Every length down to
         one instruction is compiled, so the remainder decomposes into
         compiled segments exactly; the slow step remains only for the
         fuel edge (where the interpreter executes an instruction whose
         charge overshoots the budget) and for programs without fast
         bodies. Each prefix is a genuine compiled segment ending in a
         flush, so the fast-path argument applies unchanged. *)
      fallback t ctx len poll_every pc since_poll (poll_every - since_poll)
    end

and fallback t ctx len poll_every pc since_poll room =
  (* start below the largest power that could fit the room *)
  let j0 =
    if room >= 32 then 5
    else if room >= 16 then 4
    else if room >= 8 then 3
    else if room >= 4 then 2
    else if room >= 2 then 1
    else 0
  in
  graded t ctx len poll_every pc since_poll room j0

and graded t ctx len poll_every pc since_poll room j =
  let cpu = ctx.cpu in
  if j < 0 then begin
    cpu.Cpu.pc <- pc;
    let pc2 = Array.unsafe_get t.slow pc ctx in
    if ctx.fin then ctx.out
    else drive t ctx len poll_every pc2 (since_poll + 1)
  end
  else
    let gl = Array.unsafe_get (Array.unsafe_get t.grade_len j) pc in
    if
      gl > 0 && gl <= room
      && cpu.cycles + Array.unsafe_get (Array.unsafe_get t.grade_cost j) pc
         <= cpu.fuel
    then
      let pc2 = Array.unsafe_get (Array.unsafe_get t.grade_body j) pc ctx in
      let gwalked = since_poll + gl in
      if ctx.fin then ctx.out
      else if ctx.back = 0 then drive t ctx len poll_every pc2 gwalked
      else begin
        let w = gwalked - ctx.back in
        ctx.back <- 0;
        drive t ctx len poll_every pc2 w
      end
    else graded t ctx len poll_every pc since_poll room (j - 1)

(* Context recycling: invocations are the hot unit of work, so the
   driver context comes from a per-domain free stack instead of the
   minor heap. A stack, not a single slot, because kernel calls can
   re-enter [run] (graft invoking graft). Parked contexts drop their
   cpu/env so a pooled record never retains a finished machine. *)
type ctx_pool = { mutable free : ctx array; mutable n : int }

let parked_cpu =
  Cpu.make ~mem:(Mem.create 1) ~seg:(Mem.segment ~base:0 ~size:1) ()

let ctx_pool_key : ctx_pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { free = [||]; n = 0 })

let take_ctx pool cpu env =
  if pool.n = 0 then { cpu; env; fin = false; out = Cpu.Halted; back = 0 }
  else begin
    pool.n <- pool.n - 1;
    let c = pool.free.(pool.n) in
    c.cpu <- cpu;
    c.env <- env;
    c.fin <- false;
    c.back <- 0;
    c
  end

let give_ctx pool c =
  c.cpu <- parked_cpu;
  c.env <- Cpu.env_trusted;
  c.out <- Cpu.Halted;
  if pool.n >= Array.length pool.free then begin
    let bigger = Array.make (max 4 (2 * pool.n)) c in
    Array.blit pool.free 0 bigger 0 pool.n;
    pool.free <- bigger
  end;
  pool.free.(pool.n) <- c;
  pool.n <- pool.n + 1

let run ?(poll_every = 32) env (cpu : Cpu.t) t =
  (* Checked mode is the interpreted-extension measurement model: its
     per-access check cost is the interpretation price, so it must keep
     being interpreted. *)
  if cpu.checked || not (seg_confined cpu) then
    Cpu.run ~poll_every env cpu t.source
  else begin
    let pool = Domain.DLS.get ctx_pool_key in
    let ctx = take_ctx pool cpu env in
    let out =
      match drive t ctx (Array.length t.source) poll_every cpu.pc 0 with
      | o -> o
      | exception Cpu.Fault_exn f -> Cpu.Faulted f
      | exception Mem.Fault { addr; write } ->
          Cpu.Faulted (Cpu.Memory_fault { addr; write })
    in
    give_ctx pool ctx;
    out
  end
