(* Closure-threaded translation of graft programs.

   The interpreter ({!Cpu.run}) pays a constructor match, a cost-table
   lookup, a fuel check and a poll check on every instruction. Here all
   of that is done once, at translation time:

   - the program is split into basic blocks (leaders: pc 0, every
     branch/jump/call target, every instruction after a terminator);
   - each block's total cycle cost and instruction count are computed
     statically from the cost table;
   - every instruction is compiled to a pre-resolved closure; the block
     body is the chain of those closures (direct threading);
   - hot superinstruction pairs are fused ([Sandbox]+[Ld]/[St] — the
     MiSFIT access sequence — plus [Li]+[Alu(i)] and [Alu(i)]+[Br]);
   - the fuel and abort-poll checks run once per block, not once per
     instruction.

   Equivalence with the interpreter is maintained exactly; the argument
   (DESIGN.md §11) rests on two mechanisms:

   Fast-path entry conditions. A block body runs only when
   [cycles + cost <= fuel] (no intermediate instruction could have seen
   [cycles > fuel], because cycles grow monotonically by partial sums of
   [cost]) and [since_poll + len <= poll_every] (no intermediate
   instruction could have reached a poll point). Within the body,
   instructions that cannot fault or observe the machine accumulate
   their cycle/instruction counts statically; any instruction that can
   fault, stop, or hand the cpu to kernel code (memory access, Div/Rem,
   Checkcall, Kcall, every terminator) first flushes the accumulated
   counts and stores its own pc, so the architectural state at every
   observable point — fault, abort, kernel call — is exactly what the
   interpreter would expose.

   Careful path. When an entry condition fails, or when execution
   resumes mid-block (the wrapper refuels and re-enters at an arbitrary
   pc), the driver executes per-instruction slow closures with the
   interpreter's exact per-instruction semantics (and no fusion) until
   control reaches a block head again. The driver itself re-checks fuel,
   poll and pc bounds in the interpreter's order before every step. *)

type mode = Interp | Translated

let default_mode = ref Translated

type ctx = {
  cpu : Cpu.t;
  env : Cpu.env;
  (* Closures hand control back as a bare pc (no allocation on the hot
     transfer path); to finish instead, a closure calls {!finish}, which
     raises this flag and parks the outcome. The driver reads and the
     run entry resets them. *)
  mutable fin : bool;
  mutable out : Cpu.outcome;
  (* Blocks extend through a not-taken conditional branch; when a branch
     inside a body is taken, the body exits early and records here how
     many of the block's instructions it did NOT execute, so the driver
     can correct its poll-counter bookkeeping. Zero otherwise. *)
  mutable back : int;
}

let finish ctx o =
  ctx.fin <- true;
  ctx.out <- o;
  0

type t = {
  source : Insn.t array;
  nblocks : int;
  fused : int;
  elided : int;
  (* Accesses compiled as bare (non-flushing) superinstructions because a
     carried proof marks them unable to fault. *)
  (* Per-pc tails: [body_of_pc.(pc)] executes from [pc] to the end of
     its basic block, charging [cost_of_pc.(pc)] cycles over
     [len_of_pc.(pc)] instructions. Compiling every suffix (not just
     block heads) keeps execution on the fast path when a slice or an
     abort poll resumes mid-block. *)
  body_of_pc : (ctx -> int) array;
  cost_of_pc : int array;
  len_of_pc : int array;
  slow : (ctx -> int) array;
}

let source t = t.source
let block_count t = t.nblocks
let fused_pairs t = t.fused
let elided_accesses t = t.elided

(* -------------------------------------------------------------------- *)
(* Pre-resolved operators                                                *)
(* -------------------------------------------------------------------- *)

let cond_fn : Insn.cond -> int -> int -> bool = function
  | Eq -> fun a b -> a = b
  | Ne -> fun a b -> a <> b
  | Lt -> fun a b -> a < b
  | Le -> fun a b -> a <= b
  | Gt -> fun a b -> a > b
  | Ge -> fun a b -> a >= b

(* Operators that cannot fault, with {!Insn.eval_alu}'s exact shift
   clamping baked in. *)
let safe_alu : Insn.alu -> (int -> int -> int) option = function
  | Add -> Some (fun a b -> a + b)
  | Sub -> Some (fun a b -> a - b)
  | Mul -> Some (fun a b -> a * b)
  | And -> Some (fun a b -> a land b)
  | Or -> Some (fun a b -> a lor b)
  | Xor -> Some (fun a b -> a lxor b)
  | Shl ->
      Some
        (fun a b ->
          if b < 0 then a else if b >= Sys.int_size then 0 else a lsl b)
  | Shr ->
      Some
        (fun a b ->
          if b < 0 then a
          else if b >= Sys.int_size then if a < 0 then -1 else 0
          else a asr b)
  | Div | Rem -> None

(* Div/Rem share the interpreter's code path, fault mapping included. *)
let faulting_alu op a b =
  try Insn.eval_alu op a b
  with Division_by_zero -> raise (Cpu.Fault_exn Cpu.Division_by_zero)

(* Instructions that end a basic block. [Kcall]/[Kcallr] terminate
   because the kernel function receives the cpu: it may observe any
   counter, charge cycles or refuel, so state must be architecturally
   exact before dispatch and the driver's checks must rerun after. *)
let terminates : Insn.t -> bool = function
  | Br _ | Jmp _ | Call _ | Callr _ | Ret | Kcall _ | Kcallr _ | Halt -> true
  | Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Push _ | Pop _ | Sandbox _
  | Checkcall _ ->
      false

(* -------------------------------------------------------------------- *)
(* Fast path: block bodies                                               *)
(* -------------------------------------------------------------------- *)

(* Compile instructions [start, stop) into one closure chain. [pend_c] /
   [pend_i] / [pend_a] are cycles/instructions/memory-accesses executed
   since the last flush; they are added to the cpu before anything that
   can fault, stop or observe it, together with that instruction's own
   charge (the interpreter charges an instruction before executing it).
   [safe_at pc] holds when a carried verification proof guarantees the
   access at [pc] cannot fault: such a [Ld]/[St] is compiled like any
   other non-faulting straight-line instruction — no flush, no pc store —
   and its access count joins the pending accumulator. *)
let compile_block ~costs ~safe_at prog ~start ~stop ~fused ~elided =
  let cost_of pc = Costs.insn costs prog.(pc) in
  let rec comp pc pend_c pend_i pend_a : ctx -> int =
    if pc >= stop then
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.cycles <- t.cycles + pend_c;
        t.insns <- t.insns + pend_i;
        t.accesses <- t.accesses + pend_a;
        pc
    else
      let own = cost_of pc in
      let next = pc + 1 in
      match (prog.(pc) : Insn.t) with
      (* ---- fused superinstructions ---- *)
      | Mov (ra, rs)
        when pc + 2 < stop
             && (match (prog.(next), prog.(pc + 2)) with
                | Sandbox a, (Ld (_, b, _) | St (_, b, _)) ->
                    a = ra && b = ra
                | _ -> false) -> (
          (* The full MiSFIT access sequence:
             [Mov a,s; Sandbox a; Ld/St _,a,off]. The raw address is
             visible in [a] only between the first two instructions,
             where nothing can observe it, so the three collapse into
             sandbox-then-access. *)
          fused := !fused + 2;
          let sb = cost_of next in
          let dc = pend_c + own + sb + cost_of (pc + 2)
          and di = pend_i + 3
          and da = pend_a + 1 in
          let acc_pc = pc + 2 in
          let after = comp (pc + 3) 0 0 0 in
          match (prog.(acc_pc) : Insn.t) with
          | Ld (rd, _, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                let x = Mem.sandbox t.seg r.(rs) in
                r.(ra) <- x;
                t.sandbox_cy <- t.sandbox_cy + sb;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- acc_pc;
                t.accesses <- t.accesses + da;
                r.(rd) <- Mem.load t.mem (x + off);
                after ctx
          | St (rv, _, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                let x = Mem.sandbox t.seg r.(rs) in
                r.(ra) <- x;
                t.sandbox_cy <- t.sandbox_cy + sb;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- acc_pc;
                t.accesses <- t.accesses + da;
                Mem.store t.mem (x + off) r.(rv);
                after ctx
          | _ -> assert false)
      | Sandbox rs
        when next < stop
             && (match prog.(next) with
                | Ld _ | St _ -> true
                | _ -> false) -> (
          incr fused;
          let dc = pend_c + own + cost_of next
          and di = pend_i + 2
          and da = pend_a + 1 in
          let after = comp (pc + 2) 0 0 0 in
          match (prog.(next) : Insn.t) with
          | Ld (rd, rb, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rs) <- Mem.sandbox t.seg r.(rs);
                t.sandbox_cy <- t.sandbox_cy + own;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- next;
                t.accesses <- t.accesses + da;
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                after ctx
          | St (rv, rb, off) ->
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rs) <- Mem.sandbox t.seg r.(rs);
                t.sandbox_cy <- t.sandbox_cy + own;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.pc <- next;
                t.accesses <- t.accesses + da;
                Mem.store t.mem (r.(rb) + off) r.(rv);
                after ctx
          | _ -> assert false)
      (* A proof-elided access followed by a non-faulting ALU op: both are
         straight-line, so they fuse like [Li]+[Alu]. *)
      | Ld (rd, rb, off)
        when safe_at pc
             && next < stop
             && (match prog.(next) with
                | Alu (op, _, _, _) | Alui (op, _, _, _) ->
                    safe_alu op <> None
                | _ -> false) -> (
          incr fused;
          incr elided;
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2
          and pend_a = pend_a + 1 in
          match (prog.(next) : Insn.t) with
          | Alu (op, d2, a2, b2) ->
              let f = Option.get (safe_alu op) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                r.(d2) <- f r.(a2) r.(b2);
                after ctx
          | Alui (op, d2, a2, i2) ->
              let f = Option.get (safe_alu op) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- Mem.load t.mem (r.(rb) + off);
                r.(d2) <- f r.(a2) i2;
                after ctx
          | _ -> assert false)
      | Li (rd, v)
        when next < stop
             && (match prog.(next) with
                | Alu (op, _, _, _) | Alui (op, _, _, _) ->
                    safe_alu op <> None
                | _ -> false) -> (
          incr fused;
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op, d2, a2, b2) ->
              let f = Option.get (safe_alu op) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- v;
                r.(d2) <- f r.(a2) r.(b2);
                after ctx
          | Alui (op, d2, a2, imm) ->
              let f = Option.get (safe_alu op) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- v;
                r.(d2) <- f r.(a2) imm;
                after ctx
          | _ -> assert false)
      | Li (rd, v)
        when next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- v;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alu (op, rd, ra, rb)
        when safe_alu op <> None
             && next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let f = Option.get (safe_alu op) in
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- f r.(ra) r.(rb);
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alui (op, rd, ra, imm)
        when safe_alu op <> None
             && next < stop
             && (match prog.(next) with Br _ -> true | _ -> false)
             && pc + 2 >= stop -> (
          match (prog.(next) : Insn.t) with
          | Br (c, ba, bb, target) ->
              incr fused;
              let f = Option.get (safe_alu op) in
              let cmp = cond_fn c in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              let fall = pc + 2 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- f r.(ra) imm;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                if cmp r.(ba) r.(bb) then target else fall
          | _ -> assert false)
      | Alu (op, rd, ra, rb)
        when safe_alu op <> None
             && next < stop
             && (match prog.(next) with Jmp _ -> true | _ -> false) -> (
          match (prog.(next) : Insn.t) with
          | Jmp target ->
              incr fused;
              let f = Option.get (safe_alu op) in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- f r.(ra) r.(rb);
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                target
          | _ -> assert false)
      | Alui (op, rd, ra, imm)
        when safe_alu op <> None
             && next < stop
             && (match prog.(next) with Jmp _ -> true | _ -> false) -> (
          match (prog.(next) : Insn.t) with
          | Jmp target ->
              incr fused;
              let f = Option.get (safe_alu op) in
              let dc = pend_c + own + cost_of next
              and di = pend_i + 2
              and da = pend_a in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                let r = t.regs in
                r.(rd) <- f r.(ra) imm;
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                target
          | _ -> assert false)
      | Alu (op1, d1, a1, b1)
        when safe_alu op1 <> None
             && next < stop
             && (match prog.(next) with
                | Alu (op2, _, _, _) | Alui (op2, _, _, _) ->
                    safe_alu op2 <> None
                | _ -> false) -> (
          incr fused;
          let f1 = Option.get (safe_alu op1) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op2, d2, a2, b2) ->
              let f2 = Option.get (safe_alu op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- f1 r.(a1) r.(b1);
                r.(d2) <- f2 r.(a2) r.(b2);
                after ctx
          | Alui (op2, d2, a2, i2) ->
              let f2 = Option.get (safe_alu op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- f1 r.(a1) r.(b1);
                r.(d2) <- f2 r.(a2) i2;
                after ctx
          | _ -> assert false)
      | Alui (op1, d1, a1, i1)
        when safe_alu op1 <> None
             && next < stop
             && (match prog.(next) with
                | Alu (op2, _, _, _) | Alui (op2, _, _, _) ->
                    safe_alu op2 <> None
                | _ -> false) -> (
          incr fused;
          let f1 = Option.get (safe_alu op1) in
          let pend_c = pend_c + own + cost_of next
          and pend_i = pend_i + 2 in
          match (prog.(next) : Insn.t) with
          | Alu (op2, d2, a2, b2) ->
              let f2 = Option.get (safe_alu op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- f1 r.(a1) i1;
                r.(d2) <- f2 r.(a2) r.(b2);
                after ctx
          | Alui (op2, d2, a2, i2) ->
              let f2 = Option.get (safe_alu op2) in
              let after = comp (pc + 2) pend_c pend_i pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(d1) <- f1 r.(a1) i1;
                r.(d2) <- f2 r.(a2) i2;
                after ctx
          | _ -> assert false)
      (* ---- straight-line instructions ---- *)
      | Li (rd, v) ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a in
          fun ctx ->
            (ctx.cpu : Cpu.t).regs.(rd) <- v;
            after ctx
      | Mov (rd, rs) ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a in
          fun ctx ->
            let r = (ctx.cpu : Cpu.t).regs in
            r.(rd) <- r.(rs);
            after ctx
      | Sandbox rr ->
          let after = comp next (pend_c + own) (pend_i + 1) pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.regs.(rr) <- Mem.sandbox t.seg t.regs.(rr);
            t.sandbox_cy <- t.sandbox_cy + own;
            after ctx
      | Alu (op, rd, ra, rb) -> (
          match safe_alu op with
          | Some f ->
              let after = comp next (pend_c + own) (pend_i + 1) pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- f r.(ra) r.(rb);
                after ctx
          | None ->
              let dc = pend_c + own
              and di = pend_i + 1
              and da = pend_a in
              let after = comp next 0 0 0 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                t.pc <- pc;
                let r = t.regs in
                r.(rd) <- faulting_alu op r.(ra) r.(rb);
                after ctx)
      | Alui (op, rd, ra, imm) -> (
          match safe_alu op with
          | Some f ->
              let after = comp next (pend_c + own) (pend_i + 1) pend_a in
              fun ctx ->
                let r = (ctx.cpu : Cpu.t).regs in
                r.(rd) <- f r.(ra) imm;
                after ctx
          | None ->
              let dc = pend_c + own
              and di = pend_i + 1
              and da = pend_a in
              let after = comp next 0 0 0 in
              fun ctx ->
                let t : Cpu.t = ctx.cpu in
                t.cycles <- t.cycles + dc;
                t.insns <- t.insns + di;
                t.accesses <- t.accesses + da;
                t.pc <- pc;
                let r = t.regs in
                r.(rd) <- faulting_alu op r.(ra) imm;
                after ctx)
      (* Proof-elided accesses: the address is provably in-segment for the
         running segment, so the access can never fault and is compiled
         like [Mov] — no counter flush, no pc store. The pending access
         count keeps it observable exactly where the interpreter would
         expose it (the next fault, kernel call or block exit). *)
      | Ld (rd, rb, off) when safe_at pc ->
          incr elided;
          let after = comp next (pend_c + own) (pend_i + 1) (pend_a + 1) in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
            after ctx
      | St (rv, rb, off) when safe_at pc ->
          incr elided;
          let after = comp next (pend_c + own) (pend_i + 1) (pend_a + 1) in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
            after ctx
      | Ld (rd, rb, off) ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
            after ctx
      | St (rv, rb, off) ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
            after ctx
      | Push rv ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            let r = t.regs in
            r.(Insn.sp) <- r.(Insn.sp) - 1;
            Mem.store t.mem r.(Insn.sp) r.(rv);
            after ctx
      | Pop rd ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a + 1 in
          let after = comp next 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.pc <- pc;
            t.accesses <- t.accesses + da;
            let r = t.regs in
            r.(rd) <- Mem.load t.mem r.(Insn.sp);
            r.(Insn.sp) <- r.(Insn.sp) + 1;
            after ctx
      | Checkcall rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          let after = comp next 0 0 0 in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.checkcall_cy <- t.checkcall_cy + own;
            t.pc <- pc;
            let id = t.regs.(rr) in
            if ctx.env.call_ok id then after ctx
            else raise (Cpu.Fault_exn (Cpu.Bad_call_target id))
      (* ---- conditional branch inside the block ---- *)
      | Br (c, ra, rb, target) when next < stop ->
          (* Not taken: fall through inline, costs still pending. Taken:
             flush, record the unexecuted remainder for the driver's
             poll counter, and exit early. *)
          let cmp = cond_fn c in
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          let back = stop - next in
          let after = comp next (pend_c + own) (pend_i + 1) pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            if cmp t.regs.(ra) t.regs.(rb) then begin
              t.cycles <- t.cycles + dc;
              t.insns <- t.insns + di;
              t.accesses <- t.accesses + da;
              ctx.back <- back;
              target
            end
            else after ctx
      (* ---- terminators ---- *)
      | Br (c, ra, rb, target) ->
          let cmp = cond_fn c in
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            if cmp t.regs.(ra) t.regs.(rb) then target else next
      | Jmp target ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            target
      | Call target ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            if t.depth >= Cpu.max_call_depth then
              raise (Cpu.Fault_exn Cpu.Call_stack_overflow);
            t.callstack <- next :: t.callstack;
            t.depth <- t.depth + 1;
            target
      | Callr rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            if t.depth >= Cpu.max_call_depth then
              raise (Cpu.Fault_exn Cpu.Call_stack_overflow);
            t.callstack <- next :: t.callstack;
            t.depth <- t.depth + 1;
            t.regs.(rr)
      | Ret ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            (match t.callstack with
            | [] ->
                t.pc <- pc;
                finish ctx Cpu.Halted
            | ret :: rest ->
                t.callstack <- rest;
                t.depth <- t.depth - 1;
                ret)
      | Kcall id ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            (match ctx.env.kcall id t with
            | Cpu.K_ok -> next
            | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
            | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
      | Kcallr rr ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            (match ctx.env.kcall t.regs.(rr) t with
            | Cpu.K_ok -> next
            | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
            | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
      | Halt ->
          let dc = pend_c + own
          and di = pend_i + 1
          and da = pend_a in
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.cycles <- t.cycles + dc;
            t.insns <- t.insns + di;
            t.accesses <- t.accesses + da;
            t.pc <- pc;
            finish ctx Cpu.Halted
  in
  comp start 0 0 0

(* -------------------------------------------------------------------- *)
(* Careful path: one interpreter-exact closure per instruction           *)
(* -------------------------------------------------------------------- *)

(* The driver has already re-checked fuel/poll/bounds and stored [pc],
   exactly as the interpreter's loop head does; each closure replicates
   one loop iteration: charge, attribute, step. *)
let compile_slow ~costs pc (i : Insn.t) : ctx -> int =
  let cost = Costs.insn costs i in
  let next = pc + 1 in
  match i with
  | Li (rd, v) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.regs.(rd) <- v;
        next
  | Mov (rd, rs) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        let r = t.regs in
        r.(rd) <- r.(rs);
        next
  | Alu (op, rd, ra, rb) -> (
      match safe_alu op with
      | Some f ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- f r.(ra) r.(rb);
            next
      | None ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- faulting_alu op r.(ra) r.(rb);
            next)
  | Alui (op, rd, ra, imm) -> (
      match safe_alu op with
      | Some f ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- f r.(ra) imm;
            next
      | None ->
          fun ctx ->
            let t : Cpu.t = ctx.cpu in
            t.insns <- t.insns + 1;
            t.cycles <- t.cycles + cost;
            let r = t.regs in
            r.(rd) <- faulting_alu op r.(ra) imm;
            next)
  | Ld (rd, rb, off) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        t.regs.(rd) <- Mem.load t.mem (t.regs.(rb) + off);
        next
  | St (rv, rb, off) ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        Mem.store t.mem (t.regs.(rb) + off) t.regs.(rv);
        next
  | Push rv ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        let r = t.regs in
        r.(Insn.sp) <- r.(Insn.sp) - 1;
        Mem.store t.mem r.(Insn.sp) r.(rv);
        next
  | Pop rd ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.accesses <- t.accesses + 1;
        let r = t.regs in
        r.(rd) <- Mem.load t.mem r.(Insn.sp);
        r.(Insn.sp) <- r.(Insn.sp) + 1;
        next
  | Sandbox rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.sandbox_cy <- t.sandbox_cy + cost;
        t.regs.(rr) <- Mem.sandbox t.seg t.regs.(rr);
        next
  | Checkcall rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        t.checkcall_cy <- t.checkcall_cy + cost;
        let id = t.regs.(rr) in
        if ctx.env.call_ok id then next
        else raise (Cpu.Fault_exn (Cpu.Bad_call_target id))
  | Br (c, ra, rb, target) ->
      let cmp = cond_fn c in
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        if cmp t.regs.(ra) t.regs.(rb) then target else next
  | Jmp target ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        target
  | Call target ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        if t.depth >= Cpu.max_call_depth then
          raise (Cpu.Fault_exn Cpu.Call_stack_overflow);
        t.callstack <- next :: t.callstack;
        t.depth <- t.depth + 1;
        target
  | Callr rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        if t.depth >= Cpu.max_call_depth then
          raise (Cpu.Fault_exn Cpu.Call_stack_overflow);
        t.callstack <- next :: t.callstack;
        t.depth <- t.depth + 1;
        t.regs.(rr)
  | Ret ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        (match t.callstack with
        | [] -> finish ctx Cpu.Halted
        | ret :: rest ->
            t.callstack <- rest;
            t.depth <- t.depth - 1;
            ret)
  | Kcall id ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        (match ctx.env.kcall id t with
        | Cpu.K_ok -> next
        | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
        | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
  | Kcallr rr ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        (match ctx.env.kcall t.regs.(rr) t with
        | Cpu.K_ok -> next
        | Cpu.K_abort reason -> finish ctx (Cpu.Aborted reason)
        | Cpu.K_fault f -> finish ctx (Cpu.Faulted f))
  | Halt ->
      fun ctx ->
        let t : Cpu.t = ctx.cpu in
        t.insns <- t.insns + 1;
        t.cycles <- t.cycles + cost;
        finish ctx Cpu.Halted

(* -------------------------------------------------------------------- *)
(* Translation                                                           *)
(* -------------------------------------------------------------------- *)

let translate ?(costs = Costs.default) ?safe prog =
  let source = Array.copy prog in
  let prog = source in
  let n = Array.length prog in
  (* [safe.(pc)] licenses compiling the access at [pc] without fault
     handling. A map of the wrong length means the proof was derived from
     different code; ignore it rather than mis-align indices. *)
  let safe_at =
    match safe with
    | Some m when Array.length m = n -> fun pc -> Array.unsafe_get m pc
    | Some _ | None -> fun _ -> false
  in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc i ->
      (match (i : Insn.t) with
      | Br (_, _, _, target) | Jmp target | Call target ->
          if target >= 0 && target < n then leader.(target) <- true
      | _ -> ());
      (* A conditional branch falls through into its block (the body
         exits early when taken), so unlike the other terminators it
         does not force a leader at pc + 1. *)
      match (i : Insn.t) with
      | Br _ -> ()
      | i -> if terminates i && pc + 1 < n then leader.(pc + 1) <- true)
    prog;
  let fused = ref 0 in
  let elided = ref 0 in
  let nblocks = ref 0 in
  let slow = Array.mapi (fun k i -> compile_slow ~costs k i) prog in
  let body_of_pc = Array.make n (fun ctx -> finish ctx Cpu.Halted) in
  let cost_of_pc = Array.make n 0 in
  let len_of_pc = Array.make n 0 in
  (* Compiling a tail for every suffix of a block is quadratic in block
     length; past this cap a pc keeps its slow closure as a
     one-instruction tail (same semantics, and the fast-entry conditions
     stay trivially exact), bounding translation to [tail_cap * n]
     closures. Suffixes longer than the poll interval could never pass
     the fast-entry poll condition anyway. *)
  let tail_cap = 64 in
  let pc = ref 0 in
  while !pc < n do
    let start = !pc in
    let j = ref start in
    let ends pc =
      match (prog.(pc) : Insn.t) with
      | Br _ -> false (* extends through its fall-through *)
      | i -> terminates i
    in
    while (not (ends !j)) && !j + 1 < n && not leader.(!j + 1) do
      incr j
    done;
    let stop = !j + 1 in
    let scrap = ref 0 in
    for k = start to stop - 1 do
      if stop - k <= tail_cap then begin
        let f = if k = start then fused else scrap in
        let e = if k = start then elided else scrap in
        body_of_pc.(k) <-
          compile_block ~costs ~safe_at prog ~start:k ~stop ~fused:f
            ~elided:e;
        len_of_pc.(k) <- stop - k;
        let cost = ref 0 in
        for m = k to stop - 1 do
          cost := !cost + Costs.insn costs prog.(m)
        done;
        cost_of_pc.(k) <- !cost
      end
      else begin
        (* Slow closures expect [cpu.pc] to be current (the slow driver
           branch stores it); the fast branch does not, so do it here. *)
        let s = slow.(k) in
        (body_of_pc.(k) <-
           fun ctx ->
             let t : Cpu.t = ctx.cpu in
             t.pc <- k;
             s ctx);
        len_of_pc.(k) <- 1;
        cost_of_pc.(k) <- Costs.insn costs prog.(k)
      end
    done;
    incr nblocks;
    pc := stop
  done;
  {
    source;
    nblocks = !nblocks;
    fused = !fused;
    elided = !elided;
    body_of_pc;
    cost_of_pc;
    len_of_pc;
    slow;
  }

(* -------------------------------------------------------------------- *)
(* Driver                                                                *)
(* -------------------------------------------------------------------- *)

let run ?(poll_every = 32) env (cpu : Cpu.t) t =
  (* Checked mode is the interpreted-extension measurement model: its
     per-access check cost is the interpretation price, so it must keep
     being interpreted. *)
  if cpu.checked then Cpu.run ~poll_every env cpu t.source
  else begin
    let ctx = { cpu; env; fin = false; out = Cpu.Halted; back = 0 } in
    let len = Array.length t.source in
    let body_of_pc = t.body_of_pc
    and cost_of_pc = t.cost_of_pc
    and len_of_pc = t.len_of_pc
    and slow = t.slow in
    (* One iteration per control transfer, replicating the interpreter's
       loop-head checks in its exact order: fuel, poll, pc bounds.
       [cpu.pc] is written only where it is observable — on every exit
       and before each slow step (fast bodies store it themselves ahead
       of anything that can fault or call out). Any in-range pc has a
       fast tail running to the end of its block, so resuming mid-block
       (after a poll reset or a refueled slice) stays on the fast path;
       the bounds check above makes the unsafe array reads safe. *)
    let rec enter pc since_poll =
      if cpu.cycles > cpu.fuel then begin
        cpu.pc <- pc;
        Cpu.Out_of_fuel
      end
      else if since_poll >= poll_every then begin
        cpu.pc <- pc;
        match env.Cpu.poll () with
        | Some reason -> Cpu.Aborted reason
        | None -> enter pc 0
      end
      else if pc < 0 || pc >= len then begin
        cpu.pc <- pc;
        Cpu.Faulted (Cpu.Bad_pc pc)
      end
      else
        let tail_len = Array.unsafe_get len_of_pc pc in
        let walked = since_poll + tail_len in
        if
          walked <= poll_every
          && cpu.cycles + Array.unsafe_get cost_of_pc pc <= cpu.fuel
        then
          let pc' = Array.unsafe_get body_of_pc pc ctx in
          if ctx.fin then ctx.out
          else if ctx.back = 0 then enter pc' walked
          else begin
            (* A conditional branch inside the body was taken: the tail's
               last [ctx.back] instructions did not run. *)
            let w = walked - ctx.back in
            ctx.back <- 0;
            enter pc' w
          end
        else begin
          cpu.pc <- pc;
          let pc' = Array.unsafe_get slow pc ctx in
          if ctx.fin then ctx.out else enter pc' (since_poll + 1)
        end
    in
    match enter cpu.pc 0 with
    | o -> o
    | exception Cpu.Fault_exn f -> Cpu.Faulted f
    | exception Mem.Fault { addr; write } ->
        Cpu.Faulted (Cpu.Memory_fault { addr; write })
  end
