(** Cycle-cost model of the simulated machine.

    The paper's test platform is a 120 MHz Pentium; all of its measurements
    are cycle counts scaled by the clock. We keep the same accounting: every
    instruction executed by {!Cpu} and every kernel service charges cycles
    against the virtual clock, and reports convert cycles to microseconds at
    {!mhz}.

    Per-instruction charges follow the paper where it is specific: a function
    call costs ~35 cycles (§6), a sandboxing sequence 2-5 cycles per
    load/store (§3.3), an indirect-call hash probe 10-15 cycles (§3.3).
    Kernel-service charges (transaction begin/commit, lock acquire/release,
    undo bookkeeping) are calibrated once against Tables 3-6 and recorded
    here; all relative results then emerge from executing the code paths. *)

type t = {
  alu : int;
  li : int;
  mov : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
  call : int;  (** intra-graft call, ~35 cycles on the paper's machine *)
  ret : int;
  kcall : int;  (** graft-to-kernel call dispatch *)
  push : int;
  pop : int;
  sandbox : int;  (** the MiSFIT mask+or (plus register spill) sequence *)
  checkcall : int;  (** sparse open-hash probe, 10-15 cycles *)
  halt : int;
  flow_check : int;
      (** kcall-flow transition test at dispatch: one row index plus one
          bit test, charged only when flow enforcement is on *)
}

val default : t

val insn : t -> Insn.t -> int
(** Cycle charge for one instruction. *)

val mhz : float
(** Simulated clock rate: 120 MHz, as in the paper. *)

val us_of_cycles : int -> float
(** Convert a virtual-cycle count to microseconds at {!mhz}. *)

val cycles_of_us : float -> int
(** Nearest virtual-cycle count for a microsecond value; inverse of
    {!us_of_cycles} for any representable cycle count. *)
