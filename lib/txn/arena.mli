(** Fixed-capacity slot pools for the transaction hot path.

    Every graft invocation begins a transaction and (usually) pushes a
    few undo entries; allocating a fresh frame and log nodes per
    invocation makes the invoke path minor-heap-bound. An arena keeps a
    bounded stash of retired objects and hands them back on the next
    {!take}, so the steady-state invoke path recycles one frame and its
    embedded undo arrays instead of allocating. Pools are per-manager
    and managers are per-domain (the parallel fan-out gives each worker
    its own kernel), so an arena is never shared across domains and
    takes no lock.

    The pool is pure storage: it never constructs objects itself —
    {!take} runs the caller's [otherwise] thunk on a miss — so a pool
    over a cyclic record type (a transaction frame that points at its
    manager) needs no dummy value. *)

type 'a t

val create : slots:int -> unit -> 'a t
(** A pool retaining at most [slots] retired objects. The backing array
    is materialized lazily on the first {!put} (the element itself
    seeds it), so an unused pool costs nothing.
    @raise Invalid_argument on a negative [slots]. *)

val take : 'a t -> otherwise:(unit -> 'a) -> 'a
(** Pop a retired object, or build a fresh one with [otherwise] when
    the pool is empty. Either way the object counts as outstanding
    until {!put} returns it. *)

val put : 'a t -> 'a -> unit
(** Return an object to the pool. Beyond [slots] retained objects the
    arena drops it for the GC instead — the pool bounds retained
    memory, it is not a leak amplifier. The caller must already have
    cleared any references the object holds (a parked object pins
    whatever it still points at). *)

val outstanding : 'a t -> int
(** Objects taken and not yet returned. Balanced take/put traffic
    holds this at the live-object count — the disaster-rig invariant
    that a storm of aborted invocations does not strand frames. *)

val retained : 'a t -> int
(** Objects parked in the pool, ready for reuse. *)

val capacity : 'a t -> int

val slots_for : Rlimit.t -> int
(** Derive a pool size from a resource-limit set: one slot per 256
    memory words of headroom, clamped to [16, 1024] — enough that a
    graft within its memory budget never misses, without letting an
    unlimited account pin an unbounded stash. *)
