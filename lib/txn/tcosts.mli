(** Cycle charges for kernel transaction services.

    These constants calibrate the simulator's kernel paths against the
    paper's measurements (Tables 3-6 and §4.5/§4.6); they are inputs to the
    model. Everything *relative* — per-path increments, scaling with lock
    count, the abort-cost equation [35us + 10us*L + c*G] — emerges from the
    code paths that consume them. All values are cycles at 120 MHz. *)

type t = {
  txn_begin : int;  (** allocate txn object, associate with thread (~36 us) *)
  txn_commit : int;  (** free undo stack and txn object (~30 us) *)
  txn_abort : int;  (** constant abort overhead, 32-38 us (§4.5) *)
  nested_begin : int;  (** child txn object allocation (cheaper) *)
  nested_commit : int;  (** merge undo stack and locks into parent *)
  mutex_acquire : int;  (** conventional kernel mutex (~14 us; a transaction lock
      then costs ~33 us as in Table 3) *)
  mutex_release : int;
  txn_lock_extra : int;
      (** extra cost of a transaction lock over a mutex (~19 us, §4.6) *)
  lock_release_abort : int;  (** releasing one lock during abort (~10 us) *)
  undo_push : int;  (** pushing one undo record *)
  policy_indirection : int;
      (** one encapsulated policy decision point (a ~35-cycle function call,
          §6 / Fig 5) *)
  limit_check : int;  (** one resource-limit debit/credit *)
  snap_word : int;
      (** checkpointing one dirty word before a graft dispatch under the
          [Snapshot_rollback] strategy (bcopy-like, ~6 cycles/word) *)
  restore_word : int;
      (** restoring one dirty word during whole-kernel rollback *)
}

val default : t

val us : float -> int
(** Convenience: microseconds to cycles at the simulated clock rate. *)
