(** Per-thread resource limits for quantity-constrained resources (§3.2).

    Every thread carries a set of limits on the amounts of various resources
    it may consume. A freshly installed graft has limits of zero; the
    installing thread may {!transfer} headroom from its own limits to the
    graft, or {!delegate} so the graft's allocations are billed against the
    installer's own limits — analogous to ticket delegation in lottery
    scheduling. When a graft is invoked, the kernel swaps the thread's
    limits for the graft's, so the ordinary enforcement path covers grafts
    with no extra machinery. *)

type resource = Memory_words | Wired_pages | Io_slots | Net_packets

val all_resources : resource list
val resource_name : resource -> string

type t

val create :
  ?memory_words:int ->
  ?wired_pages:int ->
  ?io_slots:int ->
  ?net_packets:int ->
  unit ->
  t
(** Unspecified resources default to 0. *)

val zero : unit -> t
(** The limits a newly installed graft starts with: all zero. *)

val unlimited : unit -> t

val delegate : t -> t
(** A handle that shares the underlying accounts: consumption through the
    delegate is billed against the delegator (and vice versa). *)

val same_account : t -> t -> bool

val limit : t -> resource -> int
val used : t -> resource -> int
val available : t -> resource -> int

val request : t -> resource -> int -> (unit, [ `Denied ]) result
(** Debit usage; denied if it would exceed the limit. Amounts <= 0 are
    invalid. *)

val release : t -> resource -> int -> unit
(** Credit usage back. Releasing more than is used clamps to zero. *)

val transfer : src:t -> dst:t -> resource -> int -> (unit, [ `Denied ]) result
(** Move limit headroom from [src] to [dst]. Denied if [src] would end up
    with a limit below its current usage, or if the handles share an
    account (transfer would be meaningless). *)

val derive :
  parent:t ->
  ?memory_words:int ->
  ?wired_pages:int ->
  ?io_slots:int ->
  ?net_packets:int ->
  unit ->
  (t, [ `Denied ]) result
(** A fresh child account funded by {!transfer}s out of [parent]:
    resource-limit inheritance for multi-tenant admission. The sum of
    limits across parent and children is invariant, so a runaway child
    is capped at its granted slice and cannot dip into a sibling's.
    Denied (with [parent] rolled back to its prior state) if any
    requested amount exceeds the parent's free headroom. Unspecified
    resources default to 0.
    @raise Invalid_argument on a negative amount. *)

val pp : Format.formatter -> t -> unit

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the account's limits and uses; the returned
    thunk restores them in place (re-runnable). For kernel snapshots. *)
