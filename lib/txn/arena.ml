type 'a t = {
  mutable slots : 'a array; (* [0, free) are parked, ready for reuse *)
  mutable free : int;
  mutable outstanding : int;
  capacity : int;
}

let create ~slots () =
  if slots < 0 then invalid_arg "Arena.create: negative slot count";
  { slots = [||]; free = 0; outstanding = 0; capacity = slots }

let take t ~otherwise =
  t.outstanding <- t.outstanding + 1;
  if t.free > 0 then begin
    let i = t.free - 1 in
    t.free <- i;
    t.slots.(i)
  end
  else otherwise ()

let put t x =
  t.outstanding <- t.outstanding - 1;
  (* The first returned object seeds the backing array, so the pool
     needs no dummy element for its type. *)
  if Array.length t.slots = 0 && t.capacity > 0 then
    t.slots <- Array.make t.capacity x;
  if t.free < Array.length t.slots then begin
    t.slots.(t.free) <- x;
    t.free <- t.free + 1
  end

let outstanding t = t.outstanding
let retained t = t.free
let capacity t = t.capacity

let slots_for limits =
  let words = Rlimit.limit limits Rlimit.Memory_words in
  max 16 (min 1024 (words / 256))
