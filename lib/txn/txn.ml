module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Trace = Vino_trace.Trace
module Span = Vino_trace.Span
module Profile = Vino_trace.Profile

(* Counter handles, interned once at load: the emit sites below
   bump a flat per-sink array instead of hashing a dotted name. *)
let h_txn_begins = Vino_trace.Counters.handle "txn.begins"
let h_undo_pushes = Vino_trace.Counters.handle "undo.pushes"
let h_txn_aborts = Vino_trace.Counters.handle "txn.aborts"
let h_undo_replays = Vino_trace.Counters.handle "undo.replays"
let h_txn_commits_nested = Vino_trace.Counters.handle "txn.commits_nested"
let h_txn_commits = Vino_trace.Counters.handle "txn.commits"
let h_txn_deferred_failures = Vino_trace.Counters.handle "txn.deferred_failures"

(* The engine process this code runs on behalf of — the profiler's frame
   key. Only called when a sink is installed, and only from code that
   already performs engine effects (so always inside a process). *)
let trace_ctx () = Engine.proc_id (Engine.self ())

type state = Active | Committed | Aborted of string

type mgr = {
  engine : Engine.t;
  wheel : Tick.t;
  costs : Tcosts.t;
  mutable next_id : int;
  mutable n_begins : int;
  mutable n_commits : int;
  mutable n_aborts : int;
  mutable n_live : int;
  mutable n_undo_live : int; (* undo entries of unresolved transactions *)
  mutable n_undo_failures : int; (* undo entries that raised during replay *)
  mutable n_deferred_failures : int; (* deferred actions that raised *)
  mutable charge_undo : bool;
      (* false under [Snapshot_rollback]: undo machinery still runs (it is
         the state-recovery mechanism) but its per-record cycle charges are
         replaced by the checkpoint/restore charges levied at dispatch *)
  current : (int, tref) Hashtbl.t; (* engine proc id -> innermost txn *)
  undo_slots : int; (* undo entries preallocated per frame *)
  frames : tref Arena.t; (* retired frames, recycled by [begin_] *)
}
and tref = T : t -> tref

(* Every field a [begin_] must re-initialize is mutable so a retired
   frame can be recycled in place (see [recycle]); the embedded undo
   log keeps its backing arrays across reuse. [mgr] is immutable: the
   arena is per-manager, so a frame never migrates. *)
and t = {
  mgr : mgr;
  mutable tid : int;
  mutable tname : string;
  mutable tparent : t option;
  undo : Undo_log.t;
  mutable locks : Lock.held list; (* most recently acquired first *)
  mutable tstate : state;
  mutable abort_reason : string option;
  mutable active_children : int;
  mutable deferred : (unit -> unit) list; (* run at top-level commit only *)
  mutable parked : bool; (* already returned to the arena *)
}

let default_undo_slots = 64
let default_frame_slots = 64

let create_mgr engine ~wheel ?(costs = Tcosts.default)
    ?(undo_slots = default_undo_slots) () =
  if undo_slots < 0 then invalid_arg "Txn.create_mgr: negative undo_slots";
  {
    engine;
    wheel;
    costs;
    next_id = 0;
    n_begins = 0;
    n_commits = 0;
    n_aborts = 0;
    n_live = 0;
    n_undo_live = 0;
    n_undo_failures = 0;
    n_deferred_failures = 0;
    charge_undo = true;
    current = Hashtbl.create 16;
    undo_slots;
    frames = Arena.create ~slots:default_frame_slots ();
  }

let frames_outstanding m = Arena.outstanding m.frames
let frames_retained m = Arena.retained m.frames

let engine m = m.engine
let wheel m = m.wheel
let costs m = m.costs
let begins m = m.n_begins
let commits m = m.n_commits
let aborts m = m.n_aborts
let live m = m.n_live
let undo_live m = m.n_undo_live
let undo_failures m = m.n_undo_failures
let deferred_failures m = m.n_deferred_failures
let charge_undo m = m.charge_undo
let set_charge_undo m v = m.charge_undo <- v

let saver m () =
  let next_id = m.next_id
  and n_begins = m.n_begins
  and n_commits = m.n_commits
  and n_aborts = m.n_aborts
  and n_live = m.n_live
  and n_undo_live = m.n_undo_live
  and n_undo_failures = m.n_undo_failures
  and n_deferred_failures = m.n_deferred_failures
  and charge = m.charge_undo in
  fun () ->
    m.next_id <- next_id;
    m.n_begins <- n_begins;
    m.n_commits <- n_commits;
    m.n_aborts <- n_aborts;
    m.n_live <- n_live;
    m.n_undo_live <- n_undo_live;
    m.n_undo_failures <- n_undo_failures;
    m.n_deferred_failures <- n_deferred_failures;
    m.charge_undo <- charge;
    (* per-proc current-txn map is empty pre-run; the arena stays warm
       (frame reuse changes no observable counter or cost) *)
    Hashtbl.reset m.current

let id t = t.tid
let name t = t.tname
let state t = t.tstate
let is_active t = t.tstate = Active
let parent t = t.tparent
let undo_depth t = Undo_log.length t.undo
let locks_held t = List.length t.locks

let begin_ m ?parent ~name () =
  (match parent with
  | Some p ->
      if p.mgr != m then invalid_arg "Txn.begin_: parent on another manager";
      if not (is_active p) then
        invalid_arg "Txn.begin_: parent is not active";
      p.active_children <- p.active_children + 1
  | None -> ());
  let tid = m.next_id in
  m.next_id <- tid + 1;
  m.n_begins <- m.n_begins + 1;
  m.n_live <- m.n_live + 1;
  let cost =
    match parent with
    | Some _ -> m.costs.nested_begin
    | None -> m.costs.txn_begin
  in
  Engine.delay cost;
  if Trace.enabled () then begin
    Trace.incr_h h_txn_begins;
    Trace.span Span.Txn_begin ~label:name
      ~start:(Engine.now m.engine - cost)
      ~dur:cost;
    Trace.charge ~ctx:(trace_ctx ()) Profile.Txn cost
  end;
  let (T t) =
    Arena.take m.frames ~otherwise:(fun () ->
        T
          {
            mgr = m;
            tid;
            tname = name;
            tparent = parent;
            undo = Undo_log.create ~slots:m.undo_slots ();
            locks = [];
            tstate = Active;
            abort_reason = None;
            active_children = 0;
            deferred = [];
            parked = false;
          })
  in
  (* A recycled frame comes back with its undo log, locks and deferred
     list already empty (resolution emptied them; [recycle] checks). *)
  t.tid <- tid;
  t.tname <- name;
  t.tparent <- parent;
  t.tstate <- Active;
  t.abort_reason <- None;
  t.active_children <- 0;
  t.parked <- false;
  t

(* Return a resolved frame to its manager's arena for the next
   [begin_]. Only for callers that know no reference to [t] survives —
   the graft invocation path owns its transaction outright; a frame
   handed to user code must simply never be recycled (the GC takes it,
   exactly as before arenas). *)
let recycle t =
  match t.tstate with
  | Active -> invalid_arg "Txn.recycle: transaction is still active"
  | Committed | Aborted _ ->
      if not t.parked then begin
        t.parked <- true;
        (* a parked frame must pin nothing *)
        t.tparent <- None;
        t.tname <- "";
        t.abort_reason <- None;
        assert (Undo_log.is_empty t.undo);
        assert (t.locks == [] && t.deferred == []);
        Arena.put t.mgr.frames (T t)
      end

let defer t action =
  if not (is_active t) then invalid_arg "Txn.defer: transaction is not active";
  t.deferred <- action :: t.deferred

let push_undo t ?cost ~label undo =
  if not (is_active t) then
    invalid_arg "Txn.push_undo: transaction is not active";
  Undo_log.push t.undo ?cost ~label undo;
  t.mgr.n_undo_live <- t.mgr.n_undo_live + 1;
  if t.mgr.charge_undo then begin
    Engine.delay t.mgr.costs.undo_push;
    if Trace.enabled () then begin
      Trace.incr_h h_undo_pushes;
      Trace.charge ~ctx:(trace_ctx ()) Profile.Undo t.mgr.costs.undo_push
    end
  end

let request_abort t reason =
  if is_active t && t.abort_reason = None then t.abort_reason <- Some reason

let abort_requested t = t.abort_reason

let rec chain_abort_reason t =
  match t.abort_reason with
  | Some _ as r -> r
  | None -> (
      match t.tparent with Some p -> chain_abort_reason p | None -> None)

let poll t () = if is_active t then chain_abort_reason t else None

let owner t =
  { Lock.name = t.tname; request_abort = Some (fun r -> request_abort t r) }

let resolve t = t.mgr.n_live <- t.mgr.n_live - 1

let finish_child t =
  match t.tparent with
  | Some p -> p.active_children <- p.active_children - 1
  | None -> ()

let abort t ~reason =
  match t.tstate with
  | Aborted _ -> ()
  | Committed -> invalid_arg "Txn.abort: already committed"
  | Active ->
      if t.active_children > 0 then
        invalid_arg "Txn.abort: children still active";
      let pending = Undo_log.length t.undo in
      let replayed_cost =
        Undo_log.replay
          ~on_error:(fun ~label:_ _exn ->
            t.mgr.n_undo_failures <- t.mgr.n_undo_failures + 1)
          t.undo
      in
      (* under Snapshot_rollback the replay still runs (it is the recovery
         mechanism) but the dispatch-time restore charge stands in for it *)
      let replay_cost = if t.mgr.charge_undo then replayed_cost else 0 in
      t.mgr.n_undo_live <- t.mgr.n_undo_live - pending;
      List.iter (fun h -> Lock.release ~during_abort:true h) t.locks;
      t.locks <- [];
      t.deferred <- [];
      t.tstate <- Aborted reason;
      t.mgr.n_aborts <- t.mgr.n_aborts + 1;
      resolve t;
      finish_child t;
      Engine.delay (t.mgr.costs.txn_abort + replay_cost);
      if Trace.enabled () then begin
        let now = Engine.now t.mgr.engine in
        Trace.incr_h h_txn_aborts;
        Trace.span Span.Txn_abort ~label:t.tname
          ~start:(now - t.mgr.costs.txn_abort - replay_cost)
          ~dur:t.mgr.costs.txn_abort;
        if pending > 0 then begin
          Trace.add_h h_undo_replays pending;
          Trace.span Span.Undo_replay ~label:t.tname
            ~start:(now - replay_cost) ~dur:replay_cost
        end;
        let ctx = trace_ctx () in
        Trace.charge ~ctx Profile.Txn t.mgr.costs.txn_abort;
        Trace.charge ~ctx Profile.Undo replay_cost
      end

let commit t =
  match t.tstate with
  | Committed -> Ok ()
  | Aborted reason -> Error reason
  | Active -> (
      if t.active_children > 0 then
        invalid_arg "Txn.commit: children still active";
      match chain_abort_reason t with
      | Some reason ->
          (* requested on us or on an ancestor: either way this transaction
             cannot usefully continue *)
          abort t ~reason;
          Error reason
      | None ->
          let deferred =
            match t.tparent with
            | Some p ->
                (* merge undo stack, locks and deferred work into the parent
                   (§3.1): the locks are now held by the parent, so a
                   time-out must be able to abort the parent — re-point each
                   one before handing it over *)
                Undo_log.merge_into ~parent:p.undo t.undo;
                let powner = owner p in
                List.iter (fun h -> Lock.reassign h powner) t.locks;
                p.locks <- t.locks @ p.locks;
                t.locks <- [];
                p.deferred <- t.deferred @ p.deferred;
                t.deferred <- [];
                Engine.delay t.mgr.costs.nested_commit;
                if Trace.enabled () then begin
                  Trace.incr_h h_txn_commits_nested;
                  Trace.span Span.Txn_commit ~label:t.tname
                    ~start:(Engine.now t.mgr.engine - t.mgr.costs.nested_commit)
                    ~dur:t.mgr.costs.nested_commit;
                  Trace.charge ~ctx:(trace_ctx ()) Profile.Txn
                    t.mgr.costs.nested_commit
                end;
                []
            | None ->
                List.iter (fun h -> Lock.release h) t.locks;
                t.locks <- [];
                t.mgr.n_undo_live <-
                  t.mgr.n_undo_live - Undo_log.length t.undo;
                Undo_log.clear t.undo;
                let d = List.rev t.deferred in
                t.deferred <- [];
                Engine.delay t.mgr.costs.txn_commit;
                if Trace.enabled () then begin
                  Trace.incr_h h_txn_commits;
                  Trace.span Span.Txn_commit ~label:t.tname
                    ~start:(Engine.now t.mgr.engine - t.mgr.costs.txn_commit)
                    ~dur:t.mgr.costs.txn_commit;
                  Trace.charge ~ctx:(trace_ctx ()) Profile.Txn
                    t.mgr.costs.txn_commit
                end;
                d
          in
          t.tstate <- Committed;
          t.mgr.n_commits <- t.mgr.n_commits + 1;
          resolve t;
          finish_child t;
          (* Deferred actions run only now, with the transaction already
             Committed and the counters balanced: the decision to commit is
             final, so a raising action cannot be allowed to wedge the
             transaction half-resolved — it is recorded and skipped. *)
          List.iter
            (fun action ->
              try action () with
              | Engine.Stopped as stop -> raise stop
              | _exn ->
                  Trace.incr_h h_txn_deferred_failures;
                  t.mgr.n_deferred_failures <- t.mgr.n_deferred_failures + 1)
            deferred;
          Ok ())

(* The transaction the calling engine process is currently executing
   under, if any (set by the invocation wrapper). *)
let current m =
  match Hashtbl.find_opt m.current (Engine.proc_id (Engine.self ())) with
  | Some (T t) when is_active t -> Some t
  | Some _ | None -> None

let with_current m t f =
  let pid = Engine.proc_id (Engine.self ()) in
  let saved = Hashtbl.find_opt m.current pid in
  Hashtbl.replace m.current pid (T t);
  let restore () =
    match saved with
    | Some prev -> Hashtbl.replace m.current pid prev
    | None -> Hashtbl.remove m.current pid
  in
  match f () with
  | result ->
      restore ();
      result
  | exception e ->
      restore ();
      raise e

let acquire_lock t lock mode =
  if not (is_active t) then Error "transaction is not active"
  else
    match Lock.acquire lock mode (owner t) ~poll:(poll t) () with
    | Lock.Granted held ->
        t.locks <- held :: t.locks;
        Ok ()
    | Lock.Gave_up reason -> Error reason

let with_lock t lock mode f =
  Result.map (fun () -> f ()) (acquire_lock t lock mode)
