module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Trace = Vino_trace.Trace
module Span = Vino_trace.Span
module Profile = Vino_trace.Profile

(* Counter handles, interned once at load: the emit sites below
   bump a flat per-sink array instead of hashing a dotted name. *)
let h_lock_acquisitions = Vino_trace.Counters.handle "lock.acquisitions"
let h_lock_holder_aborts = Vino_trace.Counters.handle "lock.holder_aborts"
let h_lock_contentions = Vino_trace.Counters.handle "lock.contentions"
let h_lock_timeouts = Vino_trace.Counters.handle "lock.timeouts"
let h_lock_fruitless_giveups = Vino_trace.Counters.handle "lock.fruitless_giveups"

let trace_ctx () = Engine.proc_id (Engine.self ())

type owner = { name : string; request_abort : (string -> unit) option }

let plain_owner name = { name; request_abort = None }

type signal = Wake | Timeout_fired

type waiter = {
  wowner : owner;
  wmode : Lock_policy.mode;
  mutable pending_wake : bool;
  mutable waker : (signal -> unit) option;
}

type t = {
  engine : Engine.t;
  wheel : Tick.t;
  costs : Tcosts.t;
  lname : string;
  ltimeout : int;
  mutable lpolicy : Lock_policy.t;
  mutable holders : held list;
  mutable waitq : waiter list; (* index 0 is the queue head *)
  mutable n_acquisitions : int;
  mutable n_contentions : int;
  mutable n_timeouts : int;
  mutable n_holder_aborts : int;
  mutable n_hold_cycles : int;
  mutable n_fruitless_giveups : int;
}

and held = {
  lock : t;
  mutable howner : owner;
  hmode : Lock_policy.mode;
  acquired_at : int;
  mutable released : bool;
}

type outcome = Granted of held | Gave_up of string

let default_timeout = Tcosts.us 1000.

(* How many consecutive time-outs finding no abortable holder a waiter
   tolerates before giving up. An unabortable holder usually releases soon
   (plain kernel threads hold locks briefly), so a little patience is right;
   but if nothing we can abort ever shows up, waiting forever is a livelock:
   nothing will ever wake us. *)
let fruitless_timeout_bound = 25

let create engine ~wheel ?(costs = Tcosts.default)
    ?(policy = Lock_policy.reader_priority) ?(timeout = default_timeout)
    ~name () =
  {
    engine;
    wheel;
    costs;
    lname = name;
    ltimeout = timeout;
    lpolicy = policy;
    holders = [];
    waitq = [];
    n_acquisitions = 0;
    n_contentions = 0;
    n_timeouts = 0;
    n_holder_aborts = 0;
    n_hold_cycles = 0;
    n_fruitless_giveups = 0;
  }

let name t = t.lname
let timeout t = t.ltimeout
let policy t = t.lpolicy
let set_policy t p = t.lpolicy <- p
let holder_modes t = List.map (fun h -> h.hmode) t.holders
let holders t = List.map (fun h -> (h.howner.name, h.hmode)) t.holders
let waiters t = List.map (fun w -> (w.wowner.name, w.wmode)) t.waitq
let acquisitions t = t.n_acquisitions
let contentions t = t.n_contentions
let timeouts_fired t = t.n_timeouts
let holder_aborts_requested t = t.n_holder_aborts
let total_hold_cycles t = t.n_hold_cycles
let fruitless_giveups t = t.n_fruitless_giveups

let reassign h owner = h.howner <- owner

let charge_policy t = t.lpolicy.indirections * t.costs.policy_indirection

(* Insert at the index chosen by the policy. *)
let enqueue t w =
  let k = t.lpolicy.insert w.wmode ~waiters:(List.map (fun x -> x.wmode) t.waitq) in
  let rec ins i = function
    | rest when i = 0 -> w :: rest
    | [] -> [ w ]
    | x :: rest -> x :: ins (i - 1) rest
  in
  t.waitq <- ins k t.waitq

let dequeue t w = t.waitq <- List.filter (fun x -> x != w) t.waitq

(* Modes of the waiters strictly ahead of [w] in the queue (everything, for a
   fresh request). *)
let modes_ahead_of t w =
  let rec take acc = function
    | [] -> List.rev acc
    | x :: _ when x == w -> List.rev acc
    | x :: rest -> take (x.wmode :: acc) rest
  in
  take [] t.waitq

let wake_waiters t =
  List.iter
    (fun w ->
      w.pending_wake <- true;
      match w.waker with Some f -> f Wake | None -> ())
    t.waitq

let grant t mode owner =
  let h =
    {
      lock = t;
      howner = owner;
      hmode = mode;
      acquired_at = Engine.now t.engine;
      released = false;
    }
  in
  t.holders <- h :: t.holders;
  t.n_acquisitions <- t.n_acquisitions + 1;
  Trace.incr_h h_lock_acquisitions;
  h

(* Ask every abortable holder's transaction to abort: the paper's
   time-constrained-resource recovery (§3.2). Returns how many holders could
   be asked — zero means nothing this waiter does can free the lock. *)
let abort_holders t =
  List.fold_left
    (fun asked h ->
      match h.howner.request_abort with
      | Some f ->
          t.n_holder_aborts <- t.n_holder_aborts + 1;
          Trace.incr_h h_lock_holder_aborts;
          f (Printf.sprintf "lock %S held past its time-out" t.lname);
          asked + 1
      | None -> asked)
    0 t.holders

(* One blocking episode for waiter [w]: returns the signal that ended it. *)
let sleep t w =
  if w.pending_wake then begin
    w.pending_wake <- false;
    Wake
  end
  else begin
    let cancel_timer = ref (fun () -> ()) in
    let result =
      Engine.suspend (fun wk ->
          w.waker <- Some wk;
          cancel_timer :=
            Tick.arm t.wheel ~after:t.ltimeout (fun () ->
                match w.waker with Some f -> f Timeout_fired | None -> ()))
    in
    !cancel_timer ();
    w.waker <- None;
    if result = Wake then w.pending_wake <- false;
    result
  end

let acquire t mode owner ?(poll = fun () -> None) () =
  let acquisition_charge =
    t.costs.mutex_acquire
    + (match owner.request_abort with
      | Some _ -> t.costs.txn_lock_extra
      | None -> 0)
    + charge_policy t
  in
  Engine.delay acquisition_charge;
  if Trace.enabled () then begin
    Trace.span Span.Lock_acquire ~label:t.lname
      ~start:(Engine.now t.engine - acquisition_charge)
      ~dur:acquisition_charge;
    Trace.charge ~ctx:(trace_ctx ()) Profile.Txn acquisition_charge
  end;
  match poll () with
  | Some reason -> Gave_up reason
  | None ->
      if
        t.lpolicy.grant mode ~holders:(holder_modes t)
          ~waiters:(List.map (fun x -> x.wmode) t.waitq)
      then Granted (grant t mode owner)
      else begin
        t.n_contentions <- t.n_contentions + 1;
        Trace.incr_h h_lock_contentions;
        let wait_start = Engine.now t.engine in
        let end_wait () =
          if Trace.enabled () then
            Trace.span Span.Lock_wait ~label:t.lname ~start:wait_start
              ~dur:(Engine.now t.engine - wait_start)
        in
        let w =
          { wowner = owner; wmode = mode; pending_wake = false; waker = None }
        in
        enqueue t w;
        (* [fruitless] counts consecutive time-outs on which no holder was
           abortable. Any wake (a release happened: progress) resets it; so
           does a time-out that found someone to abort. Giving up after the
           bound keeps a waiter from re-arming the timer forever against
           holders nothing can abort. *)
        let rec wait_loop fruitless =
          let signal = sleep t w in
          match poll () with
          | Some reason ->
              dequeue t w;
              end_wait ();
              Gave_up reason
          | None ->
              if
                t.lpolicy.grant mode ~holders:(holder_modes t)
                  ~waiters:(modes_ahead_of t w)
              then begin
                dequeue t w;
                end_wait ();
                Granted (grant t mode owner)
              end
              else begin
                match signal with
                | Timeout_fired ->
                    t.n_timeouts <- t.n_timeouts + 1;
                    if Trace.enabled () then begin
                      Trace.incr_h h_lock_timeouts;
                      Trace.span Span.Lock_timeout ~label:t.lname
                        ~start:(Engine.now t.engine) ~dur:0
                    end;
                    if abort_holders t > 0 then wait_loop 0
                    else if fruitless + 1 >= fruitless_timeout_bound then begin
                      t.n_fruitless_giveups <- t.n_fruitless_giveups + 1;
                      Trace.incr_h h_lock_fruitless_giveups;
                      dequeue t w;
                      end_wait ();
                      Gave_up
                        (Printf.sprintf
                           "lock %S: no abortable holder after %d time-outs"
                           t.lname (fruitless + 1))
                    end
                    else wait_loop (fruitless + 1)
                | Wake -> wait_loop 0
              end
        in
        wait_loop 0
      end

let saver t () =
  let lpolicy = t.lpolicy
  and n_acquisitions = t.n_acquisitions
  and n_contentions = t.n_contentions
  and n_timeouts = t.n_timeouts
  and n_holder_aborts = t.n_holder_aborts
  and n_hold_cycles = t.n_hold_cycles
  and n_fruitless_giveups = t.n_fruitless_giveups in
  fun () ->
    t.lpolicy <- lpolicy;
    t.holders <- [];
    t.waitq <- [];
    t.n_acquisitions <- n_acquisitions;
    t.n_contentions <- n_contentions;
    t.n_timeouts <- n_timeouts;
    t.n_holder_aborts <- n_holder_aborts;
    t.n_hold_cycles <- n_hold_cycles;
    t.n_fruitless_giveups <- n_fruitless_giveups

let release ?(during_abort = false) h =
  if not h.released then begin
    let t = h.lock in
    h.released <- true;
    t.n_hold_cycles <- t.n_hold_cycles + (Engine.now t.engine - h.acquired_at);
    t.holders <- List.filter (fun x -> x != h) t.holders;
    wake_waiters t;
    Engine.delay
      (if during_abort then t.costs.lock_release_abort
       else t.costs.mutex_release)
  end
