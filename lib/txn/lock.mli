(** Time-out–based kernel locks (paper §3.1, §3.2).

    Locks are the time-constrained resources: holding one is harmless until
    somebody else wants it. Every lockable resource type carries a time-out
    saying how long it may be held under contention. A blocked request
    schedules that time-out (on 10 ms clock-tick boundaries, §4.5); if it
    expires and a holder is executing a transaction, that holder's
    transaction is asked to abort — which releases the lock and lets the
    rest of the system make progress. This also implicitly breaks deadlocks.

    Acquisition charges virtual cycles to the calling engine process:
    a conventional mutex price for plain threads, plus the transaction-lock
    surcharge (§4.6) when the owner is abortable, plus one
    policy-indirection charge per encapsulated decision point (Fig 4/5). *)

type owner = {
  name : string;
  request_abort : (string -> unit) option;
      (** [Some f] iff the owner is executing a transaction; [f reason]
          asks that transaction to abort at its next poll point. *)
}

val plain_owner : string -> owner
(** A non-transactional kernel thread: cannot be aborted by waiters. *)

type t
type held
(** Evidence of a granted acquisition; needed to release. *)

type outcome =
  | Granted of held
  | Gave_up of string
      (** the caller's own transaction was asked to abort while waiting, or
          {!fruitless_timeout_bound} consecutive time-outs found no
          abortable holder (waiting longer could never succeed) *)

val fruitless_timeout_bound : int
(** How many consecutive time-outs finding no abortable holder a waiter
    tolerates before {!acquire} returns [Gave_up]. A wake (some holder
    released) resets the count. *)

val create :
  Vino_sim.Engine.t ->
  wheel:Vino_sim.Tick.t ->
  ?costs:Tcosts.t ->
  ?policy:Lock_policy.t ->
  ?timeout:int ->
  name:string ->
  unit ->
  t
(** [timeout] is the per-resource-type hold time-out in cycles (default
    1 ms). [policy] defaults to {!Lock_policy.reader_priority}. *)

val acquire :
  t ->
  Lock_policy.mode ->
  owner ->
  ?poll:(unit -> string option) ->
  unit ->
  outcome
(** Block until granted. While blocked, each expiry of the lock's time-out
    asks every abortable holder's transaction to abort, then keeps waiting;
    after {!fruitless_timeout_bound} consecutive expiries with no abortable
    holder it returns [Gave_up] instead of livelocking. [poll] is consulted
    at every wake-up so a waiter whose own transaction has been aborted
    gives up promptly. Must run inside an engine process. *)

val release : ?during_abort:bool -> held -> unit
(** [during_abort] selects the abort-path cost (~10 us per lock, §4.5). *)

val reassign : held -> owner -> unit
(** Re-point a held lock at a new owner. Used when a nested transaction
    commits and its locks merge into the parent: the lock is then held by
    the parent, and a time-out must ask the {e parent} to abort — the
    committed child's [request_abort] is a no-op (§3.1, §3.2). *)

val name : t -> string
val timeout : t -> int
val policy : t -> Lock_policy.t

val set_policy : t -> Lock_policy.t -> unit
(** The lock-policy graft point (Fig 5). *)

val holders : t -> (string * Lock_policy.mode) list
val waiters : t -> (string * Lock_policy.mode) list

(* Statistics for the experiment harness. *)

val acquisitions : t -> int
val contentions : t -> int
val timeouts_fired : t -> int
val holder_aborts_requested : t -> int
val total_hold_cycles : t -> int

val fruitless_giveups : t -> int
(** How many waiters gave up because no holder was ever abortable. *)

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures policy and statistics; the returned thunk
    restores them and empties the holder/waiter lists (re-runnable).
    For kernel snapshots, which are only taken on never-run engines
    where both lists are empty anyway. *)
