type t = {
  txn_begin : int;
  txn_commit : int;
  txn_abort : int;
  nested_begin : int;
  nested_commit : int;
  mutex_acquire : int;
  mutex_release : int;
  txn_lock_extra : int;
  lock_release_abort : int;
  undo_push : int;
  policy_indirection : int;
  limit_check : int;
  snap_word : int;
  restore_word : int;
}

let us = Vino_vm.Costs.cycles_of_us

let default =
  {
    txn_begin = us 36.;
    txn_commit = us 28.;
    txn_abort = us 35.;
    nested_begin = us 9.;
    nested_commit = us 7.;
    mutex_acquire = us 14.;
    mutex_release = us 5.;
    txn_lock_extra = us 19.;
    lock_release_abort = us 10.;
    undo_push = us 1.5;
    policy_indirection = 35;
    limit_check = us 0.5;
    snap_word = 6;
    restore_word = 6;
  }
