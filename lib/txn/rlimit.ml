type resource = Memory_words | Wired_pages | Io_slots | Net_packets

let all_resources = [ Memory_words; Wired_pages; Io_slots; Net_packets ]

let resource_name = function
  | Memory_words -> "memory-words"
  | Wired_pages -> "wired-pages"
  | Io_slots -> "io-slots"
  | Net_packets -> "net-packets"

let index = function
  | Memory_words -> 0
  | Wired_pages -> 1
  | Io_slots -> 2
  | Net_packets -> 3

type account = { limits : int array; uses : int array }
type t = { account : account }

let n = List.length all_resources

let create ?(memory_words = 0) ?(wired_pages = 0) ?(io_slots = 0)
    ?(net_packets = 0) () =
  let limits = Array.make n 0 in
  limits.(index Memory_words) <- memory_words;
  limits.(index Wired_pages) <- wired_pages;
  limits.(index Io_slots) <- io_slots;
  limits.(index Net_packets) <- net_packets;
  { account = { limits; uses = Array.make n 0 } }

let zero () = create ()

let unlimited () =
  let big = max_int / 2 in
  create ~memory_words:big ~wired_pages:big ~io_slots:big ~net_packets:big ()

let delegate t = { account = t.account }
let same_account a b = a.account == b.account
let limit t r = t.account.limits.(index r)
let used t r = t.account.uses.(index r)
let available t r = limit t r - used t r

let request t r amount =
  if amount <= 0 then invalid_arg "Rlimit.request: amount must be positive";
  let k = index r in
  if t.account.uses.(k) + amount > t.account.limits.(k) then Error `Denied
  else begin
    t.account.uses.(k) <- t.account.uses.(k) + amount;
    Ok ()
  end

let release t r amount =
  if amount <= 0 then invalid_arg "Rlimit.release: amount must be positive";
  let k = index r in
  t.account.uses.(k) <- max 0 (t.account.uses.(k) - amount)

let transfer ~src ~dst r amount =
  if amount <= 0 then invalid_arg "Rlimit.transfer: amount must be positive";
  if same_account src dst then Error `Denied
  else
    let k = index r in
    if src.account.limits.(k) - amount < src.account.uses.(k) then
      Error `Denied
    else begin
      src.account.limits.(k) <- src.account.limits.(k) - amount;
      dst.account.limits.(k) <- dst.account.limits.(k) + amount;
      Ok ()
    end

(* Child accounts are funded by moving limit out of the parent, so the
   sum of limits across a tenant tree is invariant: a runaway child can
   never spend more than the slice it was granted, and the parent's
   remaining headroom shrinks by exactly that slice. On any denial the
   already-moved resources are returned and the parent is untouched. *)
let derive ~parent ?(memory_words = 0) ?(wired_pages = 0) ?(io_slots = 0)
    ?(net_packets = 0) () =
  let child = create () in
  let wants =
    [
      (Memory_words, memory_words);
      (Wired_pages, wired_pages);
      (Io_slots, io_slots);
      (Net_packets, net_packets);
    ]
  in
  let rec fund granted = function
    | [] -> Ok child
    | (_, 0) :: rest -> fund granted rest
    | (r, amount) :: rest -> (
        if amount < 0 then invalid_arg "Rlimit.derive: negative amount";
        match transfer ~src:parent ~dst:child r amount with
        | Ok () -> fund ((r, amount) :: granted) rest
        | Error `Denied ->
            List.iter
              (fun (r, amount) ->
                match transfer ~src:child ~dst:parent r amount with
                | Ok () -> ()
                | Error `Denied -> assert false)
              granted;
            Error `Denied)
  in
  fund [] wants

let saver t () =
  let limits = Array.copy t.account.limits
  and uses = Array.copy t.account.uses in
  fun () ->
    Array.blit limits 0 t.account.limits 0 n;
    Array.blit uses 0 t.account.uses 0 n

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-13s %d/%d@ " (resource_name r) (used t r)
        (limit t r))
    all_resources;
  Format.fprintf ppf "@]"
