(* A flat stack: three parallel arrays indexed by [0, len), most recent
   entry at [len - 1]. Pushing into spare capacity allocates nothing,
   and the arrays survive clear/replay, so a recycled transaction frame
   (see {!Txn.recycle}) reuses them invocation after invocation instead
   of consing a node per undo entry. *)

let nop () = ()

type t = {
  mutable labels : string array;
  mutable undos : (unit -> unit) array;
  mutable costs : int array;
  mutable len : int;
}

let create ?(slots = 0) () =
  if slots < 0 then invalid_arg "Undo_log.create: negative slot count";
  {
    labels = Array.make slots "";
    undos = Array.make slots nop;
    costs = Array.make slots 0;
    len = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.undos

let grow t =
  let cap = Array.length t.undos in
  let ncap = max 8 (2 * cap) in
  let labels = Array.make ncap "" in
  let undos = Array.make ncap nop in
  let costs = Array.make ncap 0 in
  Array.blit t.labels 0 labels 0 t.len;
  Array.blit t.undos 0 undos 0 t.len;
  Array.blit t.costs 0 costs 0 t.len;
  t.labels <- labels;
  t.undos <- undos;
  t.costs <- costs

let push t ?(cost = 0) ~label undo =
  if t.len = Array.length t.undos then grow t;
  let i = t.len in
  t.labels.(i) <- label;
  t.undos.(i) <- undo;
  t.costs.(i) <- cost;
  t.len <- i + 1

let replay ?(on_error = fun ~label:_ _exn -> ()) t =
  let rec go total =
    if t.len = 0 then total
    else begin
      let i = t.len - 1 in
      let label = t.labels.(i) in
      let undo = t.undos.(i) in
      let cost = t.costs.(i) in
      (* Remove the entry before running it, so a process kill
         ([Engine.Stopped]) escaping mid-entry leaves exactly the
         entries already run removed. *)
      t.len <- i;
      t.labels.(i) <- "";
      t.undos.(i) <- nop;
      (try undo () with
      | Vino_sim.Engine.Stopped as stop -> raise stop
      | exn -> on_error ~label exn);
      go (total + cost)
    end
  in
  go 0

let clear t =
  (* Release the captured closures; keep the arrays for reuse. *)
  for i = 0 to t.len - 1 do
    t.labels.(i) <- "";
    t.undos.(i) <- nop
  done;
  t.len <- 0

let merge_into ~parent t =
  (* The child's entries are more recent than anything in the parent:
     restacking them in push order puts the child's newest on top, so
     replaying the parent runs the child's entries first. *)
  for i = 0 to t.len - 1 do
    push parent ~cost:t.costs.(i) ~label:t.labels.(i) t.undos.(i)
  done;
  clear t

let labels t = List.init t.len (fun i -> t.labels.(t.len - 1 - i))
