type entry = { label : string; undo : unit -> unit; cost : int }
type t = { mutable entries : entry list (* most recent first *) }

let create () = { entries = [] }
let length t = List.length t.entries
let is_empty t = t.entries = []

let push t ?(cost = 0) ~label undo =
  t.entries <- { label; undo; cost } :: t.entries

let replay ?(on_error = fun ~label:_ _exn -> ()) t =
  let rec go total =
    match t.entries with
    | [] -> total
    | e :: rest ->
        t.entries <- rest;
        (try e.undo () with
        | Vino_sim.Engine.Stopped as stop -> raise stop
        | exn -> on_error ~label:e.label exn);
        go (total + e.cost)
  in
  go 0

let clear t = t.entries <- []

let merge_into ~parent t =
  parent.entries <- t.entries @ parent.entries;
  t.entries <- []

let labels t = List.map (fun e -> e.label) t.entries
