(** The in-memory undo call stack (paper §3.1).

    Every accessor function that mutates kernel state on behalf of a
    transaction pushes its inverse operation here. The log is transient (no
    redo, no durability): abort replays it LIFO; commit of a nested
    transaction merges it into the parent's log so the parent can still undo
    the child's effects. *)

type t

val create : ?slots:int -> unit -> t
(** [slots] (default 0) preallocates entry slots: pushes within the
    preallocated capacity allocate nothing, and the backing arrays
    survive {!clear}/{!replay}, so a log embedded in a recycled
    transaction frame settles into zero-allocation operation. The log
    still grows past [slots] on demand. *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current entry capacity (>= [slots] at creation, grown as needed). *)

val push : t -> ?cost:int -> label:string -> (unit -> unit) -> unit
(** [cost] (cycles) is what replaying this entry will charge; it defaults to
    0 (the inverse of a cheap accessor). *)

val replay : ?on_error:(label:string -> exn -> unit) -> t -> int
(** Run every undo operation, most recent first; empties the log and returns
    the total replay cost in cycles. Replay is total: an undo operation that
    raises does not stop the replay — the exception is reported to
    [on_error] (default: ignored) and the remaining entries still run, so an
    abort always finishes cleaning up. The only exception allowed through is
    {!Vino_sim.Engine.Stopped} (a process kill), and then entries already
    run are removed. *)

val clear : t -> unit
(** Drop every entry without running it (top-level commit: the changes are
    now permanent, so their inverses — and any closures they captured — must
    be released). *)

val merge_into : parent:t -> t -> unit
(** Move all entries onto [parent] such that replaying [parent] runs the
    child's entries first (they are more recent). Empties the child. *)

val labels : t -> string list
(** Most recent first; for tests and debugging. *)
