(** The lightweight kernel transaction system (paper §3.1).

    Every graft invocation runs inside a transaction so the kernel can
    spontaneously abort it and clean up its state. The mechanism is simpler
    than a data manager's: the log is transient and undo-only, so of the
    ACID properties only atomicity, consistency and isolation are provided.
    Two-phase locking holds every lock acquired under a transaction until
    commit or abort. Because grafts may indirectly invoke other grafts,
    transactions nest: a nested commit merges its undo stack and locks into
    its parent; a nested abort undoes only its own work.

    Aborts are requested asynchronously (by a lock time-out, a resource
    quota, or an operator) and take effect when the transaction's thread
    reaches a poll point — a graft VM poll, a lock operation, or commit. *)

type mgr
(** The default VINO transaction manager. *)

type t

type state = Active | Committed | Aborted of string

val create_mgr :
  Vino_sim.Engine.t ->
  wheel:Vino_sim.Tick.t ->
  ?costs:Tcosts.t ->
  ?undo_slots:int ->
  unit ->
  mgr
(** [undo_slots] (default 64) is the per-frame undo-log preallocation:
    transactions pushing at most that many undo entries never grow
    their log, so a recycled frame runs allocation-free. Size it with
    {!Arena.slots_for} when admission is governed by an {!Rlimit}
    account. *)

val engine : mgr -> Vino_sim.Engine.t
val wheel : mgr -> Vino_sim.Tick.t
val costs : mgr -> Tcosts.t

val begin_ : mgr -> ?parent:t -> name:string -> unit -> t
(** Allocate a transaction object associated with the calling thread and
    charge the begin cost. [parent] must be [Active] and on the same
    manager. Must run inside an engine process. *)

val id : t -> int
val name : t -> string
val state : t -> state
val is_active : t -> bool
val parent : t -> t option
val undo_depth : t -> int
val locks_held : t -> int

val defer : t -> (unit -> unit) -> unit
(** Register an action to run only when the top-level transaction commits —
    the paper's "delaying deletes until transaction abort [is ruled out]"
    work-around (§6): an accessor that frees a kernel object must not free
    it while an abort could still resurrect it, so the actual delete is
    deferred to commit. Deferred work merges into the parent on nested
    commit and is dropped on abort.
    @raise Invalid_argument if the transaction is not active. *)

val push_undo : t -> ?cost:int -> label:string -> (unit -> unit) -> unit
(** Record the inverse of a kernel-state change (called by accessor
    functions, §3.1). Charges the undo bookkeeping cost.
    @raise Invalid_argument if the transaction is not active. *)

val commit : t -> (unit, string) result
(** If an abort was requested, performs the abort instead and returns
    [Error reason]. A top-level commit releases all locks and discards the
    undo stack; a nested commit merges both into the parent and re-points
    the merged locks at the parent's {!owner} (so a later time-out aborts
    the transaction that actually holds them). Deferred actions run last,
    after the transaction is marked [Committed] and the counters are
    balanced; an action that raises is recorded ({!deferred_failures}) and
    skipped — the commit still returns [Ok ()], because the transaction's
    own effects are already permanent. Fails (raises [Invalid_argument]) if
    children are still active. *)

val abort : t -> reason:string -> unit
(** Replay the undo stack (most recent first), release held locks at
    abort-path cost, and mark the transaction aborted. Total: an undo entry
    that raises is recorded ({!undo_failures}) and the remaining entries
    still run, so the locks are always released and the transaction always
    resolves. Idempotent on an already-aborted transaction. *)

val request_abort : t -> string -> unit
(** Asynchronous abort request; honoured at the next poll point. The first
    request wins. No-op once the transaction is resolved. *)

val abort_requested : t -> string option

val poll : t -> unit -> string option
(** Poll function for {!Vino_vm.Cpu.env} and {!Lock.acquire}: returns the
    pending abort reason, checking this transaction and all ancestors
    (a holder time-out on a lock acquired before the graft was invoked must
    still stop the graft, §3.2). *)

val owner : t -> Lock.owner
(** Lock-manager identity: waiters that time out on a lock held by this
    transaction will {!request_abort} it. *)

val with_lock :
  t -> Lock.t -> Lock_policy.mode -> (unit -> 'a) -> ('a, string) result
(** Acquire under two-phase locking (released at commit/abort, not after
    [f]). [Error reason] if the acquisition gave up because this
    transaction was asked to abort. The caller is expected to abort on
    error. *)

val acquire_lock : t -> Lock.t -> Lock_policy.mode -> (unit, string) result
(** Bare 2PL acquisition without a body. *)

val current : mgr -> t option
(** The transaction the calling engine process is executing under, if any —
    the context graft invocations nest into (§3.1: "graft functions may
    indirectly invoke other grafts ... nested transactions"). Set by the
    invocation wrapper via {!with_current}. Must run inside an engine
    process. *)

val with_current : mgr -> t -> (unit -> 'a) -> 'a
(** Run a computation with [t] as the calling process's current
    transaction, restoring the previous binding afterwards (also on
    exceptions). *)

val recycle : t -> unit
(** Return a resolved frame to the manager's arena; the next {!begin_}
    reuses it (and its preallocated undo log) in place of a fresh
    allocation. Only for owners certain that no reference to [t]
    survives the call — the graft invocation path, which creates and
    resolves its transaction internally, recycles every frame; code
    that hands transaction handles outward just lets the GC take them.
    Idempotent on an already-recycled frame.
    @raise Invalid_argument if [t] is still active. *)

val frames_outstanding : mgr -> int
(** Frames taken from the arena (or freshly built) and not yet
    recycled. The disaster-rig invariant: balanced begin/recycle
    traffic keeps this at the live-transaction count. *)

val frames_retained : mgr -> int
(** Frames parked in the arena, ready for reuse. *)

(* Manager-wide statistics. *)

val begins : mgr -> int
val commits : mgr -> int
val aborts : mgr -> int
val live : mgr -> int

val undo_live : mgr -> int
(** Undo entries currently held by unresolved transactions. Zero whenever
    [live = 0]: every abort replayed its log and every top-level commit
    discarded its merged log — the disaster-rig "undo logs empty"
    invariant. *)

val undo_failures : mgr -> int
(** Undo entries that raised during an abort's replay (the fault-mid-undo
    disaster: recorded, skipped, and the abort still completed). *)

val deferred_failures : mgr -> int
(** Deferred actions that raised at top-level commit (recorded and skipped;
    the commit still succeeded). *)

val charge_undo : mgr -> bool

val set_charge_undo : mgr -> bool -> unit
(** When [false] (the [Snapshot_rollback] recovery strategy), undo records
    are still pushed and replayed — the undo log remains the actual
    state-recovery mechanism — but their per-record cycle charges are
    suppressed; the checkpoint/restore charges levied at graft dispatch
    stand in for them. Default [true] (the paper's undo-log costing). *)

val saver : mgr -> unit -> unit -> unit
(** [saver m ()] captures the manager's counters; the returned thunk
    restores them and clears the per-process current-transaction map.
    The frame arena deliberately stays warm across restores (reuse
    changes no observable counter or cost). For kernel snapshots. *)
