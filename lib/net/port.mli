(** Network ports as event sources (§3.5).

    Each port owns an event graft point; a TCP connection established on it
    (or a UDP datagram arriving) dispatches the event to the grafted
    handlers — the mechanism under kernel-resident HTTP and NFS servers. *)

type protocol = Tcp | Udp

type t

val create : ?budget:int -> Vino_core.Kernel.t -> protocol -> number:int -> t
(** [budget] bounds one event-handler invocation's cycles. *)

val number : t -> int
val protocol : t -> protocol
val event_point : t -> Vino_core.Event_point.t

val connect : t -> payload:int array -> unit
(** Deliver a TCP connection-established event.
    @raise Invalid_argument on a UDP port. *)

val datagram : t -> payload:int array -> unit
(** Deliver a UDP datagram event. @raise Invalid_argument on a TCP port. *)

val events : t -> int
