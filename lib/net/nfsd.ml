module Asm = Vino_vm.Asm
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Event_point = Vino_core.Event_point
module File = Vino_fs.File

type status = Ok_read of { cache_hit : bool } | No_such_file | Bad_block

type t = {
  kernel : Kernel.t;
  port : Port.t;
  files : (int, File.t) Hashtbl.t;
  mutable resp : status list; (* newest first *)
}

let op_read = 1

(* reply status codes on the wire *)
let s_ok_hit = 0
let s_ok_miss = 1
let s_noent = 2
let s_badblock = 3

let create kernel ?(port = 2049) () =
  if Kcall.find_by_name kernel.Kernel.registry "nfs.lookup" <> None then
    invalid_arg "Nfsd.create: kernel already has an NFS server";
  let t =
    {
      kernel;
      port = Port.create kernel Udp ~number:port;
      files = Hashtbl.create 8;
      resp = [];
    }
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"nfs.lookup" (fun ctx ->
        let fileid = Kcall.arg ctx.Kcall.cpu 0 in
        let blocks =
          match Hashtbl.find_opt t.files fileid with
          | Some file -> File.blocks file
          | None -> -1
        in
        Kcall.return ctx.Kcall.cpu blocks;
        Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"nfs.read" (fun ctx ->
        let fileid = Kcall.arg ctx.Kcall.cpu 0 in
        let block = Kcall.arg ctx.Kcall.cpu 1 in
        match Hashtbl.find_opt t.files fileid with
        | None ->
            Kcall.return ctx.Kcall.cpu s_noent;
            Kcall.ok
        | Some file ->
            if block < 0 || block >= File.blocks file then begin
              Kcall.return ctx.Kcall.cpu s_badblock;
              Kcall.ok
            end
            else begin
              (* a real read through the cache, possibly blocking on the
                 simulated disk *)
              match File.read file ~cred:ctx.Kcall.cred ~block with
              | `Hit ->
                  Kcall.return ctx.Kcall.cpu s_ok_hit;
                  Kcall.ok
              | `Miss ->
                  Kcall.return ctx.Kcall.cpu s_ok_miss;
                  Kcall.ok
            end)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"nfs.reply" (fun ctx ->
        let status = Kcall.arg ctx.Kcall.cpu 0 in
        let decoded =
          if status = s_ok_hit then Ok_read { cache_hit = true }
          else if status = s_ok_miss then Ok_read { cache_hit = false }
          else if status = s_badblock then Bad_block
          else No_such_file
        in
        t.resp <- decoded :: t.resp;
        Kcall.ok)
  in
  Kernel.on_snapshot kernel (fun () ->
      let files = Hashtbl.copy t.files and resp = t.resp in
      fun () ->
        Hashtbl.reset t.files;
        Hashtbl.iter (Hashtbl.replace t.files) files;
        t.resp <- resp);
  t

let port t = t.port
let export t ~fileid file = Hashtbl.replace t.files fileid file

let server_source : Asm.item list =
  [
    (* r1 = payload address, r2 = length; payload = [op; fileid; block] *)
    Ld (Asm.r5, Asm.r1, 0);
    Ld (Asm.r6, Asm.r1, 1);
    Ld (Asm.r7, Asm.r1, 2);
    Li (Asm.r8, op_read);
    Br (Vino_vm.Insn.Ne, Asm.r5, Asm.r8, "bad_request");
    (* does the file exist? *)
    Mov (Asm.r1, Asm.r6);
    Kcall "nfs.lookup";
    Li (Asm.r8, 0);
    Br (Vino_vm.Insn.Lt, Asm.r0, Asm.r8, "noent");
    (* read through the cache/disk, then echo the status *)
    Mov (Asm.r1, Asm.r6);
    Mov (Asm.r2, Asm.r7);
    Kcall "nfs.read";
    Mov (Asm.r1, Asm.r0);
    Kcall "nfs.reply";
    Li (Asm.r0, 0);
    Ret;
    Label "noent";
    Li (Asm.r1, s_noent);
    Kcall "nfs.reply";
    Li (Asm.r0, 0);
    Ret;
    Label "bad_request";
    Li (Asm.r1, s_badblock);
    Kcall "nfs.reply";
    Li (Asm.r0, 0);
    Ret;
  ]

let install t ~cred =
  match Kernel.seal t.kernel (Asm.assemble_exn server_source) with
  | Error e -> Error e
  | Ok image ->
      Event_point.add_handler (Port.event_point t.port) t.kernel ~cred image

let read_request t ~fileid ~block =
  Port.datagram t.port ~payload:[| op_read; fileid; block |]

let responses t = List.rev t.resp
