(** Multi-tenant graft server: the long-running workload behind
    [vino serve].

    N tenants each install an event-graft handler on their own TCP port
    (§3.5): the handler families mirror the extension kinds measured
    elsewhere in the repo — read-ahead-style sequential scans, an
    eviction-style maximum scan, a scheduler-delegate countdown and an
    HTTP-style branchy responder. An open-loop traffic generator delivers
    connection events at a fixed per-tenant arrival interval; the kernel
    applies three multi-tenant controls on top of the usual SFI/txn
    machinery:

    - {b admission control}: each tenant has an in-flight request cap;
      arrivals beyond it are shed and audited
      ({!Vino_core.Audit.event.Admission_rejected});
    - {b resource-limit inheritance}: every tenant's limits are a child
      account {!Vino_txn.Rlimit.derive}d from a per-shard server account,
      so a runaway tenant (one that floods [net.send]) exhausts only its
      own slice;
    - {b bounded translation cache}: tenant churn (periodic handler
      reinstalls) exercises the kernel's LRU translation cache
      ({!Vino_core.Kernel.jit_cache_stats}).

    The tenant set is partitioned across a fixed number of shards, each
    shard a fully independent kernel simulation, and shards are mapped
    over the {!Vino_par.Pool} domain pool with the deterministic ordered
    merge: the report is a pure function of the {!config}, byte-identical
    at any [-j]. *)

type path = Interp | Translated | Verified
(** Execution path for every tenant handler: interpreted, closure-threaded
    translation, or translation under a seal-time safety proof (provably
    in-segment payload accesses compile to bare superinstructions). *)

val path_name : path -> string
(** ["interp"] / ["translated"] / ["verified-translated"]. *)

val path_of_name : string -> path option
val all_paths : path list

type config = {
  tenants : int;
  requests : int;  (** arrivals per tenant *)
  interval : int;  (** cycles between a tenant's arrivals (open loop) *)
  pause : int;
      (** extra idle cycles inserted after every [reinstall_every]-th
          arrival, so a tenant drains to zero in-flight between bursts —
          the window in which the churn reinstall can actually run *)
  max_inflight : int;  (** per-tenant admission cap *)
  jit_cache_cap : int;  (** per-shard-kernel translation cache capacity *)
  reinstall_every : int;
      (** reinstall a tenant's handler every k-th arrival (0 = never):
          models tenant churn and drives translation-cache traffic *)
  shards : int;
      (** fixed shard count — part of the workload definition, {e not}
          the [-j] level, so results never depend on the pool size *)
  path : path;
  seed : int;  (** perturbs each tenant's per-request work *)
  runaway : int option;
      (** a tenant index that floods [net.send] instead of doing useful
          work — capped by its inherited [Net_packets] slice *)
  net_quota : int;  (** per-tenant [Net_packets] slice *)
}

val default : config
(** 8 tenants x 24 requests, 4000-cycle interval with a 24000-cycle
    inter-burst pause, in-flight cap 4, cache capacity 2, reinstall
    every 6th arrival, 4 shards, translated path, seed 42, no runaway,
    net quota 8. *)

type report = {
  config : config;
  samples : (int * int * float) list;
      (** [(tenant, request, latency_us)] for every served request,
          sorted by tenant then request — arrival-to-response latency in
          virtual microseconds, independent of completion interleaving *)
  per_tenant : (int * string * int * int) list;
      (** [(tenant, family, served, rejected)], ascending tenant *)
  served : int;
  rejected : int;  (** arrivals shed by admission control *)
  admission_audited : int;
      (** [Admission_rejected] entries across all shard audit trails *)
  handler_failures : int;
  transmitted : int;  (** packets that reached the simulated wire *)
  quota_denials : int;  (** [net.send]s refused by the tenant's slice *)
  jit_hits : int;
  jit_misses : int;
  jit_evictions : int;
  drain_us : float;
      (** makespan: virtual time of the last response across shards *)
  throughput_rps : float;  (** served / makespan *)
}

val family_name : int -> string
(** Handler family installed for a tenant index: ["ra"], ["evict"],
    ["sched"] or ["http"] (runaway tenants report ["flood"]). *)

val run : ?pool:Vino_par.Pool.t -> config -> report
(** Run the scenario. Deterministic: the report depends only on the
    config, never on [pool] (shards are merged in index order).
    @raise Invalid_argument on a non-positive tenant/request/shard
    count. *)

val latencies : ?tenant:int -> report -> float list
(** Served-request latencies in sample order, optionally restricted to
    one tenant. *)
