module Asm = Vino_vm.Asm
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Event_point = Vino_core.Event_point

type t = {
  kernel : Kernel.t;
  port : Port.t;
  docs : (int, int) Hashtbl.t;
  mutable resp : (int * int) list; (* newest first *)
}

let method_get = 1

let create kernel ?(port = 80) ?budget () =
  let t =
    {
      kernel;
      port = Port.create ?budget kernel Tcp ~number:port;
      docs = Hashtbl.create 16;
      resp = [];
    }
  in
  if Kcall.find_by_name kernel.Kernel.registry "http.lookup" <> None then
    invalid_arg "Httpd.create: kernel already has an HTTP server";
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"http.lookup" (fun ctx ->
        let path = Kcall.arg ctx.Kcall.cpu 0 in
        let size =
          match Hashtbl.find_opt t.docs path with Some s -> s | None -> -1
        in
        Kcall.return ctx.Kcall.cpu size;
        Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"http.respond" (fun ctx ->
        let status = Kcall.arg ctx.Kcall.cpu 0 in
        let size = Kcall.arg ctx.Kcall.cpu 1 in
        t.resp <- (status, size) :: t.resp;
        Kcall.ok)
  in
  Kernel.on_snapshot kernel (fun () ->
      let docs = Hashtbl.copy t.docs and resp = t.resp in
      fun () ->
        Hashtbl.reset t.docs;
        Hashtbl.iter (Hashtbl.replace t.docs) docs;
        t.resp <- resp);
  t

let port t = t.port
let add_document t ~path ~size = Hashtbl.replace t.docs path size

let server_source : Asm.item list =
  [
    (* r1 = payload address, r2 = length; payload = [method; path] *)
    Ld (Asm.r5, Asm.r1, 0);
    Ld (Asm.r6, Asm.r1, 1);
    Li (Asm.r7, method_get);
    Br (Vino_vm.Insn.Ne, Asm.r5, Asm.r7, "bad_request");
    Mov (Asm.r1, Asm.r6);
    Kcall "http.lookup";
    Li (Asm.r7, 0);
    Br (Vino_vm.Insn.Lt, Asm.r0, Asm.r7, "not_found");
    Mov (Asm.r2, Asm.r0);
    Li (Asm.r1, 200);
    Kcall "http.respond";
    Li (Asm.r0, 0);
    Ret;
    Label "not_found";
    Li (Asm.r1, 404);
    Li (Asm.r2, 0);
    Kcall "http.respond";
    Li (Asm.r0, 0);
    Ret;
    Label "bad_request";
    Li (Asm.r1, 400);
    Li (Asm.r2, 0);
    Kcall "http.respond";
    Li (Asm.r0, 0);
    Ret;
  ]

let install t ~cred =
  match Kernel.seal t.kernel (Asm.assemble_exn server_source) with
  | Error e -> Error e
  | Ok image ->
      Event_point.add_handler (Port.event_point t.port) t.kernel ~cred image

let get t ~path = Port.connect t.port ~payload:[| method_get; path |]
let responses t = List.rev t.resp
