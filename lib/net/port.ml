module Event_point = Vino_core.Event_point

type protocol = Tcp | Udp

type t = {
  kernel : Vino_core.Kernel.t;
  protocol : protocol;
  number : int;
  point : Event_point.t;
}

let create ?budget kernel protocol ~number =
  let prefix = match protocol with Tcp -> "tcp" | Udp -> "udp" in
  let t =
    {
      kernel;
      protocol;
      number;
      point =
        Event_point.create
          ~name:(Printf.sprintf "%s.port-%d" prefix number)
          ?budget ();
    }
  in
  Vino_core.Kernel.on_snapshot kernel (Event_point.saver t.point);
  t

let number t = t.number
let protocol t = t.protocol
let event_point t = t.point

let connect t ~payload =
  match t.protocol with
  | Tcp -> Event_point.dispatch t.point t.kernel ~payload
  | Udp -> invalid_arg "Port.connect: not a TCP port"

let datagram t ~payload =
  match t.protocol with
  | Udp -> Event_point.dispatch t.point t.kernel ~payload
  | Tcp -> invalid_arg "Port.datagram: not a UDP port"

let events t = Event_point.events_delivered t.point
