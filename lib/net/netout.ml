module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit

type t = {
  wire_cycles : int;
  mutable queue : int list; (* destination tags, FIFO *)
  work : Waitq.t;
  mutable n_transmitted : int;
  by_dest : (int, int) Hashtbl.t;
  mutable n_denied : int;
}

let rec nic t () =
  match t.queue with
  | [] ->
      Waitq.wait t.work;
      nic t ()
  | dest :: rest ->
      t.queue <- rest;
      Engine.delay t.wire_cycles;
      t.n_transmitted <- t.n_transmitted + 1;
      Hashtbl.replace t.by_dest dest
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_dest dest));
      nic t ()

let enqueue t dest =
  t.queue <- t.queue @ [ dest ];
  ignore (Waitq.signal t.work)

let create kernel ?(wire_us_per_packet = 12.) () =
  if Kcall.find_by_name kernel.Kernel.registry "net.send" <> None then
    invalid_arg "Netout.create: kernel already has an outbound path";
  let t =
    {
      wire_cycles = Vino_txn.Tcosts.us wire_us_per_packet;
      queue = [];
      work = Waitq.create kernel.Kernel.engine;
      n_transmitted = 0;
      by_dest = Hashtbl.create 16;
      n_denied = 0;
    }
  in
  ignore (Engine.spawn kernel.Kernel.engine ~name:"nic" (fun () -> nic t ()));
  Kernel.on_snapshot kernel (Waitq.saver t.work);
  Kernel.on_snapshot kernel (fun () ->
      let queue = t.queue
      and n_transmitted = t.n_transmitted
      and by_dest = Hashtbl.copy t.by_dest
      and n_denied = t.n_denied in
      fun () ->
        t.queue <- queue;
        t.n_transmitted <- n_transmitted;
        Hashtbl.reset t.by_dest;
        Hashtbl.iter (Hashtbl.replace t.by_dest) by_dest;
        t.n_denied <- n_denied);
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"net.send" (fun ctx ->
        let dest = Kcall.arg ctx.Kcall.cpu 0 in
        match Rlimit.request ctx.Kcall.limits Rlimit.Net_packets 1 with
        | Error `Denied ->
            t.n_denied <- t.n_denied + 1;
            Kcall.return ctx.Kcall.cpu 0;
            Kcall.ok
        | Ok () ->
            (match ctx.Kcall.txn with
            | Some txn ->
                (* refund the quota if the transaction aborts... *)
                Txn.push_undo txn ~label:"net.send.refund" (fun () ->
                    Rlimit.release ctx.Kcall.limits Rlimit.Net_packets 1);
                (* ...and only put the packet on the wire at commit *)
                Txn.defer txn (fun () -> enqueue t dest)
            | None -> enqueue t dest);
            Kcall.return ctx.Kcall.cpu 1;
            Kcall.ok)
  in
  t

let send_from_kernel t ~dest = enqueue t dest
let transmitted t = t.n_transmitted

let transmitted_to t ~dest =
  Option.value ~default:0 (Hashtbl.find_opt t.by_dest dest)

let quota_denials t = t.n_denied
let queue_depth t = List.length t.queue
