module Engine = Vino_sim.Engine
module Costs = Vino_vm.Costs
module Insn = Vino_vm.Insn
module Asm = Vino_vm.Asm
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Cred = Vino_core.Cred
module Audit = Vino_core.Audit
module Event_point = Vino_core.Event_point
module Rlimit = Vino_txn.Rlimit
module Txn = Vino_txn.Txn
module Verify = Vino_verify.Verify
module Pool = Vino_par.Pool

type path = Interp | Translated | Verified

let path_name = function
  | Interp -> "interp"
  | Translated -> "translated"
  | Verified -> "verified-translated"

let path_of_name = function
  | "interp" -> Some Interp
  | "translated" -> Some Translated
  | "verified-translated" | "verified" -> Some Verified
  | _ -> None

let all_paths = [ Interp; Translated; Verified ]

type config = {
  tenants : int;
  requests : int;
  interval : int;
  pause : int;
  max_inflight : int;
  jit_cache_cap : int;
  reinstall_every : int;
  shards : int;
  path : path;
  seed : int;
  runaway : int option;
  net_quota : int;
}

let default =
  {
    tenants = 8;
    requests = 24;
    interval = 4_000;
    pause = 24_000;
    max_inflight = 4;
    jit_cache_cap = 2;
    reinstall_every = 6;
    shards = 4;
    path = Translated;
    seed = 42;
    runaway = None;
    net_quota = 8;
  }

type report = {
  config : config;
  samples : (int * int * float) list;
  per_tenant : (int * string * int * int) list;
  served : int;
  rejected : int;
  admission_audited : int;
  handler_failures : int;
  transmitted : int;
  quota_denials : int;
  jit_hits : int;
  jit_misses : int;
  jit_evictions : int;
  drain_us : float;
  throughput_rps : float;
}

let families = [| "ra"; "evict"; "sched"; "http" |]
let family_name i = families.(i mod Array.length families)

(* Payload layout: [| arrival stamp (cycles); tenant id; request id;
   work count |]. The handler entry convention gives r1 = payload
   address, r2 = payload length. *)
let payload_words = 16
let heap_words = 16
let verify_words = 8

(* Per-request work: a small per-tenant constant so the four handler
   families produce distinct, seed-perturbed service times. *)
let work_of cfg tenant = 40 + (8 * (((tenant * 7) + cfg.seed) mod 9))

(* Handler grafts. Every tenant's code starts by baking its id into a
   dead register so each tenant has a distinct post-link signature — the
   translation cache then sees [tenants-per-shard] distinct entries and
   the LRU policy has something to evict. All loads go through r6, a
   copy of the segment-window pointer in r1, at constant offsets < 4,
   which the static verifier can prove in-segment on the
   verified-translated path. *)
let graft_source ~tenant ~flood : Asm.item list =
  let prologue : Asm.item list =
    [
      Li (Asm.r13, tenant);
      Ld (Asm.r3, Asm.r1, 0);
      (* arrival stamp *)
      Ld (Asm.r4, Asm.r1, 1);
      (* tenant id *)
      Ld (Asm.r11, Asm.r1, 2);
      (* request id — held in a register to the end: the window is
         shared with later arrivals, whose blits overwrite it *)
      Ld (Asm.r5, Asm.r1, 3);
      (* work count *)
      Mov (Asm.r6, Asm.r1);
      Mov (Asm.r1, Asm.r4);
      Kcall "serve.acquire";
    ]
  in
  let body : Asm.item list =
    if flood then
      [
        (* runaway: burn the work count on net.send floods; denials
           return r0 = 0 without aborting, so the quota slice, not the
           transaction machinery, is what contains the tenant *)
        Li (Asm.r7, 0);
        Label "flood";
        Br (Insn.Ge, Asm.r7, Asm.r5, "done");
        Li (Asm.r1, 99);
        Kcall "net.send";
        Alui (Insn.Add, Asm.r7, Asm.r7, 1);
        Jmp "flood";
        Label "done";
      ]
    else
      match tenant mod Array.length families with
      | 0 ->
          (* "ra": read-ahead-style sequential accumulate *)
          [
            Li (Asm.r7, 0);
            Li (Asm.r8, 0);
            Label "loop";
            Br (Insn.Ge, Asm.r7, Asm.r5, "done");
            Ld (Asm.r9, Asm.r6, 2);
            Alu (Insn.Add, Asm.r8, Asm.r8, Asm.r9);
            Alui (Insn.Add, Asm.r7, Asm.r7, 1);
            Jmp "loop";
            Label "done";
          ]
      | 1 ->
          (* "evict": stride-2 maximum scan *)
          [
            Li (Asm.r7, 0);
            Li (Asm.r8, 0);
            Label "loop";
            Br (Insn.Ge, Asm.r7, Asm.r5, "done");
            Ld (Asm.r9, Asm.r6, 3);
            Br (Insn.Le, Asm.r9, Asm.r8, "skip");
            Mov (Asm.r8, Asm.r9);
            Label "skip";
            Alui (Insn.Add, Asm.r7, Asm.r7, 2);
            Jmp "loop";
            Label "done";
          ]
      | 2 ->
          (* "sched": scheduler-delegate countdown *)
          [
            Mov (Asm.r7, Asm.r5);
            Li (Asm.r8, 1);
            Li (Asm.r9, 0);
            Label "loop";
            Br (Insn.Le, Asm.r7, Asm.r9, "done");
            Ld (Asm.r10, Asm.r6, 1);
            Alu (Insn.Add, Asm.r8, Asm.r8, Asm.r10);
            Alui (Insn.Sub, Asm.r7, Asm.r7, 1);
            Jmp "loop";
            Label "done";
          ]
      | _ ->
          (* "http": branch on request parity, then xor-fold *)
          [
            Ld (Asm.r7, Asm.r6, 2);
            Alui (Insn.And, Asm.r8, Asm.r7, 1);
            Li (Asm.r9, 0);
            Br (Insn.Eq, Asm.r8, Asm.r9, "even");
            Alui (Insn.Add, Asm.r5, Asm.r5, 8);
            Label "even";
            Li (Asm.r7, 0);
            Li (Asm.r8, 0);
            Label "loop";
            Br (Insn.Ge, Asm.r7, Asm.r5, "done");
            Ld (Asm.r9, Asm.r6, 0);
            Alu (Insn.Xor, Asm.r8, Asm.r8, Asm.r9);
            Alui (Insn.Add, Asm.r7, Asm.r7, 1);
            Jmp "loop";
            Label "done";
          ]
  in
  let epilogue : Asm.item list =
    [
      Mov (Asm.r1, Asm.r4);
      Mov (Asm.r2, Asm.r3);
      Mov (Asm.r3, Asm.r11);
      Kcall "serve.done";
      Li (Asm.r0, 0);
      Ret;
    ]
  in
  prologue @ body @ epilogue

let tenant_family cfg tenant =
  if cfg.runaway = Some tenant then "flood" else family_name tenant

(* Everything one shard produces; merged in shard-index order. *)
type shard_out = {
  s_samples : (int * int * float) list;
  s_per_tenant : (int * string * int * int) list;
  s_served : int;
  s_rejected : int;
  s_audited : int;
  s_failures : int;
  s_transmitted : int;
  s_denials : int;
  s_jit : Kernel.jit_cache_stats;
  s_drain_us : float;
}

let empty_shard =
  {
    s_samples = [];
    s_per_tenant = [];
    s_served = 0;
    s_rejected = 0;
    s_audited = 0;
    s_failures = 0;
    s_transmitted = 0;
    s_denials = 0;
    s_jit =
      {
        Kernel.jit_hits = 0;
        jit_misses = 0;
        jit_evictions = 0;
        jit_entries = 0;
      };
    s_drain_us = 0.;
  }

let seal_tenant cfg kernel source =
  let obj = Asm.assemble_exn source in
  let verify =
    match cfg.path with
    | Verified ->
        Some
          (Verify.config
             ~entry:
               [
                 (1, Verify.seg_window ());
                 (2, Verify.arg_at_most payload_words);
               ]
             ~words:verify_words ())
    | Interp | Translated -> None
  in
  match Kernel.seal ?verify kernel obj with
  | Ok image -> image
  | Error e -> invalid_arg ("Serve: tenant graft failed to seal: " ^ e)

let run_shard cfg shard =
  let tenants =
    List.filter
      (fun i -> i mod cfg.shards = shard)
      (List.init cfg.tenants Fun.id)
  in
  if tenants = [] then empty_shard
  else begin
    let n = List.length tenants in
    let exec_mode =
      match cfg.path with
      | Interp -> Vino_vm.Jit.Interp
      | Translated | Verified -> Vino_vm.Jit.Translated
    in
    let kernel =
      Kernel.create ~mem_words:(1 lsl 17) ~jit_cache_cap:cfg.jit_cache_cap
        ~exec_mode ()
    in
    let netout = Netout.create kernel () in
    (* the shard's server-wide account; every tenant gets a derived
       slice, so the shard's total grant is fixed up front *)
    let parent =
      Rlimit.create
        ~memory_words:(4096 * n)
        ~io_slots:(64 * n)
        ~net_packets:(cfg.net_quota * n)
        ()
    in
    (* shard-local tables the kcalls close over, indexed by global
       tenant id *)
    let local = Hashtbl.create 16 in
    List.iteri (fun li i -> Hashtbl.replace local i li) tenants;
    let slots = Array.make_matrix n cfg.requests (-1.0) in
    (* the shard's makespan is the last response instant, not the
       engine's drain time: a contended lock leaves cancelled time-out
       timers armed on the tick wheel, and those no-op firings would
       otherwise stretch the drain to the next 10 ms boundary *)
    let last_done = ref 0 in
    let inflight = Array.make n 0 in
    let served = Array.make n 0 in
    let rejected = Array.make n 0 in
    let locks =
      List.map
        (fun i ->
          Kernel.make_lock kernel
            ~timeout:(Vino_txn.Tcosts.us 20_000.)
            ~name:(Printf.sprintf "serve.tenant:%d" i)
            ())
        tenants
      |> Array.of_list
    in
    let li_of tenant =
      match Hashtbl.find_opt local tenant with
      | Some li -> li
      | None -> invalid_arg "Serve: request for a tenant of another shard"
    in
    let (_ : Kcall.fn) =
      Kernel.register_kcall kernel ~name:"serve.acquire" (fun ctx ->
          match ctx.Kcall.txn with
          | None -> Kcall.abort "serve.acquire outside a transaction"
          | Some txn -> (
              let li = li_of (Kcall.arg ctx.Kcall.cpu 0) in
              match Txn.acquire_lock txn locks.(li) Exclusive with
              | Ok () -> Kcall.ok
              | Error reason -> Kcall.abort reason))
    in
    let (_ : Kcall.fn) =
      Kernel.register_kcall kernel ~name:"serve.done" (fun ctx ->
          match ctx.Kcall.txn with
          | None -> Kcall.abort "serve.done outside a transaction"
          | Some txn ->
              let li = li_of (Kcall.arg ctx.Kcall.cpu 0) in
              let stamp = Kcall.arg ctx.Kcall.cpu 1 in
              let req = Kcall.arg ctx.Kcall.cpu 2 in
              (* the response instant is the request's commit: graft
                 cycles are charged to the clock in wrapper slices, so
                 the clock mid-kcall is stale — defer the reading until
                 the transaction commits and the charge is complete
                 (aborted requests then never record a sample) *)
              Txn.defer txn (fun () ->
                  let now = Engine.now kernel.Kernel.engine in
                  last_done := max !last_done now;
                  slots.(li).(req) <- Costs.us_of_cycles (now - stamp);
                  served.(li) <- served.(li) + 1;
                  inflight.(li) <- max 0 (inflight.(li) - 1));
              Kcall.ok)
    in
    let ports =
      List.map
        (fun i -> Port.create kernel Tcp ~number:(8000 + i)) tenants
      |> Array.of_list
    in
    let handlers = Array.make n (-1) in
    (* each tenant's resource slice is derived from the shard account
       once and survives handler churn: inheritance is per tenant, not
       per install *)
    let tslim =
      List.map
        (fun _ ->
          match
            Rlimit.derive ~parent ~memory_words:4096 ~io_slots:64
              ~net_packets:cfg.net_quota ()
          with
          | Ok l -> l
          | Error `Denied -> invalid_arg "Serve: parent account underfunded")
        tenants
      |> Array.of_list
    in
    let images =
      List.map
        (fun i ->
          seal_tenant cfg kernel
            (graft_source ~tenant:i ~flood:(cfg.runaway = Some i)))
        tenants
      |> Array.of_list
    in
    let install li i =
      let cred =
        Cred.user (Printf.sprintf "tenant-%d" i) ~limits:tslim.(li)
      in
      match
        Event_point.add_handler
          (Port.event_point ports.(li))
          kernel ~cred ~payload_words ~heap_words ~limits:tslim.(li)
          images.(li)
      with
      | Ok hid -> handlers.(li) <- hid
      | Error e -> invalid_arg ("Serve: handler install failed: " ^ e)
    in
    List.iteri (fun li i -> install li i) tenants;
    (* Tenant churn: on every k-th arrival (and only when the tenant is
       idle, so its in-flight work keeps a live translation), tear the
       handler down and reinstall it. The reinstall routes through
       Linker.load -> Kernel.translate, which is where the bounded
       cache's hits, misses and evictions come from. *)
    let reinstall li i =
      Event_point.remove_handler (Port.event_point ports.(li)) kernel
        handlers.(li);
      install li i
    in
    let arrival li i r =
      if inflight.(li) >= cfg.max_inflight then begin
        rejected.(li) <- rejected.(li) + 1;
        Kernel.audit_event kernel
          (Audit.Admission_rejected
             {
               point = Printf.sprintf "tcp.port-%d" (8000 + i);
               tenant = Printf.sprintf "tenant-%d" i;
               reason =
                 Printf.sprintf "in-flight cap %d reached" cfg.max_inflight;
             })
      end
      else begin
        if
          cfg.reinstall_every > 0
          && r > 0
          && r mod cfg.reinstall_every = 0
          && inflight.(li) = 0
        then reinstall li i;
        inflight.(li) <- inflight.(li) + 1;
        Port.connect ports.(li)
          ~payload:
            [| Engine.now kernel.Kernel.engine; i; r; work_of cfg i |]
      end
    in
    (* Open-loop arrivals in bursts of [reinstall_every]: the [pause]
       between bursts lets a tenant drain idle, which is when the churn
       reinstall can actually run (a live in-flight request pins the
       loaded graft). *)
    let arrival_time cfg i r =
      let phase = (i + 1) * 137 in
      let pauses =
        if cfg.reinstall_every > 0 then r / cfg.reinstall_every else 0
      in
      phase + (r * cfg.interval) + (pauses * cfg.pause)
    in
    List.iteri
      (fun li i ->
        for r = 0 to cfg.requests - 1 do
          let (_ : Engine.cancel) =
            Engine.at kernel.Kernel.engine (arrival_time cfg i r) (fun () ->
                arrival li i r)
          in
          ()
        done)
      tenants;
    Kernel.run kernel;
    let samples = ref [] in
    List.iteri
      (fun li i ->
        for r = cfg.requests - 1 downto 0 do
          if slots.(li).(r) >= 0. then
            samples := (i, r, slots.(li).(r)) :: !samples
        done)
      tenants;
    let audited =
      List.length
        (List.filter
           (fun (e : Audit.entry) ->
             match e.Audit.event with
             | Audit.Admission_rejected _ -> true
             | _ -> false)
           (Audit.entries kernel.Kernel.audit))
    in
    let failures =
      Array.fold_left
        (fun acc p ->
          acc + Event_point.handler_failures (Port.event_point p))
        0 ports
    in
    {
      s_samples = !samples;
      s_per_tenant =
        List.mapi
          (fun li i -> (i, tenant_family cfg i, served.(li), rejected.(li)))
          tenants;
      s_served = Array.fold_left ( + ) 0 served;
      s_rejected = Array.fold_left ( + ) 0 rejected;
      s_audited = audited;
      s_failures = failures;
      s_transmitted = Netout.transmitted netout;
      s_denials = Netout.quota_denials netout;
      s_jit = Kernel.jit_cache_stats kernel;
      (* Makespan is the instant the last response committed, not the
         engine drain time: cancelled lock-timeout timers stay armed on
         the tick wheel and fire as no-ops, which would otherwise round
         the drain up to the next 10ms tick boundary. *)
      s_drain_us = Costs.us_of_cycles !last_done;
    }
  end

let run ?pool cfg =
  if cfg.tenants < 1 then invalid_arg "Serve.run: tenants must be positive";
  if cfg.requests < 1 then invalid_arg "Serve.run: requests must be positive";
  if cfg.shards < 1 then invalid_arg "Serve.run: shards must be positive";
  (match cfg.runaway with
  | Some i when i < 0 || i >= cfg.tenants ->
      invalid_arg "Serve.run: runaway tenant out of range"
  | _ -> ());
  let outs =
    Pool.map_scoped ?pool (run_shard cfg) (List.init cfg.shards Fun.id)
  in
  let samples =
    List.concat_map (fun o -> o.s_samples) outs
    |> List.sort (fun (t1, r1, _) (t2, r2, _) -> compare (t1, r1) (t2, r2))
  in
  let per_tenant =
    List.concat_map (fun o -> o.s_per_tenant) outs
    |> List.sort (fun (t1, _, _, _) (t2, _, _, _) -> compare t1 t2)
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outs in
  let served = sum (fun o -> o.s_served) in
  let drain_us =
    List.fold_left (fun acc o -> Float.max acc o.s_drain_us) 0. outs
  in
  {
    config = cfg;
    samples;
    per_tenant;
    served;
    rejected = sum (fun o -> o.s_rejected);
    admission_audited = sum (fun o -> o.s_audited);
    handler_failures = sum (fun o -> o.s_failures);
    transmitted = sum (fun o -> o.s_transmitted);
    quota_denials = sum (fun o -> o.s_denials);
    jit_hits = sum (fun o -> o.s_jit.Kernel.jit_hits);
    jit_misses = sum (fun o -> o.s_jit.Kernel.jit_misses);
    jit_evictions = sum (fun o -> o.s_jit.Kernel.jit_evictions);
    drain_us;
    throughput_rps =
      (if drain_us > 0. then float_of_int served /. drain_us *. 1e6
       else 0.);
  }

let latencies ?tenant report =
  List.filter_map
    (fun (t, _, us) ->
      match tenant with
      | Some wanted when t <> wanted -> None
      | _ -> Some us)
    report.samples
