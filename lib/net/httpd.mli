(** A kernel-resident HTTP server built as an event graft (Figure 2).

    The server is a handler added to a TCP port's event point: each
    connection-established event carries a request (method word + path
    hash); the handler looks the document up and responds through
    graft-callable kernel functions. The kernel-side response log lets
    applications and tests observe what was served. *)

type t

val create : Vino_core.Kernel.t -> ?port:int -> ?budget:int -> unit -> t
(** Registers the graft-callable functions ["http.lookup"] and
    ["http.respond"] (once per kernel) and claims the TCP port
    (default 80). [budget] bounds one handler invocation's cycles (passed
    to the port's event point). *)

val port : t -> Port.t

val add_document : t -> path:int -> size:int -> unit
(** Publish a document under a path hash. *)

val server_source : Vino_vm.Asm.item list
(** The HTTP server graft: GET → lookup → 200 with the document size, or
    404. *)

val install : t -> cred:Vino_core.Cred.t -> (int, string) result
(** Seal {!server_source} with the kernel's toolchain key and add it as a
    handler; returns the handler id. *)

val get : t -> path:int -> unit
(** Client side: open a connection carrying a GET for [path]. Run the
    engine to completion before reading {!responses}. *)

val responses : t -> (int * int) list
(** All [(status, size)] responses, oldest first. *)
