(* Deterministic domain pool.

   Work distribution is dynamic (an atomic next-item counter), result
   placement is static (slot array indexed by item position, read back in
   index order), so the output never depends on scheduling. The caller
   participates in every batch; [domains - 1] long-lived workers block on
   a condition variable between batches. *)

type batch = { run : unit -> unit }

type t = {
  size : int; (* total members, including the caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable batch : batch option;
  mutable generation : int; (* bumped when a new batch is published *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  in_batch : bool Atomic.t; (* reentrancy guard *)
}

let worker_main t =
  let rec loop last_gen =
    Mutex.lock t.mutex;
    while t.generation = last_gen && not t.stop do
      Condition.wait t.work_ready t.mutex
    done;
    let gen = t.generation and b = t.batch and stop = t.stop in
    Mutex.unlock t.mutex;
    if not stop then begin
      (match b with Some b -> b.run () | None -> ());
      loop gen
    end
  in
  loop 0

let create ?domains () =
  let size =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      workers = [];
      in_batch = Atomic.make false;
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_main t));
  t

let domains t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map ?pool f items =
  match pool with
  | None -> List.map f items
  | Some t when t.size = 1 || t.stop -> List.map f items
  | Some t ->
      if not (Atomic.compare_and_set t.in_batch false true) then
        invalid_arg "Pool.map: nested fan-out on the same pool";
      Fun.protect
        ~finally:(fun () -> Atomic.set t.in_batch false)
        (fun () ->
          let arr = Array.of_list items in
          let n = Array.length arr in
          if n = 0 then []
          else begin
            let slots = Array.make n None in
            let errors = Array.make n None in
            let next = Atomic.make 0 in
            let completed = Atomic.make 0 in
            let done_mutex = Mutex.create () in
            let done_cond = Condition.create () in
            let run () =
              let rec claim () =
                let i = Atomic.fetch_and_add next 1 in
                if i < n then begin
                  (match f arr.(i) with
                  | v -> slots.(i) <- Some v
                  | exception e ->
                      errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
                  if Atomic.fetch_and_add completed 1 = n - 1 then begin
                    Mutex.lock done_mutex;
                    Condition.broadcast done_cond;
                    Mutex.unlock done_mutex
                  end;
                  claim ()
                end
              in
              claim ()
            in
            Mutex.lock t.mutex;
            t.batch <- Some { run };
            t.generation <- t.generation + 1;
            Condition.broadcast t.work_ready;
            Mutex.unlock t.mutex;
            run ();
            Mutex.lock done_mutex;
            while Atomic.get completed < n do
              Condition.wait done_cond done_mutex
            done;
            Mutex.unlock done_mutex;
            Array.iter
              (function
                | Some (e, bt) -> Printexc.raise_with_backtrace e bt
                | None -> ())
              errors;
            Array.to_list
              (Array.map
                 (function
                   | Some v -> v
                   | None -> assert false (* completed = n, no errors *))
                 slots)
          end)

module Trace = Vino_trace.Trace

let map_scoped ?pool f items =
  match pool with
  | None -> List.map f items
  | Some t when t.size = 1 || t.stop -> List.map f items
  | Some _ ->
      let results =
        map ?pool
          (fun item ->
            let sink = Trace.create () in
            let v = Trace.with_t sink (fun () -> f item) in
            (v, sink))
          items
      in
      List.map
        (fun (v, sink) ->
          Trace.absorb sink;
          v)
        results
