(** A small OCaml 5 domain pool with deterministic work distribution.

    Items are claimed dynamically from an atomic counter (so fast workers
    take more items), but every result is written into a preallocated slot
    indexed by the item's position and the slots are read back in index
    order — the output of {!map} is a pure function of the input list,
    independent of how the items were scheduled across domains.

    A pool of [domains = 1] never spawns a domain and never touches an
    atomic: {!map} is exactly [List.map], byte-for-byte the serial code
    path. This is what [-j 1] means on the CLIs.

    {!map} is not reentrant: calling it from inside a worker of the same
    pool (a nested fan-out) raises [Invalid_argument]. The caller's
    domain participates in every batch, so a pool created with
    [~domains:n] uses at most [n] domains in total including the
    caller. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller
    is the remaining member). [domains] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1. *)

val domains : t -> int
(** Total members, including the calling domain. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~pool f items] applies [f] to every item, fanning out across the
    pool's domains, and returns the results in input order. Without
    [?pool] (or with a 1-domain pool) this is exactly [List.map f items].

    If any application raises, the exception of the lowest-indexed
    failing item is re-raised (with its backtrace) after the whole batch
    has drained; other results are discarded. *)

val map_scoped : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but each parallel item runs under a fresh private
    {!Vino_trace.Trace} sink in its worker domain, and after the batch
    the private sinks are absorbed — counters and profile aggregates
    summed, spans appended — into the sink installed in the {e caller's}
    domain, in item-index order. Because the per-item work is serial
    within a domain and the merge is ordered, the caller's sink ends up
    identical to what a serial run under one sink would record (span
    streams included, as long as no per-item ring overflows).

    Without [?pool] (or with a 1-domain pool) this is exactly
    [List.map f items] — items run directly under the caller's sink. *)

val shutdown : t -> unit
(** Join the worker domains. The pool degrades to the serial path
    afterwards; calling [shutdown] twice is harmless. *)
