(** LRU block cache (the file buffer cache).

    Tracks which disk blocks are resident, in strict LRU order. Read-ahead
    fills it asynchronously; the hit/miss counters drive the read-ahead
    cost/benefit experiments. *)

type t

val create : capacity:int -> unit -> t
val capacity : t -> int
val length : t -> int

val lookup : t -> int -> bool
(** Membership test that refreshes recency and counts a hit or miss. *)

val mem : t -> int -> bool
(** Membership without side effects. *)

type evicted = { block : int; dirty : bool }

val insert : t -> ?dirty:bool -> int -> evicted option
(** Make a block resident; returns the evicted LRU block when full (the
    caller must write it back if dirty). Inserting a resident block
    refreshes it (and marks it dirty if [dirty]). *)

val mark_dirty : t -> int -> unit
(** No-op if the block is not resident. *)

val is_dirty : t -> int -> bool

(** Dirty blocks in dirtied (FIFO/aging) order, oldest first: *)
val dirty_blocks : t -> int list
val clean : t -> int -> unit
(** Mark a block written back. *)

val remove : t -> int -> unit

val lru_order : t -> int list
(** Least-recently-used first (for tests). *)

val hits : t -> int
val misses : t -> int

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures residency (with dirty flags and recency
    order) and statistics; the returned thunk restores them
    (re-runnable). For kernel snapshots. *)
