module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Graft_point = Vino_core.Graft_point

type ra_request = {
  offset_block : int;
  size_blocks : int;
  last_block : int;
  file_blocks : int;
}

let max_extents = 8

type t = {
  fname : string;
  first_block : int;
  fblocks : int;
  kernel : Kernel.t;
  cache : Cache.t;
  disk : Disk.t;
  prefetch : Prefetch.t;
  ra : (ra_request, int list) Graft_point.t;
  lock : Vino_txn.Lock.t;
  lock_name : string;
  mutable last_block : int;
  mutable syncer : Syncer.t option;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_hits : int;
  mutable n_writebacks : int;
  mutable stalled : int;
}

(* Default sequential read-ahead: prefetch the next [window] blocks only
   when the access continues a sequential run. The paper's base path (the
   default selection with all graft support removed) costs ~0.5 us. *)
let default_policy_cost = Vino_txn.Tcosts.us 0.5

let default_policy ~window req =
  Engine.delay default_policy_cost;
  if req.offset_block = req.last_block + 1 then
    List.init window (fun k -> req.offset_block + req.size_blocks + k)
    |> List.filter (fun b -> b < req.file_blocks)
  else []

let setup cpu req =
  Cpu.set_reg cpu 1 req.offset_block;
  Cpu.set_reg cpu 2 req.size_blocks;
  Cpu.set_reg cpu 3 req.last_block;
  (* shared-window address: grafts are position independent *)
  Cpu.set_reg cpu 4 (Cpu.segment cpu).Mem.base

(* Result protocol: r0 = extent count, r1 = address of the block-number
   array in graft memory. Everything is validated: the count is bounded and
   every block must lie within the file (the "detectably invalid" check). *)
let read_result kernel cpu req =
  let count = Cpu.reg cpu 0 in
  if count = 0 then Ok []
  else if count < 0 || count > max_extents then
    Error (Printf.sprintf "extent count %d out of range" count)
  else begin
    let seg = Cpu.segment cpu in
    let addr = Cpu.reg cpu 1 in
    let rec gather acc k =
      if k = count then Ok (List.rev acc)
      else
        let block =
          Mem.load kernel.Kernel.mem (Mem.sandbox seg (addr + k))
        in
        if block < 0 || block >= req.file_blocks then
          Error (Printf.sprintf "prefetch block %d outside file" block)
        else gather (block :: acc) (k + 1)
    in
    gather [] 0
  end

(* Atomic: files are opened from parallel worker domains (one kernel
   per bench/campaign unit); instance names must stay unique. *)
let open_counter = Atomic.make 0

let openf ~kernel ~cache ~disk ~name ~first_block ~blocks ?(ra_window = 1)
    ?ra_budget () =
  if blocks <= 0 || first_block < 0 then invalid_arg "File.openf: bad extent";
  (* each open-file object is independent (descriptors are handles for
     kernel open-file objects), so its pattern-buffer lock function gets a
     unique name *)
  let instance =
    Printf.sprintf "%s#%d" name (1 + Atomic.fetch_and_add open_counter 1)
  in
  let lock =
    Kernel.make_lock kernel
      ~timeout:(Vino_txn.Tcosts.us 500.)
      ~name:(Printf.sprintf "pattern-buffer:%s" instance)
      ()
  in
  let lock_name = Printf.sprintf "ra.lock:%s" instance in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:lock_name (fun ctx ->
        match ctx.Kcall.txn with
        | None -> Kcall.abort "pattern-buffer lock outside a transaction"
        | Some txn -> (
            match Txn.acquire_lock txn lock Exclusive with
            | Ok () -> Kcall.ok
            | Error reason -> Kcall.abort reason))
  in
  let ra =
    Graft_point.create
      ~name:(Printf.sprintf "%s.compute-ra" name)
      ?budget:ra_budget
      ~default:(default_policy ~window:ra_window)
      ~setup
      ~read_result:(fun cpu req -> read_result kernel cpu req)
      ()
  in
  let t =
    {
      fname = name;
      first_block;
      fblocks = blocks;
      kernel;
      cache;
      disk;
      prefetch = Prefetch.create kernel.Kernel.engine ~cache ~disk ();
      ra;
      lock;
      lock_name;
      last_block = -1;
      syncer = None;
      n_reads = 0;
      n_writes = 0;
      n_hits = 0;
      n_writebacks = 0;
      stalled = 0;
    }
  in
  (* Enroll the whole open-file world in the kernel snapshot registry
     (the lock enrolled itself in [make_lock]). *)
  Kernel.on_snapshot kernel (Cache.saver cache);
  Kernel.on_snapshot kernel (Disk.saver disk);
  Kernel.on_snapshot kernel (Prefetch.saver t.prefetch);
  Kernel.on_snapshot kernel (Graft_point.saver ra);
  Kernel.on_snapshot kernel (fun () ->
      let last_block = t.last_block
      and syncer = t.syncer
      and n_reads = t.n_reads
      and n_writes = t.n_writes
      and n_hits = t.n_hits
      and n_writebacks = t.n_writebacks
      and stalled = t.stalled in
      fun () ->
        t.last_block <- last_block;
        t.syncer <- syncer;
        t.n_reads <- n_reads;
        t.n_writes <- n_writes;
        t.n_hits <- n_hits;
        t.n_writebacks <- n_writebacks;
        t.stalled <- stalled);
  t

let attach_syncer t syncer = t.syncer <- Some syncer
let name t = t.fname
let blocks t = t.fblocks
let ra_point t = t.ra
let ra_lock t = t.lock
let ra_lock_name t = t.lock_name
let prefetcher t = t.prefetch
let reads t = t.n_reads
let writes t = t.n_writes
let cache_hits t = t.n_hits
let writebacks t = t.n_writebacks
let stall_cycles t = t.stalled

let disk_block t b = t.first_block + b

(* Insertions may push a dirty block off the LRU end: write it back. *)
let insert_with_writeback t ?dirty target =
  match Cache.insert t.cache ?dirty target with
  | Some { Cache.block; dirty = true } ->
      t.n_writebacks <- t.n_writebacks + 1;
      Disk.submit t.disk Disk.Write ~block ~on_complete:(fun () -> ())
  | Some _ | None -> ()

(* Copying one 4 KB block to the application: half the paper's 8 KB bcopy. *)
let copyout_cost = Vino_txn.Tcosts.us 52.

let read t ~cred ~block =
  if block < 0 || block >= t.fblocks then invalid_arg "File.read: bad block";
  t.n_reads <- t.n_reads + 1;
  let target = disk_block t block in
  let before = Engine.now t.kernel.Kernel.engine in
  let hit = Cache.lookup t.cache target in
  if hit then t.n_hits <- t.n_hits + 1
  else begin
    Disk.read t.disk ~block:target;
    insert_with_writeback t target
  end;
  t.stalled <- t.stalled + (Engine.now t.kernel.Kernel.engine - before);
  Engine.delay copyout_cost;
  Prefetch.note_consumed t.prefetch target;
  let req =
    {
      offset_block = block;
      size_blocks = 1;
      last_block = t.last_block;
      file_blocks = t.fblocks;
    }
  in
  t.last_block <- block;
  let decision = Graft_point.invoke t.ra t.kernel ~cred req in
  Prefetch.push t.prefetch (List.map (disk_block t) decision);
  if hit then `Hit else `Miss

(* Whole-block write-allocate: the block becomes resident and dirty; the
   syncer (or LRU eviction) takes it to disk later. *)
let write t ~cred:_ ~block =
  if block < 0 || block >= t.fblocks then invalid_arg "File.write: bad block";
  t.n_writes <- t.n_writes + 1;
  Engine.delay copyout_cost;
  let target = disk_block t block in
  if Cache.mem t.cache target then begin
    ignore (Cache.lookup t.cache target);
    Cache.mark_dirty t.cache target
  end
  else insert_with_writeback t ~dirty:true target;
  match t.syncer with Some s -> Syncer.note_write s | None -> ()
