(** The per-file prefetch queue and its daemon (§4.1.2).

    Prefetch requests produced by [compute-ra] are queued here and issued to
    the I/O system as buffer memory becomes available: a graft that asks for
    100 MB of read-ahead does not steal the system's pages — the requests
    trickle out bounded by [max_inflight] and the buffer budget, which is a
    global policy normal users cannot graft. *)

type t

val create :
  Vino_sim.Engine.t ->
  cache:Cache.t ->
  disk:Disk.t ->
  ?max_inflight:int ->
  ?buffer_budget:int ->
  unit ->
  t
(** [buffer_budget] caps how many prefetched-but-unread blocks may sit in
    the cache at once (default 64). *)

val push : t -> int list -> unit
(** Queue blocks for read-ahead; duplicates of resident blocks are
    dropped. *)

val note_consumed : t -> int -> unit
(** The application read this block: its buffer no longer counts against
    the prefetch budget. *)

val pending : t -> int
val issued : t -> int
val dropped : t -> int
val in_flight : t -> int

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the prefetch queue, budget accounting and
    statistics; the returned thunk restores them (re-runnable). For
    kernel snapshots. *)
