module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq

type geometry = {
  min_seek_us : float;
  avg_seek_us : float;
  avg_rotation_us : float;
  transfer_us_per_block : float;
  blocks : int;
}

let default_geometry =
  {
    min_seek_us = 1_000.;
    avg_seek_us = 9_500.;
    avg_rotation_us = 5_555.;
    transfer_us_per_block = 800.;
    blocks = 270_000 (* 1080 MB of 4 KB blocks *);
  }

type scheduling = Fifo | Elevator

type kind = Read | Write

type request = { kind : kind; block : int; on_complete : unit -> unit }

type t = {
  geometry : geometry;
  scheduling : scheduling;
  mutable queue : request list; (* head is next to serve *)
  work : Waitq.t;
  mutable head_block : int;
  mutable served : int;
  mutable writes : int;
  mutable sequential : int;
  mutable busy : int;
}

let cycles_of_us = Vino_vm.Costs.cycles_of_us

let service_time t ~block =
  let g = t.geometry in
  if block = t.head_block + 1 || block = t.head_block then
    cycles_of_us g.transfer_us_per_block
  else
    (* square-root seek profile, calibrated so the mean random seek
       (distance fraction ~0.5) equals the drive's average seek time *)
    let distance =
      float_of_int (abs (block - t.head_block)) /. float_of_int g.blocks
    in
    let seek =
      g.min_seek_us
      +. ((g.avg_seek_us -. g.min_seek_us) *. sqrt (distance /. 0.5))
    in
    cycles_of_us (seek +. g.avg_rotation_us +. g.transfer_us_per_block)

let pick_next t =
  match t.scheduling with
  | Fifo -> (
      match t.queue with
      | [] -> None
      | r :: rest ->
          t.queue <- rest;
          Some r)
  | Elevator -> (
      (* serve the request closest to the head, sweeping upward first *)
      match t.queue with
      | [] -> None
      | _ ->
          let upward, downward =
            List.partition (fun r -> r.block >= t.head_block) t.queue
          in
          let best =
            match
              List.sort (fun a b -> compare a.block b.block) upward
            with
            | r :: _ -> r
            | [] -> (
                match
                  List.sort (fun a b -> compare b.block a.block) downward
                with
                | r :: _ -> r
                | [] -> assert false)
          in
          t.queue <- List.filter (fun r -> r != best) t.queue;
          Some best)

let rec disk_process t () =
  match pick_next t with
  | None ->
      Waitq.wait t.work;
      disk_process t ()
  | Some r ->
      let cost = service_time t ~block:r.block in
      if r.block = t.head_block + 1 || r.block = t.head_block then
        t.sequential <- t.sequential + 1;
      Engine.delay cost;
      t.busy <- t.busy + cost;
      t.head_block <- r.block;
      t.served <- t.served + 1;
      (match r.kind with Write -> t.writes <- t.writes + 1 | Read -> ());
      r.on_complete ();
      disk_process t ()

let create engine ?(geometry = default_geometry) ?(scheduling = Fifo) () =
  let t =
    {
      geometry;
      scheduling;
      queue = [];
      work = Waitq.create engine;
      head_block = 0;
      served = 0;
      writes = 0;
      sequential = 0;
      busy = 0;
    }
  in
  ignore (Engine.spawn engine ~name:"disk" (fun () -> disk_process t ()));
  t

let submit t kind ~block ~on_complete =
  if block < 0 || block >= t.geometry.blocks then
    invalid_arg "Disk.submit: block out of range";
  t.queue <- t.queue @ [ { kind; block; on_complete } ];
  ignore (Waitq.signal t.work)

let blocking t kind ~block =
  Engine.suspend (fun wake -> submit t kind ~block ~on_complete:(fun () -> wake ()))

let read t ~block = blocking t Read ~block
let write t ~block = blocking t Write ~block

let saver t () =
  let restore_work = Waitq.saver t.work () in
  let queue = t.queue
  and head_block = t.head_block
  and served = t.served
  and writes = t.writes
  and sequential = t.sequential
  and busy = t.busy in
  fun () ->
    restore_work ();
    t.queue <- queue;
    t.head_block <- head_block;
    t.served <- served;
    t.writes <- writes;
    t.sequential <- sequential;
    t.busy <- busy
let requests_served t = t.served
let writes_served t = t.writes
let sequential_hits t = t.sequential
let busy_cycles t = t.busy
let queue_depth t = List.length t.queue
