module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq

type t = {
  cache : Cache.t;
  disk : Disk.t;
  max_inflight : int;
  buffer_budget : int;
  mutable queue : int list;
  work : Waitq.t;
  mutable n_inflight : int;
  mutable unconsumed : int; (* prefetched blocks not yet read by the app *)
  mutable n_issued : int;
  mutable n_dropped : int;
}

let rec daemon t () =
  if
    t.queue = [] || t.n_inflight >= t.max_inflight
    || t.unconsumed + t.n_inflight >= t.buffer_budget
  then begin
    Waitq.wait t.work;
    daemon t ()
  end
  else begin
    match t.queue with
    | [] -> daemon t ()
    | block :: rest ->
        t.queue <- rest;
        if Cache.mem t.cache block then begin
          t.n_dropped <- t.n_dropped + 1;
          daemon t ()
        end
        else begin
          t.n_inflight <- t.n_inflight + 1;
          Disk.submit t.disk Disk.Read ~block ~on_complete:(fun () ->
              t.n_inflight <- t.n_inflight - 1;
              t.unconsumed <- t.unconsumed + 1;
              (match Cache.insert t.cache block with
              | Some { Cache.block = victim; dirty = true } ->
                  Disk.submit t.disk Disk.Write ~block:victim
                    ~on_complete:(fun () -> ())
              | Some _ | None -> ());
              t.n_issued <- t.n_issued + 1;
              ignore (Waitq.signal t.work));
          daemon t ()
        end
  end

let create engine ~cache ~disk ?(max_inflight = 4) ?(buffer_budget = 64) () =
  let t =
    {
      cache;
      disk;
      max_inflight;
      buffer_budget;
      queue = [];
      work = Waitq.create engine;
      n_inflight = 0;
      unconsumed = 0;
      n_issued = 0;
      n_dropped = 0;
    }
  in
  ignore (Engine.spawn engine ~name:"prefetchd" (fun () -> daemon t ()));
  t

let push t blocks =
  let fresh = List.filter (fun b -> not (Cache.mem t.cache b)) blocks in
  t.n_dropped <- t.n_dropped + (List.length blocks - List.length fresh);
  if fresh <> [] then begin
    t.queue <- t.queue @ fresh;
    ignore (Waitq.signal t.work)
  end

let note_consumed t _block =
  if t.unconsumed > 0 then begin
    t.unconsumed <- t.unconsumed - 1;
    ignore (Waitq.signal t.work)
  end

let pending t = List.length t.queue
let issued t = t.n_issued
let dropped t = t.n_dropped
let in_flight t = t.n_inflight

let saver t () =
  let restore_work = Waitq.saver t.work () in
  let queue = t.queue
  and n_inflight = t.n_inflight
  and unconsumed = t.unconsumed
  and n_issued = t.n_issued
  and n_dropped = t.n_dropped in
  fun () ->
    restore_work ();
    t.queue <- queue;
    t.n_inflight <- n_inflight;
    t.unconsumed <- unconsumed;
    t.n_issued <- n_issued;
    t.n_dropped <- n_dropped
