(** Open-file objects and the read-ahead graft point (§4.1).

    Application file descriptors are handles for kernel open-file objects;
    each read calls the object's [compute-ra] method to decide which (if
    any) additional file blocks to prefetch. The default policy prefetches
    only on sequential access. Applications override it by grafting a new
    [compute-ra] onto their open file — typically driven by an access
    pattern the application writes into a buffer shared with the graft,
    guarded by a lock (the 33 us "lock overhead" line of Table 3). *)

type ra_request = {
  offset_block : int;  (** block of the current read (file-relative) *)
  size_blocks : int;
  last_block : int;  (** previous read's block, -1 initially *)
  file_blocks : int;
}

val max_extents : int
(** Upper bound on blocks one [compute-ra] decision may request. *)

type t

val openf :
  kernel:Vino_core.Kernel.t ->
  cache:Cache.t ->
  disk:Disk.t ->
  name:string ->
  first_block:int ->
  blocks:int ->
  ?ra_window:int ->
  ?ra_budget:int ->
  unit ->
  t
(** [first_block]/[blocks] place the file contiguously on disk.
    [ra_window] is the default sequential-read-ahead depth (default 1).
    [ra_budget] bounds one [compute-ra] invocation's cycles (the
    disaster-rig campaigns use a small budget so runaway grafts die fast).
    Registers the graft-callable function ["ra.lock:<name>"] that grafts
    use to lock the shared pattern buffer. *)

val name : t -> string
val blocks : t -> int
val ra_point : t -> (ra_request, int list) Vino_core.Graft_point.t

val ra_lock : t -> Vino_txn.Lock.t
(** The pattern-buffer lock itself — the disaster rig checks it for leaked
    holders after recovery. *)

val ra_lock_name : t -> string
val prefetcher : t -> Prefetch.t

val read : t -> cred:Vino_core.Cred.t -> block:int -> [ `Hit | `Miss ]
(** Blocking read of one file block (must run inside an engine process):
    consult the cache, go to disk on a miss, then run [compute-ra] and
    queue its decision on the prefetch queue. Dirty blocks pushed off the
    LRU end are written back. *)

val write : t -> cred:Vino_core.Cred.t -> block:int -> unit
(** Whole-block write-allocate: the block becomes resident and dirty. The
    attached syncer (or LRU eviction) carries it to disk. *)

val attach_syncer : t -> Syncer.t -> unit
(** Let writes kick the write-back daemon past its threshold. *)

val reads : t -> int
val writes : t -> int
val cache_hits : t -> int

(** Dirty blocks written back because eviction pushed them out: *)
val writebacks : t -> int
val stall_cycles : t -> int
(** Total cycles spent blocked on disk for demand reads — the quantity
    read-ahead grafting exists to reduce. *)
