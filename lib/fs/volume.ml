module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Lock = Vino_txn.Lock

type entry = { first_block : int; blocks : int }

type t = {
  kernel : Kernel.t;
  disk : Disk.t;
  vcache : Cache.t;
  vsyncer : Syncer.t;
  bitmap : Bytes.t; (* one byte per block: 0 free, 1 used *)
  total : int;
  bitmap_lock : Lock.t;
  lock_name : string;
  directory : (string, entry) Hashtbl.t;
  mutable used : int;
}

(* scanning the bitmap costs a few hundred instructions (§3.2) *)
let scan_cost_per_word = 2
let words_per_scan_unit = 64

(* Atomic: volumes are created from parallel worker domains (one kernel
   per bench/campaign unit); instance numbers must stay unique. *)
let volumes = Atomic.make 0

let create kernel ~disk ?(cache_blocks = 512) ?(blocks = 65_536)
    ?syncer_threshold () =
  if blocks <= 0 then invalid_arg "Volume.create: need blocks";
  let volume = 1 + Atomic.fetch_and_add volumes 1 in
  let vcache = Cache.create ~capacity:cache_blocks () in
  let t =
    {
      kernel;
      disk;
      vcache;
      vsyncer =
        Syncer.create kernel ~cache:vcache ~disk ?threshold:syncer_threshold ();
      bitmap = Bytes.make blocks '\000';
      total = blocks;
      bitmap_lock =
        Kernel.make_lock kernel
          ~timeout:(Vino_txn.Tcosts.us 200.)
          ~name:(Printf.sprintf "fs-bitmap-%d" volume)
          ();
      lock_name = Printf.sprintf "fs-bitmap-%d" volume;
      directory = Hashtbl.create 32;
      used = 0;
    }
  in
  (* the syncer enrolled its own cache/disk-independent state; the volume
     adds the allocation bitmap and directory *)
  Kernel.on_snapshot kernel (fun () ->
      let bitmap = Bytes.copy t.bitmap
      and directory = Hashtbl.copy t.directory
      and used = t.used in
      fun () ->
        Bytes.blit bitmap 0 t.bitmap 0 (Bytes.length bitmap);
        Hashtbl.reset t.directory;
        Hashtbl.iter (Hashtbl.replace t.directory) directory;
        t.used <- used);
  t

let cache t = t.vcache
let syncer t = t.vsyncer
let bitmap_lock_name t = t.lock_name
let free_blocks t = t.total - t.used
let used_blocks t = t.used

let charge_scan scanned =
  Engine.delay (scan_cost_per_word * (scanned / words_per_scan_unit + 1))

(* first-fit search for a free run of [n] blocks; caller holds the lock *)
let find_free_run t n =
  let rec scan start run k =
    if k >= t.total then None
    else if Bytes.get t.bitmap k = '\000' then
      if run + 1 = n then Some start else scan start (run + 1) (k + 1)
    else scan (k + 1) 0 (k + 1)
  in
  let result = scan 0 0 0 in
  charge_scan t.total;
  result

let set_run t ~first ~count value =
  for k = first to first + count - 1 do
    Bytes.set t.bitmap k value
  done;
  t.used <- (t.used + if value = '\001' then count else -count)

let with_bitmap_lock t f =
  match Lock.acquire t.bitmap_lock Exclusive (Lock.plain_owner "fs") () with
  | Lock.Granted held ->
      let result = f () in
      Lock.release held;
      result
  | Lock.Gave_up reason -> Error reason

let open_entry t name entry =
  let file =
    File.openf ~kernel:t.kernel ~cache:t.vcache ~disk:t.disk ~name
      ~first_block:entry.first_block ~blocks:entry.blocks ()
  in
  File.attach_syncer file t.vsyncer;
  file

let create_file t ~name ~blocks =
  if blocks <= 0 then invalid_arg "Volume.create_file: need blocks";
  if Hashtbl.mem t.directory name then
    Error (Printf.sprintf "file %S exists" name)
  else
    with_bitmap_lock t (fun () ->
        match find_free_run t blocks with
        | None -> Error "no contiguous free extent"
        | Some first_block ->
            set_run t ~first:first_block ~count:blocks '\001';
            let entry = { first_block; blocks } in
            Hashtbl.replace t.directory name entry;
            Ok (open_entry t name entry))

let open_file t ~name =
  match Hashtbl.find_opt t.directory name with
  | Some entry -> Ok (open_entry t name entry)
  | None -> Error (Printf.sprintf "no such file %S" name)

let delete_file t ~name =
  match Hashtbl.find_opt t.directory name with
  | None -> Error (Printf.sprintf "no such file %S" name)
  | Some entry ->
      with_bitmap_lock t (fun () ->
          Hashtbl.remove t.directory name;
          set_run t ~first:entry.first_block ~count:entry.blocks '\000';
          (* drop any cached blocks of the dead extent *)
          for b = entry.first_block to entry.first_block + entry.blocks - 1
          do
            Cache.remove t.vcache b
          done;
          Ok ())

let list_files t =
  Hashtbl.fold (fun name e acc -> (name, e.blocks) :: acc) t.directory []
  |> List.sort compare

let fragmentation t =
  let free = free_blocks t in
  if free = 0 then 0.
  else begin
    let largest = ref 0 and run = ref 0 in
    for k = 0 to t.total - 1 do
      if Bytes.get t.bitmap k = '\000' then begin
        incr run;
        if !run > !largest then largest := !run
      end
      else run := 0
    done;
    1. -. (float_of_int !largest /. float_of_int free)
  end
