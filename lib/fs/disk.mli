(** Simulated disk, modelled on the paper's test platform drive (a 5400 RPM
    Fujitsu M2694ESA with ~9.5 ms average seek, 1080 MB formatted capacity
    and a 64 KB buffer).

    Requests are served by a disk process in FIFO order (an elevator
    variant is available as an ablation). Service time is seek + rotation +
    transfer for a random access, transfer-only for a sequential one (track
    buffer). The default random service time is ~16 ms, matching the
    paper's "benefit of avoiding a page fault is approximately 18 ms". *)

type geometry = {
  min_seek_us : float;  (** track-to-track *)
  avg_seek_us : float;  (** at half-stroke; the profile grows as sqrt *)
  avg_rotation_us : float;  (** half a revolution at 5400 RPM: ~5.6 ms *)
  transfer_us_per_block : float;  (** one 4 KB block *)
  blocks : int;
}

val default_geometry : geometry

type scheduling = Fifo | Elevator

type t

val create :
  Vino_sim.Engine.t -> ?geometry:geometry -> ?scheduling:scheduling -> unit -> t

type kind = Read | Write

val submit : t -> kind -> block:int -> on_complete:(unit -> unit) -> unit
(** Enqueue a request; the callback runs (in the disk process) when it
    completes. *)

val read : t -> block:int -> unit
(** Blocking read: submit and wait. Must run inside an engine process. *)

val write : t -> block:int -> unit

val service_time : t -> block:int -> int
(** Cycles the next request for [block] would take, given the current head
    position (exposed for tests). *)

(* Statistics. *)

val requests_served : t -> int
val writes_served : t -> int
val sequential_hits : t -> int
val busy_cycles : t -> int
val queue_depth : t -> int

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the request queue, head position, statistics
    and the service wait queue; the returned thunk restores them
    (re-runnable). For kernel snapshots. *)
