module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Asm = Vino_vm.Asm
module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point

type flush_request = { dirty : int list; last_flushed : int }

type t = {
  kernel : Kernel.t;
  cache : Cache.t;
  disk : Disk.t;
  threshold : int;
  wakeup : Waitq.t;
  point : (flush_request, int) Graft_point.t;
  mutable last : int;
  mutable order : int list; (* newest first *)
  mutable n_flushed : int;
  mutable running : bool;
}

let list_area = 64
let max_listed = 512

let setup kernel cpu req =
  let seg = Cpu.segment cpu in
  let listed = List.filteri (fun k _ -> k < max_listed) req.dirty in
  List.iteri
    (fun k b ->
      Mem.store kernel.Kernel.mem (Mem.sandbox seg (list_area + k)) b)
    listed;
  Cpu.set_reg cpu 2 (seg.Mem.base + list_area);
  Cpu.set_reg cpu 3 (List.length listed);
  Cpu.set_reg cpu 4 req.last_flushed

(* Pick the next buffer to write: the graft may reorder; the kernel then
   verifies the choice is genuinely dirty. *)
let choose t req =
  let choice = Graft_point.invoke t.point t.kernel ~cred:Vino_core.Cred.root req in
  if List.mem choice req.dirty then choice
  else
    match req.dirty with b :: _ -> b | [] -> invalid_arg "Syncer.choose"

(* Flush everything dirty right now; returns how many writes were issued.
   Blocks are cleaned immediately (the write is in flight: a re-dirty
   before completion will simply be flushed again later). *)
let flush t ~on_complete =
  let rec go issued =
    match Cache.dirty_blocks t.cache with
    | [] -> issued
    | dirty ->
        let block = choose t { dirty; last_flushed = t.last } in
        (* the policy may have yielded (graft execution): another flusher
           can have taken the block meanwhile — re-validate *)
        if not (Cache.is_dirty t.cache block) then go issued
        else begin
          Cache.clean t.cache block;
          t.last <- block;
          t.order <- block :: t.order;
          Disk.submit t.disk Disk.Write ~block ~on_complete:(fun () ->
              t.n_flushed <- t.n_flushed + 1;
              on_complete ());
          go (issued + 1)
        end
  in
  go 0

let rec daemon t () =
  if t.running then begin
    ignore (flush t ~on_complete:(fun () -> ()));
    Waitq.wait t.wakeup;
    daemon t ()
  end

let create kernel ~cache ~disk ?(threshold = 32) () =
  let point =
    Graft_point.create ~name:"syncer.choose-flush"
      ~default:(fun req ->
        match req.dirty with
        | b :: _ -> b
        | [] -> invalid_arg "choose-flush: nothing dirty")
      ~setup:(setup kernel)
      ~read_result:(fun cpu _ -> Ok (Cpu.reg cpu 0))
      ()
  in
  let t =
    {
      kernel;
      cache;
      disk;
      threshold;
      wakeup = Waitq.create kernel.Kernel.engine;
      point;
      last = -1;
      order = [];
      n_flushed = 0;
      running = true;
    }
  in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"syncer" (fun () -> daemon t ()));
  Kernel.on_snapshot kernel (Waitq.saver t.wakeup);
  Kernel.on_snapshot kernel (Graft_point.saver point);
  Kernel.on_snapshot kernel (fun () ->
      let last = t.last
      and order = t.order
      and n_flushed = t.n_flushed
      and running = t.running in
      fun () ->
        t.last <- last;
        t.order <- order;
        t.n_flushed <- n_flushed;
        t.running <- running);
  t

let flush_point t = t.point
let kick t = ignore (Waitq.signal t.wakeup)

let note_write t =
  if List.length (Cache.dirty_blocks t.cache) >= t.threshold then kick t

let sync t =
  (* flush in normal process context (the flush policy may be a graft and
     performs engine effects), then wait for the disk confirmations *)
  let completed = ref 0 in
  let target = ref max_int in
  let waker = ref None in
  let issued =
    flush t ~on_complete:(fun () ->
        incr completed;
        if !completed >= !target then
          match !waker with Some wake -> wake () | None -> ())
  in
  target := issued;
  if !completed < issued then
    Engine.suspend (fun wake -> waker := Some wake)

let flushed t = t.n_flushed
let flush_order t = List.rev t.order

let stop t =
  t.running <- false;
  kick t

(* r5 = loop index, r6 = best block, r7 = best distance, r8/r9/r10 scratch *)
let nearest_first_source : Asm.item list =
  let open Vino_vm.Insn in
  [
    Li (Asm.r5, 0);
    Li (Asm.r6, -1);
    Li (Asm.r7, max_int);
    Label "scan";
    Br (Ge, Asm.r5, Asm.r3, "done");
    Alu (Add, Asm.r8, Asm.r2, Asm.r5);
    Ld (Asm.r9, Asm.r8, 0);
    (* distance = |block - last| *)
    Alu (Sub, Asm.r10, Asm.r9, Asm.r4);
    Li (Asm.r11, 0);
    Br (Ge, Asm.r10, Asm.r11, "abs_done");
    Li (Asm.r11, -1);
    Alu (Mul, Asm.r10, Asm.r10, Asm.r11);
    Label "abs_done";
    Br (Ge, Asm.r10, Asm.r7, "next");
    Mov (Asm.r6, Asm.r9);
    Mov (Asm.r7, Asm.r10);
    Label "next";
    Alui (Add, Asm.r5, Asm.r5, 1);
    Jmp "scan";
    Label "done";
    Mov (Asm.r0, Asm.r6);
    Ret;
  ]
