(* Intrusive doubly-linked LRU list plus a hash index. *)

type node = {
  block : int;
  mutable dirty : bool;
  mutable prev : node option; (* towards LRU end *)
  mutable next : node option; (* towards MRU end *)
}

type evicted = { block : int; dirty : bool }

type t = {
  cap : int;
  index : (int, node) Hashtbl.t;
  mutable lru : node option;
  mutable mru : node option;
  mutable dirty_fifo : int list; (* dirtied order, oldest first *)
  mutable n_hits : int;
  mutable n_misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  fun () ->
    {
      cap = capacity;
      index = Hashtbl.create (2 * capacity);
      lru = None;
      mru = None;
      dirty_fifo = [];
      n_hits = 0;
      n_misses = 0;
    }

let capacity t = t.cap
let length t = Hashtbl.length t.index

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.lru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.mru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_mru t node =
  node.prev <- t.mru;
  node.next <- None;
  (match t.mru with Some m -> m.next <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let mem t block = Hashtbl.mem t.index block

let lookup t block =
  match Hashtbl.find_opt t.index block with
  | Some node ->
      t.n_hits <- t.n_hits + 1;
      Vino_trace.Trace.incr "fs.cache_hits";
      unlink t node;
      push_mru t node;
      true
  | None ->
      t.n_misses <- t.n_misses + 1;
      Vino_trace.Trace.incr "fs.cache_misses";
      false

let note_dirtied t block =
  if not (List.mem block t.dirty_fifo) then
    t.dirty_fifo <- t.dirty_fifo @ [ block ]

let remove t block =
  match Hashtbl.find_opt t.index block with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.index block

let insert t ?(dirty = false) block =
  if dirty then note_dirtied t block;
  match Hashtbl.find_opt t.index block with
  | Some node ->
      unlink t node;
      push_mru t node;
      if dirty then node.dirty <- true;
      None
  | None ->
      let evicted =
        if Hashtbl.length t.index >= t.cap then
          match t.lru with
          | Some (victim : node) ->
              unlink t victim;
              Hashtbl.remove t.index victim.block;
              if victim.dirty then
                t.dirty_fifo <-
                  List.filter (fun b -> b <> victim.block) t.dirty_fifo;
              Some { block = victim.block; dirty = victim.dirty }
          | None -> None
        else None
      in
      let node = { block; dirty; prev = None; next = None } in
      Hashtbl.replace t.index block node;
      push_mru t node;
      evicted

let mark_dirty t block =
  match Hashtbl.find_opt t.index block with
  | Some node ->
      node.dirty <- true;
      note_dirtied t block
  | None -> ()

let is_dirty t block =
  match Hashtbl.find_opt t.index block with
  | Some node -> node.dirty
  | None -> false

let dirty_blocks t =
  List.filter (fun b -> is_dirty t b) t.dirty_fifo

let clean t block =
  t.dirty_fifo <- List.filter (fun b -> b <> block) t.dirty_fifo;
  match Hashtbl.find_opt t.index block with
  | Some node -> node.dirty <- false
  | None -> ()

let lru_order t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some (node : node) -> walk (node.block :: acc) node.next
  in
  walk [] t.lru

let hits t = t.n_hits
let misses t = t.n_misses

(* Re-inserting captured blocks LRU-first rebuilds the same recency
   order with fresh nodes (the intrusive list cannot be shared with a
   live capture). Restore cannot evict: the captured population was
   within capacity by construction. *)
let saver t () =
  let blocks = List.map (fun b -> (b, is_dirty t b)) (lru_order t)
  and dirty_fifo = t.dirty_fifo
  and n_hits = t.n_hits
  and n_misses = t.n_misses in
  fun () ->
    Hashtbl.reset t.index;
    t.lru <- None;
    t.mru <- None;
    t.dirty_fifo <- [];
    List.iter (fun (b, dirty) -> ignore (insert t ~dirty b)) blocks;
    t.dirty_fifo <- dirty_fifo;
    t.n_hits <- n_hits;
    t.n_misses <- n_misses
