(** The two-level page eviction algorithm (§4.2.1).

    A global second-chance queue selects a victim frame. If the owning VAS
    has a page-eviction graft, it is invoked with the victim and the VAS's
    other evictable pages and may suggest a replacement. The global
    algorithm verifies the suggestion — the page must belong to the VAS and
    must not be wired — and on failure ignores it and evicts the original
    victim. When a valid replacement is chosen, Cao's swap places the
    original victim in the queue position the replacement occupied.

    Selection (the Table 4 code path) is separated from reclaim (unmap +
    write-back + free) so the paper's measurements can be reproduced
    without I/O noise; [evict_one] composes both. Page-out writes are
    issued asynchronously, as a page daemon would. *)

type t

val create :
  Vino_core.Kernel.t ->
  frames:Frame.table ->
  ?pageout_disk:Vino_fs.Disk.t ->
  ?graft_support:bool ->
  unit ->
  t
(** [graft_support:false] builds the measurement baseline: victim selection
    with all graft indirection removed (Table 2's "base path"). *)

val kernel : t -> Vino_core.Kernel.t
val register_vas : t -> Vas.t -> unit
val vas_of : t -> int -> Vas.t option

val touch : t -> Vas.t -> vpage:int -> [ `Hit | `Fault ]
(** Reference a page, faulting it in if needed (blocking: may trigger
    eviction and disk I/O; must run inside an engine process). *)

val select_replacement :
  t -> cred:Vino_core.Cred.t -> (Frame.t, [ `Nothing_evictable ]) result
(** Run the two-level selection (global clock + per-VAS graft + kernel
    verification) and return the frame that would be evicted, without
    evicting it. *)

val reclaim : t -> Frame.t -> unit
(** Unmap the frame, issue its write-back and free it. *)

val evict_one :
  t -> cred:Vino_core.Cred.t -> (Frame.t, [ `Nothing_evictable ]) result

val allocate_frame :
  t -> cred:Vino_core.Cred.t -> (Frame.t, [ `Nothing_evictable ]) result
(** Take a free frame, running the two-level eviction if none is free
    (used by the fault path and by {!Memobj}). *)

val attach : t -> Vas.t -> vpage:int -> Frame.t -> unit
(** Map a frame into the VAS and enter it in the global page queue. *)

val free_frames : t -> int

(* Statistics for Table 4's analysis. *)

val evictions : t -> int
val graft_consultations : t -> int
val graft_overrules : t -> int
val invalid_suggestions : t -> int
val queue_order : t -> int list

val set_queue_order : t -> int list -> unit
(** Restore a snapshot of the global queue — measurement support, so the
    Abort path can re-run selection against identical state. *)
