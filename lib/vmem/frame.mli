(** Physical frame table.

    Frames carry the reference bit the global clock algorithm uses for
    second-chance selection, the wired flag that exempts a page from
    eviction, and their current owner (VAS id and virtual page). *)

type owner = { vas_id : int; vpage : int }

type t = {
  index : int;
  mutable owner : owner option;
  mutable referenced : bool;
  mutable wired : bool;
}

type table

val create_table : frames:int -> table
val frame_count : table -> int
val get : table -> int -> t

val allocate : table -> (t, [ `None_free ]) result
(** Take a frame off the free list (cleared flags, no owner). *)

val release : table -> t -> unit
(** Unmap and return a frame to the free list. *)

val free_count : table -> int
val used_count : table -> int

val saver : table -> unit -> unit -> unit
(** [saver t ()] captures every frame's owner/flags and the free list;
    the returned thunk restores them (re-runnable). For kernel
    snapshots. *)
