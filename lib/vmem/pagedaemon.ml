module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq

type t = {
  evictor : Evict.t;
  low : int;
  high : int;
  wakeup : Waitq.t;
  mutable n_passes : int;
  mutable n_evicted : int;
  mutable running : bool;
}

let rec daemon t () =
  if t.running then begin
    if Evict.free_frames t.evictor < t.low then begin
      t.n_passes <- t.n_passes + 1;
      let rec refill () =
        if Evict.free_frames t.evictor < t.high then
          match Evict.evict_one t.evictor ~cred:Vino_core.Cred.root with
          | Ok _ ->
              t.n_evicted <- t.n_evicted + 1;
              refill ()
          | Error `Nothing_evictable -> ()
      in
      refill ()
    end;
    Waitq.wait t.wakeup;
    daemon t ()
  end

let create kernel ~evictor ?(low_watermark = 8) ?(high_watermark = 16) () =
  let t =
    {
      evictor;
      low = low_watermark;
      high = high_watermark;
      wakeup = Waitq.create kernel.Vino_core.Kernel.engine;
      n_passes = 0;
      n_evicted = 0;
      running = true;
    }
  in
  ignore
    (Engine.spawn kernel.Vino_core.Kernel.engine ~name:"pagedaemon" (fun () ->
         daemon t ()));
  Vino_core.Kernel.on_snapshot kernel (Waitq.saver t.wakeup);
  Vino_core.Kernel.on_snapshot kernel (fun () ->
      let n_passes = t.n_passes
      and n_evicted = t.n_evicted
      and running = t.running in
      fun () ->
        t.n_passes <- n_passes;
        t.n_evicted <- n_evicted;
        t.running <- running);
  t

let kick t = ignore (Waitq.signal t.wakeup)
let passes t = t.n_passes
let evicted t = t.n_evicted

let stop t =
  t.running <- false;
  ignore (Waitq.signal t.wakeup)
