module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point

type t = {
  kernel : Kernel.t;
  frames : Frame.table;
  pageout_disk : Vino_fs.Disk.t option;
  graft_support : bool;
  vases : (int, Vas.t) Hashtbl.t;
  mutable queue : int list; (* frame indices, head = eviction candidate *)
  mutable n_evictions : int;
  mutable n_consultations : int;
  mutable n_overrules : int;
  mutable n_invalid : int;
}

(* Global selection work: clock scan plus page-queue manipulation. The paper
   measures the whole default selection at ~39 us on a 512-page VAS. *)
let select_base_cost = Vino_txn.Tcosts.us 38.5
let per_examination_cost = Vino_txn.Tcosts.us 0.05

let create kernel ~frames ?pageout_disk ?(graft_support = true) () =
  let t =
    {
      kernel;
      frames;
      pageout_disk;
      graft_support;
      vases = Hashtbl.create 8;
      queue = [];
      n_evictions = 0;
      n_consultations = 0;
      n_overrules = 0;
      n_invalid = 0;
    }
  in
  Kernel.on_snapshot kernel (Frame.saver frames);
  Kernel.on_snapshot kernel (fun () ->
      let vases = Hashtbl.copy t.vases
      and queue = t.queue
      and n_evictions = t.n_evictions
      and n_consultations = t.n_consultations
      and n_overrules = t.n_overrules
      and n_invalid = t.n_invalid in
      fun () ->
        Hashtbl.reset t.vases;
        Hashtbl.iter (Hashtbl.replace t.vases) vases;
        t.queue <- queue;
        t.n_evictions <- n_evictions;
        t.n_consultations <- n_consultations;
        t.n_overrules <- n_overrules;
        t.n_invalid <- n_invalid);
  t

let kernel t = t.kernel
let register_vas t vas = Hashtbl.replace t.vases (Vas.id vas) vas
let vas_of t vid = Hashtbl.find_opt t.vases vid
let free_frames t = Frame.free_count t.frames
let evictions t = t.n_evictions
let graft_consultations t = t.n_consultations
let graft_overrules t = t.n_overrules
let invalid_suggestions t = t.n_invalid
let queue_order t = t.queue
let set_queue_order t order = t.queue <- order

(* Second-chance scan: referenced frames get their bit cleared and move to
   the tail; wired frames are skipped. *)
let clock_select t =
  let examined = ref 0 in
  let limit = 2 * List.length t.queue in
  let rec scan () =
    if !examined > limit then None
    else
      match t.queue with
      | [] -> None
      | idx :: rest -> (
          incr examined;
          let f = Frame.get t.frames idx in
          if f.Frame.wired then begin
            t.queue <- rest @ [ idx ];
            scan ()
          end
          else if f.Frame.referenced then begin
            f.Frame.referenced <- false;
            t.queue <- rest @ [ idx ];
            scan ()
          end
          else
            match f.Frame.owner with
            | None ->
                (* stale entry for a freed frame *)
                t.queue <- rest;
                scan ()
            | Some _ -> Some f)
  in
  let result = scan () in
  Engine.delay (select_base_cost + (!examined * per_examination_cost));
  result

(* block a page is backed by, for the optional pageout disk *)
let backing_block t (owner : Frame.owner) =
  match t.pageout_disk with
  | None -> 0
  | Some _ -> (owner.Frame.vas_id * 8192) + (owner.Frame.vpage mod 8192)

let page_in t owner =
  match t.pageout_disk with
  | Some disk ->
      let block =
        backing_block t owner mod Vino_fs.Disk.default_geometry.blocks
      in
      Vino_fs.Disk.read disk ~block
  | None ->
      (* charge a representative ~16 ms access *)
      Engine.delay (Vino_txn.Tcosts.us 16_000.)

let page_out_async t owner =
  match t.pageout_disk with
  | Some disk ->
      let block =
        backing_block t owner mod Vino_fs.Disk.default_geometry.blocks
      in
      Vino_fs.Disk.submit disk Vino_fs.Disk.Write ~block
        ~on_complete:(fun () -> ())
  | None -> ()

let evictable_candidates vas ~except =
  Vas.resident_pages vas
  |> List.filter (fun p -> p <> except && not (Vas.wired vas ~vpage:p))

(* Cao's swap: the original victim takes the queue slot the replacement
   occupied; the replacement leaves the queue with its eviction. *)
let cao_swap t ~victim_idx ~replacement_idx =
  t.queue <-
    List.filter (fun k -> k <> victim_idx) t.queue
    |> List.map (fun k -> if k = replacement_idx then victim_idx else k)

let select_replacement t ~cred =
  match clock_select t with
  | None -> Error `Nothing_evictable
  | Some victim_frame -> (
      match victim_frame.Frame.owner with
      | None -> Error `Nothing_evictable
      | Some owner -> (
          if not t.graft_support then Ok victim_frame
          else
            let vpage = owner.Frame.vpage in
            match vas_of t owner.Frame.vas_id with
            | None -> Ok victim_frame
            | Some vas ->
                let point = Vas.evict_point vas in
                if Graft_point.grafted point then
                  t.n_consultations <- t.n_consultations + 1;
                let candidates =
                  if Graft_point.grafted point then
                    evictable_candidates vas ~except:vpage
                  else []
                in
                let choice =
                  Graft_point.invoke point t.kernel ~cred
                    { Vas.victim = vpage; candidates }
                in
                if choice = vpage then Ok victim_frame
                else
                  (* the kernel verifies the suggestion: a resident,
                     unwired page of this VAS *)
                  match Vas.frame_of vas choice with
                  | Some replacement when not (Vas.wired vas ~vpage:choice)
                    ->
                      t.n_overrules <- t.n_overrules + 1;
                      cao_swap t ~victim_idx:victim_frame.Frame.index
                        ~replacement_idx:replacement.Frame.index;
                      Ok replacement
                  | Some _ | None ->
                      t.n_invalid <- t.n_invalid + 1;
                      Ok victim_frame))

let reclaim t frame =
  let owner = frame.Frame.owner in
  (match owner with
  | Some o -> (
      match vas_of t o.Frame.vas_id with
      | Some vas -> Vas.unmap vas ~vpage:o.Frame.vpage
      | None -> ())
  | None -> ());
  t.queue <- List.filter (fun k -> k <> frame.Frame.index) t.queue;
  Frame.release t.frames frame;
  (match owner with Some o -> page_out_async t o | None -> ());
  t.n_evictions <- t.n_evictions + 1

let evict_one t ~cred =
  Result.map
    (fun frame ->
      reclaim t frame;
      frame)
    (select_replacement t ~cred)

(* take a free frame, running the two-level eviction when none is free *)
let allocate_frame t ~cred =
  let rec get () =
    match Frame.allocate t.frames with
    | Ok f -> Ok f
    | Error `None_free -> (
        match evict_one t ~cred with
        | Ok _ -> get ()
        | Error `Nothing_evictable -> Error `Nothing_evictable)
  in
  get ()

(* map a freshly allocated frame and enter it in the global page queue *)
let attach t vas ~vpage frame =
  Vas.map vas ~vpage frame;
  t.queue <- t.queue @ [ frame.Frame.index ]

let touch t vas ~vpage =
  if Vas.is_resident vas vpage then begin
    Vas.reference vas ~vpage;
    `Hit
  end
  else begin
    Vas.add_fault vas;
    let cred = Vino_core.Cred.root in
    match allocate_frame t ~cred with
    | Error `Nothing_evictable ->
        failwith "Evict.touch: out of frames with nothing evictable"
    | Ok frame ->
        attach t vas ~vpage frame;
        page_in t { Frame.vas_id = Vas.id vas; vpage };
        `Fault
  end
