(** Virtual address spaces and the page-eviction graft point (§4.2).

    A VAS owns a set of resident virtual pages, each backed by a physical
    frame. When the global eviction algorithm selects a victim belonging to
    a VAS that has installed a page-eviction graft, the graft is invoked
    with the victim and the list of the VAS's other evictable pages, and
    may suggest a replacement. The *kernel* then verifies the suggestion
    (ownership, wiredness); an invalid suggestion is ignored and the
    original victim is evicted — the graft itself is not penalised
    (§4.2.1), unlike a graft that faults.

    The application side shares a window with the graft in which it lists
    the pages it wants retained: word 0 holds the count, words 1.. the page
    numbers. *)

type evict_request = {
  victim : int;  (** globally selected victim (virtual page) *)
  candidates : int list;  (** the VAS's other evictable resident pages *)
}

type t

val create : Vino_core.Kernel.t -> ?evict_budget:int -> name:string -> unit -> t
(** Also registers the graft-callable function ["evict.lock:<name>"] that
    eviction grafts use to lock the shared hot-page window. [evict_budget]
    bounds one eviction-graft invocation's cycles. *)

val id : t -> int

val hot_lock : t -> Vino_txn.Lock.t
(** The hot-page-window lock itself — the disaster rig checks it for leaked
    holders after recovery. *)

val lock_name : t -> string
val name : t -> string
val resident_pages : t -> int list
val is_resident : t -> int -> bool
val frame_of : t -> int -> Frame.t option

val map : t -> vpage:int -> Frame.t -> unit
val unmap : t -> vpage:int -> unit
val reference : t -> vpage:int -> unit
(** Mark the page referenced (sets the frame's reference bit). *)

val wire : t -> vpage:int -> unit
val unwire : t -> vpage:int -> unit
val wired : t -> vpage:int -> bool

val evict_point :
  t -> (evict_request, int) Vino_core.Graft_point.t
(** Returns the suggested replacement page; the default accepts the global
    victim unchanged. *)

val candidate_area : int
(** Offset in the graft segment where the kernel writes the candidate page
    list (above the application's shared window). *)

val protect_pages : Vino_core.Kernel.t -> t -> int list -> unit
(** Application side: write the hot-page list into the graft's shared
    window (count at word 0). No-op when ungrafted. *)

val faults : t -> int
val add_fault : t -> unit
