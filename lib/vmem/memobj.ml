module Engine = Vino_sim.Engine

type backing =
  | Anonymous
  | File_backed of { file : Vino_fs.File.t; start_block : int }

type t = {
  evictor : Evict.t;
  mvas : Vas.t;
  start : int;
  count : int;
  mbacking : backing;
  mutable live : bool;
  mutable n_faults : int;
}

(* registry of objects per VAS id *)
let objects : (int, t list ref) Hashtbl.t = Hashtbl.create 16

let objects_of vas =
  match Hashtbl.find_opt objects (Vas.id vas) with
  | Some cell -> cell
  | None ->
      let cell = ref [] in
      Hashtbl.replace objects (Vas.id vas) cell;
      cell

let overlaps a_start a_count b_start b_count =
  a_start < b_start + b_count && b_start < a_start + a_count

let map evictor vas ~vpage_start ~pages backing =
  if pages <= 0 || vpage_start < 0 then invalid_arg "Memobj.map: bad range";
  let cell = objects_of vas in
  if
    List.exists
      (fun o -> o.live && overlaps vpage_start pages o.start o.count)
      !cell
  then invalid_arg "Memobj.map: range overlaps an existing object";
  let t =
    {
      evictor;
      mvas = vas;
      start = vpage_start;
      count = pages;
      mbacking = backing;
      live = true;
      n_faults = 0;
    }
  in
  cell := t :: !cell;
  (* VAS ids are globally unique, so this registry cell belongs to this
     kernel alone; the saver drops objects mapped after the snapshot and
     restores each captured object's liveness and fault count *)
  Vino_core.Kernel.on_snapshot (Evict.kernel evictor) (fun () ->
      let captured = List.map (fun o -> (o, o.live, o.n_faults)) !cell in
      fun () ->
        cell := List.map (fun (o, _, _) -> o) captured;
        List.iter
          (fun (o, live, n_faults) ->
            o.live <- live;
            o.n_faults <- n_faults)
          captured);
  t

let unmap t =
  t.live <- false;
  let cell = objects_of t.mvas in
  cell := List.filter (fun o -> o != t) !cell

let vas t = t.mvas
let vpage_start t = t.start
let pages t = t.count
let backing t = t.mbacking
let covers t ~vpage = t.live && vpage >= t.start && vpage < t.start + t.count
let faults t = t.n_faults

let find vas ~vpage =
  List.find_opt (fun o -> covers o ~vpage) !(objects_of vas)

(* zeroing a fresh 4 KB page *)
let zero_fill_cost = Vino_txn.Tcosts.us 40.

let materialise t ~cred ~page =
  match t.mbacking with
  | Anonymous -> Engine.delay zero_fill_cost
  | File_backed { file; start_block } ->
      (* through the cache, the disk, and any installed compute-ra graft *)
      ignore (Vino_fs.File.read file ~cred ~block:(start_block + page))

let touch t ~cred ~page =
  if page < 0 || page >= t.count then
    invalid_arg "Memobj.touch: page outside the object";
  let vpage = t.start + page in
  if Vas.is_resident t.mvas vpage then begin
    Vas.reference t.mvas ~vpage;
    `Hit
  end
  else begin
    t.n_faults <- t.n_faults + 1;
    Vas.add_fault t.mvas;
    match Evict.allocate_frame t.evictor ~cred with
    | Error `Nothing_evictable ->
        failwith "Memobj.touch: out of frames with nothing evictable"
    | Ok frame ->
        Evict.attach t.evictor t.mvas ~vpage frame;
        materialise t ~cred ~page;
        `Fault
  end
