module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Graft_point = Vino_core.Graft_point
module Txn = Vino_txn.Txn

type evict_request = { victim : int; candidates : int list }

let candidate_area = 512
let max_candidates = 2048

type t = {
  vid : int;
  vname : string;
  resident : (int, Frame.t) Hashtbl.t;
  evict : (evict_request, int) Graft_point.t;
  lock : Vino_txn.Lock.t;
  lock_name : string;
  mutable n_faults : int;
}

(* Atomic: address spaces are created from parallel worker domains
   (one kernel per bench/campaign unit); ids must stay unique. *)
let next_id = Atomic.make 0

let setup kernel cpu req =
  let seg = Cpu.segment cpu in
  Cpu.set_reg cpu 1 req.victim;
  let candidates =
    if List.length req.candidates > max_candidates then
      List.filteri (fun k _ -> k < max_candidates) req.candidates
    else req.candidates
  in
  (* the candidate list is written above the application's shared window *)
  List.iteri
    (fun k page ->
      Mem.store kernel.Kernel.mem
        (Mem.sandbox seg (candidate_area + k))
        page)
    candidates;
  Cpu.set_reg cpu 2 (seg.Mem.base + candidate_area);
  Cpu.set_reg cpu 3 (List.length candidates);
  Cpu.set_reg cpu 4 seg.Mem.base

let create kernel ?evict_budget ~name () =
  let vid = Atomic.fetch_and_add next_id 1 in
  let evict =
    Graft_point.create
      ~name:(Printf.sprintf "%s.page-eviction" name)
      ?budget:evict_budget
      ~default:(fun req -> req.victim)
      ~setup:(setup kernel)
      (* any integer is accepted here; the global algorithm performs the
         semantic ownership/wiredness verification and ignores bad
         suggestions (§4.2.1) *)
      ~read_result:(fun cpu _ -> Ok (Cpu.reg cpu 0))
      ()
  in
  (* the lock guarding the application-shared hot-page window; eviction
     grafts acquire it through this graft-callable function and two-phase
     locking releases it at commit/abort *)
  let lock =
    Kernel.make_lock kernel
      ~timeout:(Vino_txn.Tcosts.us 500.)
      ~name:(Printf.sprintf "hot-pages:%s" name)
      ()
  in
  let lock_name = Printf.sprintf "evict.lock:%s" name in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:lock_name (fun ctx ->
        match ctx.Kcall.txn with
        | None -> Kcall.abort "hot-page lock outside a transaction"
        | Some txn -> (
            match Txn.acquire_lock txn lock Exclusive with
            | Ok () -> Kcall.ok
            | Error reason -> Kcall.abort reason))
  in
  let t =
    {
      vid;
      vname = name;
      resident = Hashtbl.create 256;
      evict;
      lock;
      lock_name;
      n_faults = 0;
    }
  in
  Kernel.on_snapshot kernel (Graft_point.saver evict);
  Kernel.on_snapshot kernel (fun () ->
      (* residency lookups never depend on bucket order ([resident_pages]
         sorts), so a keys/values copy is enough *)
      let resident = Hashtbl.copy t.resident and n_faults = t.n_faults in
      fun () ->
        Hashtbl.reset t.resident;
        Hashtbl.iter (Hashtbl.replace t.resident) resident;
        t.n_faults <- n_faults);
  t

let id t = t.vid
let hot_lock t = t.lock
let lock_name t = t.lock_name
let name t = t.vname

let resident_pages t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.resident [] |> List.sort compare

let is_resident t vpage = Hashtbl.mem t.resident vpage
let frame_of t vpage = Hashtbl.find_opt t.resident vpage

let map t ~vpage frame =
  frame.Frame.owner <- Some { Frame.vas_id = t.vid; vpage };
  frame.Frame.referenced <- true;
  Hashtbl.replace t.resident vpage frame

let unmap t ~vpage = Hashtbl.remove t.resident vpage

let reference t ~vpage =
  match frame_of t vpage with
  | Some f -> f.Frame.referenced <- true
  | None -> ()

let set_wired t vpage value =
  match frame_of t vpage with
  | Some f -> f.Frame.wired <- value
  | None -> ()

let wire t ~vpage = set_wired t vpage true
let unwire t ~vpage = set_wired t vpage false

let wired t ~vpage =
  match frame_of t vpage with Some f -> f.Frame.wired | None -> false

let evict_point t = t.evict

let protect_pages kernel t pages =
  match Graft_point.shared_base t.evict with
  | None -> ()
  | Some base ->
      Mem.store kernel.Kernel.mem base (List.length pages);
      List.iteri
        (fun k page -> Mem.store kernel.Kernel.mem (base + 1 + k) page)
        pages

let faults t = t.n_faults
let add_fault t = t.n_faults <- t.n_faults + 1
