type owner = { vas_id : int; vpage : int }

type t = {
  index : int;
  mutable owner : owner option;
  mutable referenced : bool;
  mutable wired : bool;
}

type table = { frames : t array; mutable free : int list }

let create_table ~frames =
  if frames <= 0 then invalid_arg "Frame.create_table: need frames";
  {
    frames =
      Array.init frames (fun index ->
          { index; owner = None; referenced = false; wired = false });
    free = List.init frames (fun k -> k);
  }

let frame_count t = Array.length t.frames
let get t k = t.frames.(k)

let allocate t =
  match t.free with
  | [] -> Error `None_free
  | k :: rest ->
      t.free <- rest;
      let f = t.frames.(k) in
      f.owner <- None;
      f.referenced <- false;
      f.wired <- false;
      Ok f

let release t f =
  f.owner <- None;
  f.referenced <- false;
  f.wired <- false;
  t.free <- f.index :: t.free

let free_count t = List.length t.free
let used_count t = Array.length t.frames - free_count t

let saver t () =
  let flags =
    Array.map (fun f -> (f.owner, f.referenced, f.wired)) t.frames
  and free = t.free in
  fun () ->
    Array.iteri
      (fun k (owner, referenced, wired) ->
        let f = t.frames.(k) in
        f.owner <- owner;
        f.referenced <- referenced;
        f.wired <- wired)
      flags;
    t.free <- free
