(** Table 4 — page-eviction (Prioritization) graft overhead.

    Workload: a VAS with a 2 MB (512-page) footprint whose application
    protects a set of hot pages via the shared window; the grafted
    per-VAS eviction policy overrules the global victim whenever it is
    hot. Every measured path includes the global victim selection. *)

val resident_pages : int
val protected_pages : int
val stats : ?iterations:int -> Path.t -> Vino_sim.Stats.t
val measure : ?iterations:int -> Path.t -> float
val measure_abort : ?iterations:int -> full:bool -> unit -> float

val measure_agreement : ?iterations:int -> unit -> float
(** The Safe path when the graft agrees with the global victim (the
    paper's 159 us case, versus 316 us when it overrules). *)

val paper_elapsed : (Path.t * float) list
val table : ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** With [?pool], the per-path measurements fan out across domains (each
    worker builds its own kernel); rows are identical at any pool
    size. *)
