module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Lock = Vino_txn.Lock
module Lock_policy = Vino_txn.Lock_policy

let uncontended_cost ?(iterations = 300) ~factored () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let policy =
    if factored then Lock_policy.factored Lock_policy.reader_priority
    else Lock_policy.reader_priority
  in
  let lock = Kernel.make_lock kernel ~policy ~name:"factoring" () in
  let owner = Lock.plain_owner "bench" in
  Probe.mean_us kernel ~iterations (fun _ ->
      match Lock.acquire lock Exclusive owner () with
      | Lock.Granted held -> Lock.release held
      | Lock.Gave_up reason -> failwith reason)

let indirection_cost_us () =
  Vino_vm.Costs.us_of_cycles (2 * Vino_txn.Tcosts.default.policy_indirection)

let contended_trace ~policy () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let lock = Kernel.make_lock kernel ~policy ~name:"contended" () in
  let engine = kernel.Kernel.engine in
  let grants = ref [] in
  let actor name ~start ~mode ~hold =
    ignore
      (Engine.spawn engine ~name (fun () ->
           Engine.delay start;
           match Lock.acquire lock mode (Lock.plain_owner name) () with
           | Lock.Granted held ->
               grants := name :: !grants;
               Engine.delay hold;
               Lock.release held
           | Lock.Gave_up reason -> failwith reason))
  in
  actor "reader-1" ~start:0 ~mode:Shared ~hold:20_000;
  actor "writer" ~start:2_000 ~mode:Exclusive ~hold:2_000;
  actor "reader-2" ~start:4_000 ~mode:Shared ~hold:2_000;
  Kernel.run kernel;
  List.rev !grants

let table ?iterations ?pool () =
  let conventional, factored =
    match
      Vino_par.Pool.map_scoped ?pool
        (fun factored -> uncontended_cost ?iterations ~factored ())
        [ false; true ]
    with
    | [ c; f ] -> (c, f)
    | _ -> assert false
  in
  let trace policy = String.concat " -> " (contended_trace ~policy ()) in
  [
    Table.elapsed "get_lock, conventional (Fig 4)" conventional;
    Table.elapsed "get_lock, fully factored (Fig 5)" factored;
    Table.overhead
      ~paper:(indirection_cost_us ())
      "two policy indirections" (factored -. conventional);
    Table.elapsed
      ~paper:(float_of_int (2 * Vino_txn.Tcosts.default.policy_indirection))
      "  (in cycles)"
      (Float.of_int
         (Vino_vm.Costs.cycles_of_us (factored -. conventional)));
    Table.elapsed
      (Printf.sprintf "reader-priority grant order: %s"
         (trace Lock_policy.reader_priority))
      0.;
    Table.elapsed
      (Printf.sprintf "fifo-fair grant order:       %s"
         (trace (Lock_policy.factored Lock_policy.fifo_fair)))
      0.;
  ]
