module Cpu = Vino_vm.Cpu
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Kernel = Vino_core.Kernel
module Linker = Vino_core.Linker
module Wrapper = Vino_core.Wrapper

type t = {
  kernel : Kernel.t;
  loaded : Linker.loaded;
  cred : Vino_core.Cred.t;
  limits : Vino_txn.Rlimit.t;
}

let load kernel ~words image =
  match Linker.load kernel ~words image with
  | Ok loaded ->
      {
        kernel;
        loaded;
        cred = Vino_core.Cred.root;
        limits = Vino_txn.Rlimit.unlimited ();
      }
  | Error e -> failwith ("Rig.load: " ^ e)

let seg_base t = t.loaded.Linker.seg.Vino_vm.Mem.base

type outcome = Committed | Rolled_back | Failed of string

let run t ?(indirection = Vino_txn.Tcosts.us 1.)
    ?(check_cost = Vino_txn.Tcosts.us 2.) ?(setup = fun _ -> ())
    ?(check = fun _ -> true) ~commit () =
  Engine.delay indirection;
  let txn = Txn.begin_ t.kernel.Kernel.txn_mgr ~name:"rig" () in
  let cpu, result =
    Wrapper.exec t.kernel ~txn ~cred:t.cred ~limits:t.limits
      ~seg:t.loaded.Linker.seg ~code:t.loaded.Linker.code
      ~flow:t.loaded.Linker.flow ~trans:t.loaded.Linker.trans ~setup ()
  in
  match result with
  | Cpu.Halted ->
      Engine.delay check_cost;
      if not (check cpu) then begin
        Txn.abort txn ~reason:"result validation failed";
        Failed "result validation failed"
      end
      else if commit then begin
        match Txn.commit txn with
        | Ok () -> Committed
        | Error reason -> Failed reason
      end
      else begin
        Txn.abort txn ~reason:"measured abort";
        Rolled_back
      end
  | Cpu.Faulted f ->
      let reason = Format.asprintf "%a" Cpu.pp_fault f in
      Txn.abort txn ~reason;
      Failed reason
  | Cpu.Aborted reason ->
      if Txn.is_active txn then Txn.abort txn ~reason;
      Failed reason
  | Cpu.Out_of_fuel ->
      Txn.abort txn ~reason:"budget";
      Failed "budget"

let run_exn t ?setup ~commit () =
  match run t ?setup ~commit () with
  | Committed | Rolled_back -> ()
  | Failed reason -> failwith ("Rig.run_exn: " ^ reason)
