type t = Base | Vino | Null | Unsafe | Safe | Verified | FlowChecked | Abort

let all = [ Base; Vino; Null; Unsafe; Safe; Verified; FlowChecked; Abort ]

let name = function
  | Base -> "Base path"
  | Vino -> "VINO path"
  | Null -> "Null path"
  | Unsafe -> "Unsafe path"
  | Safe -> "Safe path"
  | Verified -> "Verified path"
  | FlowChecked -> "FlowChecked path"
  | Abort -> "Abort path"

let pp ppf t = Format.pp_print_string ppf (name t)
