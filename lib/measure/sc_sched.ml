(* Table 5: the scheduling (Prioritization) graft. *)

module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Runq = Vino_sched.Runq
module Sgrafts = Vino_sched.Grafts

let process_count = 64
let switch_cost = Vino_txn.Tcosts.us 27.

type fixture = {
  kernel : Kernel.t;
  runq : Runq.t;
  tasks : Runq.task list;
  cred : Vino_core.Cred.t;
}

let fixture ~graft_support () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let runq = Runq.create kernel ~switch_cost ~graft_support () in
  let tasks =
    List.init process_count (fun k ->
        Runq.spawn_task runq ~name:(Printf.sprintf "proc%d" k))
  in
  { kernel; runq; tasks; cred = Vino_core.Cred.root }

(* One scheduling round: pick the next process (running its delegate),
   switch to it, and switch back — the paper's two-switch measurement. *)
let round fx =
  (match Runq.schedule fx.runq ~cred:fx.cred with
  | Some _ -> ()
  | None -> failwith "sc_sched: empty run queue");
  Engine.delay switch_cost

let segment_words = 256 + 256

(* Entry facts established by [setup_regs]: r2 = segment base (the process
   list), r3 = process count. scan-and-return-self factors its scan into an
   intra-graft [Call], which havocs the analysis state, so the Verified
   path honestly measures close to Safe (see sc_evict for the same
   effect). *)
let verify_config =
  Vino_verify.Verify.config
    ~entry:
      [
        (2, Vino_verify.Verify.seg_window ());
        (3, Vino_verify.Verify.arg_at_most process_count);
      ]
    ~words:segment_words ()

let graft_image fx path =
  let source =
    match path with
    | Path.Null -> [ Vino_vm.Asm.Mov (Vino_vm.Asm.r0, Vino_vm.Asm.r1); Ret ]
    | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked | Path.Abort
      ->
        Sgrafts.scan_and_return_self_source
          ~lock_kcall:(Runq.proclist_lock_name fx.runq)
          ()
    | Path.Base | Path.Vino -> invalid_arg "no graft on this path"
  in
  let obj = Vino_vm.Asm.assemble_exn source in
  match path with
  | Path.Unsafe -> Kernel.seal_unsafe fx.kernel obj
  | Path.Verified -> (
      match Kernel.seal ~verify:verify_config fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)
  | _ -> (
      match Kernel.seal fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)

let prepare_rig_memory fx rig =
  let base = Rig.seg_base rig in
  List.iteri
    (fun k task ->
      Mem.store fx.kernel.Kernel.mem (base + k) (Runq.task_id task))
    fx.tasks

let setup_regs ~self cpu =
  Cpu.set_reg cpu 1 self;
  Cpu.set_reg cpu 2 (Cpu.segment cpu).Mem.base;
  Cpu.set_reg cpu 3 process_count

(* checking the returned id against the valid-thread hash (Table 5's
   result-checking line, ~4 us) *)
let check_cost = Vino_txn.Tcosts.us 4.

let check_id fx cpu =
  let id = Cpu.reg cpu 0 in
  List.exists (fun t -> Runq.task_id t = id) fx.tasks

let stats ?(iterations = 300) path =
  match path with
  | Path.Base ->
      let fx = fixture ~graft_support:false () in
      Probe.samples fx.kernel ~iterations (fun _ -> round fx)
  | Path.Vino ->
      let fx = fixture ~graft_support:true () in
      Probe.samples fx.kernel ~iterations (fun _ -> round fx)
  | Path.Null | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked
  | Path.Abort ->
      let fx = fixture ~graft_support:false () in
      if path = Path.FlowChecked then fx.kernel.Kernel.flow_enforce <- true;
      let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
      prepare_rig_memory fx rig;
      let self = Runq.task_id (List.hd fx.tasks) in
      let commit = path <> Path.Abort in
      Probe.samples fx.kernel ~iterations (fun _ ->
          (* pick + delegate graft + switch + switch back *)
          (match
             Rig.run rig ~check_cost ~setup:(setup_regs ~self)
               ~check:(check_id fx) ~commit ()
           with
          | Rig.Committed | Rig.Rolled_back -> ()
          | Rig.Failed reason -> failwith reason);
          Engine.delay (2 * switch_cost))

let measure ?iterations path =
  Vino_sim.Stats.trimmed_mean (stats ?iterations path)

let measure_abort ?(iterations = 300) ~full () =
  let fx = fixture ~graft_support:false () in
  let path = if full then Path.Abort else Path.Null in
  let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
  prepare_rig_memory fx rig;
  let self = Runq.task_id (List.hd fx.tasks) in
  let engine = fx.kernel.Kernel.engine in
  let abort_stats = Vino_sim.Stats.create () in
  let (_ : Vino_sim.Stats.t) =
    Probe.samples fx.kernel ~iterations (fun _ ->
        let before = ref 0 in
        let check cpu =
          before := Engine.now engine;
          ignore (Cpu.cycles cpu);
          true
        in
        (match
           Rig.run rig ~check_cost ~setup:(setup_regs ~self) ~check
             ~commit:false ()
         with
        | Rig.Rolled_back -> ()
        | Rig.Committed | Rig.Failed _ -> failwith "expected rollback");
        Vino_sim.Stats.add abort_stats
          (Vino_vm.Costs.us_of_cycles (Engine.now engine - !before)))
  in
  Vino_sim.Stats.trimmed_mean abort_stats

let paper_elapsed =
  [
    (Path.Base, 54.);
    (Path.Vino, 55.);
    (Path.Null, 131.);
    (Path.Unsafe, 203.);
    (Path.Safe, 208.);
    (Path.Abort, 211.);
  ]

let table ?iterations ?pool () =
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (fun p -> (p, measure ?iterations p))
      Path.all
  in
  let value p = List.assoc p measured in
  let paper p = List.assoc_opt p paper_elapsed in
  let row p = Table.elapsed ?paper:(paper p) (Path.name p) (value p) in
  let inc label p q paper = Table.overhead ~paper label (value q -. value p) in
  [
    row Path.Base;
    inc "Indirection cost" Path.Base Path.Vino 1.;
    row Path.Vino;
    inc "Txn begin+commit+null graft" Path.Vino Path.Null 76.;
    row Path.Null;
    inc "Lock + graft function + check" Path.Null Path.Unsafe 72.;
    row Path.Unsafe;
    inc "MiSFIT overhead" Path.Unsafe Path.Safe 5.;
    row Path.Safe;
    Table.overhead "MiSFIT recovered by static verifier"
      (value Path.Verified -. value Path.Safe);
    row Path.Verified;
    Table.overhead "Kcall-flow check (above Safe)"
      (value Path.FlowChecked -. value Path.Safe);
    row Path.FlowChecked;
    inc "Abort cost (above commit)" Path.Safe Path.Abort 3.;
    row Path.Abort;
  ]
