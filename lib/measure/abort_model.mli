(** §4.5 — transaction failure overhead.

    The paper models total abort time as

    {v abort_overhead + unlock_cost + undo_cost  =  35us + 10us*L + c*G v}

    where [L] is the number of locks to release and [c*G] the undo cost,
    somewhat less than the graft's own cost. These harnesses measure abort
    time directly as a function of [L] and of the undo-stack depth, fit the
    line, and regenerate Table 7 (null vs full abort for all four sample
    grafts). *)

val abort_cost : ?iterations:int -> locks:int -> undo:int -> unit -> float
(** Mean abort time (us) of a transaction holding [locks] locks and [undo]
    undo records (each with a 1 us replay cost). *)

val sweep_locks :
  ?iterations:int ->
  ?pool:Vino_par.Pool.t ->
  ?locks:int list ->
  unit ->
  (int * float) list
(** With [?pool], the sweep points fan out across domains. *)

val fit : (int * float) list -> float * float
(** Least-squares [(intercept_us, slope_us_per_lock)]. *)

val timeout_latency_bounds : unit -> int * int
(** Min and max cycles between a timeout being scheduled and firing, given
    the 10 ms tick (the paper's "between 10 and 20 ms"). *)

val table7 :
  ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** Null-abort and full-abort times for the four sample grafts, against
    the paper's Table 7. With [?pool], the eight cells fan out across
    domains. *)

val model_table :
  ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** The fitted abort-cost model against the paper's 35 + 10L equation. *)
