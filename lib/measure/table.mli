(** Rendering of paper-versus-measured tables. *)

type row = {
  label : string;
  paper_us : float option;  (** the paper's reported value, if any *)
  measured_us : float;
  incremental : bool;  (** an overhead line rather than an elapsed line *)
}

val elapsed : ?paper:float -> string -> float -> row
val overhead : ?paper:float -> string -> float -> row

val render : Format.formatter -> title:string -> ?notes:string -> row list -> unit
val print : title:string -> ?notes:string -> row list -> unit

val to_json :
  name:string ->
  title:string ->
  ?counters:(string * int) list ->
  row list ->
  Vino_trace.Json.t
(** Schema ["vino-bench-v1"]: [{schema; name; title; rows; counters}],
    one row object per table line with [label], [paper_us] (null when the
    paper gives none), measured [us], the equivalent virtual [cycles],
    and the [incremental] flag. See DESIGN.md §10. *)

val write_json :
  file:string ->
  name:string ->
  title:string ->
  ?counters:(string * int) list ->
  row list ->
  unit
(** {!to_json} serialised to [file]. *)

val diffs : (string * float) list -> (string * float) list
(** Successive differences of a list of labelled elapsed values:
    [(l1,a);(l2,b);...] gives [(l2, b-a); ...]. *)
