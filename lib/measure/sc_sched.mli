(** Table 5 — scheduling (Prioritization) graft overhead.

    Workload: 64 runnable processes; the measured delegate locks and scans
    the 64-entry process list and returns its own id. The base path is the
    cost of switching processes twice (select + switch + switch back). *)

val process_count : int
val stats : ?iterations:int -> Path.t -> Vino_sim.Stats.t
val measure : ?iterations:int -> Path.t -> float
val measure_abort : ?iterations:int -> full:bool -> unit -> float
val paper_elapsed : (Path.t * float) list
val table : ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** With [?pool], the per-path measurements fan out across domains (each
    worker builds its own kernel); rows are identical at any pool
    size. *)
