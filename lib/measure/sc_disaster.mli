(** Recovery cost by fault class: virtual elapsed time for one graft
    invocation on the stream site, healthy vs. each injected misbehaviour
    (the delta is detection + abort + removal), under both recovery
    strategies — the default per-write undo log ({!Vino_core.Kernel.Txn_undo})
    and whole-kernel checkpointing ({!Vino_core.Kernel.Snapshot_rollback})
    — plus campaign-throughput rows in virtual time. Deterministic — no
    [~iterations]; every run replays the same seeded variants. *)

val table : ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** With [?pool], the healthy row and the per-injector rows fan out
    across domains; rows are identical at any pool size. *)
