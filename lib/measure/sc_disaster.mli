(** Recovery cost by fault class: virtual elapsed time for one graft
    invocation on the stream site, healthy vs. each injected misbehaviour
    (the delta is detection + abort + removal). Deterministic — no
    [~iterations]; every run replays the same seeded variants. *)

val table : unit -> Table.row list
