(** Figures 4/5 — the cost of policy factoring in the lock manager.

    The conventional [get_lock] (Fig 4) hard-codes reader-priority granting
    and append-order queueing; the fully-factored version (Fig 5) consults
    an encapsulated policy at each decision point, paying one ~35-cycle
    function call per point ("these add up remarkably quickly", §6). This
    harness measures the per-acquire difference and demonstrates the
    behavioural payoff: a grafted queueing policy (fifo-fair) changes who
    gets the lock. *)

val uncontended_cost : ?iterations:int -> factored:bool -> unit -> float
(** Mean acquire+release cost (us) for a plain thread, conventional or
    factored lock manager. *)

val indirection_cost_us : unit -> float
(** The modelled cost of the two decision-point calls. *)

val contended_trace :
  policy:Vino_txn.Lock_policy.t -> unit -> string list
(** Run the reader/writer/late-reader scenario and report the grant order —
    reader-priority lets the late reader overtake; fifo-fair does not. *)

val table : ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
