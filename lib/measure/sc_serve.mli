(** Serve scenario — multi-tenant throughput and latency SLO table.

    Runs {!Vino_net.Serve} at several tenant counts on each execution
    path and reports, per [(tenant count, path)] cell, the makespan and
    the p50/p99/p999 arrival-to-response latency (gated rows) plus the
    throughput in requests per second (informational row — not a
    microsecond quantity, so it is emitted as an incremental line the
    bench gate skips). Fully deterministic: cycle-exact across hosts and
    across [-j] levels. *)

val default_tenant_counts : int list
(** [[1; 4; 12]]. *)

val report :
  ?pool:Vino_par.Pool.t ->
  tenants:int ->
  path:Vino_net.Serve.path ->
  unit ->
  Vino_net.Serve.report
(** One cell's raw report ({!Vino_net.Serve.default} with [tenants] and
    [path] substituted). *)

val rows :
  ?pool:Vino_par.Pool.t ->
  tenants:int ->
  path:Vino_net.Serve.path ->
  unit ->
  Table.row list
(** The five rows of one cell. *)

val table :
  ?tenant_counts:int list ->
  ?paths:Vino_net.Serve.path list ->
  ?pool:Vino_par.Pool.t ->
  unit ->
  Table.row list
(** The full table, tenant-count major, path minor. *)
