type row = {
  label : string;
  paper_us : float option;
  measured_us : float;
  incremental : bool;
}

let elapsed ?paper label measured_us =
  { label; paper_us = paper; measured_us; incremental = false }

let overhead ?paper label measured_us =
  { label; paper_us = paper; measured_us; incremental = true }

let render ppf ~title ?notes rows =
  let line = String.make 74 '-' in
  Format.fprintf ppf "%s@\n%s@\n" line title;
  Format.fprintf ppf "%-40s %12s %12s %6s@\n" "" "paper (us)" "sim (us)"
    "ratio";
  Format.fprintf ppf "%s@\n" line;
  List.iter
    (fun r ->
      let label = if r.incremental then "  " ^ r.label else r.label in
      let paper =
        match r.paper_us with
        | Some v -> Printf.sprintf "%12.1f" v
        | None -> Printf.sprintf "%12s" "-"
      in
      let ratio =
        match r.paper_us with
        | Some p when p <> 0. -> Printf.sprintf "%6.2f" (r.measured_us /. p)
        | Some _ | None -> Printf.sprintf "%6s" "-"
      in
      Format.fprintf ppf "%-40s %s %12.1f %s@\n" label paper r.measured_us
        ratio)
    rows;
  Format.fprintf ppf "%s@\n" line;
  (match notes with
  | Some n -> Format.fprintf ppf "%s@\n" n
  | None -> ());
  Format.fprintf ppf "@."

let print ~title ?notes rows = render Format.std_formatter ~title ?notes rows

module Json = Vino_trace.Json

let row_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ( "paper_us",
        match r.paper_us with Some v -> Json.Float v | None -> Json.Null );
      ("us", Json.Float r.measured_us);
      ("cycles", Json.Int (Vino_vm.Costs.cycles_of_us r.measured_us));
      ("incremental", Json.Bool r.incremental);
    ]

let to_json ~name ~title ?(counters = []) rows =
  Json.Obj
    [
      ("schema", Json.String "vino-bench-v1");
      ("name", Json.String name);
      ("title", Json.String title);
      ("rows", Json.List (List.map row_json rows));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
    ]

let write_json ~file ~name ~title ?counters rows =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json ~name ~title ?counters rows)))

let diffs labelled =
  let rec go = function
    | (_, a) :: ((l2, b) :: _ as rest) -> (l2, b -. a) :: go rest
    | [ _ ] | [] -> []
  in
  go labelled
