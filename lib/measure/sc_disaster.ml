(* Recovery cost by fault class (the disaster-rig companion to Table 7):
   virtual elapsed time from kicking one graft invocation to a drained
   engine, for a healthy graft and for each injected misbehaviour.

   Measured on the stream site: no disk or daemon in the timeline, so the
   delta over the healthy run is exactly detection + abort + removal. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Asm = Vino_vm.Asm
module Seed = Vino_disaster.Seed
module Injector = Vino_disaster.Injector
module Site = Vino_disaster.Site

let seal_install (site : Site.t) source =
  match Asm.assemble source with
  | Error e -> Error ("assemble: " ^ e)
  | Ok obj -> (
      match Kernel.seal site.kernel obj with
      | Error e -> Error e
      | Ok image -> site.install image)

let drained_elapsed (site : Site.t) ~contender =
  let engine = site.kernel.Kernel.engine in
  let t0 = Engine.now engine in
  site.drive_once ();
  if contender then Site.spawn_contender site ~delay:4_000;
  Kernel.run site.kernel;
  Vino_vm.Costs.us_of_cycles (Engine.now engine - t0)

let measure_healthy () =
  let site = Site.create Site.Stream_copy in
  match seal_install site site.healthy with
  | Error e -> failwith ("healthy graft refused: " ^ e)
  | Ok () -> drained_elapsed site ~contender:false

(* The first seed whose variant is detected at run time (for bad-call the
   provably-bad variant is refused at load, which has no recovery cost to
   measure — we want the laundered one here). *)
let runtime_variant kind =
  let rec go seed =
    if seed > 64 then failwith "no runtime-detected variant found"
    else
      let site = Site.create Site.Stream_copy in
      let v =
        Injector.apply kind
          ~rng:(Seed.derive ~seed 0)
          ~rig:site.Site.rig site.Site.healthy
      in
      if v.Injector.expect = Injector.Rejected then go (seed + 1)
      else (site, v)
  in
  go 7

let measure_kind kind =
  let site, variant = runtime_variant kind in
  Option.iter (Site.pin_flow_witness site) variant.Injector.flow_witness;
  match seal_install site variant.Injector.source with
  | Error e -> failwith (Injector.name kind ^ ": unexpected load refusal: " ^ e)
  | Ok () -> drained_elapsed site ~contender:variant.Injector.wants_contender

let table ?pool () =
  (* one parallel unit for the healthy row plus one per injector; each
     builds its own site/kernel, so rows are identical at any pool size *)
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (function
        | None -> measure_healthy ()
        | Some kind -> measure_kind kind)
      (None :: List.map Option.some Injector.all)
  in
  match measured with
  | healthy :: rest ->
      Table.elapsed "healthy graft (commit path)" healthy
      :: List.map2
           (fun kind v ->
             Table.elapsed
               (Printf.sprintf "detect+recover: %s" (Injector.name kind))
               v)
           Injector.all rest
  | [] -> assert false
