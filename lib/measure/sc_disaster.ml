(* Recovery cost by fault class (the disaster-rig companion to Table 7):
   virtual elapsed time from kicking one graft invocation to a drained
   engine, for a healthy graft and for each injected misbehaviour.

   Measured on the stream site: no disk or daemon in the timeline, so the
   delta over the healthy run is exactly detection + abort + removal. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Asm = Vino_vm.Asm
module Seed = Vino_disaster.Seed
module Injector = Vino_disaster.Injector
module Site = Vino_disaster.Site

let seal_install (site : Site.t) source =
  match Asm.assemble source with
  | Error e -> Error ("assemble: " ^ e)
  | Ok obj -> (
      match Kernel.seal site.kernel obj with
      | Error e -> Error e
      | Ok image -> site.install image)

let drained_elapsed (site : Site.t) ~contender =
  let engine = site.kernel.Kernel.engine in
  let t0 = Engine.now engine in
  site.drive_once ();
  if contender then Site.spawn_contender site ~delay:4_000;
  Kernel.run site.kernel;
  Vino_vm.Costs.us_of_cycles (Engine.now engine - t0)

let measure_healthy ~strategy () =
  let site = Site.create Site.Stream_copy in
  Kernel.set_strategy site.kernel strategy;
  match seal_install site site.healthy with
  | Error e -> failwith ("healthy graft refused: " ^ e)
  | Ok () -> drained_elapsed site ~contender:false

(* The first seed whose variant is detected at run time (for bad-call the
   provably-bad variant is refused at load, which has no recovery cost to
   measure — we want the laundered one here). *)
let runtime_variant kind =
  let rec go seed =
    if seed > 64 then failwith "no runtime-detected variant found"
    else
      let site = Site.create Site.Stream_copy in
      let v =
        Injector.apply kind
          ~rng:(Seed.derive ~seed 0)
          ~rig:site.Site.rig site.Site.healthy
      in
      if v.Injector.expect = Injector.Rejected then go (seed + 1)
      else (site, v)
  in
  go 7

let measure_kind ~strategy kind =
  let site, variant = runtime_variant kind in
  Kernel.set_strategy site.kernel strategy;
  Option.iter (Site.pin_flow_witness site) variant.Injector.flow_witness;
  match seal_install site variant.Injector.source with
  | Error e -> failwith (Injector.name kind ^ ": unexpected load refusal: " ^ e)
  | Ok () -> drained_elapsed site ~contender:variant.Injector.wants_contender

let label strategy text =
  match strategy with
  | Kernel.Txn_undo -> text
  | Kernel.Snapshot_rollback -> "snapshot-rollback: " ^ text

let table ?pool () =
  (* one parallel unit per (strategy, healthy-or-injector) pair; each
     builds its own site/kernel, so rows are identical at any pool size.
     The Txn_undo rows come first, unchanged from before the
     snapshot-rollback strategy existed. *)
  let items =
    List.concat_map
      (fun strategy ->
        List.map
          (fun kind -> (strategy, kind))
          (None :: List.map Option.some Injector.all))
      [ Kernel.Txn_undo; Kernel.Snapshot_rollback ]
  in
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (fun (strategy, kind) ->
        match kind with
        | None -> measure_healthy ~strategy ()
        | Some kind -> measure_kind ~strategy kind)
      items
  in
  let rows =
    List.map2
      (fun (strategy, kind) v ->
        match kind with
        | None ->
            Table.elapsed (label strategy "healthy graft (commit path)") v
        | Some kind ->
            Table.elapsed
              (label strategy
                 (Printf.sprintf "detect+recover: %s" (Injector.name kind)))
              v)
      items measured
  in
  (* Campaign throughput in virtual time: deterministic (every record's
     elapsed cycles are a pure function of seed and index), so the rows
     gate like any other. [~fork:false]: forking warms one site per family
     per domain, so the host-side trace counters emitted alongside the
     bench JSON would depend on pool size; fresh sites keep the whole
     report byte-identical at any -j. The virtual time is the same either
     way — that is the forking contract. *)
  let count = 40 in
  let campaign =
    Vino_disaster.Campaign.run ?pool ~check_determinism:false ~fork:false
      ~seed:42 ~count ()
  in
  let vtime_us =
    Vino_vm.Costs.us_of_cycles (Vino_disaster.Campaign.total_vtime campaign)
  in
  rows
  @ [
      Table.elapsed
        (Printf.sprintf "campaign trial, mean of %d (virtual us)" count)
        (vtime_us /. float_of_int count);
      Table.elapsed "campaign throughput (trials per virtual second)"
        (1e6 *. float_of_int count /. vtime_us);
    ]
