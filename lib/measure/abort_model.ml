module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock

let undo_replay_cost = Vino_txn.Tcosts.us 1.

let abort_cost ?(iterations = 300) ~locks ~undo () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let lock_objects =
    List.init locks (fun k ->
        Kernel.make_lock kernel ~name:(Printf.sprintf "L%d" k) ())
  in
  let engine = kernel.Kernel.engine in
  let stats = Vino_sim.Stats.create () in
  let (_ : Vino_sim.Stats.t) =
    Probe.samples kernel ~iterations (fun _ ->
        let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"abort-model" () in
        List.iter
          (fun lock ->
            match Txn.acquire_lock txn lock Exclusive with
            | Ok () -> ()
            | Error reason -> failwith reason)
          lock_objects;
        for k = 0 to undo - 1 do
          Txn.push_undo txn ~cost:undo_replay_cost
            ~label:(Printf.sprintf "u%d" k)
            (fun () -> ())
        done;
        let before = Engine.now engine in
        Txn.abort txn ~reason:"model";
        Vino_sim.Stats.add stats
          (Vino_vm.Costs.us_of_cycles (Engine.now engine - before)))
  in
  Vino_sim.Stats.trimmed_mean stats

let sweep_locks ?iterations ?pool ?(locks = [ 0; 1; 2; 4; 8; 16; 32 ]) () =
  Vino_par.Pool.map_scoped ?pool
    (fun l -> (l, abort_cost ?iterations ~locks:l ~undo:0 ()))
    locks

let fit points =
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. float_of_int x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx =
    List.fold_left (fun a (x, _) -> a +. (float_of_int x ** 2.)) 0. points
  in
  let sxy =
    List.fold_left (fun a (x, y) -> a +. (float_of_int x *. y)) 0. points
  in
  let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let intercept = (sy -. (slope *. sx)) /. n in
  (intercept, slope)

let timeout_latency_bounds () =
  let tick = Vino_sim.Tick.default_tick in
  (* a nominal timeout of one tick lands on the first boundary at or after
     now + tick: between tick and 2*tick away *)
  (tick, 2 * tick)

let table7 ?iterations ?pool () =
  let scenarios =
    [
      ("Read-Ahead", Sc_readahead.measure_abort ?iterations, 32., 45.);
      ("Page Eviction", Sc_evict.measure_abort ?iterations, 38., 50.);
      ("Scheduling", Sc_sched.measure_abort ?iterations, 33., 45.);
      ("Encryption", Sc_crypt.measure_abort ?iterations, 36., 36.);
    ]
  in
  (* one parallel unit per (graft, null|full) cell *)
  let units =
    List.concat_map
      (fun (name, f, paper_null, paper_full) ->
        [
          (name ^ " (null abort)", paper_null, fun () -> f ~full:false ());
          (name ^ " (full abort)", paper_full, fun () -> f ~full:true ());
        ])
      scenarios
  in
  let measured =
    Vino_par.Pool.map_scoped ?pool (fun (_, _, f) -> f ()) units
  in
  List.map2
    (fun (label, paper, _) v -> Table.elapsed ~paper label v)
    units measured

let model_table ?iterations ?pool () =
  let points = sweep_locks ?iterations ?pool () in
  let intercept, slope = fit points in
  List.map
    (fun (l, t) ->
      Table.elapsed
        ~paper:(35. +. (10. *. float_of_int l))
        (Printf.sprintf "abort holding %2d locks" l)
        t)
    points
  @ [
      Table.overhead ~paper:35. "fitted abort overhead (intercept)" intercept;
      Table.overhead ~paper:10. "fitted unlock cost (us/lock)" slope;
    ]
