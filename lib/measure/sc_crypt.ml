(* Table 6: the encryption (Stream) graft. *)

module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Channel = Vino_stream.Channel
module Sgrafts = Vino_stream.Grafts

let buffer_words = Channel.buffer_words_8kb
let key = 0x5EC2E7

type fixture = {
  kernel : Kernel.t;
  channel : Channel.t;
  data : int array;
  cred : Vino_core.Cred.t;
}

let fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let channel = Channel.create kernel ~name:"bench" () in
  let data = Array.init buffer_words (fun k -> (k * 2654435761) land 0xFFFF) in
  { kernel; channel; data; cred = Vino_core.Cred.root }

let segment_words = (2 * buffer_words) + 512

(* Entry facts established by [setup]: r1 = segment base (source buffer),
   r2 = base + buffer_words (destination), r3 = word count <= buffer_words.
   The verifier's interval analysis bounds the loop counter by r3 and
   proves every load and store of the transform loop in-segment — the
   paper's worst SFI case (per-word load + store) drops to zero sandbox
   instructions on the Verified path. *)
let verify_config =
  Vino_verify.Verify.config
    ~entry:
      [
        (1, Vino_verify.Verify.seg_window ());
        (2, Vino_verify.Verify.seg_window ~off:buffer_words ());
        (3, Vino_verify.Verify.arg_at_most buffer_words);
      ]
    ~words:segment_words ()

let graft_image fx path =
  let source =
    match path with
    | Path.Null -> [ Vino_vm.Asm.Li (Vino_vm.Asm.r0, 0); Ret ]
    | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked | Path.Abort
      ->
        Sgrafts.xor_encrypt_source ~key
    | Path.Base | Path.Vino -> invalid_arg "no graft on this path"
  in
  let obj = Vino_vm.Asm.assemble_exn source in
  match path with
  | Path.Unsafe -> Kernel.seal_unsafe fx.kernel obj
  | Path.Verified -> (
      match Kernel.seal ~verify:verify_config fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)
  | _ -> (
      match Kernel.seal fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)

(* the kernel's copyin of the source buffer, then argument registers *)
let setup fx cpu =
  let seg = Cpu.segment cpu in
  Engine.delay (Array.length fx.data * Channel.bcopy_cycles_per_word);
  Array.iteri
    (fun k v -> Mem.store fx.kernel.Kernel.mem (Mem.sandbox seg k) v)
    fx.data;
  Cpu.set_reg cpu 1 (Cpu.segment cpu).Vino_vm.Mem.base;
  Cpu.set_reg cpu 2 ((Cpu.segment cpu).Vino_vm.Mem.base + buffer_words);
  Cpu.set_reg cpu 3 (Array.length fx.data)

let stats ?(iterations = 300) path =
  let fx = fixture () in
  let point = Channel.point fx.channel in
  match path with
  | Path.Base ->
      Probe.samples fx.kernel ~iterations (fun _ ->
          ignore (Graft_point.default_fn point fx.data))
  | Path.Vino ->
      Probe.samples fx.kernel ~iterations (fun _ ->
          ignore (Graft_point.invoke point fx.kernel ~cred:fx.cred fx.data))
  | Path.Null | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked
  | Path.Abort ->
      if path = Path.FlowChecked then fx.kernel.Kernel.flow_enforce <- true;
      let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
      let commit = path <> Path.Abort in
      Probe.samples fx.kernel ~iterations (fun _ ->
          match
            Rig.run rig ~indirection:0 ~check_cost:0 ~setup:(setup fx)
              ~commit ()
          with
          | Rig.Committed | Rig.Rolled_back -> ()
          | Rig.Failed reason -> failwith reason)

let measure ?iterations path =
  Vino_sim.Stats.trimmed_mean (stats ?iterations path)

let measure_abort ?(iterations = 300) ~full () =
  let fx = fixture () in
  let path = if full then Path.Abort else Path.Null in
  let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
  let engine = fx.kernel.Kernel.engine in
  let abort_stats = Vino_sim.Stats.create () in
  let (_ : Vino_sim.Stats.t) =
    Probe.samples fx.kernel ~iterations (fun _ ->
        let before = ref 0 in
        let check cpu =
          before := Engine.now engine;
          ignore (Cpu.cycles cpu);
          true
        in
        (match
           Rig.run rig ~indirection:0 ~check_cost:0 ~setup:(setup fx) ~check
             ~commit:false ()
         with
        | Rig.Rolled_back -> ()
        | Rig.Committed | Rig.Failed _ -> failwith "expected rollback");
        Vino_sim.Stats.add abort_stats
          (Vino_vm.Costs.us_of_cycles (Engine.now engine - !before)))
  in
  Vino_sim.Stats.trimmed_mean abort_stats

let paper_elapsed =
  [
    (Path.Base, 105.);
    (Path.Vino, 105.);
    (Path.Null, 193.);
    (Path.Unsafe, 359.);
    (Path.Safe, 546.);
    (Path.Abort, 550.);
  ]

let table ?iterations ?pool () =
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (fun p -> (p, measure ?iterations p))
      Path.all
  in
  let value p = List.assoc p measured in
  let paper p = List.assoc_opt p paper_elapsed in
  let row p = Table.elapsed ?paper:(paper p) (Path.name p) (value p) in
  let inc label p q paper = Table.overhead ~paper label (value q -. value p) in
  [
    row Path.Base;
    row Path.Vino;
    inc "Txn begin+commit (+ cache misses)" Path.Vino Path.Null 88.;
    row Path.Null;
    inc "Graft function" Path.Null Path.Unsafe 166.;
    row Path.Unsafe;
    inc "MiSFIT overhead" Path.Unsafe Path.Safe 187.;
    row Path.Safe;
    Table.overhead "MiSFIT recovered by static verifier"
      (value Path.Verified -. value Path.Safe);
    row Path.Verified;
    Table.overhead "Kcall-flow check (above Safe)"
      (value Path.FlowChecked -. value Path.Safe);
    row Path.FlowChecked;
    inc "Abort cost (above commit)" Path.Safe Path.Abort 4.;
    row Path.Abort;
  ]
