(* Table 4: the page-eviction (Prioritization) graft. *)

module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Frame = Vino_vmem.Frame
module Vas = Vino_vmem.Vas
module Evict = Vino_vmem.Evict
module Vgrafts = Vino_vmem.Grafts

let resident_pages = 512 (* 2 MB at 4 KB *)
let protected_pages = 48

type fixture = {
  kernel : Kernel.t;
  vas : Vas.t;
  evictor : Evict.t; (* graft_support:false — the pure global selection *)
  cred : Vino_core.Cred.t;
}

let fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let frames = Frame.create_table ~frames:(resident_pages + 64) in
  let evictor = Evict.create kernel ~frames ~graft_support:false () in
  let vas = Vas.create kernel ~name:"bench-vas" () in
  Evict.register_vas evictor vas;
  let fx = { kernel; vas; evictor; cred = Vino_core.Cred.root } in
  (* populate the footprint and run one clearing pass of the clock *)
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"populate" (fun () ->
         for vpage = 0 to resident_pages - 1 do
           ignore (Evict.touch evictor vas ~vpage)
         done;
         ignore (Evict.select_replacement evictor ~cred:fx.cred)));
  Kernel.run kernel;
  fx

let select fx =
  match Evict.select_replacement fx.evictor ~cred:fx.cred with
  | Ok frame -> frame
  | Error `Nothing_evictable -> failwith "sc_evict: nothing evictable"

(* run one selection outside the timed loop (needs a process context) *)
let probe_victim fx =
  let victim = ref 0 in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine ~name:"probe-victim" (fun () ->
         let frame = select fx in
         match frame.Frame.owner with
         | Some o -> victim := o.Frame.vpage
         | None -> ()));
  Kernel.run fx.kernel;
  !victim

(* The graft segment layout: protected list in the shared window (count at
   word 0), candidates at Vas.candidate_area, heap above them. *)
let segment_words = Vas.candidate_area + resident_pages + 512

(* Entry facts established by [setup_regs]: r2 points at the candidate
   list inside the segment, r4 at the segment base, r3 is the candidate
   count. protect-hot-pages uses intra-graft [Call]s, after which the
   analysis havocs its state, so little is provable: the Verified path
   honestly measures close to Safe here (the verifier helps straight-line
   and loop code, not call-heavy code). *)
let verify_config =
  Vino_verify.Verify.config
    ~entry:
      [
        (2, Vino_verify.Verify.seg_window ~off:Vas.candidate_area ());
        (3, Vino_verify.Verify.arg_at_most resident_pages);
        (4, Vino_verify.Verify.seg_window ());
      ]
    ~words:segment_words ()

let graft_image fx path =
  let source =
    match path with
    | Path.Null -> Vgrafts.accept_victim_source
    | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked | Path.Abort
      ->
        Vgrafts.protect_hot_pages_source
          ~lock_kcall:(Vas.lock_name fx.vas)
          ()
    | Path.Base | Path.Vino -> invalid_arg "no graft on this path"
  in
  let obj = Vino_vm.Asm.assemble_exn source in
  match path with
  | Path.Unsafe -> Kernel.seal_unsafe fx.kernel obj
  | Path.Verified -> (
      match Kernel.seal ~verify:verify_config fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)
  | _ -> (
      match Kernel.seal fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)

(* Write the application's hot-page list and the kernel's candidate list
   into the rig's segment once; neither changes between iterations. *)
let prepare_rig_memory fx rig ~victim =
  let mem = fx.kernel.Kernel.mem in
  let base = Rig.seg_base rig in
  Mem.store mem base protected_pages;
  for k = 0 to protected_pages - 1 do
    Mem.store mem (base + 1 + k) k
  done;
  let candidates =
    Vas.resident_pages fx.vas |> List.filter (fun p -> p <> victim)
  in
  List.iteri
    (fun k page -> Mem.store mem (base + Vas.candidate_area + k) page)
    candidates;
  List.length candidates

let setup_regs ~victim ~count cpu =
  let base = (Cpu.segment cpu).Mem.base in
  Cpu.set_reg cpu 1 victim;
  Cpu.set_reg cpu 2 (base + Vas.candidate_area);
  Cpu.set_reg cpu 3 count;
  Cpu.set_reg cpu 4 base

(* the kernel-side verification of the suggestion (ownership + wiredness) *)
let check_choice fx cpu =
  let choice = Cpu.reg cpu 0 in
  Vas.is_resident fx.vas choice && not (Vas.wired fx.vas ~vpage:choice)

let check_cost = Vino_txn.Tcosts.us 2.

let stats ?(iterations = 300) path =
  let fx = fixture () in
  match path with
  | Path.Base ->
      Probe.samples fx.kernel ~iterations (fun _ -> ignore (select fx))
  | Path.Vino ->
      let point = Vas.evict_point fx.vas in
      Probe.samples fx.kernel ~iterations (fun _ ->
          let frame = select fx in
          let victim =
            match frame.Frame.owner with
            | Some o -> o.Frame.vpage
            | None -> 0
          in
          ignore
            (Graft_point.invoke point fx.kernel ~cred:fx.cred
               { Vas.victim; candidates = [] }))
  | Path.Null | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked
  | Path.Abort ->
      if path = Path.FlowChecked then fx.kernel.Kernel.flow_enforce <- true;
      let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
      let commit = path <> Path.Abort in
      let victim = probe_victim fx in
      let count = prepare_rig_memory fx rig ~victim in
      Probe.samples fx.kernel ~iterations (fun _ ->
          ignore (select fx);
          match
            Rig.run rig ~check_cost
              ~setup:(setup_regs ~victim ~count)
              ~check:(check_choice fx) ~commit ()
          with
          | Rig.Committed | Rig.Rolled_back -> ()
          | Rig.Failed reason -> failwith reason)

let measure ?iterations path =
  Vino_sim.Stats.trimmed_mean (stats ?iterations path)

let measure_abort ?(iterations = 300) ~full () =
  let fx = fixture () in
  let path = if full then Path.Abort else Path.Null in
  let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx path) in
  let victim = probe_victim fx in
  let count = prepare_rig_memory fx rig ~victim in
  let engine = fx.kernel.Kernel.engine in
  let abort_stats = Vino_sim.Stats.create () in
  let (_ : Vino_sim.Stats.t) =
    Probe.samples fx.kernel ~iterations (fun _ ->
        let before = ref 0 in
        let check cpu =
          before := Engine.now engine;
          ignore (Cpu.cycles cpu);
          true
        in
        (match
           Rig.run rig ~check_cost
             ~setup:(setup_regs ~victim ~count)
             ~check ~commit:false ()
         with
        | Rig.Rolled_back -> ()
        | Rig.Committed | Rig.Failed _ -> failwith "expected rollback");
        Vino_sim.Stats.add abort_stats
          (Vino_vm.Costs.us_of_cycles (Engine.now engine - !before)))
  in
  Vino_sim.Stats.trimmed_mean abort_stats

(* The "graft agrees" case: victim is not a hot page, so the graft returns
   it after only the victim check. *)
let measure_agreement ?(iterations = 300) () =
  let fx = fixture () in
  let rig = Rig.load fx.kernel ~words:segment_words (graft_image fx Path.Safe) in
  let victim = probe_victim fx in
  let count = prepare_rig_memory fx rig ~victim in
  (* overwrite the hot list with pages that never come up as victim *)
  let mem = fx.kernel.Kernel.mem in
  let base = Rig.seg_base rig in
  for k = 0 to protected_pages - 1 do
    Mem.store mem (base + 1 + k) (resident_pages + 100 + k)
  done;
  Probe.mean_us fx.kernel ~iterations (fun _ ->
      ignore (select fx);
      match
        Rig.run rig ~check_cost
          ~setup:(setup_regs ~victim ~count)
          ~check:(check_choice fx) ~commit:true ()
      with
      | Rig.Committed | Rig.Rolled_back -> ()
      | Rig.Failed reason -> failwith reason)

let paper_elapsed =
  [
    (Path.Base, 39.);
    (Path.Vino, 40.);
    (Path.Null, 130.);
    (Path.Unsafe, 329.);
    (Path.Safe, 355.);
    (Path.Abort, 348.);
  ]

let table ?iterations ?pool () =
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (fun p -> (p, measure ?iterations p))
      Path.all
  in
  let value p = List.assoc p measured in
  let paper p = List.assoc_opt p paper_elapsed in
  let row p = Table.elapsed ?paper:(paper p) (Path.name p) (value p) in
  let inc label p q paper = Table.overhead ~paper label (value q -. value p) in
  [
    row Path.Base;
    inc "Indirection cost" Path.Base Path.Vino 1.;
    row Path.Vino;
    inc "Txn begin+commit+null graft+check" Path.Vino Path.Null 90.;
    row Path.Null;
    inc "Lock + graft function + check" Path.Null Path.Unsafe 199.;
    row Path.Unsafe;
    inc "MiSFIT overhead" Path.Unsafe Path.Safe 26.;
    row Path.Safe;
    Table.overhead "MiSFIT recovered by static verifier"
      (value Path.Verified -. value Path.Safe);
    row Path.Verified;
    Table.overhead "Kcall-flow check (above Safe)"
      (value Path.FlowChecked -. value Path.Safe);
    row Path.FlowChecked;
    inc "Abort cost (above commit)" Path.Safe Path.Abort (-7.);
    row Path.Abort;
  ]
