(** Table 3 — read-ahead (Black Box) graft overhead.

    Reproduces the paper's six-path decomposition for the
    application-directed [compute-ra] graft: a fixed non-sequential read
    request with the next access announced in the shared pattern buffer. *)

val file_blocks : int
val stats : ?iterations:int -> Path.t -> Vino_sim.Stats.t
val measure : ?iterations:int -> Path.t -> float
(** Trimmed-mean elapsed virtual microseconds for one invocation. *)

val measure_abort : ?iterations:int -> full:bool -> unit -> float
(** Abort time alone (Table 7): [full:false] aborts the null graft,
    [full:true] the full safe graft. *)

val paper_elapsed : (Path.t * float) list

val table : ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** With [?pool], the per-path measurements fan out across domains (each
    worker builds its own kernel); rows are identical at any pool
    size. *)
