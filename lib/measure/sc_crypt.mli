(** Table 6 — encryption (Stream) graft overhead.

    Workload: xor-encrypt an 8 KB buffer as it is copied to user level.
    Nearly every instruction is a load or a store, so this is the worst
    case for software fault isolation; no lock is required (the buffers
    are private to the transfer). *)

val buffer_words : int
val stats : ?iterations:int -> Path.t -> Vino_sim.Stats.t
val measure : ?iterations:int -> Path.t -> float
val measure_abort : ?iterations:int -> full:bool -> unit -> float
val paper_elapsed : (Path.t * float) list
val table : ?iterations:int -> ?pool:Vino_par.Pool.t -> unit -> Table.row list
(** With [?pool], the per-path measurements fan out across domains (each
    worker builds its own kernel); rows are identical at any pool
    size. *)
