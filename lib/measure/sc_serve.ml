module Serve = Vino_net.Serve
module Stats = Vino_sim.Stats

let default_tenant_counts = [ 1; 4; 12 ]

let report ?pool ~tenants ~path () =
  Serve.run ?pool { Serve.default with Serve.tenants; path }

(* Latency percentiles are elapsed-microsecond rows the gate watches;
   throughput is not a time, so it rides along as an incremental
   (ungated, informational) line — the JSON still carries it. *)
let rows ?pool ~tenants ~path () =
  let r = report ?pool ~tenants ~path () in
  let st = Stats.create () in
  List.iter (Stats.add st) (Serve.latencies r);
  let label s =
    Printf.sprintf "t=%d %s %s" tenants (Serve.path_name path) s
  in
  [
    Table.elapsed (label "makespan") r.Serve.drain_us;
    Table.elapsed (label "p50") (Stats.percentile st 50.);
    Table.elapsed (label "p99") (Stats.percentile st 99.);
    Table.elapsed (label "p999") (Stats.percentile st 99.9);
    Table.overhead (label "throughput (req/s)") r.Serve.throughput_rps;
  ]

let table ?(tenant_counts = default_tenant_counts)
    ?(paths = Serve.all_paths) ?pool () =
  List.concat_map
    (fun tenants ->
      List.concat_map (fun path -> rows ?pool ~tenants ~path ()) paths)
    tenant_counts
