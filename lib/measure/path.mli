(** The six measured code paths of Table 2, plus two of ours: [Verified]
    runs the full graft under MiSFIT with the static verifier's proofs
    applied, so provably-safe loads, stores and indirect calls keep their
    raw instructions — the gap between [Safe] and [Verified] is the SFI
    overhead the offline analysis recovers. [FlowChecked] is [Safe] with
    kcall-flow integrity enforced at dispatch: one transition-table bit
    test per kernel call — the gap above [Safe] is that check's cost. *)

type t =
  | Base  (** graft support and indirection removed *)
  | Vino  (** normal kernel path: indirection + return-value verification *)
  | Null  (** graft stubs, transaction begin/commit, minimal graft *)
  | Unsafe  (** full graft code and lock overhead, no MiSFIT *)
  | Safe  (** full graft code protected with MiSFIT *)
  | Verified  (** MiSFIT with statically-proven checks elided *)
  | FlowChecked  (** MiSFIT plus the kcall-flow transition check *)
  | Abort  (** complete safe path, transaction abort instead of commit *)

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
