(* Table 3: the read-ahead (Black Box) graft.

   Workload: the application reads blocks in a random order and announces
   each next read in the buffer it shares with the graft; the grafted
   compute-ra turns the announcement into a one-block prefetch decision.
   Measured here is the compute-ra decision path alone (as in the paper),
   not the disk time it hides. *)

module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module File = Vino_fs.File
module Readahead = Vino_fs.Readahead

let file_blocks = 3072 (* 12 MB of 4 KB blocks *)
let shared_words = 16

type fixture = {
  kernel : Kernel.t;
  file : File.t;
  cred : Vino_core.Cred.t;
}

let fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Vino_fs.Disk.create kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:file_blocks () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"bench.db" ~first_block:0
      ~blocks:file_blocks ()
  in
  { kernel; file; cred = Vino_core.Cred.root }

(* a fixed non-sequential request so the default policy does no prefetch *)
let request =
  {
    File.offset_block = 100;
    size_blocks = 1;
    last_block = 42;
    file_blocks;
  }

let setup_regs cpu =
  Cpu.set_reg cpu 1 request.File.offset_block;
  Cpu.set_reg cpu 2 request.File.size_blocks;
  Cpu.set_reg cpu 3 request.File.last_block;
  Cpu.set_reg cpu 4 (Cpu.segment cpu).Mem.base

let segment_words = shared_words + 256

(* What the graft point guarantees at entry (see [setup_regs]): r4 holds
   the segment base. The verifier proves both of compute-ra's accesses
   in-segment from this, so the Verified path runs with no sandboxing. *)
let verify_config =
  Vino_verify.Verify.config
    ~entry:[ (4, Vino_verify.Verify.seg_window ()) ]
    ~words:segment_words ()

let graft_image fx path =
  let source =
    match path with
    | Path.Null -> Readahead.null_source
    | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked | Path.Abort
      ->
        Readahead.app_directed_source
          ~lock_kcall:(File.ra_lock_name fx.file)
    | Path.Base | Path.Vino -> invalid_arg "no graft on this path"
  in
  let obj = Vino_vm.Asm.assemble_exn source in
  match path with
  | Path.Unsafe -> Kernel.seal_unsafe fx.kernel obj
  | Path.Verified -> (
      match Kernel.seal ~verify:verify_config fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)
  | _ -> (
      match Kernel.seal fx.kernel obj with
      | Ok image -> image
      | Error e -> failwith e)

let rig_for fx path = Rig.load fx.kernel ~words:segment_words (graft_image fx path)

let announce rig block =
  Mem.store rig.Rig.kernel.Kernel.mem
    (Rig.seg_base rig + Readahead.pattern_slot)
    block

let check_decision cpu =
  let count = Cpu.reg cpu 0 in
  count >= 0 && count <= File.max_extents

let stats ?(iterations = 300) path =
  let fx = fixture () in
  let ra = File.ra_point fx.file in
  match path with
  | Path.Base ->
      Probe.samples fx.kernel ~iterations (fun _ ->
          ignore (Graft_point.default_fn ra request))
  | Path.Vino ->
      Probe.samples fx.kernel ~iterations (fun _ ->
          ignore (Graft_point.invoke ra fx.kernel ~cred:fx.cred request))
  | Path.Null | Path.Unsafe | Path.Safe | Path.Verified | Path.FlowChecked
  | Path.Abort ->
      if path = Path.FlowChecked then fx.kernel.Kernel.flow_enforce <- true;
      let rig = rig_for fx path in
      let commit = path <> Path.Abort in
      Probe.samples fx.kernel ~iterations (fun k ->
          announce rig ((k * 577) mod file_blocks);
          match
            Rig.run rig ~setup:setup_regs ~check:check_decision ~commit ()
          with
          | Rig.Committed | Rig.Rolled_back -> ()
          | Rig.Failed reason -> failwith reason)

let measure ?iterations path =
  Vino_sim.Stats.trimmed_mean (stats ?iterations path)

(* Table 7's null-abort column: abort at the end of the *null* graft. *)
let measure_abort ?(iterations = 300) ~full () =
  let fx = fixture () in
  let rig = rig_for fx (if full then Path.Abort else Path.Null) in
  let engine = fx.kernel.Kernel.engine in
  let abort_stats = Vino_sim.Stats.create () in
  let s =
    Probe.samples fx.kernel ~iterations (fun k ->
        announce rig ((k * 577) mod file_blocks);
        (* time just the abort: run to the decision point, then sample *)
        let before = ref 0 in
        let check cpu =
          before := Vino_sim.Engine.now engine;
          ignore (Vino_vm.Cpu.cycles cpu);
          true
        in
        (match Rig.run rig ~setup:setup_regs ~check ~commit:false () with
        | Rig.Rolled_back -> ()
        | Rig.Committed | Rig.Failed _ -> failwith "expected rollback");
        Vino_sim.Stats.add abort_stats
          (Vino_vm.Costs.us_of_cycles (Vino_sim.Engine.now engine - !before)))
  in
  ignore (s : Vino_sim.Stats.t);
  Vino_sim.Stats.trimmed_mean abort_stats

let paper_elapsed =
  [
    (Path.Base, 0.5);
    (Path.Vino, 1.5);
    (Path.Null, 67.);
    (Path.Unsafe, 104.);
    (Path.Safe, 107.);
    (Path.Abort, 108.);
  ]

let table ?iterations ?pool () =
  let measured =
    Vino_par.Pool.map_scoped ?pool
      (fun p -> (p, measure ?iterations p))
      Path.all
  in
  let value p = List.assoc p measured in
  let paper p = List.assoc_opt p paper_elapsed in
  let rows p = Table.elapsed ?paper:(paper p) (Path.name p) (value p) in
  let inc label p q paper =
    Table.overhead ~paper label (value q -. value p)
  in
  [
    rows Path.Base;
    inc "Indirection cost" Path.Base Path.Vino 1.0;
    rows Path.Vino;
    inc "Txn begin+commit+null graft" Path.Vino Path.Null 65.5;
    rows Path.Null;
    inc "Lock overhead + graft function" Path.Null Path.Unsafe 37.0;
    rows Path.Unsafe;
    inc "MiSFIT overhead" Path.Unsafe Path.Safe 3.0;
    rows Path.Safe;
    Table.overhead "MiSFIT recovered by static verifier"
      (value Path.Verified -. value Path.Safe);
    rows Path.Verified;
    Table.overhead "Kcall-flow check (above Safe)"
      (value Path.FlowChecked -. value Path.Safe);
    rows Path.FlowChecked;
    inc "Abort cost (above commit)" Path.Safe Path.Abort 1.0;
    rows Path.Abort;
  ]
