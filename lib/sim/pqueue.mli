(** Binary min-heap used as the simulation event queue.

    Entries are ordered by [key] (virtual time) and, for equal keys, by
    insertion sequence — so simultaneous events run in FIFO order and the
    simulation is deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val add : 'a t -> key:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry as [(key, value)]. *)

val peek_key : 'a t -> int option

val clear : 'a t -> unit
(** Empty the queue and reset the insertion sequence to zero, as if
    freshly [create]d. *)

val entries : 'a t -> (int * 'a) list
(** Live entries as [(key, value)] in insertion order. Re-[add]ing them
    in this order into a [clear]ed queue reproduces the original pop
    order exactly (pop order depends only on the (key, seq) total
    order, never on heap layout). *)
