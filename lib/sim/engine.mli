(** Discrete-event simulation engine: the machine-dependent substrate.

    The engine plays the role the NetBSD locore/pmap layer plays for VINO:
    it provides a virtual clock (in cycles at {!Vino_vm.Costs.mhz}),
    preemptible kernel threads (cooperative coroutines implemented with
    OCaml effects), and schedulable timeouts. All kernel subsystems — the
    lock manager, the page daemon, the disk — are processes on this engine,
    so lock timeouts, graft CPU quotas and I/O latencies all interleave in
    one deterministic timeline.

    Simultaneous events execute in FIFO spawn/schedule order, which makes
    every experiment reproducible. *)

type t

type cancel = unit -> unit
(** Cancel a scheduled event; idempotent. *)

exception Stopped
(** Raised inside a process killed with {!kill}. *)

val create : unit -> t

val now : t -> int
(** Current virtual time in cycles. *)

val now_us : t -> float

val at : t -> int -> (unit -> unit) -> cancel
(** [at t time f] runs [f] at absolute virtual [time] (>= [now]). *)

val after : t -> int -> (unit -> unit) -> cancel

type proc
(** Handle on a spawned process. *)

val spawn : t -> ?name:string -> (unit -> unit) -> proc
(** Create a process; its body starts when the engine reaches the current
    time slot. Inside the body, {!delay}, {!suspend} and {!self} may be
    used. An uncaught exception in the body is recorded (see {!failures}). *)

val proc_name : proc -> string
val proc_id : proc -> int
val alive : proc -> bool

val kill : t -> proc -> unit
(** Make the process raise {!Stopped} at its next suspension point (if it is
    blocked, it is woken immediately). A crude mechanism; transaction abort
    (the paper's mechanism) is layered above in {!Vino_txn.Txn}. *)

(* Within a process: *)

val delay : int -> unit
(** Advance this process's virtual time by the given number of cycles. *)

val yield : unit -> unit
(** Re-enqueue at the current time behind already-pending events. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend f] blocks the calling process. [f waker] is called immediately;
    the process resumes with [v] when some other event calls [waker v].
    Calling the waker more than once is harmless (later calls are ignored),
    which lets a timeout and a signal race safely. *)

val self : unit -> proc

val run : ?until:int -> t -> unit
(** Execute events in time order until the queue drains (or [until] is
    passed). Returns normally even if processes remain blocked (deadlock);
    use {!blocked} to detect that. *)

val step : t -> bool
(** Execute the single earliest event; [false] if the queue was empty. *)

val failures : t -> (string * exn) list
(** Processes that died with an uncaught exception, oldest first. *)

val has_run : t -> bool
(** Whether {!step} has ever executed an event on this engine. *)

type snap
(** Captured pre-run engine state: clock, process table, and the pending
    event queue in insertion order. *)

val snapshot : t -> snap
(** Capture a never-run engine. Raises [Invalid_argument] once {!step}
    has executed any event — after that, parked one-shot continuations
    may sit in the queue and cannot be forked. Before the first step the
    queue holds only re-runnable spawn/timer thunks, so the capture is a
    faithful fork point. *)

val restore : t -> snap -> unit
(** Rewind the engine to the snapshot: clock, processes (flags reset)
    and event queue are restored; the engine may then {!run} again.
    Safe to call repeatedly with the same snapshot. *)

val blocked : t -> string list
(** Names of processes that are alive but have no pending event — after
    {!run} drains the queue these are deadlocked. *)
