type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let precedes a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) entry in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t k =
  if k > 0 then begin
    let parent = (k - 1) / 2 in
    if precedes t.data.(k) t.data.(parent) then begin
      let tmp = t.data.(k) in
      t.data.(k) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t k =
  let left = (2 * k) + 1 and right = (2 * k) + 2 in
  let smallest = ref k in
  if left < t.size && precedes t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && precedes t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> k then begin
    let tmp = t.data.(k) in
    t.data.(k) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.next_seq <- 0

(* Live entries in insertion order. Pop order is fully determined by the
   (key, seq) total order, so a queue rebuilt by [add]ing these back in
   sequence behaves identically regardless of heap layout. *)
let entries t =
  let live = Array.sub t.data 0 t.size in
  Array.sort (fun a b -> compare a.seq b.seq) live;
  Array.to_list (Array.map (fun e -> (e.key, e.value)) live)
