module Trace = Vino_trace.Trace

exception Stopped

type proc = {
  id : int;
  name : string;
  mutable dead : bool;
  mutable kill_requested : bool;
  mutable interrupt : (exn -> unit) option;
      (* set while suspended: injects an exception into the continuation *)
}

type event = { mutable cancelled : bool; mutable thunk : unit -> unit }

type t = {
  mutable clock : int;
  queue : event Pqueue.t;
  mutable procs : proc list;
  mutable failures : (string * exn) list;
  mutable next_id : int;
  mutable has_run : bool;
}

type cancel = unit -> unit

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Yield : unit Effect.t
  | Self : proc Effect.t

let create () =
  {
    clock = 0;
    queue = Pqueue.create ();
    procs = [];
    failures = [];
    next_id = 0;
    has_run = false;
  }

let now t = t.clock
let now_us t = Vino_vm.Costs.us_of_cycles t.clock

let do_nothing () = ()

let at t time f =
  if time < t.clock then
    invalid_arg "Engine.at: cannot schedule in the past";
  let ev = { cancelled = false; thunk = f } in
  Pqueue.add t.queue ~key:time ev;
  fun () ->
    ev.cancelled <- true;
    (* drop the closure so cancelled events don't retain memory *)
    ev.thunk <- do_nothing

let after t delta f = at t (t.clock + delta) f

(* Schedule and discard the cancellation handle. *)
let schedule t time f =
  let (_ : cancel) = at t time f in
  ()

let proc_name p = p.name
let proc_id p = p.id
let alive p = not p.dead

let delay n = Effect.perform (Delay n)
let yield () = Effect.perform Yield
let suspend f = Effect.perform (Suspend f)
let self () = Effect.perform Self

(* Run [f] as the body of process [p], handling its scheduling effects. *)
let start t p body =
  let open Effect.Deep in
  (* Resume a stored continuation from the event loop on behalf of [p]. *)
  let resuming k v =
    p.interrupt <- None;
    continue k v
  in
  let discontinuing k e =
    p.interrupt <- None;
    discontinue k e
  in
  let handle_delay n k =
    if p.kill_requested then discontinue k Stopped
    else begin
      let fired = ref false in
      let cancel =
        at t (t.clock + n) (fun () ->
            if not !fired then begin
              fired := true;
              resuming k ()
            end)
      in
      p.interrupt <-
        Some
          (fun e ->
            if not !fired then begin
              fired := true;
              cancel ();
              schedule t t.clock (fun () -> discontinuing k e)
            end)
    end
  in
  let handle_suspend f k =
    if p.kill_requested then discontinue k Stopped
    else begin
      let fired = ref false in
      p.interrupt <-
        Some
          (fun e ->
            if not !fired then begin
              fired := true;
              schedule t t.clock (fun () -> discontinuing k e)
            end);
      f (fun v ->
          if not !fired then begin
            fired := true;
            (* resume from the event loop, not the waker's stack *)
            schedule t t.clock (fun () -> resuming k v)
          end)
    end
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Delay n -> Some (fun k -> handle_delay n k)
    | Yield -> Some (fun k -> handle_delay 0 k)
    | Suspend f -> Some (fun k -> handle_suspend f k)
    | Self -> Some (fun k -> continue k p)
    | _ -> None
  in
  let retc () = p.dead <- true in
  let exnc = function
    | Stopped -> p.dead <- true
    | e ->
        p.dead <- true;
        Trace.incr "sim.proc_failures";
        t.failures <- (p.name, e) :: t.failures
  in
  match_with
    (fun () -> if p.kill_requested then raise Stopped else body ())
    () { retc; exnc; effc }

let spawn t ?name body =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "proc-%d" id
  in
  let p =
    { id; name; dead = false; kill_requested = false; interrupt = None }
  in
  t.procs <- p :: t.procs;
  Trace.incr "sim.procs_spawned";
  schedule t t.clock (fun () -> start t p body);
  p

let kill _t p =
  if not p.dead then begin
    p.kill_requested <- true;
    match p.interrupt with
    | Some inject -> inject Stopped
    | None -> () (* flag is honoured at the next suspension point *)
  end

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      t.has_run <- true;
      t.clock <- max t.clock time;
      if not ev.cancelled then begin
        Trace.incr "sim.events_executed";
        ev.thunk ()
      end;
      true

let run ?until t =
  let continue_past time =
    match until with None -> true | Some limit -> time <= limit
  in
  let rec loop () =
    match Pqueue.peek_key t.queue with
    | None -> ()
    | Some time when not (continue_past time) -> ()
    | Some _ ->
        ignore (step t);
        loop ()
  in
  loop ()

let failures t = List.rev t.failures
let has_run t = t.has_run

(* ------------------------- snapshot / restore ------------------------- *)

(* Only a never-run engine can be snapshotted: once [step] has executed an
   event, live one-shot continuations may be parked in the queue and those
   cannot be forked. Before the first step the queue holds only re-runnable
   closures — [start t p body] spawn thunks and plain [at] thunks — so
   capturing them by reference is a faithful fork point.

   Event records are shared mutable state (a cancel closure mutates the
   record in place), so the snapshot stores their fields by value and
   [restore] rebuilds fresh records: a trial cancelling a pre-snapshot
   event must not corrupt the capture. Insertion order is preserved via
   {!Pqueue.entries}/{!Pqueue.clear}, which reproduces pop order exactly. *)

type snap = {
  s_clock : int;
  s_next_id : int;
  s_failures : (string * exn) list;
  s_procs : proc list;
  s_events : (int * bool * (unit -> unit)) list;
}

let snapshot t =
  if t.has_run then
    invalid_arg "Engine.snapshot: engine has already executed events";
  {
    s_clock = t.clock;
    s_next_id = t.next_id;
    s_failures = t.failures;
    s_procs = t.procs;
    s_events =
      List.map
        (fun (key, ev) -> (key, ev.cancelled, ev.thunk))
        (Pqueue.entries t.queue);
  }

let restore t s =
  t.clock <- s.s_clock;
  t.next_id <- s.s_next_id;
  t.failures <- s.s_failures;
  t.procs <- s.s_procs;
  List.iter
    (fun p ->
      p.dead <- false;
      p.kill_requested <- false;
      p.interrupt <- None)
    s.s_procs;
  Pqueue.clear t.queue;
  List.iter
    (fun (key, cancelled, thunk) -> Pqueue.add t.queue ~key { cancelled; thunk })
    s.s_events;
  t.has_run <- false

let blocked t =
  t.procs
  |> List.filter (fun p -> (not p.dead) && p.interrupt <> None)
  |> List.rev_map (fun p -> p.name)
