(** FIFO wait queues (condition variables) for engine processes.

    Lock waiters, I/O completions and the page daemon all block on wait
    queues. {!wait_timeout} implements the paper's time-constrained-resource
    discipline: a blocked waiter schedules a timeout whose expiry lets the
    caller take recovery action (abort the holder's transaction). *)

type t

type outcome = Signalled | Timed_out

val create : Engine.t -> t
val length : t -> int

val wait : t -> unit
(** Block the calling process until {!signal} or {!broadcast} reaches it. *)

val wait_timeout : t -> int -> outcome
(** [wait_timeout q cycles] blocks at most [cycles]; FIFO order. A waiter
    that times out is removed from the queue. *)

val signal : t -> bool
(** Wake the longest-waiting process; [false] if the queue was empty. *)

val broadcast : t -> int
(** Wake everyone; returns how many were woken. *)

val saver : t -> unit -> unit -> unit
(** [saver t ()] captures the waiter list and id counter; the returned
    thunk restores them (re-runnable). For kernel snapshot support. *)
