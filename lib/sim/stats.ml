(* Samples live in a growable float array (amortised O(1) add, no
   per-sample consing); sorted queries ([trimmed]/[percentile]) go
   through a cached sorted copy invalidated on [add], so a burst of
   percentile reads after a run sorts once instead of once per call.

   Numerical note: the previous implementation kept samples as a consed
   list (newest first) and summed in list order. Summation order matters
   for float rounding, so [mean]/[stddev] iterate newest-to-oldest and
   the trimmed/sorted aggregates iterate ascending — bit-for-bit the old
   results. The QCheck suite in test/test_stats.ml pins this against a
   reference list implementation. *)

type t = {
  mutable data : float array;
  mutable n : int;
  mutable sorted : float array option; (* cache over data[0..n-1] *)
}

let create () = { data = [||]; n = 0; sorted = None }

let add t x =
  let cap = Array.length t.data in
  if t.n = cap then begin
    let fresh = Array.make (max 8 (2 * cap)) 0. in
    Array.blit t.data 0 fresh 0 t.n;
    t.data <- fresh
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- None

let count t = t.n

(* newest first, like the old list fold *)
let sum_newest_first t =
  let acc = ref 0. in
  for k = t.n - 1 downto 0 do
    acc := !acc +. t.data.(k)
  done;
  !acc

let mean t = if t.n = 0 then 0. else sum_newest_first t /. float_of_int t.n

let stddev t =
  if t.n <= 1 then 0.
  else begin
    let m = mean t in
    let sq = ref 0. in
    for k = t.n - 1 downto 0 do
      sq := !sq +. ((t.data.(k) -. m) ** 2.)
    done;
    sqrt (!sq /. float_of_int (t.n - 1))
  end

let sorted_view t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.data 0 t.n in
      Array.sort compare s;
      t.sorted <- Some s;
      s

(* mean/stddev over sorted[lo..hi-1], summed ascending like the old
   sorted-list folds *)
let mean_range s lo hi =
  if hi <= lo then 0.
  else begin
    let acc = ref 0. in
    for k = lo to hi - 1 do
      acc := !acc +. s.(k)
    done;
    !acc /. float_of_int (hi - lo)
  end

let stddev_range s lo hi =
  if hi - lo <= 1 then 0.
  else begin
    let m = mean_range s lo hi in
    let sq = ref 0. in
    for k = lo to hi - 1 do
      sq := !sq +. ((s.(k) -. m) ** 2.)
    done;
    sqrt (!sq /. float_of_int (hi - lo - 1))
  end

let trim_bounds ?(fraction = 0.10) t =
  let drop = int_of_float (fraction *. float_of_int t.n) in
  (drop, t.n - drop)

let trimmed_mean ?fraction t =
  let lo, hi = trim_bounds ?fraction t in
  mean_range (sorted_view t) lo hi

let trimmed_stddev ?fraction t =
  let lo, hi = trim_bounds ?fraction t in
  stddev_range (sorted_view t) lo hi

let min_value t =
  let acc = ref infinity in
  for k = 0 to t.n - 1 do
    acc := min !acc t.data.(k)
  done;
  !acc

let max_value t =
  let acc = ref neg_infinity in
  for k = 0 to t.n - 1 do
    acc := max !acc t.data.(k)
  done;
  !acc

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let sorted = sorted_view t in
    let n = t.n in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let low = int_of_float rank in
    let high = min (low + 1) (n - 1) in
    let frac = rank -. float_of_int low in
    (sorted.(low) *. (1. -. frac)) +. (sorted.(high) *. frac)
  end

module Counter = struct
  type t = int ref

  let create () = ref 0
  let incr ?(by = 1) t = t := !t + by
  let value t = !t
end
