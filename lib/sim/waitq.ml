type outcome = Signalled | Timed_out

type waiter = { wid : int; wake : outcome -> unit }

type t = {
  engine : Engine.t;
  mutable waiters : waiter list; (* FIFO: head is longest-waiting *)
  mutable next_wid : int;
}

let create engine = { engine; waiters = []; next_wid = 0 }
let length t = List.length t.waiters

let enqueue t wake =
  let wid = t.next_wid in
  t.next_wid <- wid + 1;
  t.waiters <- t.waiters @ [ { wid; wake } ];
  wid

let remove t wid = t.waiters <- List.filter (fun w -> w.wid <> wid) t.waiters

let wait t =
  match
    Engine.suspend (fun wake -> ignore (enqueue t wake))
  with
  | Signalled -> ()
  | Timed_out -> assert false (* no timer was armed *)

let wait_timeout t cycles =
  Engine.suspend (fun wake ->
      let wid = enqueue t wake in
      let (_ : Engine.cancel) =
        Engine.after t.engine cycles (fun () ->
            remove t wid;
            wake Timed_out)
      in
      ())

let signal t =
  match t.waiters with
  | [] -> false
  | w :: rest ->
      t.waiters <- rest;
      w.wake Signalled;
      true

let broadcast t =
  let woken = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w.wake Signalled) woken;
  List.length woken

let saver t () =
  let waiters = t.waiters and next_wid = t.next_wid in
  fun () ->
    t.waiters <- waiters;
    t.next_wid <- next_wid
