module Insn = Vino_vm.Insn
module Asm = Vino_vm.Asm
module Encode = Vino_vm.Encode

type t = {
  code : Insn.t array;
  relocs : Asm.reloc list;
  signature : Sign.t;
}

(* Canonical word stream covered by the signature: code then reloc table. *)
let signed_words code relocs =
  let code_words = Encode.to_words code in
  let reloc_words =
    List.concat_map
      (fun { Asm.index; name } ->
        index :: String.length name
        :: List.init (String.length name) (fun k -> Char.code name.[k]))
      relocs
  in
  Array.append code_words (Array.of_list reloc_words)

(* After rewriting, the placeholder [Kcall (-1)] instructions appear in the
   same order as in the source; re-derive their indices. *)
let relocate_on rewritten (relocs : Asm.reloc list) =
  let placeholders = ref [] in
  Array.iteri
    (fun k i ->
      match i with
      | Insn.Kcall (-1) -> placeholders := k :: !placeholders
      | _ -> ())
    rewritten;
  let placeholders = List.rev !placeholders in
  if List.length placeholders <> List.length relocs then
    Error "relocation count mismatch after rewriting"
  else
    Ok
      (List.map2
         (fun index { Asm.name; _ } -> { Asm.index; name })
         placeholders relocs)

let make ~key code relocs =
  { code; relocs; signature = Sign.digest ~key (signed_words code relocs) }

let seal ?optimize ?verifier ~key (obj : Asm.obj) =
  Result.bind (Rewrite.process ?optimize ?verifier obj.code) @@ fun code ->
  Result.map (make ~key code) (relocate_on code obj.relocs)

let seal_unsafe ~key (obj : Asm.obj) = make ~key obj.code obj.relocs

let verify ~key t =
  Sign.equal t.signature (Sign.digest ~key (signed_words t.code t.relocs))

let tamper t =
  let code = Array.copy t.code in
  if Array.length code > 0 then code.(0) <- Insn.Li (0, 0xdead);
  { t with code }

let serialise t =
  let body = signed_words t.code t.relocs in
  let code_words = Array.length (Encode.to_words t.code) in
  Array.concat
    [
      [| code_words; Array.length body |];
      body;
      [| (t.signature :> int) |];
    ]

let deserialise words =
  let n = Array.length words in
  if n < 3 then Error "image too short"
  else
    let code_words = words.(0) in
    let body_len = words.(1) in
    if code_words < 0 || body_len < code_words || 2 + body_len + 1 <> n then
      Error "malformed image header"
    else
      let code_stream = Array.sub words 2 code_words in
      Result.bind (Encode.of_words code_stream) @@ fun code ->
      let rec read_relocs acc pos =
        if pos = 2 + body_len then Ok (List.rev acc)
        else if pos + 2 > 2 + body_len then Error "truncated relocation table"
        else
          let index = words.(pos) in
          let len = words.(pos + 1) in
          if len < 0 || pos + 2 + len > 2 + body_len then
            Error "truncated relocation name"
          else
            let name =
              String.init len (fun k -> Char.chr (words.(pos + 2 + k) land 0xff))
            in
            read_relocs ({ Asm.index; name } :: acc) (pos + 2 + len)
      in
      Result.map
        (fun relocs -> { code; relocs; signature = Sign.forge words.(n - 1) })
        (read_relocs [] (2 + code_words))

let magic = "VINOIMG1"

let save t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (magic ^ "\n");
      Array.iter
        (fun w -> Out_channel.output_string oc (string_of_int w ^ "\n"))
        (serialise t))

let load ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines -> (
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      match lines with
      | first :: rest when String.trim first = magic ->
          let rec words acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | l :: ls -> (
                match int_of_string_opt (String.trim l) with
                | Some w -> words (w :: acc) ls
                | None -> Error (Printf.sprintf "corrupt image word %S" l))
          in
          Result.bind (words [] rest) deserialise
      | _ :: _ | [] -> Error "not a vino graft image")
