module Insn = Vino_vm.Insn
module Asm = Vino_vm.Asm
module Encode = Vino_vm.Encode

module Proof = Vino_verify.Proof

type t = {
  code : Insn.t array;
  relocs : Asm.reloc list;
  proof : Proof.t option;
  signature : Sign.t;
}

(* Canonical word stream covered by the signature: code, reloc table, then
   the serialised proof (if any) — so a tampered certificate is caught
   exactly like tampered code. *)
let proof_words = function
  | None -> [||]
  | Some p -> Proof.serialise p

let signed_words code relocs proof =
  let code_words = Encode.to_words code in
  let reloc_words =
    List.concat_map
      (fun { Asm.index; name } ->
        index :: String.length name
        :: List.init (String.length name) (fun k -> Char.code name.[k]))
      relocs
  in
  Array.concat
    [ code_words; Array.of_list reloc_words; proof_words proof ]

(* After rewriting, the placeholder [Kcall (-1)] instructions appear in the
   same order as in the source; re-derive their indices. *)
let relocate_on rewritten (relocs : Asm.reloc list) =
  let placeholders = ref [] in
  Array.iteri
    (fun k i ->
      match i with
      | Insn.Kcall (-1) -> placeholders := k :: !placeholders
      | _ -> ())
    rewritten;
  let placeholders = List.rev !placeholders in
  if List.length placeholders <> List.length relocs then
    Error "relocation count mismatch after rewriting"
  else
    Ok
      (List.map2
         (fun index { Asm.name; _ } -> { Asm.index; name })
         placeholders relocs)

let make ~key ?proof code relocs =
  {
    code;
    relocs;
    proof;
    signature = Sign.digest ~key (signed_words code relocs proof);
  }

let seal ?optimize ?verifier ~key (obj : Asm.obj) =
  Result.bind (Rewrite.process_proved ?optimize ?verifier obj.code)
  @@ fun (code, proof) ->
  Result.map (make ~key ?proof code) (relocate_on code obj.relocs)

let seal_unsafe ~key (obj : Asm.obj) = make ~key obj.code obj.relocs

let verify ~key t =
  Sign.equal t.signature
    (Sign.digest ~key (signed_words t.code t.relocs t.proof))

let tamper t =
  let code = Array.copy t.code in
  if Array.length code > 0 then code.(0) <- Insn.Li (0, 0xdead);
  { t with code }

(* Inflate the proof's safe-access map without re-signing: models an
   attacker upgrading a certificate to elide checks the verifier never
   proved. [verify] must catch it. *)
let tamper_proof t =
  match t.proof with
  | None -> t
  | Some p ->
      let safe = Array.map (fun _ -> true) (Proof.safe p) in
      {
        t with
        proof = Some (Proof.make ~words:(Proof.words p) ~safe
                        ~calls:(Proof.calls p));
      }

let serialise t =
  let body = signed_words t.code t.relocs None in
  let code_words = Array.length (Encode.to_words t.code) in
  let pwords = proof_words t.proof in
  Array.concat
    [
      [| code_words; Array.length body |];
      body;
      [| Array.length pwords |];
      pwords;
      [| (t.signature :> int) |];
    ]

let deserialise words =
  let n = Array.length words in
  if n < 4 then Error "image too short"
  else
    let code_words = words.(0) in
    let body_len = words.(1) in
    if
      code_words < 0 || body_len < code_words || 2 + body_len + 2 > n
      || words.(2 + body_len) < 0
      || 2 + body_len + 1 + words.(2 + body_len) + 1 <> n
    then Error "malformed image header"
    else
      let proof_len = words.(2 + body_len) in
      let code_stream = Array.sub words 2 code_words in
      Result.bind (Encode.of_words code_stream) @@ fun code ->
      (Result.bind
         (if proof_len = 0 then Ok None
          else
            Result.map Option.some
              (Proof.deserialise
                 (Array.sub words (2 + body_len + 1) proof_len)))
      @@ fun proof ->
      let rec read_relocs acc pos =
        if pos = 2 + body_len then Ok (List.rev acc)
        else if pos + 2 > 2 + body_len then Error "truncated relocation table"
        else
          let index = words.(pos) in
          let len = words.(pos + 1) in
          if len < 0 || pos + 2 + len > 2 + body_len then
            Error "truncated relocation name"
          else
            let name =
              String.init len (fun k -> Char.chr (words.(pos + 2 + k) land 0xff))
            in
            read_relocs ({ Asm.index; name } :: acc) (pos + 2 + len)
      in
      Result.map
        (fun relocs ->
          { code; relocs; proof; signature = Sign.forge words.(n - 1) })
        (read_relocs [] (2 + code_words)))

let magic = "VINOIMG2"

let save t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (magic ^ "\n");
      Array.iter
        (fun w -> Out_channel.output_string oc (string_of_int w ^ "\n"))
        (serialise t))

let load ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines -> (
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      match lines with
      | first :: rest when String.trim first = magic ->
          let rec words acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | l :: ls -> (
                match int_of_string_opt (String.trim l) with
                | Some w -> words (w :: acc) ls
                | None -> Error (Printf.sprintf "corrupt image word %S" l))
          in
          Result.bind (words [] rest) deserialise
      | _ :: _ | [] -> Error "not a vino graft image")
