(** MiSFIT: the software-fault-isolation rewriter (paper §3.3, [17]).

    At "compilation" time the rewriter inserts instructions that protect
    loads and stores: the target address is forced to fall within the range
    of memory allocated to the graft (its segment), at a cost of 2-5 cycles
    per load or store. Indirect kernel calls get a [Checkcall] instruction
    that probes the graft-callable hash table at run time (10-15 cycles).

    The rewriter operates on the graft IR; instruction insertion remaps all
    branch/jump/call targets. Code that uses the reserved sandbox register
    {!Vino_vm.Insn.scratch} is rejected. *)

val uses_reserved_register : Vino_vm.Insn.t array -> bool

val lower_stack_ops : Vino_vm.Insn.t array -> Vino_vm.Insn.t array
(** Expand [Push]/[Pop] into explicit stack-pointer arithmetic plus a plain
    store/load, so the generic sandboxing pass covers them. *)

val sandbox_memory :
  ?optimize:bool ->
  ?safe:(int -> bool) ->
  Vino_vm.Insn.t array ->
  Vino_vm.Insn.t array
(** Insert [Sandbox] sequences before every [Ld]/[St].

    With [optimize] (default false), consecutive accesses through the same
    base register and offset within a basic block share one sandboxed
    address: the scratch register provably still holds it, so the second
    mask+or is elided. The paper notes its MiSFIT "protects each indirect
    memory access" for lack of such optimisation (§4.4); this is the
    classic Wahbe-style improvement.

    [safe] (judged at input-program indices, default never) marks accesses
    proven in-segment by the static verifier: they keep their raw [Ld]/[St]
    with no sandbox sequence at all — strictly stronger than [optimize],
    which still pays the first mask+or of each run. *)

val eliminated_sandboxes : Vino_vm.Insn.t array -> int
(** How many sandbox sequences optimisation would remove. *)

val guard_indirect_calls :
  ?safe:(int -> bool) -> Vino_vm.Insn.t array -> Vino_vm.Insn.t array
(** Insert [Checkcall] before every [Kcallr]. [safe] (input-program
    indices) marks calls whose id the verifier proved graft-callable; they
    keep their raw [Kcallr]. *)

val process :
  ?optimize:bool ->
  ?verifier:Vino_verify.Verify.config ->
  Vino_vm.Insn.t array ->
  (Vino_vm.Insn.t array, string) result
(** Full MiSFIT pipeline: reject reserved-register use, lower stack ops,
    sandbox memory accesses (optimised if asked), guard indirect calls.

    With [verifier], the static analyser ({!Vino_verify.Verify.analyse})
    runs over the lowered program first. Accesses and indirect calls it
    proves safe keep their raw instructions — no [Sandbox], no [Checkcall]
    — and hard errors (provably out-of-bounds access, provably unknown
    kernel-call id, malformed code) abort the rewrite with the verifier's
    diagnostics. The caller is responsible for passing entry facts that the
    graft point actually establishes; see the soundness contract in
    {!Vino_verify.Verify}. *)

val process_proved :
  ?optimize:bool ->
  ?verifier:Vino_verify.Verify.config ->
  Vino_vm.Insn.t array ->
  (Vino_vm.Insn.t array * Vino_verify.Proof.t option, string) result
(** Like {!process}, but with [verifier] also returns the verification
    certificate mapped onto the rewritten code's indices: which surviving
    raw [Ld]/[St] instructions are proven unable to fault, which kernel
    ids the elided [Checkcall] probes assumed callable, and the segment
    size the access proofs assumed. Without [verifier] the proof is
    [None]. *)

val expand :
  (Vino_vm.Insn.t -> Vino_vm.Insn.t list) ->
  Vino_vm.Insn.t array ->
  Vino_vm.Insn.t array
(** Generic instruction-expansion pass with control-flow target remapping
    (exposed for tests and ablations). *)
