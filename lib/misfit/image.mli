(** A sealed graft image: SFI-processed code, kernel-call relocations and the
    toolchain signature — the unit the dynamic linker loads (paper §3.3/3.4).

    [seal] is "running the graft through MiSFIT": the only supported way to
    produce an image whose signature the kernel will accept. Images carry
    their relocation table so the linker can resolve named kernel calls
    against the graft-callable list and reject any that are not on it. *)

type t = private {
  code : Vino_vm.Insn.t array;  (** SFI-rewritten program *)
  relocs : Vino_vm.Asm.reloc list;
      (** indices of unresolved [Kcall] placeholders, with target names *)
  proof : Vino_verify.Proof.t option;
      (** seal-time verification certificate ([seal ~verifier] only):
          which surviving raw accesses are proven unable to fault, and the
          callable-set / segment-size assumptions the linker must
          re-validate at load time. Covered by [signature]. *)
  signature : Sign.t;
}

val seal :
  ?optimize:bool ->
  ?verifier:Vino_verify.Verify.config ->
  key:string ->
  Vino_vm.Asm.obj ->
  (t, string) result
(** Rewrite with {!Rewrite.process} (optionally with redundant-sandbox
    elimination and/or static verification eliding proven-safe checks),
    recompute relocation indices on the rewritten code, and sign. Fails if
    the source uses the reserved sandbox register, or — with [verifier] —
    if the static analysis finds a hard error. *)

val seal_unsafe : key:string -> Vino_vm.Asm.obj -> t
(** Sign WITHOUT SFI rewriting. This models the paper's "unsafe path"
    measurement configuration (trusted code, no MiSFIT overhead); it is not
    reachable from the public kernel API with an untrusted graft. *)

val verify : key:string -> t -> bool
(** Recompute the checksum and compare with the saved copy. *)

val tamper : t -> t
(** Flip one instruction without re-signing — for tests that check the
    linker rejects modified code. *)

val tamper_proof : t -> t
(** Mark every access proven-safe in the carried proof without re-signing —
    for tests that check a forged certificate fails {!verify}. Identity on
    proof-less images. *)

val serialise : t -> int array
val deserialise : int array -> (t, string) result

val save : t -> path:string -> unit
(** Write the ".gimg" on-disk form (a text header plus the serialised word
    stream, one word per line). *)

val load : path:string -> (t, string) result
(** Read a ".gimg" file; rejects bad magic, corrupt words and malformed
    streams. The signature still needs {!verify}. *)
