module Insn = Vino_vm.Insn

let uses_reserved_register prog =
  Array.exists
    (fun i -> List.mem Insn.scratch (Insn.registers_used i))
    prog

(* Expand each instruction into a list, then remap every control-flow target
   from its old index to the start of that instruction's expansion. The
   mapped variant also returns the input-index -> output-index table (n + 1
   entries, last one the output length) so a per-input-index fact — e.g. a
   verifier verdict — can be carried over to the expanded program. *)
let expand_i_mapped f prog =
  let expansions = Array.mapi f prog in
  let n = Array.length prog in
  let new_index = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    new_index.(k + 1) <- new_index.(k) + List.length expansions.(k)
  done;
  let remap t = new_index.(t) in
  let out = Array.make new_index.(n) Insn.Halt in
  Array.iteri
    (fun k exp ->
      List.iteri
        (fun j i -> out.(new_index.(k) + j) <- Insn.map_targets remap i)
        exp)
    expansions;
  (out, new_index)

let expand_i f prog = fst (expand_i_mapped f prog)

let expand f prog = expand_i (fun _ i -> f i) prog

let lower_stack_ops prog =
  let lower : Insn.t -> Insn.t list = function
    | Push r -> [ Alui (Sub, Insn.sp, Insn.sp, 1); St (r, Insn.sp, 0) ]
    | Pop r -> [ Ld (r, Insn.sp, 0); Alui (Add, Insn.sp, Insn.sp, 1) ]
    | i -> [ i ]
  in
  expand lower prog

(* Indices that control flow can land on: optimisation state must reset
   there (and after any control transfer), because the scratch register's
   contents are only known along straight-line paths. *)
let branch_target_set prog =
  let targets = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match i with
      | Insn.Br (_, _, _, t) | Insn.Jmp t | Insn.Call t ->
          Hashtbl.replace targets t ()
      | _ -> ())
    prog;
  targets

let is_control_transfer : Insn.t -> bool = function
  | Br _ | Jmp _ | Call _ | Callr _ | Ret | Kcall _ | Kcallr _ | Halt -> true
  | Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Push _ | Pop _ | Sandbox _
  | Checkcall _ ->
      false

let writes_register (i : Insn.t) r =
  match i with
  | Li (rd, _) | Mov (rd, _) | Alu (_, rd, _, _) | Alui (_, rd, _, _)
  | Ld (rd, _, _) | Pop rd ->
      rd = r
  | St _ | Push _ | Br _ | Jmp _ | Call _ | Callr _ | Ret | Kcall _
  | Kcallr _ | Sandbox _ | Checkcall _ | Halt ->
      false

(* The single SFI insertion pass. [safe_access]/[safe_call] are judged at
   input-program indices (before expansion): a safe access keeps its raw
   [Ld]/[St], a safe indirect call keeps its raw [Kcallr]. [guard_calls]
   folds the [Checkcall] insertion into this pass so both protections see
   the same index space. *)
let sandbox_pass_mapped ~optimize ~safe_access ~safe_call ~guard_calls prog =
  let s = Insn.scratch in
  let targets = branch_target_set prog in
  (* (base register, offset) whose sandboxed address scratch still holds *)
  let known : (Insn.reg * int) option ref = ref None in
  let clobber_check i =
    match !known with
    | Some (b, _) when writes_register i b -> known := None
    | Some _ | None -> ()
  in
  let with_address rb off rest : Insn.t list =
    if optimize && !known = Some (rb, off) then rest
    else begin
      known := Some (rb, off);
      if off = 0 then Insn.Mov (s, rb) :: Sandbox s :: rest
      else Insn.Alui (Add, s, rb, off) :: Sandbox s :: rest
    end
  in
  let protect index (i : Insn.t) : Insn.t list =
    if Hashtbl.mem targets index then known := None;
    match i with
    | Ld (_, _, _) when safe_access index ->
        clobber_check i;
        [ i ]
    | St (_, _, _) when safe_access index -> [ i ]
    | Ld (rd, rb, off) ->
        let e = with_address rb off [ Insn.Ld (rd, s, 0) ] in
        if writes_register i rb then known := None;
        e
    | St (rv, rb, off) -> with_address rb off [ Insn.St (rv, s, 0) ]
    | Kcallr r when guard_calls ->
        known := None;
        if safe_call index then [ i ] else [ Insn.Checkcall r; Kcallr r ]
    | i ->
        clobber_check i;
        if is_control_transfer i then known := None;
        [ i ]
  in
  expand_i_mapped protect prog

let sandbox_pass ~optimize ~safe_access ~safe_call ~guard_calls prog =
  fst (sandbox_pass_mapped ~optimize ~safe_access ~safe_call ~guard_calls prog)

let never _ = false

let sandbox_memory ?(optimize = false) ?(safe = never) prog =
  sandbox_pass ~optimize ~safe_access:safe ~safe_call:never
    ~guard_calls:false prog

let eliminated_sandboxes prog =
  let count code =
    Array.fold_left
      (fun acc i -> match i with Insn.Sandbox _ -> acc + 1 | _ -> acc)
      0 code
  in
  count (sandbox_memory ~optimize:false prog)
  - count (sandbox_memory ~optimize:true prog)

let guard_indirect_calls ?(safe = never) prog =
  let guard k : Insn.t -> Insn.t list = function
    | Kcallr r when not (safe k) -> [ Checkcall r; Kcallr r ]
    | i -> [ i ]
  in
  expand_i guard prog

let process_proved ?(optimize = false) ?verifier prog =
  if uses_reserved_register prog then
    Error
      (Printf.sprintf "graft code uses reserved sandbox register r%d"
         Insn.scratch)
  else
    let lowered = lower_stack_ops prog in
    match verifier with
    | None ->
        Ok
          ( sandbox_pass ~optimize ~safe_access:never ~safe_call:never
              ~guard_calls:true lowered,
            None )
    | Some conf ->
        (* The analysis runs on the lowered program so the report's indices
           line up with the insertion pass's input. *)
        let report = Vino_verify.Verify.analyse conf lowered in
        if not (Vino_verify.Report.ok report) then
          Error (Vino_verify.Report.error_summary report)
        else
          let classes = report.Vino_verify.Report.classes in
          let safe_access k =
            classes.(k)
            = Vino_verify.Report.(Access Access_safe)
          in
          let safe_call k =
            match classes.(k) with
            | Vino_verify.Report.(Icall (Call_safe _)) -> true
            | _ -> false
          in
          let out, new_index =
            sandbox_pass_mapped ~optimize ~safe_access ~safe_call
              ~guard_calls:true lowered
          in
          (* A proven-safe access expands to just its raw [Ld]/[St], so
             [new_index] points the verdict straight at that instruction
             in the rewritten stream. *)
          let safe = Array.make (Array.length out) false in
          Array.iteri
            (fun k _ -> if safe_access k then safe.(new_index.(k)) <- true)
            lowered;
          let proof =
            Vino_verify.Proof.make ~words:conf.Vino_verify.Verify.words ~safe
              ~calls:(Vino_verify.Report.safe_call_ids report)
          in
          Ok (out, Some proof)

let process ?optimize ?verifier prog =
  Result.map fst (process_proved ?optimize ?verifier prog)
