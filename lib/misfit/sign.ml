type t = int

(* 64-bit FNV-1a over the key bytes then the word stream (8 bytes/word). *)
let fnv_offset = 0x3f29ce484222325
let fnv_prime = 0x100000001b3

let byte h b = (h lxor b) * fnv_prime

let digest ~key words =
  let h = ref fnv_offset in
  String.iter (fun c -> h := byte !h (Char.code c)) key;
  Array.iter
    (fun w ->
      for shift = 0 to 7 do
        h := byte !h ((w lsr (8 * shift)) land 0xff)
      done)
    words;
  !h

let equal = Int.equal
let forge n = n
(* [%x] formats the int as unsigned (63-bit two's complement), so this is
   lossless — masking with [max_int] would alias digests differing only in
   the top bit. *)
let pp ppf t = Format.fprintf ppf "%016x" t
