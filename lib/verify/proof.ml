(* The portable form of a verification certificate: what a sealed image
   carries so the translator can compile proven-safe sites to bare
   superinstructions, and what the linker re-checks against the live
   kernel before trusting it. *)

type t = {
  words : int;
  safe : bool array;
  calls : int list;
}

let make ~words ~safe ~calls =
  if words < 1 then invalid_arg "Proof.make: words < 1";
  { words; safe = Array.copy safe; calls = List.sort_uniq compare calls }

let words t = t.words
let calls t = t.calls
let safe t = Array.copy t.safe
let safe_count t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.safe
let length t = Array.length t.safe

let equal a b = a.words = b.words && a.safe = b.safe && a.calls = b.calls

(* Serialised form (one int array, version-tagged):
   [| version; words; nbits; bitword...; ncalls; call... |]
   with the safe bitmap packed 32 bits per word. *)

let version = 1
let bits_per_word = 32

let serialise t =
  let nbits = Array.length t.safe in
  let nwords = (nbits + bits_per_word - 1) / bits_per_word in
  let bitmap = Array.make nwords 0 in
  Array.iteri
    (fun k b ->
      if b then
        bitmap.(k / bits_per_word) <-
          bitmap.(k / bits_per_word) lor (1 lsl (k mod bits_per_word)))
    t.safe;
  Array.concat
    [
      [| version; t.words; nbits |];
      bitmap;
      [| List.length t.calls |];
      Array.of_list t.calls;
    ]

let deserialise words =
  let n = Array.length words in
  if n < 4 then Error "proof too short"
  else if words.(0) <> version then
    Error (Printf.sprintf "unknown proof version %d" words.(0))
  else
    let seg_words = words.(1) and nbits = words.(2) in
    if seg_words < 1 || nbits < 0 then Error "malformed proof header"
    else
      let nwords = (nbits + bits_per_word - 1) / bits_per_word in
      if 3 + nwords + 1 > n then Error "truncated proof bitmap"
      else
        let ncalls = words.(3 + nwords) in
        if ncalls < 0 || 3 + nwords + 1 + ncalls <> n then
          Error "truncated proof call list"
        else
          let safe =
            Array.init nbits (fun k ->
                words.(3 + (k / bits_per_word))
                land (1 lsl (k mod bits_per_word))
                <> 0)
          in
          let calls =
            List.init ncalls (fun k -> words.(3 + nwords + 1 + k))
          in
          if List.exists (fun id -> id < 0) calls then
            Error "negative id in proof call list"
          else Ok { words = seg_words; safe; calls = List.sort_uniq compare calls }

(* Unkeyed FNV-1a over the serialised words (same byte folding as
   {!Vino_misfit.Sign}). Authenticity comes from the image signature,
   which covers the proof; the hash only has to separate translation
   cache entries. Never 0: that value is reserved for "no proof". *)

let fnv_offset = 0x3f29ce484222325
let fnv_prime = 0x100000001b3
let byte h b = (h lxor b) * fnv_prime

let hash t =
  let h = ref fnv_offset in
  Array.iter
    (fun w ->
      for shift = 0 to 7 do
        h := byte !h ((w lsr (8 * shift)) land 0xff)
      done)
    (serialise t);
  if !h = 0 then 1 else !h

let hash_opt = function None -> 0 | Some t -> hash t

let pp ppf t =
  Format.fprintf ppf "proof: %d/%d accesses safe; callable {%s}; words>=%d"
    (safe_count t) (length t)
    (String.concat "," (List.map string_of_int t.calls))
    t.words
