(** Abstract values for the static graft verifier.

    The domain tracks what the verifier needs to prove SFI safety offline:
    numeric intervals (loop counters, arguments), pointers into the graft
    segment expressed as [base + offset] intervals, stack pointers expressed
    as [base + size + offset] intervals (the stack pointer starts one past
    the top of the segment), constants known to be graft-callable kernel
    function ids, and addresses already forced into the segment by a
    [Sandbox] instruction.

    Intervals use [min_int]/[max_int] as minus/plus infinity; arithmetic
    saturates so widened bounds stay at infinity. *)

type itv = { lo : int; hi : int }
(** Inclusive interval. Invariant: [lo <= hi]. *)

val itv : int -> int -> itv
val const_itv : int -> itv
val top_itv : itv
val is_const : itv -> int option
val itv_add : itv -> itv -> itv
val itv_sub : itv -> itv -> itv
val itv_neg : itv -> itv

type t =
  | Bot  (** unreachable *)
  | Num of itv  (** plain number *)
  | Cid of int  (** constant, known graft-callable kernel-function id *)
  | Seg of itv  (** [segment.base + off], [off] in the interval *)
  | Stk of itv
      (** [segment.base + segment.size + off] — relative to the initial
          stack pointer, which points one past the segment top *)
  | InSeg
      (** provably inside the actual segment at an unknown offset (the
          result of a [Sandbox] instruction) *)
  | Top  (** unknown *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Least upper bound. Mixed pointer/number kinds go to [Top]. *)

val widen : t -> t -> t
(** [widen old next]: like {!join} but growing interval bounds jump to
    infinity, guaranteeing fixpoint termination. *)

val num : int -> t
(** Constant as a plain number. *)

val alu : Vino_vm.Insn.alu -> t -> t -> t
(** Transfer function for [Alu]/[Alui]. Pointer arithmetic: [Seg/Stk ± Num]
    stays a pointer; [Seg - Seg] (same kind) is the numeric offset
    difference; [land] with a non-negative constant mask bounds the result;
    everything else degrades conservatively. *)

val refine :
  Vino_vm.Insn.cond -> t -> t -> ((t * t) option, [ `Infeasible ]) result
(** [refine c a b] assumes [a c b] holds and tightens both values when they
    are interval-like of the same kind (or one side is numeric-constant
    comparable). [Ok None] means no refinement was possible; [Error
    `Infeasible] means the assumption contradicts the abstract values, i.e.
    the branch cannot be taken. *)

val negate_cond : Vino_vm.Insn.cond -> Vino_vm.Insn.cond

val pp : Format.formatter -> t -> unit
