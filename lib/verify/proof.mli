(** A portable verification certificate, derived from a {!Report} at seal
    time and carried by the graft image (PAPERS.md: verify the SFI tool's
    output offline, then trust it at full speed).

    It records exactly what the translator needs to compile proven-safe
    sites to bare superinstructions, plus the assumptions those verdicts
    rest on so the linker can re-validate them at load time:

    - [safe]: per {e rewritten-code} index, whether that [Ld]/[St] was
      proven in-segment (its address can never fault, so the translation
      may treat it like any non-faulting straight-line instruction);
    - [calls]: the kernel-function ids the verifier proved graft-callable
      at some [Kcallr] whose [Checkcall] probe was elided — if any of them
      is later re-flagged, the proof is stale and must be rejected;
    - [words]: the minimum segment size every [Access_safe] verdict
      assumed — loading into a smaller segment would be unsound.

    Authenticity is the image signature's job (it covers the serialised
    proof); {!hash} only has to separate translation-cache entries. *)

type t = private {
  words : int;  (** minimum segment words assumed by the analysis *)
  safe : bool array;  (** per rewritten-code index: access cannot fault *)
  calls : int list;  (** sorted distinct ids assumed graft-callable *)
}

val make : words:int -> safe:bool array -> calls:int list -> t
(** Copies [safe]; sorts and de-duplicates [calls].
    @raise Invalid_argument if [words < 1]. *)

val words : t -> int
val calls : t -> int list

val safe : t -> bool array
(** A copy of the per-index safe-access map. *)

val safe_count : t -> int
val length : t -> int
val equal : t -> t -> bool

val serialise : t -> int array
val deserialise : int array -> (t, string) result

val hash : t -> int
(** FNV-1a over {!serialise}. Never 0 (reserved for "no proof"). *)

val hash_opt : t option -> int
(** [hash] of the proof, or 0 for [None]. *)

val pp : Format.formatter -> t -> unit
