(** Static graft verifier: an abstract interpreter over
    {!Vino_vm.Insn.t} programs that proves SFI safety offline.

    The analyser builds a {!Cfg}, runs a fixpoint over {!Absval} register
    states (join at merge points, widening on loops, branch refinement on
    conditional edges) and emits a {!Report}: each load/store classified as
    provably-in-segment / needs-sandbox / provably-out-of-bounds, each
    indirect kernel call as provably-callable / needs-checkcall / reject,
    plus structural lints (unreachable code, reserved-register use,
    uninitialised reads, division by a provably-zero divisor, fall-through
    off the end, stack-depth imbalance).

    Soundness contract. A [Access_safe] / [Call_safe] verdict licenses the
    MiSFIT rewriter to elide the corresponding run-time check, so the
    verdict must hold for {e every} execution. The facts the analysis
    builds on are exactly the ones the kernel guarantees at invocation
    time:

    - the graft segment is at least [words] words long (the linker rounds
      the requested size {e up});
    - the stack pointer starts one word past the top of the segment
      ({!Vino_vm.Cpu.make});
    - argument registers hold what the [entry] list claims (the graft
      point's marshalling code establishes this);
    - kernel calls clobber only register 0 (the {!Vino_core.Kcall.return}
      convention).

    Anything not derivable from those facts is classified conservatively
    (keep the run-time check). Programs containing [Callr] — computed
    intra-graft control flow — degrade to all-conservative verdicts. *)

type config = {
  entry : (Vino_vm.Insn.reg * Absval.t) list;
      (** abstract values of argument registers at entry, e.g.
          [[(4, Absval.Seg (Absval.itv 0 0))]] when the kernel passes the
          shared-window address in r4 *)
  words : int;  (** minimum segment size the linker will guarantee *)
  callable : (int -> bool) option;
      (** membership in the graft-callable id set, when known offline *)
  stage : [ `Source | `Rewritten ];
      (** [`Source] rejects use of the reserved sandbox register;
          [`Rewritten] expects MiSFIT output (scratch-register use and
          [Sandbox]/[Checkcall] instructions are legitimate) *)
}

val config :
  ?entry:(Vino_vm.Insn.reg * Absval.t) list ->
  ?callable:(int -> bool) ->
  ?stage:[ `Source | `Rewritten ] ->
  words:int ->
  unit ->
  config
(** Defaults: no entry facts beyond the calling convention (r1..r4 unknown
    arguments, sp at the segment top), no callable set, [`Source] stage.
    @raise Invalid_argument if [words < 1]. *)

val analyse : config -> Vino_vm.Insn.t array -> Report.t
(** Run the verifier. Never raises on well-formed programs (register
    numbers and static targets in range, cf. {!Vino_vm.Insn.validate});
    ill-formed programs yield error diagnostics rather than exceptions. *)

val seg_window : ?off:int -> unit -> Absval.t
(** Convenience entry fact: a pointer [off] words into the graft segment
    (default 0, the shared-window base). *)

val arg_at_most : int -> Absval.t
(** Convenience entry fact: a count argument in [0..n]. *)
