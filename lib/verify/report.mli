(** The verifier's output: a per-instruction safety classification plus
    structural diagnostics.

    Memory accesses ([Ld]/[St]/[Push]/[Pop]) are classified as provably
    inside the graft segment (the rewriter may elide the [Sandbox]
    sequence), needing a run-time sandbox, or provably out of bounds (a
    hard error — the linker refuses the graft). Indirect kernel calls
    ([Kcallr]) are classified likewise for the [Checkcall] probe. *)

type access_class =
  | Access_safe  (** provably in-segment for every conforming segment *)
  | Access_sandbox  (** not provable; keep the run-time sandbox *)
  | Access_oob  (** provably outside the segment: reject at link time *)

type call_class =
  | Call_safe of int
      (** this id, provably on the graft-callable list — the payload is
          the assumption a proof eliding [Checkcall] depends on *)
  | Call_check  (** not provable; keep the run-time [Checkcall] *)
  | Call_bad of int  (** id provably unknown / not callable: reject *)

type insn_class =
  | Plain  (** no safety obligation *)
  | Access of access_class
  | Icall of call_class
  | Unreachable  (** never executed; no obligation, flagged as a lint *)

type severity = Error | Warning

type diag = { index : int option; severity : severity; message : string }
(** [index = None] for whole-program diagnostics. *)

type t = {
  classes : insn_class array;  (** one entry per instruction *)
  diags : diag list;  (** in program order *)
  degraded : bool;
      (** analysis gave up (computed intra-graft control flow): every
          classification is conservative *)
}

val error : ?index:int -> string -> diag
val warning : ?index:int -> string -> diag

val errors : t -> diag list
val warnings : t -> diag list

val ok : t -> bool
(** No [Error]-severity diagnostics. *)

val safe_accesses : t -> int
val total_accesses : t -> int
val safe_calls : t -> int
val total_icalls : t -> int

val safe_call_ids : t -> int list
(** Sorted distinct ids proven callable at some [Kcallr] — the callable-set
    assumption carried by a proof that elides [Checkcall] probes. *)

val error_summary : t -> string
(** One-line rendering of the errors, for [Result.Error] payloads. *)

val pp : Format.formatter -> t -> unit
(** Summary plus every diagnostic. *)

val pp_annotated : Format.formatter -> Vino_vm.Insn.t array -> t -> unit
(** Full listing with a per-instruction verdict column ([vino verify]). *)
