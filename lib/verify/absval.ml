module Insn = Vino_vm.Insn

type itv = { lo : int; hi : int }

let neg_inf = min_int
let pos_inf = max_int

let itv lo hi =
  if lo > hi then invalid_arg "Absval.itv: empty interval";
  { lo; hi }

let const_itv c = { lo = c; hi = c }
let top_itv = { lo = neg_inf; hi = pos_inf }
let is_const i = if i.lo = i.hi then Some i.lo else None

(* Saturating arithmetic so infinities are absorbing. *)
let sat_add a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = pos_inf || b = pos_inf then pos_inf
  else
    let s = a + b in
    if a > 0 && b > 0 && s < 0 then pos_inf
    else if a < 0 && b < 0 && s >= 0 then neg_inf
    else s

let sat_neg a = if a = neg_inf then pos_inf else if a = pos_inf then neg_inf else -a
let sat_sub a b = sat_add a (sat_neg b)
let sat_pred a = if a = neg_inf || a = pos_inf then a else a - 1
let sat_succ a = if a = neg_inf || a = pos_inf then a else a + 1

let itv_add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let itv_sub a b = { lo = sat_sub a.lo b.hi; hi = sat_sub a.hi b.lo }
let itv_neg a = { lo = sat_neg a.hi; hi = sat_neg a.lo }
let itv_hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let itv_meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

type t =
  | Bot
  | Num of itv
  | Cid of int
  | Seg of itv
  | Stk of itv
  | InSeg
  | Top

let equal a b = a = b
let num c = Num (const_itv c)

(* Interval view of the comparable kinds: numbers compare with numbers,
   segment pointers with segment pointers, stack pointers with stack
   pointers. Mixed kinds have unknown relative order (the base address is
   not statically known). *)
type kind = KNum | KSeg | KStk

let kinded = function
  | Num i -> Some (KNum, i)
  | Cid c -> Some (KNum, const_itv c)
  | Seg i -> Some (KSeg, i)
  | Stk i -> Some (KStk, i)
  | Bot | InSeg | Top -> None

let rebuild k i = match k with KNum -> Num i | KSeg -> Seg i | KStk -> Stk i

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Cid c, Cid d when c = d -> Cid c
  | InSeg, InSeg -> InSeg
  | _ -> (
      match (kinded a, kinded b) with
      | Some (ka, ia), Some (kb, ib) when ka = kb -> rebuild ka (itv_hull ia ib)
      | _ -> Top)

let widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | Cid c, Cid d when c = d -> Cid c
  | InSeg, InSeg -> InSeg
  | _ -> (
      match (kinded old, kinded next) with
      | Some (ka, ia), Some (kb, ib) when ka = kb ->
          rebuild ka
            {
              lo = (if ib.lo < ia.lo then neg_inf else ia.lo);
              hi = (if ib.hi > ia.hi then pos_inf else ia.hi);
            }
      | _ -> Top)

(* ----------------------------- transfer ------------------------------- *)

let as_num = function
  | Num i -> Some i
  | Cid c -> Some (const_itv c)
  | _ -> None

let num_top = Num top_itv

let is_zero v = match as_num v with Some i -> is_const i = Some 0 | None -> false

let alu (op : Insn.alu) a b =
  if a = Bot || b = Bot then Bot
  else
    let const2 =
      match (as_num a, as_num b) with
      | Some ia, Some ib -> (
          match (is_const ia, is_const ib) with
          | Some x, Some y -> Some (x, y)
          | _ -> None)
      | _ -> None
    in
    match op with
    | Add -> (
        if is_zero b then a
        else if is_zero a then b
        else
          match (a, b, as_num a, as_num b) with
          | Seg i, _, _, Some n | _, Seg i, Some n, _ -> Seg (itv_add i n)
          | Stk i, _, _, Some n | _, Stk i, Some n, _ -> Stk (itv_add i n)
          | _, _, Some ia, Some ib -> Num (itv_add ia ib)
          | _ -> Top)
    | Sub -> (
        if is_zero b then a
        else
          match (a, b) with
          | Seg i, Seg j | Stk i, Stk j -> Num (itv_sub i j)
          | Seg i, _ when as_num b <> None ->
              Seg (itv_sub i (Option.get (as_num b)))
          | Stk i, _ when as_num b <> None ->
              Stk (itv_sub i (Option.get (as_num b)))
          | _ -> (
              match (as_num a, as_num b) with
              | Some ia, Some ib -> Num (itv_sub ia ib)
              | _ -> Top))
    | Mul -> (
        match const2 with
        | Some (x, y) -> num (x * y)
        | None ->
            if is_zero a || is_zero b then num 0
            else if as_num a <> None && as_num b <> None then num_top
            else Top)
    | Div | Rem -> (
        match const2 with
        | Some (_, 0) -> num_top (* faults at run time; flagged separately *)
        | Some (x, y) -> num (Insn.eval_alu op x y)
        | None -> (
            match (op, as_num a, as_num b) with
            | Rem, Some ia, Some ib -> (
                (* OCaml [mod]: |a mod d| < |d|, sign follows the dividend *)
                match is_const ib with
                | Some d when d <> 0 ->
                    let m = abs d - 1 in
                    if ia.lo >= 0 then Num { lo = 0; hi = m }
                    else Num { lo = -m; hi = m }
                | _ -> num_top)
            | _, Some _, Some _ -> num_top
            | _ -> Top))
    | And -> (
        match const2 with
        | Some (x, y) -> num (x land y)
        | None -> (
            (* [land] with a non-negative constant mask bounds the result
               regardless of the other operand *)
            let mask = function
              | Some i -> (
                  match is_const i with Some m when m >= 0 -> Some m | _ -> None)
              | None -> None
            in
            match (mask (as_num a), mask (as_num b)) with
            | Some m, _ | _, Some m -> Num { lo = 0; hi = m }
            | None, None ->
                if as_num a <> None && as_num b <> None then num_top else Top))
    | Or | Xor | Shl | Shr -> (
        match const2 with
        | Some (x, y) -> num (Insn.eval_alu op x y)
        | None -> if as_num a <> None && as_num b <> None then num_top else Top)

(* ---------------------------- refinement ------------------------------ *)

let negate_cond : Insn.cond -> Insn.cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let refine (c : Insn.cond) a b =
  if a = Bot || b = Bot then Error `Infeasible
  else
    match (kinded a, kinded b) with
    | Some (ka, ia), Some (kb, ib) when ka = kb -> (
        let pack ia' ib' = Ok (Some (rebuild ka ia', rebuild ka ib')) in
        let ordered lim_a lim_b =
          match (itv_meet ia lim_a, itv_meet ib lim_b) with
          | Some ia', Some ib' -> pack ia' ib'
          | _ -> Error `Infeasible
        in
        match c with
        | Eq -> (
            match itv_meet ia ib with
            | Some m -> pack m m
            | None -> Error `Infeasible)
        | Ne -> (
            match (is_const ia, is_const ib) with
            | Some x, Some y when x = y -> Error `Infeasible
            | _, Some y ->
                let ia' =
                  if ia.lo = y then { ia with lo = sat_succ ia.lo }
                  else if ia.hi = y then { ia with hi = sat_pred ia.hi }
                  else ia
                in
                if ia'.lo > ia'.hi then Error `Infeasible else pack ia' ib
            | Some x, None ->
                let ib' =
                  if ib.lo = x then { ib with lo = sat_succ ib.lo }
                  else if ib.hi = x then { ib with hi = sat_pred ib.hi }
                  else ib
                in
                if ib'.lo > ib'.hi then Error `Infeasible else pack ia ib'
            | None, None -> Ok None)
        | Lt ->
            ordered
              { lo = neg_inf; hi = sat_pred ib.hi }
              { lo = sat_succ ia.lo; hi = pos_inf }
        | Le ->
            ordered { lo = neg_inf; hi = ib.hi } { lo = ia.lo; hi = pos_inf }
        | Gt ->
            ordered
              { lo = sat_succ ib.lo; hi = pos_inf }
              { lo = neg_inf; hi = sat_pred ia.hi }
        | Ge ->
            ordered { lo = ib.lo; hi = pos_inf } { lo = neg_inf; hi = ia.hi })
    | _ -> Ok None

(* ------------------------------ printing ------------------------------ *)

let pp_bound ppf v =
  if v = neg_inf then Format.pp_print_string ppf "-inf"
  else if v = pos_inf then Format.pp_print_string ppf "+inf"
  else Format.pp_print_int ppf v

let pp_itv ppf i =
  if i.lo = i.hi then pp_bound ppf i.lo
  else Format.fprintf ppf "%a..%a" pp_bound i.lo pp_bound i.hi

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "bot"
  | Num i -> Format.fprintf ppf "num(%a)" pp_itv i
  | Cid c -> Format.fprintf ppf "callable#%d" c
  | Seg i -> Format.fprintf ppf "seg+%a" pp_itv i
  | Stk i -> Format.fprintf ppf "stack%s%a" (if i.lo >= 0 then "+" else "") pp_itv i
  | InSeg -> Format.pp_print_string ppf "in-segment"
  | Top -> Format.pp_print_string ppf "top"
