module Insn = Vino_vm.Insn

type config = {
  entry : (Insn.reg * Absval.t) list;
  words : int;
  callable : (int -> bool) option;
  stage : [ `Source | `Rewritten ];
}

let config ?(entry = []) ?callable ?(stage = `Source) ~words () =
  if words < 1 then invalid_arg "Verify.config: words must be >= 1";
  List.iter
    (fun (r, _) ->
      if r < 0 || r >= Insn.num_regs then
        invalid_arg "Verify.config: entry register out of range")
    entry;
  { entry; words; callable; stage }

let seg_window ?(off = 0) () = Absval.Seg (Absval.const_itv off)
let arg_at_most n = Absval.Num (Absval.itv 0 n)

(* ------------------------- abstract machine state --------------------- *)

type state = { regs : Absval.t array; written : bool array }

let copy_state s = { regs = Array.copy s.regs; written = Array.copy s.written }

let entry_state conf =
  let regs = Array.make Insn.num_regs (Absval.num 0) in
  let written = Array.make Insn.num_regs false in
  (* calling convention: r1..r4 hold kernel-marshalled arguments, sp starts
     one word past the segment top; everything else is zeroed by Cpu.make *)
  for r = 1 to 4 do
    regs.(r) <- Absval.Top;
    written.(r) <- true
  done;
  regs.(Insn.sp) <- Absval.Stk (Absval.const_itv 0);
  written.(Insn.sp) <- true;
  List.iter
    (fun (r, v) ->
      regs.(r) <- v;
      written.(r) <- true)
    conf.entry;
  { regs; written }

let havoc_state () =
  {
    regs = Array.make Insn.num_regs Absval.Top;
    written = Array.make Insn.num_regs true;
  }

(* merge [next] into the recorded in-state of a block; widen once the block
   has changed often enough (a loop head) so the fixpoint terminates *)
let merge_into ~widen old next =
  let op = if widen then Absval.widen else Absval.join in
  let changed = ref false in
  let regs =
    Array.init Insn.num_regs (fun r ->
        let v = op old.regs.(r) next.regs.(r) in
        if not (Absval.equal v old.regs.(r)) then changed := true;
        v)
  in
  let written =
    Array.init Insn.num_regs (fun r ->
        let w = old.written.(r) && next.written.(r) in
        if w <> old.written.(r) then changed := true;
        w)
  in
  ({ regs; written }, !changed)

(* ------------------------------ transfer ------------------------------ *)

let classify_access conf (addr : Absval.t) : Report.access_class =
  match addr with
  | Absval.Seg i ->
      if i.Absval.lo >= 0 && i.Absval.hi <= conf.words - 1 then
        Report.Access_safe
      else if i.Absval.hi < 0 then Report.Access_oob
      else Report.Access_sandbox
  | Absval.Stk i ->
      (* the segment spans [base, base+size); the stack pointer starts at
         base+size and the real size is at least [words] *)
      if i.Absval.lo >= -conf.words && i.Absval.hi <= -1 then
        Report.Access_safe
      else if i.Absval.lo >= 0 then Report.Access_oob
      else Report.Access_sandbox
  | Absval.InSeg -> Report.Access_safe
  | Absval.Bot | Absval.Num _ | Absval.Cid _ | Absval.Top ->
      Report.Access_sandbox

let is_callable conf id =
  match conf.callable with Some f -> f id | None -> false

type sinks = {
  cls : int -> Report.insn_class -> unit;
  diag : Report.diag -> unit;
  lint_read : int -> Insn.reg -> unit;
}

let quiet_sinks =
  { cls = (fun _ _ -> ()); diag = (fun _ -> ()); lint_read = (fun _ _ -> ()) }

let exec_insn conf sinks st k (i : Insn.t) =
  let read r =
    if not st.written.(r) then sinks.lint_read k r;
    st.regs.(r)
  in
  let set r v =
    st.regs.(r) <- v;
    st.written.(r) <- true
  in
  let kcall_clobber () = set 0 Absval.Top in
  let access ~what addr =
    let c = classify_access conf addr in
    sinks.cls k (Report.Access c);
    if c = Report.Access_oob then
      sinks.diag
        (Report.error ~index:k
           (Format.asprintf "%s address %a is provably outside the graft \
                             segment"
              what Absval.pp addr))
  in
  let div_check op divisor =
    match (op : Insn.alu) with
    | Div | Rem ->
        (* a warning, not an error: a provable run-time fault is still
           survivable (the transaction machinery undoes it), unlike a
           memory-safety violation *)
        if Absval.equal divisor (Absval.num 0) then
          sinks.diag
            (Report.warning ~index:k "division by a provably-zero divisor")
    | _ -> ()
  in
  match i with
  | Li (rd, v) ->
      set rd (if v >= 0 && is_callable conf v then Absval.Cid v else Absval.num v)
  | Mov (rd, rs) -> set rd (read rs)
  | Alu (op, rd, ra, rb) ->
      let a = read ra and b = read rb in
      div_check op b;
      set rd (Absval.alu op a b)
  | Alui (op, rd, ra, imm) ->
      let a = read ra in
      div_check op (Absval.num imm);
      set rd (Absval.alu op a (Absval.num imm))
  | Ld (rd, rb, off) ->
      access ~what:"load" (Absval.alu Add (read rb) (Absval.num off));
      set rd Absval.Top (* memory contents are not tracked *)
  | St (rv, rb, off) ->
      ignore (read rv);
      access ~what:"store" (Absval.alu Add (read rb) (Absval.num off))
  | Push rv ->
      ignore (read rv);
      let sp' = Absval.alu Sub (read Insn.sp) (Absval.num 1) in
      set Insn.sp sp';
      access ~what:"push" sp'
  | Pop rd ->
      let sp = read Insn.sp in
      access ~what:"pop" sp;
      set rd Absval.Top;
      set Insn.sp (Absval.alu Add sp (Absval.num 1))
  | Kcall id ->
      (* id < 0 is an unresolved relocation placeholder for the linker *)
      (match conf.callable with
      | Some f when id >= 0 && not (f id) ->
          sinks.diag
            (Report.error ~index:k
               (Printf.sprintf "kernel function id %d is not graft-callable"
                  id))
      | _ -> ());
      kcall_clobber ()
  | Kcallr r ->
      let c =
        match read r with
        | Absval.Cid id -> Report.Call_safe id
        | Absval.Num i -> (
            match (Absval.is_const i, conf.callable) with
            | Some id, Some f ->
                if f id then Report.Call_safe id else Report.Call_bad id
            | _ -> Report.Call_check)
        | _ -> Report.Call_check
      in
      sinks.cls k (Report.Icall c);
      (match c with
      | Report.Call_bad id ->
          sinks.diag
            (Report.error ~index:k
               (Printf.sprintf
                  "indirect kernel call to id %d, which is provably not \
                   graft-callable"
                  id))
      | _ -> ());
      kcall_clobber ()
  | Sandbox r ->
      ignore (read r);
      set r Absval.InSeg
  | Checkcall r -> ignore (read r)
  | Br (_, ra, rb, _) ->
      ignore (read ra);
      ignore (read rb)
  | Callr r -> ignore (read r)
  | Jmp _ | Call _ | Ret | Halt -> ()

(* Run one block from its in-state; returns the successor edges with their
   out-states (branch conditions refined on each edge). *)
let run_block conf sinks prog cfg st0 (b : Cfg.block) =
  let n = Array.length prog in
  let st = copy_state st0 in
  for k = b.Cfg.first to b.Cfg.last do
    exec_insn conf sinks st k prog.(k)
  done;
  let fall_through st =
    if b.Cfg.last + 1 < n then [ ((Cfg.block_at cfg (b.Cfg.last + 1)).Cfg.id, st) ]
    else []
  in
  match prog.(b.Cfg.last) with
  | Insn.Jmp t -> [ ((Cfg.block_at cfg t).Cfg.id, st) ]
  | Insn.Br (c, ra, rb, t) ->
      let refined cond =
        match Absval.refine cond st.regs.(ra) st.regs.(rb) with
        | Error `Infeasible -> None
        | Ok None -> Some (copy_state st)
        | Ok (Some (va, vb)) ->
            let st' = copy_state st in
            st'.regs.(ra) <- va;
            st'.regs.(rb) <- vb;
            Some st'
      in
      let taken =
        match refined c with
        | Some st' -> [ ((Cfg.block_at cfg t).Cfg.id, st') ]
        | None -> []
      in
      let not_taken =
        match refined (Absval.negate_cond c) with
        | Some st' -> fall_through st'
        | None -> []
      in
      taken @ not_taken
  | Insn.Call t ->
      (* the callee runs with the caller's state; the graft IR has no
         callee-save convention, so the post-return state is unknown *)
      ((Cfg.block_at cfg t).Cfg.id, st) :: fall_through (havoc_state ())
  | Insn.Ret | Insn.Halt | Insn.Callr _ -> []
  | _ -> fall_through st

(* ------------------------------ analysis ------------------------------ *)

let conservative_classes prog =
  Array.map
    (fun (i : Insn.t) ->
      match i with
      | Ld _ | St _ | Push _ | Pop _ -> Report.Access Report.Access_sandbox
      | Kcallr _ -> Report.Icall Report.Call_check
      | _ -> Report.Plain)
    prog

let reserved_register_diags conf prog =
  match conf.stage with
  | `Rewritten -> []
  | `Source ->
      let ds = ref [] in
      Array.iteri
        (fun k i ->
          if List.mem Insn.scratch (Insn.registers_used i) then
            ds :=
              Report.error ~index:k
                (Printf.sprintf
                   "graft code uses reserved sandbox register r%d"
                   Insn.scratch)
              :: !ds)
        prog;
      List.rev !ds

let diag_order (d : Report.diag) =
  match d.Report.index with None -> -1 | Some k -> k

let widen_threshold = 4

let analyse conf prog =
  let n = Array.length prog in
  if n = 0 then
    {
      Report.classes = [||];
      diags = [ Report.error "empty program" ];
      degraded = false;
    }
  else
    let structural = reserved_register_diags conf prog in
    let invalid =
      Array.to_list
        (Array.mapi
           (fun k i ->
             match Insn.validate ~program_length:n i with
             | Ok () -> None
             | Error e -> Some (Report.error ~index:k e))
           prog)
      |> List.filter_map Fun.id
    in
    if invalid <> [] then
      {
        Report.classes = conservative_classes prog;
        diags = structural @ invalid;
        degraded = true;
      }
    else if Cfg.has_indirect_call prog then
      {
        Report.classes = conservative_classes prog;
        diags =
          structural
          @ [
              Report.warning
                "computed intra-graft control flow (callr): static \
                 verification degraded to run-time checks";
            ];
        degraded = true;
      }
    else begin
      let cfg = Cfg.build prog in
      let blocks = Cfg.blocks cfg in
      let nb = Array.length blocks in
      let states : state option array = Array.make nb None in
      let changes = Array.make nb 0 in
      let queued = Array.make nb false in
      let work = Queue.create () in
      let push b =
        if not queued.(b) then begin
          queued.(b) <- true;
          Queue.push b work
        end
      in
      states.(0) <- Some (entry_state conf);
      push 0;
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        queued.(b) <- false;
        match states.(b) with
        | None -> ()
        | Some st ->
            let edges = run_block conf quiet_sinks prog cfg st blocks.(b) in
            List.iter
              (fun (succ, st') ->
                match states.(succ) with
                | None ->
                    states.(succ) <- Some st';
                    push succ
                | Some old ->
                    (* widen only on retreating edges (every cycle contains
                       one, so the fixpoint terminates); forward merges keep
                       full join precision, which preserves branch
                       refinement inside loop bodies *)
                    let widen =
                      b >= succ && changes.(succ) >= widen_threshold
                    in
                    let merged, changed = merge_into ~widen old st' in
                    if changed then begin
                      changes.(succ) <- changes.(succ) + 1;
                      states.(succ) <- Some merged;
                      push succ
                    end)
              edges
      done;
      (* classification pass over the stable in-states *)
      let classes = Array.make n Report.Plain in
      let diags = ref (List.rev structural) in
      let add d = diags := d :: !diags in
      let has_call =
        Array.exists (function Insn.Call _ -> true | _ -> false) prog
      in
      Array.iter
        (fun (b : Cfg.block) ->
          match states.(b.Cfg.id) with
          | None ->
              for k = b.Cfg.first to b.Cfg.last do
                classes.(k) <- Report.Unreachable
              done;
              add
                (Report.warning ~index:b.Cfg.first
                   (if b.Cfg.first = b.Cfg.last then
                      "unreachable instruction"
                    else
                      Printf.sprintf "unreachable instructions %d..%d"
                        b.Cfg.first b.Cfg.last));
              (* dead kcall sites deserve their own warning: they never
                 execute, yet a reader of the code (or a naive flow-graph
                 extraction) would count them — Kflow's dataflow already
                 ignores them, since an unreachable block's in-state stays
                 bottom *)
              for k = b.Cfg.first to b.Cfg.last do
                match prog.(k) with
                | Insn.Kcall _ | Insn.Kcallr _ ->
                    add
                      (Report.warning ~index:k
                         "unreachable kernel-call site (dead code; excluded \
                          from the kcall-flow graph)")
                | _ -> ()
              done
          | Some st0 ->
              let st = copy_state st0 in
              let sinks =
                {
                  cls = (fun k c -> classes.(k) <- c);
                  diag = add;
                  lint_read =
                    (fun k r ->
                      add
                        (Report.warning ~index:k
                           (Printf.sprintf
                              "register r%d read before initialisation" r)));
                }
              in
              for k = b.Cfg.first to b.Cfg.last do
                (* stack-discipline lint: only meaningful without
                   intra-graft calls (a callee legitimately returns with
                   the caller's frame live) *)
                (if prog.(k) = Insn.Ret && not has_call then
                   match st.regs.(Insn.sp) with
                   | Absval.Stk i
                     when not (i.Absval.lo <= 0 && 0 <= i.Absval.hi) ->
                       add
                         (Report.warning ~index:k
                            (Format.asprintf
                               "stack-depth imbalance on a path to ret \
                                (sp = %a)"
                               Absval.pp st.regs.(Insn.sp)))
                   | _ -> ());
                exec_insn conf sinks st k prog.(k)
              done;
              (* fall-through past the end of the program *)
              if
                b.Cfg.last = n - 1
                &&
                match prog.(b.Cfg.last) with
                | Insn.Jmp _ | Insn.Ret | Insn.Halt | Insn.Callr _ -> false
                | _ -> true
              then
                add
                  (Report.error ~index:b.Cfg.last
                     "control can fall through past the end of the program"))
        blocks;
      let diags =
        List.stable_sort
          (fun a b -> compare (diag_order a) (diag_order b))
          (List.rev !diags)
      in
      { Report.classes; diags; degraded = false }
    end
