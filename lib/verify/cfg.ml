module Insn = Vino_vm.Insn

type block = { id : int; first : int; last : int; succs : int list }

type t = {
  blocks : block array;
  owner : int array;  (** instruction index -> block id *)
  fall_off : bool array;  (** block id -> can fall through past the end *)
}

(* Instructions that end a basic block. *)
let ends_block : Insn.t -> bool = function
  | Br _ | Jmp _ | Call _ | Callr _ | Ret | Halt -> true
  | Li _ | Mov _ | Alu _ | Alui _ | Ld _ | St _ | Kcall _ | Kcallr _ | Push _
  | Pop _ | Sandbox _ | Checkcall _ ->
      false

let targets_of : Insn.t -> int list = function
  | Br (_, _, _, t) | Jmp t | Call t -> [ t ]
  | _ -> []

let has_indirect_call prog =
  Array.exists (function Insn.Callr _ -> true | _ -> false) prog

let build prog =
  let n = Array.length prog in
  if n = 0 then invalid_arg "Cfg.build: empty program";
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun k i ->
      List.iter (fun t -> if t >= 0 && t < n then leader.(t) <- true)
        (targets_of i);
      if ends_block i && k + 1 < n then leader.(k + 1) <- true)
    prog;
  let firsts = ref [] in
  for k = n - 1 downto 0 do
    if leader.(k) then firsts := k :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nblocks = Array.length firsts in
  let owner = Array.make n 0 in
  let fall_off = Array.make nblocks false in
  let block_id_of_insn = Array.make n 0 in
  Array.iteri
    (fun b first ->
      let last = if b + 1 < nblocks then firsts.(b + 1) - 1 else n - 1 in
      for k = first to last do
        block_id_of_insn.(k) <- b
      done)
    firsts;
  Array.blit block_id_of_insn 0 owner 0 n;
  let blocks =
    Array.mapi
      (fun b first ->
        let last = if b + 1 < nblocks then firsts.(b + 1) - 1 else n - 1 in
        let fall_through () =
          if last + 1 < n then [ owner.(last + 1) ]
          else begin
            fall_off.(b) <- true;
            []
          end
        in
        let succs =
          match prog.(last) with
          | Insn.Jmp t -> [ owner.(t) ]
          | Insn.Br (_, _, _, t) -> owner.(t) :: fall_through ()
          | Insn.Call t ->
              (* edge to the callee plus the post-return fall-through *)
              owner.(t) :: fall_through ()
          | Insn.Callr _ -> [] (* unresolved; Verify degrades *)
          | Insn.Ret | Insn.Halt -> []
          | _ -> fall_through ()
        in
        { id = b; first; last; succs })
      firsts
  in
  { blocks; owner; fall_off }

let blocks t = t.blocks
let block_at t i = t.blocks.(t.owner.(i))
let entry t = t.blocks.(0)

let reachable t =
  let seen = Array.make (Array.length t.blocks) false in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter visit t.blocks.(b).succs
    end
  in
  visit 0;
  seen

let falls_off_end t =
  let seen = reachable t in
  Array.exists (fun b -> seen.(b.id) && t.fall_off.(b.id)) t.blocks
