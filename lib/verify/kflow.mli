(** Static kcall-flow analysis (kcall-flow integrity).

    The wrappers check {e which} kernel calls a graft may make; nothing in
    the original design checks {e sequences}. A graft can issue
    individually-legal kcalls in an order no honest compilation of its
    source could produce (release-then-use, commit-then-write) and sail
    through every per-call check. Following SFIP/SFP, this module extracts
    the per-graft {e kcall-flow graph} — the set of feasible
    kcall→kcall successor pairs, plus the entry set (feasible first kcalls)
    and exit set (feasible last kcalls) — by a forward dataflow analysis
    over {!Cfg}, and compiles it into a bitset transition table the
    dispatcher can consult in O(1): one row index, one bit test.

    Soundness runs the {e opposite} way from {!Verify}: the verifier may
    under-approximate safety (rejecting is always safe), but the flow graph
    must {b over}-approximate the feasible sequences — a missing edge
    aborts a legal execution. Every unresolved construct therefore widens:

    - a [Kcallr] (or a [Kcall] whose id is outside the registry range)
      saturates the row of every possible predecessor ({e full row}
      fallback) and makes every id a possible predecessor of whatever
      follows;
    - an intra-graft [Callr] defeats the CFG entirely, so the whole graph
      degrades to the full table (every transition permitted);
    - intra-graft [Call]/[Ret] are joined conservatively: every [Ret] block
      flows to every call fall-through, so callee kcalls precede the
      caller's continuation on some path whenever they could at run time.

    Loop back-edges are handled by the fixpoint itself: the join is set
    union over a finite powerset lattice, so iteration terminates without
    widening. Unreachable blocks contribute nothing (their in-state stays
    bottom); {!Verify} separately warns about unreachable kcall sites. *)

type graph
(** The extracted kcall-flow graph of one program. *)

val analyse : nfuncs:int -> Vino_vm.Insn.t array -> graph
(** Forward dataflow over [Cfg.build]. [nfuncs] is the registry id space
    (ids are dense in [0, nfuncs)); kcalls outside that range are treated
    as unresolved. An empty program yields an empty graph. *)

val nfuncs : graph -> int
val sites : graph -> int
(** Static kcall sites ([Kcall]/[Kcallr] instructions), reachable or not. *)

val node_count : graph -> int
(** Distinct kcall ids appearing in any feasible event. *)

val edge_count : graph -> int
(** Feasible kcall→kcall successor pairs (entry edges not included). *)

val entry_ids : graph -> int list
(** Feasible first kcalls, ascending. *)

val exit_ids : graph -> int list
(** Feasible last kcalls at graft exit, ascending. *)

val may_exit_without_kcall : graph -> bool
(** Some path reaches graft exit having made no kernel call at all. *)

val full_rows : graph -> int
(** Rows saturated by the conservative fallback (unresolved events); for a
    degraded graph, every row. *)

val degraded : graph -> bool
(** The whole graph fell back to fully-permissive ([Callr] present). *)

val iter_edges : graph -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f a b] for every feasible pair a→b, in
    ascending (a, b) order. *)

(** {1 Transition table} *)

type table
(** Bitset transition table: one row per possible "last kcall" value (the
    entry sentinel plus each id), one bit per next id. *)

val compile : graph -> table

val of_program : nfuncs:int -> Vino_vm.Insn.t array -> table
(** [compile (analyse ~nfuncs prog)]. *)

val entry : int
(** The initial "last kcall" value (-1): no kernel call made yet. *)

val permits : table -> last:int -> next:int -> bool
(** O(1) single row/bit test. [last] is {!entry} or a previously permitted
    id; a [next] outside [0, nfuncs) is never permitted (it was not in the
    registry when the table was built, so no honest flow reaches it). *)

val rows : table -> int
val row_words : table -> int

val footprint_words : table -> int
(** Total table size in machine words ([rows * row_words]). *)
