type access_class = Access_safe | Access_sandbox | Access_oob
type call_class = Call_safe of int | Call_check | Call_bad of int
type insn_class = Plain | Access of access_class | Icall of call_class | Unreachable

type severity = Error | Warning
type diag = { index : int option; severity : severity; message : string }

type t = { classes : insn_class array; diags : diag list; degraded : bool }

let error ?index message = { index; severity = Error; message }
let warning ?index message = { index; severity = Warning; message }

let errors t = List.filter (fun d -> d.severity = Error) t.diags
let warnings t = List.filter (fun d -> d.severity = Warning) t.diags
let ok t = errors t = []

let count p t = Array.fold_left (fun acc c -> if p c then acc + 1 else acc) 0 t.classes

let safe_accesses = count (function Access Access_safe -> true | _ -> false)
let total_accesses = count (function Access _ -> true | _ -> false)
let safe_calls = count (function Icall (Call_safe _) -> true | _ -> false)

(* Sorted, de-duplicated ids behind every [Call_safe] verdict: the callable
   assumptions a proof that elides [Checkcall] rests on. *)
let safe_call_ids t =
  Array.fold_left
    (fun acc c ->
      match c with Icall (Call_safe id) -> id :: acc | _ -> acc)
    [] t.classes
  |> List.sort_uniq compare
let total_icalls = count (function Icall _ -> true | _ -> false)

let diag_to_string d =
  Printf.sprintf "%s%s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (match d.index with Some k -> Printf.sprintf " at %d" k | None -> "")
    d.message

let error_summary t =
  match errors t with
  | [] -> "no errors"
  | es -> String.concat "; " (List.map diag_to_string es)

let verdict = function
  | Plain -> ""
  | Access Access_safe -> "safe: provably in-segment"
  | Access Access_sandbox -> "needs sandbox"
  | Access Access_oob -> "REJECT: provably out of bounds"
  | Icall (Call_safe id) -> Printf.sprintf "safe: provably calls id %d" id
  | Icall Call_check -> "needs checkcall"
  | Icall (Call_bad id) -> Printf.sprintf "REJECT: id %d not graft-callable" id
  | Unreachable -> "unreachable"

let pp_summary ppf t =
  Format.fprintf ppf
    "accesses: %d/%d provably safe; indirect calls: %d/%d provably safe%s@."
    (safe_accesses t) (total_accesses t) (safe_calls t) (total_icalls t)
    (if t.degraded then " (degraded: computed intra-graft control flow)"
     else "")

let pp_diags ppf t =
  List.iter (fun d -> Format.fprintf ppf "%s@." (diag_to_string d)) t.diags

let pp ppf t =
  pp_summary ppf t;
  pp_diags ppf t

let pp_annotated ppf prog t =
  Array.iteri
    (fun k i ->
      let v = verdict t.classes.(k) in
      Format.fprintf ppf "%4d: %-32s%s@." k
        (Format.asprintf "%a" Vino_vm.Insn.pp i)
        (if v = "" then "" else "; " ^ v))
    prog;
  Format.pp_print_newline ppf ();
  pp ppf t
