(** Control-flow graph over a graft program.

    Instructions are partitioned into basic blocks (maximal straight-line
    runs). Block boundaries are control-transfer instructions and branch /
    jump / call targets. An intra-graft [Call] edge goes both to the callee
    (with the caller's state) and to the fall-through instruction (the
    callee's return point); {!Verify} havocs the register state on the
    fall-through edge since the graft IR has no callee-save convention. *)

type block = {
  id : int;  (** dense block index *)
  first : int;  (** index of the first instruction *)
  last : int;  (** index of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
}

type t

val build : Vino_vm.Insn.t array -> t
(** @raise Invalid_argument on an empty program. *)

val blocks : t -> block array

val block_at : t -> int -> block
(** The block containing instruction index [i]. *)

val entry : t -> block

val reachable : t -> bool array
(** Per-block flag: reachable from the entry block. *)

val falls_off_end : t -> bool
(** True when some reachable block's last instruction can fall through past
    the end of the program (a [Bad_pc] fault at run time). *)

val has_indirect_call : Vino_vm.Insn.t array -> bool
(** [Callr] present: computed intra-graft control flow the CFG cannot
    resolve statically. *)
