module Insn = Vino_vm.Insn

(* Abstract state: the set of possible "last kcall" values at a program
   point. Slot 0 is the entry sentinel (no kcall yet); slot [id + 1] means
   the last kernel call was [id]. The graph rows use the same indexing. *)

type graph = {
  n : int;  (* registry id space *)
  rows_g : bool array array;  (* (n+1) x n; row 0 = entry sentinel *)
  exitset : bool array;  (* n+1; slot 0 = may exit without any kcall *)
  full : bool array;  (* n+1: row saturated by conservative fallback *)
  nsites : int;
  degr : bool;
}

let count_sites prog =
  Array.fold_left
    (fun acc i ->
      match i with Insn.Kcall _ | Insn.Kcallr _ -> acc + 1 | _ -> acc)
    0 prog

let analyse ~nfuncs prog =
  let n = max 0 nfuncs in
  let nsites = count_sites prog in
  let mk_rows v = Array.init (n + 1) (fun _ -> Array.make n v) in
  if Array.length prog = 0 then
    {
      n;
      rows_g = mk_rows false;
      exitset = Array.make (n + 1) false;
      full = Array.make (n + 1) false;
      nsites;
      degr = false;
    }
  else if Cfg.has_indirect_call prog then
    (* Computed intra-graft control flow: the CFG is unresolvable, so the
       whole graph degrades to fully permissive — never abort a legal
       execution. *)
    {
      n;
      rows_g = mk_rows true;
      exitset = Array.make (n + 1) true;
      full = Array.make (n + 1) true;
      nsites;
      degr = true;
    }
  else begin
    let cfg = Cfg.build prog in
    let blocks = Cfg.blocks cfg in
    let nb = Array.length blocks in
    let nprog = Array.length prog in
    let rows_g = mk_rows false in
    let full = Array.make (n + 1) false in
    let exitset = Array.make (n + 1) false in
    (* Conservative call/return join: a [Ret] may resume at any call
       fall-through, so callee kcalls precede every caller continuation. *)
    let call_falls =
      Array.to_list blocks
      |> List.filter_map (fun (b : Cfg.block) ->
             match prog.(b.last) with
             | Insn.Call _ when b.last + 1 < nprog ->
                 Some (Cfg.block_at cfg (b.last + 1)).Cfg.id
             | _ -> None)
    in
    let succs_of (b : Cfg.block) =
      match prog.(b.last) with Insn.Ret -> call_falls | _ -> b.succs
    in
    let is_exit (b : Cfg.block) =
      match prog.(b.last) with
      | Insn.Ret | Insn.Halt -> true
      | Insn.Jmp _ | Insn.Callr _ -> false
      | _ -> b.last + 1 >= nprog (* falls off the end *)
    in
    let transfer st (b : Cfg.block) =
      let state = Array.copy st in
      for k = b.first to b.last do
        match prog.(k) with
        | Insn.Kcall id when id >= 0 && id < n ->
            for s = 0 to n do
              if state.(s) then rows_g.(s).(id) <- true
            done;
            Array.fill state 0 (n + 1) false;
            state.(id + 1) <- true
        | Insn.Kcall _ | Insn.Kcallr _ ->
            (* Unresolved target: full-row fallback for every possible
               predecessor, and any id may be the new "last kcall". *)
            for s = 0 to n do
              if state.(s) && not full.(s) then begin
                full.(s) <- true;
                Array.fill rows_g.(s) 0 n true
              end
            done;
            Array.fill state 0 (n + 1) false;
            for s = 1 to n do
              state.(s) <- true
            done
        | _ -> ()
      done;
      state
    in
    let instate = Array.make nb None in
    let entry_state = Array.make (n + 1) false in
    entry_state.(0) <- true;
    instate.(0) <- Some entry_state;
    (* Fixpoint: states only grow over a finite powerset, so sweeping until
       a whole pass changes nothing terminates; loop back-edges just feed
       the join. Row writes are monotone, so re-running a transfer is
       harmless. *)
    let changed = ref true in
    while !changed do
      changed := false;
      for bi = 0 to nb - 1 do
        match instate.(bi) with
        | None -> ()
        | Some st ->
            let out = transfer st blocks.(bi) in
            List.iter
              (fun s ->
                match instate.(s) with
                | None ->
                    instate.(s) <- Some (Array.copy out);
                    changed := true
                | Some d ->
                    for k = 0 to n do
                      if out.(k) && not d.(k) then begin
                        d.(k) <- true;
                        changed := true
                      end
                    done)
              (succs_of blocks.(bi))
      done
    done;
    Array.iter
      (fun (b : Cfg.block) ->
        if is_exit b then
          match instate.(b.Cfg.id) with
          | None -> ()
          | Some st ->
              let out = transfer st b in
              for k = 0 to n do
                if out.(k) then exitset.(k) <- true
              done)
      blocks;
    { n; rows_g; exitset; full; nsites; degr = false }
  end

let nfuncs g = g.n
let sites g = g.nsites
let degraded g = g.degr

let full_rows g =
  Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 g.full

let entry_ids g =
  let acc = ref [] in
  for id = g.n - 1 downto 0 do
    if g.rows_g.(0).(id) then acc := id :: !acc
  done;
  !acc

let exit_ids g =
  let acc = ref [] in
  for id = g.n - 1 downto 0 do
    if g.exitset.(id + 1) then acc := id :: !acc
  done;
  !acc

let may_exit_without_kcall g = g.exitset.(0)

let node_count g =
  let present = Array.make g.n false in
  for id = 0 to g.n - 1 do
    if g.exitset.(id + 1) then present.(id) <- true;
    if Array.exists Fun.id g.rows_g.(id + 1) then present.(id) <- true
  done;
  for s = 0 to g.n do
    for id = 0 to g.n - 1 do
      if g.rows_g.(s).(id) then present.(id) <- true
    done
  done;
  Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 present

let edge_count g =
  let c = ref 0 in
  for s = 1 to g.n do
    for id = 0 to g.n - 1 do
      if g.rows_g.(s).(id) then incr c
    done
  done;
  !c

let iter_edges g f =
  for a = 0 to g.n - 1 do
    for b = 0 to g.n - 1 do
      if g.rows_g.(a + 1).(b) then f a b
    done
  done

(* Transition table: row-major bitset, 63 usable bits per word. Row 0 is
   the entry sentinel; row [id + 1] belongs to last-kcall [id]. *)

type table = { tn : int; roww : int; bits : int array }

let compile g =
  let n = g.n in
  let roww = max 1 ((n + 62) / 63) in
  let bits = Array.make ((n + 1) * roww) 0 in
  for s = 0 to n do
    for id = 0 to n - 1 do
      if g.rows_g.(s).(id) then begin
        let w = (s * roww) + (id / 63) in
        bits.(w) <- bits.(w) lor (1 lsl (id mod 63))
      end
    done
  done;
  { tn = n; roww; bits }

let of_program ~nfuncs prog = compile (analyse ~nfuncs prog)
let entry = -1

let permits t ~last ~next =
  next >= 0 && next < t.tn
  && last >= -1
  && last < t.tn
  &&
  let row = (last + 1) * t.roww in
  t.bits.(row + (next / 63)) land (1 lsl (next mod 63)) <> 0

let rows t = t.tn + 1
let row_words t = t.roww
let footprint_words t = (t.tn + 1) * t.roww
