(* vino — command-line frontend for the simulated VINO kernel.

   vino inspect GRAFT   show a builtin graft before/after MiSFIT rewriting,
                        its signature, and a cycle estimate
   vino tables [TABLE]  regenerate the paper's tables (3..7, abortmodel,
                        lockfactor)
   vino disaster        seeded fault-injection campaign with post-recovery
                        invariant checks
   vino rules           Table 1 with the enforcing mechanism for each rule
   vino points          list the graft points a demo kernel publishes *)

open Cmdliner

let builtin_grafts : (string * string * (unit -> Vino_vm.Asm.item list)) list
    =
  [
    ( "readahead",
      "application-directed compute-ra (Table 3)",
      fun () ->
        Vino_fs.Readahead.app_directed_source ~lock_kcall:"ra.lock:FILE" );
    ( "evict",
      "protect-hot-pages page eviction (Table 4)",
      fun () ->
        Vino_vmem.Grafts.protect_hot_pages_source ~lock_kcall:"evict.lock:VAS"
          () );
    ( "sched",
      "scan-process-list schedule delegate (Table 5)",
      fun () ->
        Vino_sched.Grafts.scan_and_return_self_source
          ~lock_kcall:"sched.proclist-lock:1" () );
    ( "crypt",
      "xor stream encryption (Table 6)",
      fun () -> Vino_stream.Grafts.xor_encrypt_source ~key:0x5EC2E7 );
    ( "copy",
      "trivial stream copy (worst-case SFI store ratio)",
      fun () -> Vino_stream.Grafts.copy_source );
    ("httpd", "the Figure 2 HTTP server", fun () -> Vino_net.Httpd.server_source);
  ]

let graft_names = List.map (fun (n, _, _) -> n) builtin_grafts

(* --------------------------- kcall-flow report ------------------------ *)

(* Pre-link flow analysis: relocations get synthetic dense ids in sorted
   import-name order, so the graph is computable (and stable across runs)
   without a kernel registry. Raw direct ids, if any, fall outside the
   synthetic range and take the conservative full-row fallback. *)
let synthetic_flow code relocs =
  let names =
    List.sort_uniq compare
      (List.map (fun (r : Vino_vm.Asm.reloc) -> r.name) relocs)
  in
  let id_of n =
    let rec go k = function
      | [] -> assert false
      | x :: tl -> if String.equal x n then k else go (k + 1) tl
    in
    go 0 names
  in
  let code = Array.copy code in
  List.iter
    (fun (r : Vino_vm.Asm.reloc) ->
      code.(r.index) <- Vino_vm.Insn.Kcall (id_of r.name))
    relocs;
  (names, Vino_verify.Kflow.analyse ~nfuncs:(List.length names) code)

let print_flow_graph names g =
  let module K = Vino_verify.Kflow in
  let name id =
    match List.nth_opt names id with
    | Some n -> n
    | None -> Printf.sprintf "#%d" id
  in
  let set = function
    | [] -> "(none)"
    | ids -> String.concat ", " (List.map name ids)
  in
  Printf.printf "kcall-flow graph: %d nodes, %d edges, %d kcall sites%s\n"
    (K.node_count g) (K.edge_count g) (K.sites g)
    (if K.degraded g then
       " — DEGRADED (indirect intra-graft call): fully permissive"
     else "");
  Printf.printf "  entry: %s\n  exit: %s%s\n"
    (set (K.entry_ids g))
    (set (K.exit_ids g))
    (if K.may_exit_without_kcall g then " (may exit with no kcall)" else "");
  K.iter_edges g (fun a b ->
      Printf.printf "  edge: %s -> %s\n" (name a) (name b));
  Printf.printf "  fallback (full) rows: %d of %d\n" (K.full_rows g)
    (K.nfuncs g + 1);
  let t = K.compile g in
  Printf.printf "transition table: %d rows x %d words/row = %d words\n"
    (K.rows t) (K.row_words t) (K.footprint_words t)

(* ------------------------------- inspect ------------------------------ *)

let class_counts code =
  let alu = ref 0
  and memory = ref 0
  and control = ref 0
  and kcall = ref 0
  and sfi = ref 0 in
  Array.iter
    (fun (i : Vino_vm.Insn.t) ->
      match i with
      | Li _ | Mov _ | Alu _ | Alui _ -> incr alu
      | Ld _ | St _ | Push _ | Pop _ -> incr memory
      | Br _ | Jmp _ | Call _ | Callr _ | Ret | Halt -> incr control
      | Kcall _ | Kcallr _ -> incr kcall
      | Sandbox _ | Checkcall _ -> incr sfi)
    code;
  (!alu, !memory, !control, !kcall, !sfi)

let static_cycles code =
  Array.fold_left
    (fun acc i -> acc + Vino_vm.Costs.insn Vino_vm.Costs.default i)
    0 code

let print_program title code =
  Printf.printf "%s (%d instructions, %d static cycles):\n" title
    (Array.length code) (static_cycles code);
  Format.printf "%a@." Vino_vm.Insn.pp_program code

let source_of name =
  match List.find_opt (fun (n, _, _) -> n = name) builtin_grafts with
  | Some (_, description, source) -> (description, source ())
  | None ->
      if Sys.file_exists name then
        match Vino_vm.Parse.parse_file name with
        | Ok items -> ("from " ^ name, items)
        | Error e ->
            Printf.eprintf "%s: %s\n" name e;
            exit 1
      else begin
        Printf.eprintf
          "unknown graft %S; try a .gasm file or one of: %s\n" name
          (String.concat ", " graft_names);
        exit 1
      end

let inspect name show_code =
  match source_of name with
  | description, source -> (
      Printf.printf "graft %s — %s\n\n" name description;
      let obj = Vino_vm.Asm.assemble_exn source in
      if show_code then print_program "source" obj.Vino_vm.Asm.code;
      match Vino_misfit.Image.seal ~key:"vino-misfit-toolchain" obj with
      | Error e ->
          Printf.eprintf "MiSFIT rejected the graft: %s\n" e;
          exit 1
      | Ok image ->
          if show_code then
            print_program "after MiSFIT" image.Vino_misfit.Image.code;
          let a0, m0, c0, k0, s0 = class_counts obj.Vino_vm.Asm.code in
          let a1, m1, c1, k1, s1 = class_counts image.Vino_misfit.Image.code in
          Printf.printf
            "instruction classes      source    rewritten\n\
            \  alu/move               %6d    %9d\n\
            \  memory access          %6d    %9d\n\
            \  control flow           %6d    %9d\n\
            \  kernel calls           %6d    %9d\n\
            \  SFI (sandbox/check)    %6d    %9d\n"
            a0 a1 m0 m1 c0 c1 k0 k1 s0 s1;
          Printf.printf "code growth: %d -> %d instructions (%.0f%%)\n"
            (Array.length obj.Vino_vm.Asm.code)
            (Array.length image.Vino_misfit.Image.code)
            (100.
            *. (float_of_int (Array.length image.Vino_misfit.Image.code)
                /. float_of_int (Array.length obj.Vino_vm.Asm.code)
               -. 1.));
          Printf.printf "optimisable sandboxes: %d (same-address reuse)\n"
            (Vino_misfit.Rewrite.eliminated_sandboxes obj.Vino_vm.Asm.code);
          let tr = Vino_vm.Jit.translate image.Vino_misfit.Image.code in
          Printf.printf
            "translation: %d basic blocks, %d fused superinstruction pairs, \
             %d proven-safe accesses compiled bare\n"
            (Vino_vm.Jit.block_count tr)
            (Vino_vm.Jit.fused_pairs tr)
            (Vino_vm.Jit.elided_accesses tr);
          Printf.printf "imports: %s\n"
            (match image.Vino_misfit.Image.relocs with
            | [] -> "(none)"
            | rs ->
                String.concat ", "
                  (List.map (fun r -> r.Vino_vm.Asm.name) rs));
          Format.printf "signature: %a@." Vino_misfit.Sign.pp
            image.Vino_misfit.Image.signature;
          print_newline ();
          let names, g =
            synthetic_flow image.Vino_misfit.Image.code
              image.Vino_misfit.Image.relocs
          in
          print_flow_graph names g;
          (* Link the image into a throwaway kernel (stub kcalls for its
             imports) for the registry-sized table footprint and the
             translation-cache statistics, in stable digest order. *)
          let kernel = Vino_core.Kernel.create ~mem_words:(1 lsl 16) () in
          List.iter
            (fun n ->
              ignore
                (Vino_core.Kernel.register_kcall kernel ~name:n (fun _ ->
                     Vino_core.Kcall.ok)))
            names;
          (match Vino_core.Linker.load kernel ~words:4096 image with
          | Error e -> Printf.printf "linked table: (load refused: %s)\n" e
          | Ok loaded ->
              let f = loaded.Vino_core.Linker.flow in
              Printf.printf
                "linked transition table: %d rows x %d words/row = %d words\n"
                (Vino_verify.Kflow.rows f)
                (Vino_verify.Kflow.row_words f)
                (Vino_verify.Kflow.footprint_words f));
          List.iter
            (fun (digest, blocks, fused) ->
              Printf.printf "translation cache: %s blocks=%d fused=%d\n"
                digest blocks fused)
            (Vino_core.Kernel.translation_stats kernel))

(* --------------------------- image files ------------------------------ *)

let write_image path image = Vino_misfit.Image.save image ~path

let read_image path =
  match Vino_misfit.Image.load ~path with
  | Ok image -> image
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 1

let default_key = "vino-misfit-toolchain"

let seal name output key unsafe flowcheck =
  let _, source = source_of name in
  let obj = Vino_vm.Asm.assemble_exn source in
  if flowcheck then begin
    (* Gate sealing on a resolvable kcall-flow graph: a graph degraded to
       fully-permissive gives dispatch-time flow enforcement nothing to
       check, so refuse to produce the image. *)
    let _, g = synthetic_flow obj.Vino_vm.Asm.code obj.Vino_vm.Asm.relocs in
    if Vino_verify.Kflow.degraded g then begin
      Printf.eprintf
        "flowcheck: %s has an unresolvable kcall-flow graph (indirect \
         intra-graft call) — sealing refused\n"
        name;
      exit 1
    end;
    Printf.printf
      "flowcheck: OK — %d kcall-flow edges, %d fallback rows\n"
      (Vino_verify.Kflow.edge_count g)
      (Vino_verify.Kflow.full_rows g)
  end;
  let image =
    if unsafe then Vino_misfit.Image.seal_unsafe ~key obj
    else
      match Vino_misfit.Image.seal ~key obj with
      | Ok image -> image
      | Error e ->
          Printf.eprintf "MiSFIT rejected the graft: %s\n" e;
          exit 1
  in
  write_image output image;
  Printf.printf "sealed %s -> %s (%d instructions%s)\n" name output
    (Array.length image.Vino_misfit.Image.code)
    (if unsafe then ", NO SFI" else "")

let verify_signature path key flowcheck =
  let image = read_image path in
  if Vino_misfit.Image.verify ~key image then begin
    Printf.printf "%s: signature OK (%d instructions, imports: %s)\n" path
      (Array.length image.Vino_misfit.Image.code)
      (match image.Vino_misfit.Image.relocs with
      | [] -> "none"
      | rs -> String.concat ", " (List.map (fun r -> r.Vino_vm.Asm.name) rs));
    let names, g =
      synthetic_flow image.Vino_misfit.Image.code
        image.Vino_misfit.Image.relocs
    in
    print_flow_graph names g;
    if flowcheck && Vino_verify.Kflow.degraded g then begin
      Printf.printf "flowcheck: FAIL — unresolvable kcall-flow graph\n";
      exit 1
    end;
    exit 0
  end
  else begin
    Printf.printf "%s: SIGNATURE INVALID — the kernel would refuse it\n" path;
    exit 1
  end

let static_verify name words rewritten seg_regs flowcheck =
  if words < 1 then begin
    Printf.eprintf "verify: --words must be at least 1\n";
    exit 2
  end;
  (match
     List.find_opt
       (fun r -> r < 0 || r >= Vino_vm.Insn.num_regs)
       seg_regs
   with
  | Some r ->
      Printf.eprintf "verify: --seg %d is not a register (r0..r%d)\n" r
        (Vino_vm.Insn.num_regs - 1);
      exit 2
  | None -> ());
  let description, source = source_of name in
  let obj = Vino_vm.Asm.assemble_exn source in
  let stage = if rewritten then `Rewritten else `Source in
  let entry =
    List.map (fun r -> (r, Vino_verify.Verify.seg_window ())) seg_regs
  in
  let conf = Vino_verify.Verify.config ~entry ~words ~stage () in
  let report = Vino_verify.Verify.analyse conf obj.Vino_vm.Asm.code in
  Printf.printf "graft %s — %s\nstatic verification, segment >= %d words:\n\n"
    name description words;
  Vino_verify.Report.pp_annotated Format.std_formatter obj.Vino_vm.Asm.code
    report;
  Format.print_flush ();
  print_newline ();
  let names, g = synthetic_flow obj.Vino_vm.Asm.code obj.Vino_vm.Asm.relocs in
  print_flow_graph names g;
  let flow_failed = flowcheck && Vino_verify.Kflow.degraded g in
  if flowcheck then
    Printf.printf "flowcheck: %s\n"
      (if flow_failed then
         "FAIL — unresolvable kcall-flow graph, sealing would be refused"
       else "OK — graph fully resolved");
  if Vino_verify.Report.ok report then begin
    Printf.printf "verdict: OK — %d/%d accesses and %d/%d indirect calls \
                   need no run-time check\n"
      (Vino_verify.Report.safe_accesses report)
      (Vino_verify.Report.total_accesses report)
      (Vino_verify.Report.safe_calls report)
      (Vino_verify.Report.total_icalls report);
    exit (if flow_failed then 1 else 0)
  end
  else begin
    Printf.printf "verdict: REJECT — the linker would refuse this graft\n";
    exit 1
  end

let verify path key words rewritten seg_regs flowcheck =
  if Filename.check_suffix path ".gimg" then verify_signature path key flowcheck
  else static_verify path words rewritten seg_regs flowcheck

(* ------------------------------- run ----------------------------------- *)

(* Kernels created by a command pick the mode up from
   {!Vino_vm.Jit.default_mode}, so set it before anything runs. *)
let mode_arg =
  let mode_conv =
    Arg.enum
      [
        ("interp", Vino_vm.Jit.Interp);
        ("translated", Vino_vm.Jit.Translated);
      ]
  in
  Arg.(
    value
    & opt mode_conv Vino_vm.Jit.Translated
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Graft execution mode: $(b,translated) (closure-threaded \
           translation cache, the default) or $(b,interp) (the reference \
           interpreter). Outcomes, cycles and all counters are \
           bit-identical; only host wall-clock time differs.")

let set_mode m = Vino_vm.Jit.default_mode := m

(* -j N: deterministic fan-out over N domains. Results are identical at
   any N; -j 1 is byte-for-byte the serial code path. *)
let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan independent work units out over $(docv) domains (default: \
           the recommended domain count). Results are identical at any \
           $(docv); $(b,-j 1) runs the serial code path.")

let with_pool jobs f =
  if jobs <= 1 then f None
  else
    let pool = Vino_par.Pool.create ~domains:jobs () in
    Fun.protect
      ~finally:(fun () -> Vino_par.Pool.shutdown pool)
      (fun () -> f (Some pool))

let run_graft name args stub_imports =
  let kernel = Vino_core.Kernel.create ~mem_words:(1 lsl 16) () in
  let image =
    if Filename.check_suffix name ".gimg" then read_image name
    else
      let _, source = source_of name in
      match Vino_core.Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
      | Ok image -> image
      | Error e ->
          Printf.eprintf "seal failed: %s\n" e;
          exit 1
  in
  if stub_imports then
    List.iter
      (fun r ->
        let fn_name = r.Vino_vm.Asm.name in
        if
          Vino_core.Kcall.find_by_name kernel.Vino_core.Kernel.registry
            fn_name
          = None
        then
          ignore
            (Vino_core.Kernel.register_kcall kernel ~name:fn_name (fun ctx ->
                 Printf.printf "  [stub kcall %s(%d, %d)]\n" fn_name
                   (Vino_core.Kcall.arg ctx.Vino_core.Kcall.cpu 0)
                   (Vino_core.Kcall.arg ctx.Vino_core.Kcall.cpu 1);
                 Vino_core.Kcall.return ctx.Vino_core.Kcall.cpu 0;
                 Vino_core.Kcall.ok)))
      image.Vino_misfit.Image.relocs;
  match Vino_core.Linker.load kernel ~words:4096 image with
  | Error e ->
      Printf.eprintf "linker: %s\n" e;
      exit 1
  | Ok loaded ->
      let engine = kernel.Vino_core.Kernel.engine in
      ignore
        (Vino_sim.Engine.spawn engine ~name:"playground" (fun () ->
             let txn =
               Vino_txn.Txn.begin_ kernel.Vino_core.Kernel.txn_mgr
                 ~name:"playground" ()
             in
             let cpu, outcome =
               Vino_core.Wrapper.exec kernel ~txn ~cred:Vino_core.Cred.root
                 ~limits:(Vino_txn.Rlimit.unlimited ())
                 ~seg:loaded.Vino_core.Linker.seg
                 ~code:loaded.Vino_core.Linker.code
                 ~flow:loaded.Vino_core.Linker.flow
                 ~trans:loaded.Vino_core.Linker.trans ~budget:50_000_000
                 ~setup:(fun cpu ->
                   List.iteri
                     (fun k v ->
                       if k < 4 then Vino_vm.Cpu.set_reg cpu (1 + k) v)
                     args)
                 ()
             in
             (match outcome with
             | Vino_vm.Cpu.Halted -> ignore (Vino_txn.Txn.commit txn)
             | _ -> Vino_txn.Txn.abort txn ~reason:"playground");
             Format.printf "outcome:   %a@." Vino_vm.Cpu.pp_outcome outcome;
             Printf.printf "r0:        %d\n" (Vino_vm.Cpu.reg cpu 0);
             Printf.printf "cycles:    %d graft (%.1f us at 120 MHz)\n"
               (Vino_vm.Cpu.cycles cpu)
               (Vino_vm.Costs.us_of_cycles (Vino_vm.Cpu.cycles cpu));
             Printf.printf "insns:     %d executed, %d memory accesses\n"
               (Vino_vm.Cpu.insns_executed cpu)
               (Vino_vm.Cpu.mem_accesses cpu)));
      Vino_core.Kernel.run kernel;
      Printf.printf "simulated time including kernel services: %.1f us\n"
        (Vino_core.Kernel.now_us kernel)

(* ------------------------------- tables ------------------------------- *)

let run_table iterations = function
  | "table3" ->
      Vino_measure.Table.print ~title:"Table 3: read-ahead"
        (Vino_measure.Sc_readahead.table ~iterations ())
  | "table4" ->
      Vino_measure.Table.print ~title:"Table 4: page eviction"
        (Vino_measure.Sc_evict.table ~iterations ())
  | "table5" ->
      Vino_measure.Table.print ~title:"Table 5: scheduling"
        (Vino_measure.Sc_sched.table ~iterations ())
  | "table6" ->
      Vino_measure.Table.print ~title:"Table 6: encryption"
        (Vino_measure.Sc_crypt.table ~iterations ())
  | "table7" ->
      Vino_measure.Table.print ~title:"Table 7: abort costs"
        (Vino_measure.Abort_model.table7 ~iterations ())
  | "abortmodel" ->
      Vino_measure.Table.print ~title:"Abort model (35 + 10L)"
        (Vino_measure.Abort_model.model_table ~iterations ())
  | "lockfactor" ->
      Vino_measure.Table.print ~title:"Figures 4/5"
        (Vino_measure.Lock_factor.table ~iterations ())
  | other ->
      Printf.eprintf "unknown table %S\n" other;
      exit 1

let all_tables =
  [ "table3"; "table4"; "table5"; "table6"; "table7"; "abortmodel";
    "lockfactor" ]

(* ------------------------------ disaster ------------------------------ *)

(* Hand-rolled, field-ordered JSON: the snapshot-determinism CI job diffs
   forked (-j 1 and -j 4) and fresh campaign reports byte-for-byte, so the
   encoding must be a pure function of the report — in particular it must
   not mention whether trials were forked. *)
let disaster_json (r : Vino_disaster.Campaign.report) =
  let module C = Vino_disaster.Campaign in
  let b = Buffer.create 4096 in
  let f fmt = Printf.bprintf b fmt in
  f "{\n";
  f "  \"seed\": %d,\n" r.C.seed;
  f "  \"count\": %d,\n" r.C.count;
  f "  \"records\": [";
  List.iteri
    (fun k (rc : C.record) ->
      if k > 0 then f ",";
      f "\n    {\"index\": %d, \"family\": %S, \"kind\": %S, \"note\": %S, "
        rc.C.index
        (Vino_disaster.Site.family_name rc.C.family)
        (Vino_disaster.Injector.name rc.C.kind)
        rc.C.note;
      f "\"expect\": %S, \"observed\": %S, \"vtime\": %d, "
        (Vino_disaster.Injector.expectation_name rc.C.expect)
        (Vino_disaster.Injector.expectation_name rc.C.observed)
        rc.C.vtime;
      f "\"fingerprint\": %S, \"violations\": [" rc.C.fingerprint;
      List.iteri
        (fun j v ->
          if j > 0 then f ", ";
          f "%S" v)
        rc.C.violations;
      f "]}")
    r.C.records;
  f "\n  ]\n}\n";
  Buffer.contents b

let disaster seed count costs jobs mode fork recheck strategy json =
  set_mode mode;
  let strategy =
    match strategy with
    | "txn" -> Vino_core.Kernel.Txn_undo
    | "snapshot" -> Vino_core.Kernel.Snapshot_rollback
    | other ->
        Printf.eprintf "unknown strategy %S; try txn or snapshot\n" other;
        exit 2
  in
  with_pool jobs (fun pool ->
      let report =
        Vino_disaster.Campaign.run ?pool ~fork ~recheck_every:recheck
          ~strategy ~seed ~count ()
      in
      if json then print_string (disaster_json report)
      else Format.printf "%a@." Vino_disaster.Campaign.pp report;
      if costs then
        Vino_measure.Table.print
          ~title:"Disaster rig: recovery cost by fault class (stream site)"
          ~notes:"Delta over the healthy row is detection + abort + removal."
          (Vino_measure.Sc_disaster.table ?pool ());
      if not (Vino_disaster.Campaign.ok report) then begin
        List.iter
          (Printf.eprintf "violation: %s\n")
          (Vino_disaster.Campaign.violations report);
        exit 1
      end)

(* -------------------------------- serve ------------------------------- *)

module Serve = Vino_net.Serve

(* Hand-rolled, field-ordered JSON: the serve-determinism CI job diffs
   two of these byte-for-byte (-j 1 vs -j 4), so the encoding must not
   depend on anything but the report. *)
let serve_json r =
  let cfg = r.Serve.config in
  let b = Buffer.create 4096 in
  let f fmt = Printf.bprintf b fmt in
  f "{\n";
  f
    "  \"config\": {\"tenants\": %d, \"requests\": %d, \"interval\": %d, \
     \"pause\": %d, \"max_inflight\": %d, \"jit_cache_cap\": %d, \
     \"reinstall_every\": %d, \"shards\": %d, \"path\": %S, \"seed\": %d, \
     \"runaway\": %s, \"net_quota\": %d},\n"
    cfg.Serve.tenants cfg.Serve.requests cfg.Serve.interval cfg.Serve.pause
    cfg.Serve.max_inflight cfg.Serve.jit_cache_cap cfg.Serve.reinstall_every
    cfg.Serve.shards
    (Serve.path_name cfg.Serve.path)
    cfg.Serve.seed
    (match cfg.Serve.runaway with
    | None -> "null"
    | Some i -> string_of_int i)
    cfg.Serve.net_quota;
  f "  \"served\": %d,\n" r.Serve.served;
  f "  \"rejected\": %d,\n" r.Serve.rejected;
  f "  \"admission_audited\": %d,\n" r.Serve.admission_audited;
  f "  \"handler_failures\": %d,\n" r.Serve.handler_failures;
  f "  \"transmitted\": %d,\n" r.Serve.transmitted;
  f "  \"quota_denials\": %d,\n" r.Serve.quota_denials;
  f "  \"jit\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d},\n"
    r.Serve.jit_hits r.Serve.jit_misses r.Serve.jit_evictions;
  f "  \"drain_us\": %.6f,\n" r.Serve.drain_us;
  f "  \"throughput_rps\": %.6f,\n" r.Serve.throughput_rps;
  let st = Vino_sim.Stats.create () in
  List.iter (Vino_sim.Stats.add st) (Serve.latencies r);
  f "  \"latency_us\": {\"p50\": %.6f, \"p99\": %.6f, \"p999\": %.6f},\n"
    (Vino_sim.Stats.percentile st 50.)
    (Vino_sim.Stats.percentile st 99.)
    (Vino_sim.Stats.percentile st 99.9);
  f "  \"per_tenant\": [";
  List.iteri
    (fun k (t, fam, served, rejected) ->
      if k > 0 then f ", ";
      f "{\"tenant\": %d, \"family\": %S, \"served\": %d, \"rejected\": %d}" t
        fam served rejected)
    r.Serve.per_tenant;
  f "],\n";
  f "  \"samples\": [";
  List.iteri
    (fun k (t, req, lat) ->
      if k > 0 then f ", ";
      f "[%d, %d, %.6f]" t req lat)
    r.Serve.samples;
  f "]\n}\n";
  Buffer.contents b

let serve_print r =
  let cfg = r.Serve.config in
  Printf.printf "serve: %d tenants x %d requests on %d shards (%s path)\n"
    cfg.Serve.tenants cfg.Serve.requests cfg.Serve.shards
    (Serve.path_name cfg.Serve.path);
  Printf.printf "  served %d, rejected %d (audited %d), handler failures %d\n"
    r.Serve.served r.Serve.rejected r.Serve.admission_audited
    r.Serve.handler_failures;
  Printf.printf "  net: %d transmitted, %d quota denials\n" r.Serve.transmitted
    r.Serve.quota_denials;
  Printf.printf "  jit cache: %d hits, %d misses, %d evictions\n"
    r.Serve.jit_hits r.Serve.jit_misses r.Serve.jit_evictions;
  let st = Vino_sim.Stats.create () in
  List.iter (Vino_sim.Stats.add st) (Serve.latencies r);
  Printf.printf "  makespan %.2f us, throughput %.1f req/s\n" r.Serve.drain_us
    r.Serve.throughput_rps;
  Printf.printf "  latency p50 %.2f us, p99 %.2f us, p999 %.2f us\n"
    (Vino_sim.Stats.percentile st 50.)
    (Vino_sim.Stats.percentile st 99.)
    (Vino_sim.Stats.percentile st 99.9);
  Printf.printf "  %-8s %-6s %8s %9s\n" "tenant" "family" "served" "rejected";
  List.iter
    (fun (t, fam, served, rejected) ->
      Printf.printf "  %-8d %-6s %8d %9d\n" t fam served rejected)
    r.Serve.per_tenant

let serve tenants requests interval pause inflight cache reinstall shards path
    seed runaway net_quota json jobs =
  let cfg =
    {
      Serve.tenants;
      requests;
      interval;
      pause;
      max_inflight = inflight;
      jit_cache_cap = cache;
      reinstall_every = reinstall;
      shards;
      path;
      seed;
      runaway;
      net_quota;
    }
  in
  with_pool jobs (fun pool ->
      let r = Serve.run ?pool cfg in
      if json then print_string (serve_json r) else serve_print r)

(* -------------------------------- trace ------------------------------- *)

module Trace = Vino_trace.Trace

(* Drive a stream channel with the xor graft installed: every transfer
   goes through the full Graft_point.invoke path (dispatch, txn, SFI,
   commit), so the profiler sees real sandbox/body/txn buckets. *)
let trace_stream ~transfers () =
  let kernel = Vino_core.Kernel.create ~mem_words:(1 lsl 16) () in
  let chan = Vino_stream.Channel.create kernel ~name:"trace-chan" () in
  let obj =
    Vino_vm.Asm.assemble_exn (Vino_stream.Grafts.xor_encrypt_source ~key:0x5E)
  in
  (match Vino_core.Kernel.seal kernel obj with
  | Error e ->
      Printf.eprintf "seal failed: %s\n" e;
      exit 1
  | Ok image -> (
      match Vino_stream.Channel.install chan ~cred:Vino_core.Cred.root image with
      | Error e ->
          Printf.eprintf "install failed: %s\n" e;
          exit 1
      | Ok () -> ()));
  let data = Array.init Vino_stream.Channel.buffer_words_8kb (fun k -> k) in
  ignore
    (Vino_sim.Engine.spawn kernel.Vino_core.Kernel.engine ~name:"trace-app"
       (fun () ->
         for _ = 1 to transfers do
           ignore
             (Vino_stream.Channel.transfer chan ~cred:Vino_core.Cred.root data)
         done));
  Vino_core.Kernel.run kernel

(* Traced campaigns never fork: a warmed site's JIT translation cache
   survives restore (translations are pure and cost no virtual cycles), so
   forked trials would report different translate/hit trace counters than
   fresh ones. *)
let run_trace_scenario ?pool ~transfers ~seed ~count = function
  | "stream" -> trace_stream ~transfers ()
  | "disaster" ->
      ignore (Vino_disaster.Campaign.run ?pool ~fork:false ~seed ~count ())
  | "both" ->
      trace_stream ~transfers ();
      ignore (Vino_disaster.Campaign.run ?pool ~fork:false ~seed ~count ())
  | other ->
      Printf.eprintf "unknown scenario %S; try stream, disaster or both\n"
        other;
      exit 1

let trace scenario transfers seed count json span_tail jobs mode =
  set_mode mode;
  let sink = Trace.create () in
  with_pool jobs (fun pool ->
      Trace.with_t sink (fun () ->
          run_trace_scenario ?pool ~transfers ~seed ~count scenario));
  if json then
    print_string (Vino_trace.Json.to_string (Trace.report_json ~scenario sink))
  else Format.printf "%a" (Trace.pp_report ~span_tail) sink

(* -------------------------------- rules ------------------------------- *)

let rules () =
  let entries =
    [
      ( 1,
        "Grafts must be preemptible",
        "sliced execution in Vino_core.Wrapper; Cpu poll points" );
      ( 2,
        "No holding locks / limited resources for excessive periods",
        "Vino_txn.Lock time-outs abort the holder; Rlimit quantity limits" );
      ( 3,
        "No access to memory without permission",
        "MiSFIT Sandbox instructions confine every load/store to the segment"
      );
      ( 4,
        "No calling functions that alter/return protected data",
        "Kcall.register ~callable:false; linker rejects imports" );
      ( 5,
        "No replacing restricted kernel functions",
        "Graft_point ~restricted:true requires privileged credentials" );
      ( 6,
        "Never execute grafts not known to be safe",
        "Image signatures verified by the dynamic linker" );
      ( 7,
        "No calling functions without access",
        "static: linker relocation check; dynamic: Checkcall hash probe" );
      ( 8,
        "Malicious grafts affect only consenting applications",
        "scheduler delegate groups; per-VAS eviction grafts; Cao's principle"
      );
      ( 9,
        "The kernel makes progress despite faulty grafts",
        "transaction abort + undo + forcible graft removal + default fallback"
      );
    ]
  in
  print_endline "Table 1 — rules for grafting, and what enforces them here:";
  List.iter
    (fun (n, rule, how) -> Printf.printf "%d. %-55s %s\n" n rule how)
    entries

(* ------------------------------- points ------------------------------- *)

let points () =
  (* build a demo kernel with one of everything and list its namespace *)
  let kernel = Vino_core.Kernel.create () in
  let disk = Vino_fs.Disk.create kernel.Vino_core.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:256 () in
  let file =
    Vino_fs.File.openf ~kernel ~cache ~disk ~name:"demo" ~first_block:0
      ~blocks:64 ()
  in
  let vas = Vino_vmem.Vas.create kernel ~name:"demo-vas" () in
  let runq = Vino_sched.Runq.create kernel () in
  let task = Vino_sched.Runq.spawn_task runq ~name:"demo-task" in
  let channel = Vino_stream.Channel.create kernel ~name:"demo-chan" () in
  let httpd = Vino_net.Httpd.create kernel () in
  let ns = Vino_core.Namespace.create () in
  Vino_core.Namespace.register ns
    (Vino_core.Namespace.of_function_point (Vino_fs.File.ra_point file) kernel
       ~shared_words:16 ());
  Vino_core.Namespace.register ns
    (Vino_core.Namespace.of_function_point (Vino_vmem.Vas.evict_point vas)
       kernel ~shared_words:64 ());
  Vino_core.Namespace.register ns
    (Vino_core.Namespace.of_function_point
       (Vino_sched.Runq.delegate_point task)
       kernel ~shared_words:4 ());
  Vino_core.Namespace.register ns
    (Vino_core.Namespace.of_function_point
       (Vino_stream.Channel.point channel)
       kernel ());
  Vino_core.Namespace.register ns
    (Vino_core.Namespace.of_event_point
       (Vino_net.Port.event_point (Vino_net.Httpd.port httpd))
       kernel);
  print_endline "graft points on a demo kernel:";
  List.iter
    (fun name ->
      match Vino_core.Namespace.lookup ns name with
      | Some h ->
          Printf.printf "  %-28s %s%s\n" name
            (match h.Vino_core.Namespace.kind with
            | Vino_core.Namespace.Function_point -> "function"
            | Vino_core.Namespace.Event_point -> "event   ")
            (if h.Vino_core.Namespace.hrestricted then "  [restricted]"
             else "")
      | None -> ())
    (Vino_core.Namespace.names ns)

(* --------------------------------- CLI -------------------------------- *)

let dump name =
  let _, source = source_of name in
  print_string (Vino_vm.Parse.to_string source)

let inspect_cmd =
  let graft =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAFT"
          ~doc:"Builtin graft name or path to a .gasm file.")
  in
  let code =
    Arg.(value & flag & info [ "code" ] ~doc:"Print full disassembly.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Show a builtin graft before and after MiSFIT rewriting")
    Term.(const inspect $ graft $ code)

let graft_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"GRAFT" ~doc:"Builtin graft name or path to a file.")

let key_arg =
  Arg.(
    value & opt string default_key
    & info [ "key" ] ~doc:"Toolchain signing key.")

let flowcheck_arg =
  Arg.(
    value & flag
    & info [ "flowcheck" ]
        ~doc:
          "Gate on kcall-flow integrity: fail (and refuse to seal) if the \
           graft's kcall-flow graph cannot be resolved statically, i.e. an \
           indirect intra-graft call degraded it to fully permissive.")

let seal_cmd =
  let output =
    Arg.(
      value & opt string "graft.gimg"
      & info [ "o"; "output" ] ~doc:"Output image path.")
  in
  let unsafe =
    Arg.(
      value & flag
      & info [ "unsafe" ] ~doc:"Skip SFI rewriting (measurement only).")
  in
  Cmd.v
    (Cmd.info "seal" ~doc:"Run a graft through MiSFIT and write a .gimg image")
    Term.(const seal $ graft_pos $ output $ key_arg $ unsafe $ flowcheck_arg)

let verify_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAFT"
          ~doc:
            "A .gimg image (signature check), or a builtin graft name / \
             .gasm file (static SFI verification).")
  in
  let words =
    Arg.(
      value & opt int 4096
      & info [ "words" ]
          ~doc:"Minimum segment size the graft will be loaded with.")
  in
  let rewritten =
    Arg.(
      value & flag
      & info [ "rewritten" ]
          ~doc:
            "Treat the input as MiSFIT output (reserved-register use and \
             SFI instructions are legitimate).")
  in
  let seg_regs =
    Arg.(
      value & opt_all int []
      & info [ "seg" ] ~docv:"REG"
          ~doc:
            "Entry fact: register $(docv) holds a pointer to the start of \
             the graft segment (the graft point's marshalling guarantees \
             it). Repeatable.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a .gimg image's signature like the linker, or run the \
          static graft verifier over source and print a per-instruction \
          safety report")
    Term.(
      const verify $ path $ key_arg $ words $ rewritten $ seg_regs
      $ flowcheck_arg)

let run_cmd =
  let args =
    Arg.(
      value & opt_all int []
      & info [ "a"; "arg" ] ~doc:"Argument registers r1..r4, in order.")
  in
  let no_stubs =
    Arg.(
      value & flag
      & info [ "no-stub-imports" ]
          ~doc:"Fail on unresolved imports instead of stubbing them.")
  in
  let run name args no_stubs mode =
    set_mode mode;
    run_graft name args (not no_stubs)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a graft in a sandbox kernel (transaction, SFI, budget) and \
          report the outcome")
    Term.(const run $ graft_pos $ args $ no_stubs $ mode_arg)

let dump_cmd =
  let graft =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAFT"
          ~doc:"Builtin graft name or path to a .gasm file.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Emit a graft's source in the .gasm text format")
    Term.(const dump $ graft)

let tables_cmd =
  let which =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TABLE"
          ~doc:"table3..table7, abortmodel or lockfactor; all when omitted.")
  in
  let iterations =
    Arg.(
      value & opt int 120
      & info [ "iterations"; "n" ] ~doc:"Samples per measurement.")
  in
  let run iterations which mode =
    set_mode mode;
    match which with
    | Some t -> run_table iterations t
    | None -> List.iter (run_table iterations) all_tables
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's evaluation tables")
    Term.(const run $ iterations $ which $ mode_arg)

let disaster_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let count =
    Arg.(
      value & opt int 40
      & info [ "count"; "n" ]
          ~doc:
            "Number of injections. 40 covers every (family, injector) \
             combination.")
  in
  let costs =
    Arg.(
      value & flag
      & info [ "costs" ]
          ~doc:"Also print the per-fault-class recovery cost table.")
  in
  let fork =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "fork" ]
                ~doc:
                  "Fork each trial from a per-domain warmed kernel snapshot \
                   (default)." );
            ( false,
              info [ "no-fork" ]
                ~doc:
                  "Build a fresh site per trial; the report is \
                   byte-identical either way." );
          ])
  in
  let recheck =
    Arg.(
      value & opt int 1
      & info [ "recheck" ]
          ~doc:
            "Re-run every Nth trial with the same seed and flag differing \
             fingerprints as nondeterminism (default 1: every trial; 0 \
             disables).")
  in
  let strategy =
    Arg.(
      value & opt string "txn"
      & info [ "strategy" ]
          ~doc:
            "Recovery cost model: $(b,txn) (per-write undo log, the \
             default) or $(b,snapshot) (whole-kernel checkpoint before \
             dispatch, restore on fault).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the campaign report as JSON.")
  in
  Cmd.v
    (Cmd.info "disaster"
       ~doc:
         "Run a seeded fault-injection campaign — misbehaving grafts across \
          every graft-point family — and check the post-recovery invariants \
          (exit 1 on any violation)")
    Term.(
      const disaster $ seed $ count $ costs $ jobs_arg $ mode_arg $ fork
      $ recheck $ strategy $ json)

let serve_cmd =
  let d = Serve.default in
  let opt_int name dflt doc =
    Arg.(value & opt int dflt & info [ name ] ~doc)
  in
  let tenants = opt_int "tenants" d.Serve.tenants "Tenant count." in
  let requests =
    opt_int "requests" d.Serve.requests "Arrivals per tenant."
  in
  let interval =
    opt_int "interval" d.Serve.interval
      "Cycles between a tenant's arrivals (open loop)."
  in
  let pause =
    opt_int "pause" d.Serve.pause
      "Extra idle cycles after each reinstall burst."
  in
  let inflight =
    opt_int "inflight" d.Serve.max_inflight
      "Per-tenant admission cap (arrivals beyond it are shed and audited)."
  in
  let cache =
    opt_int "cache" d.Serve.jit_cache_cap
      "Per-shard-kernel translation cache capacity (LRU)."
  in
  let reinstall =
    opt_int "reinstall" d.Serve.reinstall_every
      "Reinstall a tenant's handler every k-th arrival (0 = never)."
  in
  let shards =
    opt_int "shards" d.Serve.shards
      "Shard count — part of the workload definition, not the $(b,-j) level."
  in
  let path =
    let path_conv =
      Arg.enum
        (List.map (fun p -> (Serve.path_name p, p)) Serve.all_paths)
    in
    Arg.(
      value
      & opt path_conv d.Serve.path
      & info [ "path" ] ~docv:"PATH"
          ~doc:
            "Execution path for every tenant handler: $(b,interp), \
             $(b,translated) or $(b,verified-translated).")
  in
  let seed = opt_int "seed" d.Serve.seed "Per-tenant work perturbation." in
  let runaway =
    Arg.(
      value
      & opt (some int) None
      & info [ "runaway" ] ~docv:"TENANT"
          ~doc:
            "Turn tenant $(docv) into a net.send flooder, capped by its \
             inherited packet slice.")
  in
  let net_quota =
    opt_int "net-quota" d.Serve.net_quota "Per-tenant Net_packets slice."
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the full report as stable JSON (byte-identical at any \
             $(b,-j) level).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant graft server: N tenants' event grafts under \
          open-loop traffic, with admission control, inherited resource \
          limits and a bounded translation cache; report throughput and \
          latency percentiles")
    Term.(
      const serve $ tenants $ requests $ interval $ pause $ inflight $ cache
      $ reinstall $ shards $ path $ seed $ runaway $ net_quota $ json
      $ jobs_arg)

let trace_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 string "stream"
      & info [] ~docv:"SCENARIO"
          ~doc:
            "What to trace: $(b,stream) (xor graft on a channel), \
             $(b,disaster) (seeded fault-injection campaign) or $(b,both).")
  in
  let transfers =
    Arg.(
      value & opt int 25
      & info [ "transfers" ] ~doc:"Stream transfers to drive.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Disaster campaign seed.")
  in
  let count =
    Arg.(
      value & opt int 40
      & info [ "count" ] ~doc:"Disaster campaign injections.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the vino-trace-v1 JSON report.")
  in
  let span_tail =
    Arg.(
      value & opt int 20
      & info [ "spans" ] ~doc:"Trace spans to print (newest last).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario under the observability sink and report the \
          per-graft cycle profile (sandbox/body/txn/undo buckets), the \
          kernel counters and the span tail")
    Term.(
      const trace $ scenario $ transfers $ seed $ count $ json $ span_tail
      $ jobs_arg $ mode_arg)

let rules_cmd =
  Cmd.v
    (Cmd.info "rules" ~doc:"Print Table 1 and what enforces each rule")
    Term.(const rules $ const ())

let points_cmd =
  Cmd.v
    (Cmd.info "points" ~doc:"List the graft points of a demo kernel")
    Term.(const points $ const ())

let main_cmd =
  let doc = "the simulated VINO extensible kernel" in
  let info = Cmd.info "vino" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      inspect_cmd; dump_cmd; seal_cmd; verify_cmd; run_cmd; tables_cmd;
      disaster_cmd; serve_cmd; trace_cmd; rules_cmd; points_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
