(** Experimental determination of per-resource lock time-outs.

    The paper: "Because resource requirements vary tremendously, reasonable
    time-out intervals must be determined (experimentally) on a
    per-resource-type basis" (§3.2), and "we expect to experimentally
    determine a more appropriate timing as the system matures" (§4.5).

    This harness runs a well-behaved contention workload against a lock,
    records hold times, and recommends a time-out at a safety factor above
    the observed tail — long enough that honest holders are never aborted,
    short enough to bound the damage of a hoarder. {!validate} then replays
    the workload (plus one hog) under the recommended time-out and reports
    false aborts and hog-recovery latency. *)

type workload = {
  holders : int;  (** concurrent well-behaved lock users *)
  hold_cycles : int -> int;  (** hold time of the k-th acquisition *)
  think_cycles : int;  (** gap between acquisitions *)
  rounds : int;  (** acquisitions per holder *)
}

val page_io_workload : workload
(** Page-style locks: held for tens of ms during I/O. *)

val bitmap_workload : workload
(** Free-space-bitmap-style locks: held a few hundred instructions. *)

type recommendation = {
  observed_p99_us : float;
  observed_max_us : float;
  recommended_timeout_us : float;  (** max observed x safety factor *)
}

val calibrate : ?safety_factor:float -> workload -> recommendation
(** Run the workload on a fresh kernel and derive a time-out
    (default safety factor 2.0). *)

type validation = {
  false_aborts : int;  (** honest transactions aborted by the time-out *)
  hog_recovery_us : float;
      (** time from a hog grabbing the lock to an honest waiter getting it *)
}

val validate : workload -> timeout_us:float -> validation
(** Replay the workload with every holder transactional under the given
    time-out, then inject a never-releasing hog and measure recovery. *)

val table : unit -> Table.row list
