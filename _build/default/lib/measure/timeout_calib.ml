module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock
module Stats = Vino_sim.Stats

type workload = {
  holders : int;
  hold_cycles : int -> int;
  think_cycles : int;
  rounds : int;
}

let us = Vino_txn.Tcosts.us

let page_io_workload =
  {
    holders = 4;
    (* 10-40 ms, like a page locked across an I/O *)
    hold_cycles = (fun k -> us (10_000. +. float_of_int (k mod 4) *. 10_000.));
    think_cycles = us 5_000.;
    rounds = 25;
  }

let bitmap_workload =
  {
    holders = 6;
    (* a few hundred instructions while the bitmap is traversed *)
    hold_cycles = (fun k -> 200 + (37 * (k mod 8)));
    think_cycles = 2_000;
    rounds = 200;
  }

type recommendation = {
  observed_p99_us : float;
  observed_max_us : float;
  recommended_timeout_us : float;
}

let run_honest_workload kernel lock w ~transactional ~samples =
  let engine = kernel.Kernel.engine in
  for h = 0 to w.holders - 1 do
    ignore
      (Engine.spawn engine
         ~name:(Printf.sprintf "holder-%d" h)
         (fun () ->
           for k = 0 to w.rounds - 1 do
             if transactional then begin
               let txn =
                 Txn.begin_ kernel.Kernel.txn_mgr
                   ~name:(Printf.sprintf "h%d-%d" h k)
                   ()
               in
               match Txn.acquire_lock txn lock Exclusive with
               | Ok () ->
                   let t0 = Engine.now engine in
                   Engine.delay (w.hold_cycles k);
                   (match Txn.commit txn with
                   | Ok () ->
                       Stats.add samples
                         (Vino_vm.Costs.us_of_cycles (Engine.now engine - t0))
                   | Error _ -> ());
                   Engine.delay w.think_cycles
               | Error _ ->
                   Txn.abort txn ~reason:"gave up";
                   Engine.delay w.think_cycles
             end
             else begin
               (match
                  Lock.acquire lock Exclusive
                    (Lock.plain_owner (Printf.sprintf "h%d" h))
                    ()
                with
               | Lock.Granted held ->
                   let t0 = Engine.now engine in
                   Engine.delay (w.hold_cycles k);
                   Lock.release held;
                   Stats.add samples
                     (Vino_vm.Costs.us_of_cycles (Engine.now engine - t0))
               | Lock.Gave_up _ -> ());
               Engine.delay w.think_cycles
             end
           done))
  done;
  Kernel.run kernel

let calibrate ?(safety_factor = 2.0) w =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  (* calibration runs with an effectively infinite time-out *)
  let lock = Kernel.make_lock kernel ~timeout:(us 60_000_000.) ~name:"calib" () in
  let samples = Stats.create () in
  run_honest_workload kernel lock w ~transactional:false ~samples;
  let p99 = Stats.percentile samples 99. in
  let maximum = Stats.max_value samples in
  {
    observed_p99_us = p99;
    observed_max_us = maximum;
    recommended_timeout_us = maximum *. safety_factor;
  }

type validation = { false_aborts : int; hog_recovery_us : float }

let validate w ~timeout_us =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let lock =
    Kernel.make_lock kernel
      ~timeout:(Vino_vm.Costs.cycles_of_us timeout_us)
      ~name:"validated" ()
  in
  let samples = Stats.create () in
  run_honest_workload kernel lock w ~transactional:true ~samples;
  let false_aborts = Txn.aborts kernel.Kernel.txn_mgr in
  (* now a hog takes the lock and spins until told to abort *)
  let engine = kernel.Kernel.engine in
  let recovery = ref 0. in
  let hog_started = ref 0 in
  ignore
    (Engine.spawn engine ~name:"hog" (fun () ->
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"hog" () in
         match Txn.acquire_lock txn lock Exclusive with
         | Ok () ->
             hog_started := Engine.now engine;
             let rec spin () =
               match Txn.poll txn () with
               | Some reason -> Txn.abort txn ~reason
               | None ->
                   Engine.delay 1_000;
                   spin ()
             in
             spin ()
         | Error reason -> Txn.abort txn ~reason));
  ignore
    (Engine.spawn engine ~name:"honest-waiter" (fun () ->
         Engine.delay (us 500.);
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"waiter" () in
         (match Txn.acquire_lock txn lock Exclusive with
         | Ok () ->
             recovery :=
               Vino_vm.Costs.us_of_cycles (Engine.now engine - !hog_started)
         | Error _ -> ());
         ignore (Txn.commit txn)));
  Kernel.run kernel;
  { false_aborts; hog_recovery_us = !recovery }

let table () =
  List.concat_map
    (fun (name, w) ->
      let r = calibrate w in
      let v = validate w ~timeout_us:r.recommended_timeout_us in
      [
        Table.elapsed
          (Printf.sprintf "%s: observed p99 hold" name)
          r.observed_p99_us;
        Table.elapsed
          (Printf.sprintf "%s: recommended time-out" name)
          r.recommended_timeout_us;
        Table.elapsed
          (Printf.sprintf "%s: false aborts under it" name)
          (float_of_int v.false_aborts);
        Table.elapsed
          (Printf.sprintf "%s: hog recovery" name)
          v.hog_recovery_us;
      ])
    [ ("page-io", page_io_workload); ("bitmap", bitmap_workload) ]
