lib/measure/table.ml: Format List Printf String
