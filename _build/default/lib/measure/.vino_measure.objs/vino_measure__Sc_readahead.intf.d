lib/measure/sc_readahead.mli: Path Table Vino_sim
