lib/measure/sc_readahead.ml: List Path Probe Rig Table Vino_core Vino_fs Vino_sim Vino_vm
