lib/measure/lock_factor.mli: Table Vino_txn
