lib/measure/probe.mli: Vino_core Vino_sim
