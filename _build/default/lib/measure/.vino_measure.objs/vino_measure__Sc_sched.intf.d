lib/measure/sc_sched.mli: Path Table Vino_sim
