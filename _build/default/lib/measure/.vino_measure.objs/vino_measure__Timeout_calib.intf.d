lib/measure/timeout_calib.mli: Table
