lib/measure/sc_crypt.ml: Array List Path Probe Rig Table Vino_core Vino_sim Vino_stream Vino_vm
