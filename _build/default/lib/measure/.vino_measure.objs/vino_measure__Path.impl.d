lib/measure/path.ml: Format
