lib/measure/rig.ml: Format Vino_core Vino_sim Vino_txn Vino_vm
