lib/measure/probe.ml: Printexc Printf Vino_core Vino_sim Vino_vm
