lib/measure/table.mli: Format
