lib/measure/sc_evict.mli: Path Table Vino_sim
