lib/measure/abort_model.ml: List Printf Probe Sc_crypt Sc_evict Sc_readahead Sc_sched Table Vino_core Vino_sim Vino_txn Vino_vm
