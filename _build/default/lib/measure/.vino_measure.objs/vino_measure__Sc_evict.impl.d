lib/measure/sc_evict.ml: List Path Probe Rig Table Vino_core Vino_sim Vino_txn Vino_vm Vino_vmem
