lib/measure/timeout_calib.ml: List Printf Table Vino_core Vino_sim Vino_txn Vino_vm
