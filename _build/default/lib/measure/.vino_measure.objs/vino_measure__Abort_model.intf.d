lib/measure/abort_model.mli: Table
