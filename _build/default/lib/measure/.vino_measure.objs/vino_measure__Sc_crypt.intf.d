lib/measure/sc_crypt.mli: Path Table Vino_sim
