lib/measure/path.mli: Format
