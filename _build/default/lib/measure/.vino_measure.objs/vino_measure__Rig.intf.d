lib/measure/rig.mli: Vino_core Vino_misfit Vino_txn Vino_vm
