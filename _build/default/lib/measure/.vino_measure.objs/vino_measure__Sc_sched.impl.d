lib/measure/sc_sched.ml: List Path Printf Probe Rig Table Vino_core Vino_sched Vino_sim Vino_txn Vino_vm
