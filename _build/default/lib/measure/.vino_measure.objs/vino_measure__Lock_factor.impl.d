lib/measure/lock_factor.ml: Float List Printf Probe String Table Vino_core Vino_sim Vino_txn Vino_vm
