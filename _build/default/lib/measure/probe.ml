module Engine = Vino_sim.Engine
module Stats = Vino_sim.Stats

let samples kernel ?(warmup = 3) ?(iterations = 300) f =
  let engine = kernel.Vino_core.Kernel.engine in
  let stats = Stats.create () in
  ignore
    (Engine.spawn engine ~name:"probe" (fun () ->
         for k = 0 to warmup - 1 do
           f k
         done;
         for k = 0 to iterations - 1 do
           let t0 = Engine.now engine in
           f k;
           Stats.add stats
             (Vino_vm.Costs.us_of_cycles (Engine.now engine - t0))
         done));
  Vino_core.Kernel.run kernel;
  (match Engine.failures engine with
  | [] -> ()
  | (name, exn) :: _ ->
      failwith
        (Printf.sprintf "probe: process %s crashed: %s" name
           (Printexc.to_string exn)));
  stats

let mean_us kernel ?warmup ?iterations f =
  Stats.trimmed_mean (samples kernel ?warmup ?iterations f)
