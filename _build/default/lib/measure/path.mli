(** The six measured code paths of Table 2. *)

type t =
  | Base  (** graft support and indirection removed *)
  | Vino  (** normal kernel path: indirection + return-value verification *)
  | Null  (** graft stubs, transaction begin/commit, minimal graft *)
  | Unsafe  (** full graft code and lock overhead, no MiSFIT *)
  | Safe  (** full graft code protected with MiSFIT *)
  | Abort  (** complete safe path, transaction abort instead of commit *)

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
