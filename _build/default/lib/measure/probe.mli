(** Virtual-time measurement: run a thunk repeatedly inside an engine
    process and sample the elapsed virtual microseconds per iteration,
    with the paper's 10% two-sided trimming available via
    {!Vino_sim.Stats}. *)

val samples :
  Vino_core.Kernel.t ->
  ?warmup:int ->
  ?iterations:int ->
  (int -> unit) ->
  Vino_sim.Stats.t
(** [samples kernel f] runs [f 0 .. f (iterations-1)] (default 300, after
    [warmup] (default 3) untimed runs) inside a fresh engine process,
    drives the engine to completion, and returns per-iteration elapsed
    virtual time in microseconds.
    @raise Failure if any engine process crashed. *)

val mean_us :
  Vino_core.Kernel.t -> ?warmup:int -> ?iterations:int -> (int -> unit) -> float
(** Trimmed mean of {!samples}. *)
