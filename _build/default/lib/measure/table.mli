(** Rendering of paper-versus-measured tables. *)

type row = {
  label : string;
  paper_us : float option;  (** the paper's reported value, if any *)
  measured_us : float;
  incremental : bool;  (** an overhead line rather than an elapsed line *)
}

val elapsed : ?paper:float -> string -> float -> row
val overhead : ?paper:float -> string -> float -> row

val render : Format.formatter -> title:string -> ?notes:string -> row list -> unit
val print : title:string -> ?notes:string -> row list -> unit

val diffs : (string * float) list -> (string * float) list
(** Successive differences of a list of labelled elapsed values:
    [(l1,a);(l2,b);...] gives [(l2, b-a); ...]. *)
