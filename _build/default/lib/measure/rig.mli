(** Manual composition of the measured graft paths.

    {!Vino_core.Graft_point} implements the production behaviour (abort ⇒
    forcibly remove the graft, fall back to the default), which is wrong
    for measurement: the Abort path must abort the same graft thousands of
    times. The rig loads a graft once and exposes one invocation with an
    explicit commit/abort decision, mirroring Table 2's path definitions
    component by component. *)

type t = {
  kernel : Vino_core.Kernel.t;
  loaded : Vino_core.Linker.loaded;
  cred : Vino_core.Cred.t;
  limits : Vino_txn.Rlimit.t;
}

val load : Vino_core.Kernel.t -> words:int -> Vino_misfit.Image.t -> t
(** @raise Failure on a linker error. *)

val seg_base : t -> int
(** Base address of the graft segment (for writing shared data). *)

type outcome = Committed | Rolled_back | Failed of string

val run :
  t ->
  ?indirection:int ->
  ?check_cost:int ->
  ?setup:(Vino_vm.Cpu.t -> unit) ->
  ?check:(Vino_vm.Cpu.t -> bool) ->
  commit:bool ->
  unit ->
  outcome
(** One transactional graft invocation: charge the indirection, begin a
    transaction, execute under SFI, charge result checking and validate,
    then commit or deliberately abort. Must run inside an engine
    process. *)

val run_exn : t -> ?setup:(Vino_vm.Cpu.t -> unit) -> commit:bool -> unit -> unit
(** Like {!run} but raises [Failure] unless the invocation reached its
    commit/abort decision. *)
