lib/sched/runq.mli: Vino_core
