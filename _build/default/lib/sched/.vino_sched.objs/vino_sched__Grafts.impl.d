lib/sched/grafts.ml: Vino_vm
