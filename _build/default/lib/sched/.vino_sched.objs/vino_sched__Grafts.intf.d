lib/sched/grafts.mli: Vino_vm
