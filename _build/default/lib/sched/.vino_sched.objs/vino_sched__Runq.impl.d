lib/sched/runq.ml: Hashtbl List Printf Queue Vino_core Vino_sim Vino_txn Vino_vm
