module Asm = Vino_vm.Asm
open Vino_vm.Insn

let scan_and_return_self_source ?lock_kcall () : Asm.item list =
  (match lock_kcall with
  | Some name -> [ Asm.Kcall name ]
  | None -> [])
  @ [
    (* scan the process list, examining each entry through a collection-
       class method call (the paper notes theirs is not well-optimised:
       ~0.5 us per element, dominated by the call) *)
    Li (Asm.r5, 0);
    Label "scan";
    Br (Ge, Asm.r5, Asm.r3, "done");
    Alu (Add, Asm.r6, Asm.r2, Asm.r5);
    Ld (Asm.r7, Asm.r6, 0);
    Call "examine";
    Alui (Add, Asm.r5, Asm.r5, 1);
    Jmp "scan";
    Label "done";
    Mov (Asm.r0, Asm.r1);
    Ret;
    (* examine(r7): should this entry run instead of us? *)
    Label "examine";
    Br (Eq, Asm.r7, Asm.r1, "examine_self");
    Li (Asm.r9, 0);
    Ret;
    Label "examine_self";
    Li (Asm.r9, 1);
    Ret;
  ]

let handoff_source ~target : Asm.item list =
  [ Li (Asm.r0, target); Ret ]

let conditional_handoff_source ~flag_addr ~target : Asm.item list =
  [
    Li (Asm.r5, flag_addr);
    Ld (Asm.r6, Asm.r5, 0);
    Li (Asm.r7, 0);
    Br (Eq, Asm.r6, Asm.r7, "keep");
    Li (Asm.r0, target);
    Ret;
    Label "keep";
    Mov (Asm.r0, Asm.r1);
    Ret;
  ]
