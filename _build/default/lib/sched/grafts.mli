(** Scheduling graft sources (the Table 5 workload and the §4.3 examples). *)

val scan_and_return_self_source :
  ?lock_kcall:string -> unit -> Vino_vm.Asm.item list
(** The paper's measured delegate: lock (when [lock_kcall], normally
    {!Runq.proclist_lock_name}, is given) and scan the process list
    (r2 = address, r3 = count), examining each entry, then return the
    delegator's own id (r1). Entry convention matches
    {!Runq.delegate_point}. *)

val handoff_source : target:int -> Vino_vm.Asm.item list
(** A delegate that always hands the timeslice to a fixed thread id — the
    client-blocked-on-server / UI-to-video-thread pattern. *)

val conditional_handoff_source : flag_addr:int -> target:int -> Vino_vm.Asm.item list
(** Hand off to [target] only when the application has set the word at
    [flag_addr] in the shared window (e.g. "a frame is due"); otherwise
    keep the timeslice. *)
