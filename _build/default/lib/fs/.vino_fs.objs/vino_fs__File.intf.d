lib/fs/file.mli: Cache Disk Prefetch Syncer Vino_core
