lib/fs/disk.mli: Vino_sim
