lib/fs/volume.ml: Bytes Cache Disk File Hashtbl List Printf Syncer Vino_core Vino_sim Vino_txn
