lib/fs/syncer.mli: Cache Disk Vino_core Vino_vm
