lib/fs/syncer.ml: Cache Disk List Vino_core Vino_sim Vino_vm
