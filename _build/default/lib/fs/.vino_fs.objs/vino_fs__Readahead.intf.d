lib/fs/readahead.mli: File Vino_core Vino_vm
