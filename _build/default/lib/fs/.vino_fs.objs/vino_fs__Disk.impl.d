lib/fs/disk.ml: List Vino_sim Vino_vm
