lib/fs/prefetch.mli: Cache Disk Vino_sim
