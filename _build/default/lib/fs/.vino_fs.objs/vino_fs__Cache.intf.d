lib/fs/cache.mli:
