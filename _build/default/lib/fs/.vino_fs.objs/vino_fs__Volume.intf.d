lib/fs/volume.mli: Cache Disk File Syncer Vino_core
