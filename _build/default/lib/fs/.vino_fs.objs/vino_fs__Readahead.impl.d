lib/fs/readahead.ml: Vino_core Vino_vm
