lib/fs/cache.ml: Hashtbl List
