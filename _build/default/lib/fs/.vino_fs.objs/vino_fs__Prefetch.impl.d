lib/fs/prefetch.ml: Cache Disk List Vino_sim
