lib/fs/file.ml: Cache Disk List Prefetch Printf Syncer Vino_core Vino_sim Vino_txn Vino_vm
