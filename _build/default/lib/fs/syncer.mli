(** The write-back daemon, with a graftable flush-order policy.

    Dirty blocks accumulate in the cache ({!File.write} marks them); the
    syncer flushes them to disk — when kicked, when the dirty count passes
    its threshold, or synchronously via {!sync}. Together with write-back
    on LRU eviction this gives the buffer cache a complete write path.

    "A Prioritization Graft chooses a candidate from a set such as
    selecting a process to schedule, a page to evict, or a buffer to
    flush" (§4): {!flush_point} is that third graft point. Each flush
    round the policy is given the dirty set and the last block written and
    picks the next buffer; the kernel verifies the choice is actually
    dirty before using it. *)

type flush_request = {
  dirty : int list;  (** current dirty blocks, oldest-dirtied first *)
  last_flushed : int;  (** last block written (-1 initially) *)
}

type t

val create :
  Vino_core.Kernel.t ->
  cache:Cache.t ->
  disk:Disk.t ->
  ?threshold:int ->
  unit ->
  t
(** [threshold] (default 32) is the dirty-block count beyond which
    {!note_write} wakes the daemon on its own. *)

val flush_point : t -> (flush_request, int) Vino_core.Graft_point.t
(** Returns the next block to flush; the default takes the dirty list in
    aging (dirtied-first) order, like a conventional syncer. *)

val kick : t -> unit
(** Wake the daemon to flush everything currently dirty. *)

val note_write : t -> unit
(** Called by the write path; kicks the daemon past the threshold. *)

val sync : t -> unit
(** Flush all dirty blocks and wait for the disk to confirm them (must run
    inside an engine process). *)

val flushed : t -> int
(** Blocks written back by the daemon or {!sync}. *)

val flush_order : t -> int list
(** The order in which blocks were flushed, oldest first. *)

val stop : t -> unit

val nearest_first_source : Vino_vm.Asm.item list
(** A flush-policy graft that picks the dirty block closest to the last
    one written — shortening seeks, like an elevator in graft form. Entry:
    r2 = dirty-list address, r3 = count, r4 = last flushed block; returns
    the chosen block in r0. *)
