(** A simple volume: block allocation bitmap plus a flat directory.

    Files are contiguous extents (first-fit allocated) named in a single
    directory. The free-space bitmap is guarded by exactly the kind of
    short-hold lock the paper uses as its example of a tight time-out
    resource: "a free space bitmap should be locked for only a few
    hundreds of instructions while it is being traversed" (§3.2) — the
    bitmap lock here carries a sub-millisecond time-out. *)

type t

val create :
  Vino_core.Kernel.t ->
  disk:Disk.t ->
  ?cache_blocks:int ->
  ?blocks:int ->
  ?syncer_threshold:int ->
  unit ->
  t
(** Manage [blocks] (default 65536) of the disk behind one shared cache
    and one write-back syncer (whose auto-flush threshold is
    [syncer_threshold]). *)

val cache : t -> Cache.t
val syncer : t -> Syncer.t
val bitmap_lock_name : t -> string

val create_file :
  t -> name:string -> blocks:int -> (File.t, string) result
(** First-fit allocate a contiguous extent and enter it in the directory.
    Must run inside an engine process (the bitmap lock is taken). *)

val open_file : t -> name:string -> (File.t, string) result
(** Open an existing file (a fresh open-file object per call, as in VINO:
    descriptors are handles for kernel open-file objects). *)

val delete_file : t -> name:string -> (unit, string) result
(** Remove from the directory and free the extent bits. *)

val list_files : t -> (string * int) list
(** [(name, blocks)], sorted by name. *)

val free_blocks : t -> int
val used_blocks : t -> int

val fragmentation : t -> float
(** 1 - (largest free run / total free); 0 when unfragmented or full. *)
