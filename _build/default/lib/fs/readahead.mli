(** Read-ahead graft sources (§4.1.2-4.1.3).

    The application-directed policy: a buffer shared between the
    application and the graft carries the application's anticipated access
    pattern — each time the application issues a read it also places the
    location of its *next* read in the shared buffer — and the grafted
    [compute-ra] turns that into prefetch requests. *)

val pattern_slot : int
(** Word 0 of the shared window holds the next block (-1 = none). *)

val extent_slot : int
(** Shared-window word where the graft writes its decision. *)

val app_directed_source : lock_kcall:string -> Vino_vm.Asm.item list
(** Graft source: acquire the pattern-buffer lock (through the named
    graft-callable function), load the next block from the shared window
    (whose address the kernel passes in r4), and return it as a one-extent
    prefetch decision (count in r0, extent array address in r1). The code
    is position independent so it behaves identically with and without
    SFI. *)

val null_source : Vino_vm.Asm.item list
(** The minimal graft: no prefetch. Used for the null-path measurements. *)

val announce :
  Vino_core.Kernel.t ->
  (File.ra_request, int list) Vino_core.Graft_point.t ->
  int ->
  unit
(** The application side of the protocol: write the next intended block
    into the graft's shared window (no-op if the point is not grafted). *)
