module Asm = Vino_vm.Asm
module Mem = Vino_vm.Mem
module Graft_point = Vino_core.Graft_point

let pattern_slot = 0

let extent_slot = 8

let app_directed_source ~lock_kcall : Asm.item list =
  [
    (* lock the shared pattern buffer; released when the invocation's
       transaction commits (two-phase locking) *)
    Kcall lock_kcall;
    (* load the application's announced next block from the shared window
       (r4 = window address, passed by the kernel: the code is position
       independent, so it runs identically with and without SFI) *)
    Ld (Asm.r6, Asm.r4, pattern_slot);
    (* nothing announced? *)
    Li (Asm.r7, 0);
    Br (Vino_vm.Insn.Lt, Asm.r6, Asm.r7, "none");
    (* emit a one-extent decision *)
    Alui (Vino_vm.Insn.Add, Asm.r8, Asm.r4, extent_slot);
    St (Asm.r6, Asm.r8, 0);
    Li (Asm.r0, 1);
    Mov (Asm.r1, Asm.r8);
    Ret;
    Label "none";
    Li (Asm.r0, 0);
    Ret;
  ]

let null_source : Asm.item list = [ Li (Asm.r0, 0); Ret ]

let announce kernel point block =
  match Graft_point.shared_base point with
  | None -> ()
  | Some base ->
      Mem.store kernel.Vino_core.Kernel.mem (base + pattern_slot) block
