type mode = Shared | Exclusive

let conflicts a b =
  match (a, b) with Shared, Shared -> false | _, _ -> true

type t = {
  name : string;
  grant : mode -> holders:mode list -> waiters:mode list -> bool;
  insert : mode -> waiters:mode list -> int;
  indirections : int;
}

let no_holder_conflict mode holders =
  not (List.exists (fun h -> conflicts mode h) holders)

let reader_priority =
  {
    name = "reader-priority";
    grant = (fun mode ~holders ~waiters:_ -> no_holder_conflict mode holders);
    insert = (fun _mode ~waiters -> List.length waiters);
    indirections = 0;
  }

let fifo_fair =
  {
    name = "fifo-fair";
    grant =
      (fun mode ~holders ~waiters ->
        waiters = [] && no_holder_conflict mode holders);
    insert = (fun _mode ~waiters -> List.length waiters);
    indirections = 0;
  }

let factored p =
  { p with name = p.name ^ "-factored"; indirections = 2 }
