(** Encapsulated lock-manager policy decisions (paper §6, Figures 4 and 5).

    A conventional lock manager hard-codes at least two policy decisions in
    its [get_lock] path: whether an incoming request may be granted when it
    does not conflict with current holders (ignoring waiters — reader
    priority), and where a blocked request sits in the wait queue. The
    fully-factored implementation puts each decision behind an indirection
    so grafts can replace it, at the cost of a function call (~35 cycles)
    per decision point.

    [indirections] records how many such encapsulated decision points a
    policy consults per operation; the lock manager charges
    {!Tcosts.t.policy_indirection} cycles for each, which is what the
    Fig 4/5 ablation bench measures. *)

type mode = Shared | Exclusive

val conflicts : mode -> mode -> bool
(** Shared/Shared is the only compatible pair. *)

type t = {
  name : string;
  grant : mode -> holders:mode list -> waiters:mode list -> bool;
      (** may a fresh request be granted right now? *)
  insert : mode -> waiters:mode list -> int;
      (** index in the wait queue at which a blocked request is placed *)
  indirections : int;
}

val reader_priority : t
(** Figure 4: grant whenever no holder conflicts, ignoring the wait list;
    append to the waiters. Zero indirections — the conventional inlined
    implementation. *)

val fifo_fair : t
(** Grant only if no holder conflicts and nobody is already waiting; append.
    Zero indirections. *)

val factored : t -> t
(** The Figure 5 treatment of any policy: same decisions, but each of the
    two decision points (grant check, queue insertion) is consulted through
    an indirection. *)
