lib/txn/tcosts.mli:
