lib/txn/undo_log.ml: List
