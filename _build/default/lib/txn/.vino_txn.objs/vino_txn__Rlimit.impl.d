lib/txn/rlimit.ml: Array Format List
