lib/txn/lock.mli: Lock_policy Tcosts Vino_sim
