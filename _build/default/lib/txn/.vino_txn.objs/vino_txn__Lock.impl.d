lib/txn/lock.ml: List Lock_policy Printf Tcosts Vino_sim
