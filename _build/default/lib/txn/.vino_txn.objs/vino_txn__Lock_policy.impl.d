lib/txn/lock_policy.ml: List
