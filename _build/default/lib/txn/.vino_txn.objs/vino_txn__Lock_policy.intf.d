lib/txn/lock_policy.mli:
