lib/txn/tcosts.ml: Vino_vm
