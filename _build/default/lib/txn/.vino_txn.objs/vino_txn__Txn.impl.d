lib/txn/txn.ml: Hashtbl List Lock Result Tcosts Undo_log Vino_sim
