lib/txn/rlimit.mli: Format
