lib/txn/undo_log.mli:
