lib/txn/txn.mli: Lock Lock_policy Tcosts Vino_sim
