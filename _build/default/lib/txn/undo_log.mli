(** The in-memory undo call stack (paper §3.1).

    Every accessor function that mutates kernel state on behalf of a
    transaction pushes its inverse operation here. The log is transient (no
    redo, no durability): abort replays it LIFO; commit of a nested
    transaction merges it into the parent's log so the parent can still undo
    the child's effects. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> ?cost:int -> label:string -> (unit -> unit) -> unit
(** [cost] (cycles) is what replaying this entry will charge; it defaults to
    0 (the inverse of a cheap accessor). *)

val replay : t -> int
(** Run every undo operation, most recent first; empties the log and returns
    the total replay cost in cycles. An undo operation must not raise; if
    one does, the exception propagates after the log is left consistent
    (entries already run are removed). *)

val merge_into : parent:t -> t -> unit
(** Move all entries onto [parent] such that replaying [parent] runs the
    child's entries first (they are more recent). Empties the child. *)

val labels : t -> string list
(** Most recent first; for tests and debugging. *)
