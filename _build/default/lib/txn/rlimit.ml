type resource = Memory_words | Wired_pages | Io_slots | Net_packets

let all_resources = [ Memory_words; Wired_pages; Io_slots; Net_packets ]

let resource_name = function
  | Memory_words -> "memory-words"
  | Wired_pages -> "wired-pages"
  | Io_slots -> "io-slots"
  | Net_packets -> "net-packets"

let index = function
  | Memory_words -> 0
  | Wired_pages -> 1
  | Io_slots -> 2
  | Net_packets -> 3

type account = { limits : int array; uses : int array }
type t = { account : account }

let n = List.length all_resources

let create ?(memory_words = 0) ?(wired_pages = 0) ?(io_slots = 0)
    ?(net_packets = 0) () =
  let limits = Array.make n 0 in
  limits.(index Memory_words) <- memory_words;
  limits.(index Wired_pages) <- wired_pages;
  limits.(index Io_slots) <- io_slots;
  limits.(index Net_packets) <- net_packets;
  { account = { limits; uses = Array.make n 0 } }

let zero () = create ()

let unlimited () =
  let big = max_int / 2 in
  create ~memory_words:big ~wired_pages:big ~io_slots:big ~net_packets:big ()

let delegate t = { account = t.account }
let same_account a b = a.account == b.account
let limit t r = t.account.limits.(index r)
let used t r = t.account.uses.(index r)
let available t r = limit t r - used t r

let request t r amount =
  if amount <= 0 then invalid_arg "Rlimit.request: amount must be positive";
  let k = index r in
  if t.account.uses.(k) + amount > t.account.limits.(k) then Error `Denied
  else begin
    t.account.uses.(k) <- t.account.uses.(k) + amount;
    Ok ()
  end

let release t r amount =
  if amount <= 0 then invalid_arg "Rlimit.release: amount must be positive";
  let k = index r in
  t.account.uses.(k) <- max 0 (t.account.uses.(k) - amount)

let transfer ~src ~dst r amount =
  if amount <= 0 then invalid_arg "Rlimit.transfer: amount must be positive";
  if same_account src dst then Error `Denied
  else
    let k = index r in
    if src.account.limits.(k) - amount < src.account.uses.(k) then
      Error `Denied
    else begin
      src.account.limits.(k) <- src.account.limits.(k) - amount;
      dst.account.limits.(k) <- dst.account.limits.(k) + amount;
      Ok ()
    end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-13s %d/%d@ " (resource_name r) (used t r)
        (limit t r))
    all_resources;
  Format.fprintf ppf "@]"
