(** A kernel-resident NFS-style file service as an event graft (§3.5 names
    NFS servers alongside HTTP as the motivating event-graft services).

    The handler is added to a UDP port's event point (one datagram = one
    request = one worker thread + transaction). Its graft-callable kernel
    functions go through the real file-system substrate, so a request for
    an uncached block blocks the worker on simulated disk I/O — the whole
    stack, network event to disk and back, under graft protection. *)

type t

val create : Vino_core.Kernel.t -> ?port:int -> unit -> t
(** Claims the UDP port (default 2049) and registers ["nfs.lookup"],
    ["nfs.read"] and ["nfs.reply"]. *)

val port : t -> Port.t

val export : t -> fileid:int -> Vino_fs.File.t -> unit
(** Make a file reachable by id. *)

val server_source : Vino_vm.Asm.item list

val install : t -> cred:Vino_core.Cred.t -> (int, string) result

val read_request : t -> fileid:int -> block:int -> unit
(** Client side: send one read datagram. Run the kernel afterwards. *)

type status = Ok_read of { cache_hit : bool } | No_such_file | Bad_block

val responses : t -> status list
(** Oldest first. *)
