(** The outbound network path, flood-proofed (§2.2: grafts can "flood the
    network with packets").

    Two protections compose here:

    - packets are a quantity-constrained resource: each send debits the
      calling graft's {!Vino_txn.Rlimit.resource} [Net_packets] quota, so a
      flooder with zero (or exhausted) limits is refused;
    - a send is an externally visible action that cannot be undone, so the
      actual transmission is *deferred to commit* ({!Vino_txn.Txn.defer}):
      packets queued by a transaction that aborts never reach the wire,
      and the quota debited for them is released by the undo log. *)

type t

val create : Vino_core.Kernel.t -> ?wire_us_per_packet:float -> unit -> t
(** Registers the graft-callable function ["net.send"] (argument r1 =
    destination tag; returns 1 = queued, 0 = quota denied) and starts the
    NIC transmit process. *)

val send_from_kernel : t -> dest:int -> unit
(** Trusted kernel-side send (no quota, immediate queueing). *)

val transmitted : t -> int
(** Packets that actually left on the (simulated) wire. *)

val transmitted_to : t -> dest:int -> int
val quota_denials : t -> int
val queue_depth : t -> int
