lib/net/netout.mli: Vino_core
