lib/net/nfsd.ml: Hashtbl List Port Vino_core Vino_fs Vino_vm
