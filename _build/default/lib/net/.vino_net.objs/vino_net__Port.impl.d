lib/net/port.ml: Printf Vino_core
