lib/net/nfsd.mli: Port Vino_core Vino_fs Vino_vm
