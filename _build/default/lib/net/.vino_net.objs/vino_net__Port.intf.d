lib/net/port.mli: Vino_core
