lib/net/netout.ml: Hashtbl List Option Vino_core Vino_sim Vino_txn
