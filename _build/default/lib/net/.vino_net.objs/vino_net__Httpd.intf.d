lib/net/httpd.mli: Port Vino_core Vino_vm
