lib/net/httpd.ml: Hashtbl List Port Vino_core Vino_vm
