(** Stream graft sources (§4.4). All follow the channel convention:
    r1 = input area address, r2 = output area address, r3 = word count. *)

val xor_encrypt_source : key:int -> Vino_vm.Asm.item list
(** The paper's measured graft: trivial xor-style encryption of each word
    from input to output — not computationally intensive, which makes it a
    worst case for SFI overhead (almost all loads and stores). *)

val copy_source : Vino_vm.Asm.item list
(** The most trivial stream graft: copy input to output untransformed; the
    highest possible store ratio. *)

val rot13ish_source : Vino_vm.Asm.item list
(** A slightly heavier transform (add a constant, xor, shift) to show SFI
    overhead shrinking as computation per access grows. *)
