module Asm = Vino_vm.Asm
open Vino_vm.Insn

(* r5 = loop index, r6/r8 = addresses, r7 = datum *)
let transform_loop (body : Asm.item list) : Asm.item list =
  ([
    Li (Asm.r5, 0);
    Label "loop";
    Br (Ge, Asm.r5, Asm.r3, "done");
    Alu (Add, Asm.r6, Asm.r1, Asm.r5);
    Ld (Asm.r7, Asm.r6, 0);
  ]
    : Asm.item list)
  @ body
  @ [
      Alu (Add, Asm.r8, Asm.r2, Asm.r5);
      St (Asm.r7, Asm.r8, 0);
      Alui (Add, Asm.r5, Asm.r5, 1);
      Jmp "loop";
      Label "done";
      Li (Asm.r0, 0);
      Ret;
    ]

let xor_encrypt_source ~key =
  transform_loop [ Alui (Xor, Asm.r7, Asm.r7, key) ]

let copy_source = transform_loop []

let rot13ish_source =
  transform_loop
    [
      Alui (Add, Asm.r7, Asm.r7, 13);
      Alui (Xor, Asm.r7, Asm.r7, 0x5A5A);
      Alui (Shl, Asm.r9, Asm.r7, 1);
      Alu (Add, Asm.r7, Asm.r7, Asm.r9);
    ]
