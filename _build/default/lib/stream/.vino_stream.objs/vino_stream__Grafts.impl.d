lib/stream/grafts.ml: Vino_vm
