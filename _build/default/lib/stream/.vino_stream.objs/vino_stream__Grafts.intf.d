lib/stream/grafts.mli: Vino_vm
