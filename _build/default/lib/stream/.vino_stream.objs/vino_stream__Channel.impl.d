lib/stream/channel.ml: Array Printf Vino_core Vino_sim Vino_vm
