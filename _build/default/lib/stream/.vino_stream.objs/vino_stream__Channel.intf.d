lib/stream/channel.mli: Vino_core Vino_misfit Vino_txn
