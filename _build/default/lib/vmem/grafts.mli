(** Page-eviction graft sources (the Table 4 workload).

    The application places the page numbers it wants retained in the shared
    window (count at word 0, pages from word 1). During page-out the graft
    checks the globally selected victim against that list; if the victim is
    protected it scans the candidate list for the first page that is not,
    and returns it; otherwise it accepts the victim. *)

val protect_hot_pages_source :
  ?lock_kcall:string -> unit -> Vino_vm.Asm.item list
(** Entry: r1 = victim page, r2 = candidate array address, r3 = candidate
    count. Returns the chosen page in r0. [lock_kcall] (normally
    {!Vas.lock_name}) prepends acquisition of the shared-window lock. *)

val accept_victim_source : Vino_vm.Asm.item list
(** The null graft: always agrees with the global choice. *)

val suggest_invalid_source : Vino_vm.Asm.item list
(** A misbehaving graft that always suggests page -42 — used to test that
    the kernel ignores invalid suggestions. *)
