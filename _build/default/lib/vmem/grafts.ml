module Asm = Vino_vm.Asm
open Vino_vm.Insn

(* Register use: r1 victim, r2 candidates addr, r3 count (arguments);
   r5 protected count, r7 page under test, r8 loop index, r10/r11/r12
   scratch for the is-protected scan. The protected list lives in the
   shared window: count at word 0, pages from word 1. *)
let protect_hot_pages_source ?lock_kcall () : Asm.item list =
  (match lock_kcall with
  | Some name -> [ Asm.Kcall name ]
  | None -> [])
  @ [
    (* r4 = shared hot-page window address (kernel-provided) *)
    Ld (Asm.r5, Asm.r4, 0) (* r5 = number of protected pages *);
    (* is the victim protected? *)
    Mov (Asm.r7, Asm.r1);
    Call "is_protected";
    Li (Asm.r6, 0);
    Br (Eq, Asm.r0, Asm.r6, "return_victim");
    (* victim is hot: scan candidates for the first unprotected page *)
    Li (Asm.r8, 0);
    Label "scan";
    Br (Ge, Asm.r8, Asm.r3, "return_victim");
    Alu (Add, Asm.r9, Asm.r2, Asm.r8);
    Ld (Asm.r7, Asm.r9, 0);
    Call "is_protected";
    Li (Asm.r6, 0);
    Br (Eq, Asm.r0, Asm.r6, "found");
    Alui (Add, Asm.r8, Asm.r8, 1);
    Jmp "scan";
    Label "found";
    Mov (Asm.r0, Asm.r7);
    Ret;
    Label "return_victim";
    Mov (Asm.r0, Asm.r1);
    Ret;
    (* is_protected: r7 = page -> r0 = 1/0 *)
    Label "is_protected";
    Li (Asm.r10, 0);
    Label "p_loop";
    Br (Ge, Asm.r10, Asm.r5, "p_no");
    Alu (Add, Asm.r11, Asm.r4, Asm.r10);
    Ld (Asm.r12, Asm.r11, 1);
    Br (Eq, Asm.r12, Asm.r7, "p_yes");
    Alui (Add, Asm.r10, Asm.r10, 1);
    Jmp "p_loop";
    Label "p_yes";
    Li (Asm.r0, 1);
    Ret;
    Label "p_no";
    Li (Asm.r0, 0);
    Ret;
  ]

let accept_victim_source : Asm.item list = [ Mov (Asm.r0, Asm.r1); Ret ]

let suggest_invalid_source : Asm.item list = [ Li (Asm.r0, -42); Ret ]
