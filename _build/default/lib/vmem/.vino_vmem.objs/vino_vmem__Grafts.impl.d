lib/vmem/grafts.ml: Vino_vm
