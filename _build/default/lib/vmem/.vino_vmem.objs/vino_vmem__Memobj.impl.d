lib/vmem/memobj.ml: Evict Hashtbl List Vas Vino_fs Vino_sim Vino_txn
