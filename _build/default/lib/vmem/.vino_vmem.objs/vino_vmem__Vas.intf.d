lib/vmem/vas.mli: Frame Vino_core
