lib/vmem/evict.ml: Frame Hashtbl List Result Vas Vino_core Vino_fs Vino_sim Vino_txn
