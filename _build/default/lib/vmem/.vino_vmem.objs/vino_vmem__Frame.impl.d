lib/vmem/frame.ml: Array List
