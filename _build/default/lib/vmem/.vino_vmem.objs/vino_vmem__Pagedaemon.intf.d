lib/vmem/pagedaemon.mli: Evict Vino_core
