lib/vmem/memobj.mli: Evict Vas Vino_core Vino_fs
