lib/vmem/evict.mli: Frame Vas Vino_core Vino_fs
