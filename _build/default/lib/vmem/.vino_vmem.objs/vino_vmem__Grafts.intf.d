lib/vmem/grafts.mli: Vino_vm
