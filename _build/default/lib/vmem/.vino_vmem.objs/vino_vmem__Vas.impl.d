lib/vmem/vas.ml: Frame Hashtbl List Printf Vino_core Vino_txn Vino_vm
