lib/vmem/pagedaemon.ml: Evict Vino_core Vino_sim
