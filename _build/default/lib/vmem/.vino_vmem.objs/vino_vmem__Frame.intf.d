lib/vmem/frame.mli:
