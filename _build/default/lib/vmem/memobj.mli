(** Memory objects (§4.2.1).

    "A virtual address space consists of a collection of memory objects
    mapped to virtual address ranges. A memory object represents a
    contiguous piece of data that may be backed by a variety of objects
    such as a device, a network connection, or a file. Once associated,
    the object becomes responsible for handling page faults in a manner
    appropriate for the materialized item."

    A fault on a file-backed object reads through the real file-system
    substrate (cache, disk, and any installed [compute-ra] graft — mapped
    files get grafted read-ahead for free); anonymous objects zero-fill. *)

type backing =
  | Anonymous
  | File_backed of { file : Vino_fs.File.t; start_block : int }

type t

val map :
  Evict.t -> Vas.t -> vpage_start:int -> pages:int -> backing -> t
(** Associate [pages] pages starting at [vpage_start] with the backing.
    @raise Invalid_argument on a range overlapping an existing object of
    this VAS or a negative range. *)

val unmap : t -> unit
(** Forget the object (resident pages stay until evicted normally). *)

val vas : t -> Vas.t
val vpage_start : t -> int
val pages : t -> int
val backing : t -> backing
val covers : t -> vpage:int -> bool

val touch :
  t -> cred:Vino_core.Cred.t -> page:int -> [ `Hit | `Fault ]
(** Reference page [page] (object-relative), materialising it on a fault
    via the backing. Must run inside an engine process.
    @raise Invalid_argument if [page] is outside the object. *)

val faults : t -> int
val find : Vas.t -> vpage:int -> t option
(** The object covering a virtual page, if any. *)
