(** The page-out daemon (§2.5, §4.2).

    A background kernel thread that keeps the free-frame pool between a low
    and a high watermark by running the two-level eviction algorithm. Since
    the daemon *relies on grafts returning* to make forward progress, the
    eviction graft points it drives carry a watchdog: a graft that never
    returns is timed out, its transaction aborted, and the daemon continues
    with the default policy — the paper's answer to covert denial of
    service. *)

type t

val create :
  Vino_core.Kernel.t ->
  evictor:Evict.t ->
  ?low_watermark:int ->
  ?high_watermark:int ->
  unit ->
  t
(** Watermarks are free-frame counts (defaults 8/16). The daemon sleeps
    until kicked. *)

val kick : t -> unit
(** Wake the daemon (called by the fault path when memory is tight). *)

val passes : t -> int
val evicted : t -> int
val stop : t -> unit
