(** Code signing for processed grafts (paper §3.3).

    MiSFIT computes a digital signature of the graft and stores it with the
    compiled code; when VINO loads a graft it recomputes the checksum and
    compares it with the saved copy. We model the signature as a keyed
    FNV-1a digest over the serialised instruction stream: only the trusted
    toolchain (holder of the key) can produce a digest the kernel accepts,
    so unprocessed or tampered code is rejected at load time. *)

type t = private int

val digest : key:string -> int array -> t
val equal : t -> t -> bool
val forge : int -> t
(** Construct an arbitrary signature value — used by tests that model an
    attacker guessing signatures. *)

val pp : Format.formatter -> t -> unit
