lib/misfit/sign.mli: Format
