lib/misfit/rewrite.mli: Vino_vm
