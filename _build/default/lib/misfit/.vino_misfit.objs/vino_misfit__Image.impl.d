lib/misfit/image.ml: Array Char In_channel List Out_channel Printf Result Rewrite Sign String Vino_vm
