lib/misfit/sign.ml: Array Char Format Int String
