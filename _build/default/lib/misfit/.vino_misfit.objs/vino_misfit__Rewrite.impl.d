lib/misfit/rewrite.ml: Array Hashtbl List Printf Vino_vm
