lib/misfit/image.mli: Sign Vino_vm
