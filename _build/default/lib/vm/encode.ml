let words_per_insn = 4

let alu_code : Insn.alu -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let alu_of_code = function
  | 0 -> Ok Insn.Add
  | 1 -> Ok Insn.Sub
  | 2 -> Ok Insn.Mul
  | 3 -> Ok Insn.Div
  | 4 -> Ok Insn.Rem
  | 5 -> Ok Insn.And
  | 6 -> Ok Insn.Or
  | 7 -> Ok Insn.Xor
  | 8 -> Ok Insn.Shl
  | 9 -> Ok Insn.Shr
  | n -> Error (Printf.sprintf "bad ALU op code %d" n)

let cond_code : Insn.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

let cond_of_code = function
  | 0 -> Ok Insn.Eq
  | 1 -> Ok Insn.Ne
  | 2 -> Ok Insn.Lt
  | 3 -> Ok Insn.Le
  | 4 -> Ok Insn.Gt
  | 5 -> Ok Insn.Ge
  | n -> Error (Printf.sprintf "bad condition code %d" n)

let cell : Insn.t -> int * int * int * int = function
  | Li (r, v) -> (0, r, v, 0)
  | Mov (a, b) -> (1, a, b, 0)
  | Alu (op, d, a, b) -> (2, alu_code op, d, (a lsl 8) lor b)
  | Alui (op, d, a, v) -> (3, (alu_code op lsl 8) lor d, a, v)
  | Ld (d, b, o) -> (4, d, b, o)
  | St (v, b, o) -> (5, v, b, o)
  | Br (c, a, b, t) -> (6, (cond_code c lsl 8) lor a, b, t)
  | Jmp t -> (7, t, 0, 0)
  | Call t -> (8, t, 0, 0)
  | Callr r -> (9, r, 0, 0)
  | Ret -> (10, 0, 0, 0)
  | Kcall id -> (11, id, 0, 0)
  | Kcallr r -> (12, r, 0, 0)
  | Push r -> (13, r, 0, 0)
  | Pop r -> (14, r, 0, 0)
  | Sandbox r -> (15, r, 0, 0)
  | Checkcall r -> (16, r, 0, 0)
  | Halt -> (17, 0, 0, 0)

let to_words prog =
  let out = Array.make (Array.length prog * words_per_insn) 0 in
  Array.iteri
    (fun k i ->
      let op, a, b, c = cell i in
      out.(4 * k) <- op;
      out.((4 * k) + 1) <- a;
      out.((4 * k) + 2) <- b;
      out.((4 * k) + 3) <- c)
    prog;
  out

let decode_cell op a b c : (Insn.t, string) result =
  match op with
  | 0 -> Ok (Insn.Li (a, b))
  | 1 -> Ok (Insn.Mov (a, b))
  | 2 ->
      Result.map
        (fun alu -> Insn.Alu (alu, b, c lsr 8, c land 0xff))
        (alu_of_code a)
  | 3 ->
      Result.map
        (fun alu -> Insn.Alui (alu, a land 0xff, b, c))
        (alu_of_code (a lsr 8))
  | 4 -> Ok (Insn.Ld (a, b, c))
  | 5 -> Ok (Insn.St (a, b, c))
  | 6 ->
      Result.map
        (fun cond -> Insn.Br (cond, a land 0xff, b, c))
        (cond_of_code (a lsr 8))
  | 7 -> Ok (Insn.Jmp a)
  | 8 -> Ok (Insn.Call a)
  | 9 -> Ok (Insn.Callr a)
  | 10 -> Ok Insn.Ret
  | 11 -> Ok (Insn.Kcall a)
  | 12 -> Ok (Insn.Kcallr a)
  | 13 -> Ok (Insn.Push a)
  | 14 -> Ok (Insn.Pop a)
  | 15 -> Ok (Insn.Sandbox a)
  | 16 -> Ok (Insn.Checkcall a)
  | 17 -> Ok Insn.Halt
  | n -> Error (Printf.sprintf "unknown opcode %d" n)

let of_words words =
  let n = Array.length words in
  if n mod words_per_insn <> 0 then Error "truncated instruction stream"
  else
    let count = n / words_per_insn in
    let rec build acc k =
      if k = count then Ok (Array.of_list (List.rev acc))
      else
        match
          decode_cell
            words.(4 * k)
            words.((4 * k) + 1)
            words.((4 * k) + 2)
            words.((4 * k) + 3)
        with
        | Ok i -> build (i :: acc) (k + 1)
        | Error _ as e -> e
    in
    build [] 0
