type t = { data : int array }
type segment = { base : int; size : int }

exception Fault of { addr : int; write : bool }

let create words =
  if words <= 0 then invalid_arg "Mem.create: size must be positive";
  { data = Array.make words 0 }

let size t = Array.length t.data

let load t addr =
  if addr < 0 || addr >= Array.length t.data then
    raise (Fault { addr; write = false })
  else t.data.(addr)

let store t addr v =
  if addr < 0 || addr >= Array.length t.data then
    raise (Fault { addr; write = true })
  else t.data.(addr) <- v

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let segment ~base ~size =
  if not (is_power_of_two size) then
    invalid_arg "Mem.segment: size must be a power of two";
  if base < 0 || base land (size - 1) <> 0 then
    invalid_arg "Mem.segment: base must be size-aligned";
  { base; size }

let in_segment seg addr = addr >= seg.base && addr < seg.base + seg.size
let sandbox seg addr = seg.base lor (addr land (seg.size - 1))

let blit_in t addr src =
  Array.iteri (fun k v -> store t (addr + k) v) src

let blit_out t addr len = Array.init len (fun k -> load t (addr + k))

let fill t addr len v =
  for k = addr to addr + len - 1 do
    store t k v
  done
