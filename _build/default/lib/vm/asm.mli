(** Symbolic assembler for graft programs.

    Graft source is a list of {!item}s with symbolic branch labels and
    symbolic kernel-function names. Assembly resolves labels to instruction
    indices and leaves each named kernel call as a relocation for the dynamic
    linker ({!Vino_core.Linker}), which resolves names against the
    graft-callable table — the static check of paper §3.3. *)

type reg = Insn.reg

type item =
  | Label of string
  | Li of reg * int
  | Mov of reg * reg
  | Alu of Insn.alu * reg * reg * reg
  | Alui of Insn.alu * reg * reg * int
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Br of Insn.cond * reg * reg * string
  | Jmp of string
  | Call of string
  | Callr of reg
  | Ret
  | Kcall of string  (** direct kernel call by name; linked later *)
  | Kcall_id of int  (** direct kernel call by raw id (tests only) *)
  | Kcallr of reg
  | Push of reg
  | Pop of reg
  | Sandbox of reg  (** only MiSFIT emits these; present for tests *)
  | Checkcall of reg
  | Halt

type reloc = { index : int; name : string }
(** Instruction [index] holds a [Kcall] whose id must be patched to the
    kernel function registered under [name]. *)

type obj = { code : Insn.t array; relocs : reloc list }

val assemble : item list -> (obj, string) result
(** Resolve labels; report duplicate or undefined labels and invalid
    registers. *)

val assemble_exn : item list -> obj
(** @raise Invalid_argument on assembly errors. *)

(* Register aliases used throughout graft sources. *)

val r0 : reg
val r1 : reg
val r2 : reg
val r3 : reg
val r4 : reg
val r5 : reg
val r6 : reg
val r7 : reg
val r8 : reg
val r9 : reg
val r10 : reg
val r11 : reg
val r12 : reg
val r13 : reg
val sp : reg
