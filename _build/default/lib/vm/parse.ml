let alu_ops =
  [
    ("add", Insn.Add); ("sub", Insn.Sub); ("mul", Insn.Mul); ("div", Insn.Div);
    ("rem", Insn.Rem); ("and", Insn.And); ("or", Insn.Or); ("xor", Insn.Xor);
    ("shl", Insn.Shl); ("shr", Insn.Shr);
  ]

let branch_ops =
  [
    ("beq", Insn.Eq); ("bne", Insn.Ne); ("blt", Insn.Lt); ("ble", Insn.Le);
    ("bgt", Insn.Gt); ("bge", Insn.Ge);
  ]

let strip_comment line =
  match String.index_opt line ';' with
  | Some k -> String.sub line 0 k
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let register token =
  if token = "sp" then Ok Insn.sp
  else if String.length token >= 2 && token.[0] = 'r' then
    match int_of_string_opt (String.sub token 1 (String.length token - 1)) with
    | Some r when r >= 0 && r < Insn.num_regs -> Ok r
    | Some _ | None -> Error (Printf.sprintf "bad register %S" token)
  else Error (Printf.sprintf "bad register %S" token)

let immediate token =
  match int_of_string_opt token with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad immediate %S" token)

let ( let* ) = Result.bind

let instruction mnemonic operands : (Asm.item, string) result =
  match (mnemonic, operands) with
  | "li", [ rd; imm ] ->
      let* rd = register rd in
      let* imm = immediate imm in
      Ok (Asm.Li (rd, imm))
  | "mov", [ rd; rs ] ->
      let* rd = register rd in
      let* rs = register rs in
      Ok (Asm.Mov (rd, rs))
  | "ld", [ rd; rb; off ] ->
      let* rd = register rd in
      let* rb = register rb in
      let* off = immediate off in
      Ok (Asm.Ld (rd, rb, off))
  | "st", [ rv; rb; off ] ->
      let* rv = register rv in
      let* rb = register rb in
      let* off = immediate off in
      Ok (Asm.St (rv, rb, off))
  | "jmp", [ label ] -> Ok (Asm.Jmp label)
  | "call", [ label ] -> Ok (Asm.Call label)
  | "callr", [ r ] ->
      let* r = register r in
      Ok (Asm.Callr r)
  | "ret", [] -> Ok Asm.Ret
  | "kcall", [ name ] -> Ok (Asm.Kcall name)
  | "kcallr", [ r ] ->
      let* r = register r in
      Ok (Asm.Kcallr r)
  | "push", [ r ] ->
      let* r = register r in
      Ok (Asm.Push r)
  | "pop", [ r ] ->
      let* r = register r in
      Ok (Asm.Pop r)
  | "halt", [] -> Ok Asm.Halt
  | _ -> (
      match List.assoc_opt mnemonic branch_ops with
      | Some cond -> (
          match operands with
          | [ ra; rb; label ] ->
              let* ra = register ra in
              let* rb = register rb in
              Ok (Asm.Br (cond, ra, rb, label))
          | _ -> Error (mnemonic ^ " expects: ra, rb, label"))
      | None -> (
          match List.assoc_opt mnemonic alu_ops with
          | Some op -> (
              match operands with
              | [ rd; ra; rb ] ->
                  let* rd = register rd in
                  let* ra = register ra in
                  let* rb = register rb in
                  Ok (Asm.Alu (op, rd, ra, rb))
              | _ -> Error (mnemonic ^ " expects: rd, ra, rb"))
          | None -> (
              (* immediate ALU form: mnemonic + 'i' *)
              let n = String.length mnemonic in
              if n >= 2 && mnemonic.[n - 1] = 'i' then
                match List.assoc_opt (String.sub mnemonic 0 (n - 1)) alu_ops with
                | Some op -> (
                    match operands with
                    | [ rd; ra; imm ] ->
                        let* rd = register rd in
                        let* ra = register ra in
                        let* imm = immediate imm in
                        Ok (Asm.Alui (op, rd, ra, imm))
                    | _ -> Error (mnemonic ^ " expects: rd, ra, imm"))
                | None -> Error (Printf.sprintf "unknown mnemonic %S" mnemonic)
              else Error (Printf.sprintf "unknown mnemonic %S" mnemonic))))

let parse_line line : (Asm.item list, string) result =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok []
  else if String.length line > 1 && line.[String.length line - 1] = ':' then
    let label = String.trim (String.sub line 0 (String.length line - 1)) in
    if label = "" || String.contains label ' ' then
      Error (Printf.sprintf "bad label %S" line)
    else Ok [ Asm.Label label ]
  else
    match tokens line with
    | [] -> Ok []
    | mnemonic :: operands ->
        Result.map
          (fun i -> [ i ])
          (instruction (String.lowercase_ascii mnemonic) operands)

let parse source =
  let lines = String.split_on_char '\n' source in
  let rec go acc lineno = function
    | [] -> Ok (List.concat (List.rev acc))
    | line :: rest -> (
        match parse_line line with
        | Ok items -> go (items :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> parse source
  | exception Sys_error e -> Error e

let reg r = if r = Insn.sp then "sp" else Printf.sprintf "r%d" r

let alu_name op = fst (List.find (fun (_, o) -> o = op) alu_ops)
let branch_name c = fst (List.find (fun (_, o) -> o = c) branch_ops)

let print_item ppf : Asm.item -> unit = function
  | Asm.Label l -> Format.fprintf ppf "%s:" l
  | Li (rd, v) -> Format.fprintf ppf "    li    %s, %d" (reg rd) v
  | Mov (a, b) -> Format.fprintf ppf "    mov   %s, %s" (reg a) (reg b)
  | Alu (op, d, a, b) ->
      Format.fprintf ppf "    %-5s %s, %s, %s" (alu_name op) (reg d) (reg a)
        (reg b)
  | Alui (op, d, a, v) ->
      Format.fprintf ppf "    %-5s %s, %s, %d"
        (alu_name op ^ "i")
        (reg d) (reg a) v
  | Ld (d, b, o) -> Format.fprintf ppf "    ld    %s, %s, %d" (reg d) (reg b) o
  | St (v, b, o) -> Format.fprintf ppf "    st    %s, %s, %d" (reg v) (reg b) o
  | Br (c, a, b, l) ->
      Format.fprintf ppf "    %-5s %s, %s, %s" (branch_name c) (reg a) (reg b)
        l
  | Jmp l -> Format.fprintf ppf "    jmp   %s" l
  | Call l -> Format.fprintf ppf "    call  %s" l
  | Callr r -> Format.fprintf ppf "    callr %s" (reg r)
  | Ret -> Format.fprintf ppf "    ret"
  | Kcall name -> Format.fprintf ppf "    kcall %s" name
  | Kcall_id id -> Format.fprintf ppf "    kcall #%d" id
  | Kcallr r -> Format.fprintf ppf "    kcallr %s" (reg r)
  | Push r -> Format.fprintf ppf "    push  %s" (reg r)
  | Pop r -> Format.fprintf ppf "    pop   %s" (reg r)
  | Sandbox r -> Format.fprintf ppf "    ; sfi.sandbox %s" (reg r)
  | Checkcall r -> Format.fprintf ppf "    ; sfi.checkcall %s" (reg r)
  | Halt -> Format.fprintf ppf "    halt"

let print ppf items =
  List.iter (fun i -> Format.fprintf ppf "%a@\n" print_item i) items

let to_string items = Format.asprintf "%a" print items
