(** Text format for graft source (".gasm").

    One instruction per line; [;] starts a comment; a label is a word
    followed by [:]. Registers are [r0]..[r15] (or [sp]). Kernel imports
    are named directly: [kcall fs.read]. Example:

    {v
    ; double the argument
        add   r0, r1, r1
        kcall counter.incr
    loop:
        beq   r0, r1, loop
        ret
    v}

    Grammar per line (after label/comment stripping):
    - [li rd, imm]           load immediate
    - [mov rd, rs]
    - [add|sub|mul|div|rem|and|or|xor|shl|shr rd, ra, rb]
    - [addi|subi|... rd, ra, imm]   (any ALU op + [i])
    - [ld rd, rb, off] / [st rv, rb, off]
    - [beq|bne|blt|ble|bgt|bge ra, rb, label]
    - [jmp label] / [call label] / [callr r] / [ret]
    - [kcall name] / [kcallr r]
    - [push r] / [pop r] / [halt] *)

val parse : string -> (Asm.item list, string) result
(** Errors carry a line number. *)

val parse_file : string -> (Asm.item list, string) result

val print : Format.formatter -> Asm.item list -> unit
(** Render items back to the text format ([parse] of the output
    round-trips). *)

val to_string : Asm.item list -> string
