lib/vm/asm.ml: Array Hashtbl Insn List Printf Result
