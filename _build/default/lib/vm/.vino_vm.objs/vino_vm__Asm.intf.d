lib/vm/asm.mli: Insn
