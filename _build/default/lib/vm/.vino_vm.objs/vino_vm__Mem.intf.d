lib/vm/mem.mli:
