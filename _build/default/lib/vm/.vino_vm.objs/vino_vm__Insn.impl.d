lib/vm/insn.ml: Array Format List Printf
