lib/vm/insn.mli: Format
