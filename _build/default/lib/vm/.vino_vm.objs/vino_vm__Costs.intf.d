lib/vm/costs.mli: Insn
