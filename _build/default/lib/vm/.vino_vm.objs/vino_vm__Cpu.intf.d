lib/vm/cpu.mli: Costs Format Insn Mem
