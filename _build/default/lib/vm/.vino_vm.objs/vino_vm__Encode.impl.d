lib/vm/encode.ml: Array Insn List Printf Result
