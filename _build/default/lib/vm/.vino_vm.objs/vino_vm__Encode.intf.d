lib/vm/encode.mli: Insn
