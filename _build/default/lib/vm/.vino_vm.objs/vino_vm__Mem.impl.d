lib/vm/mem.ml: Array
