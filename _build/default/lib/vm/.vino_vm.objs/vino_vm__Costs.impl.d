lib/vm/costs.ml: Insn
