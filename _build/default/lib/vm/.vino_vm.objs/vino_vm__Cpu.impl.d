lib/vm/cpu.ml: Array Costs Format Insn Mem
