lib/vm/parse.mli: Asm Format
