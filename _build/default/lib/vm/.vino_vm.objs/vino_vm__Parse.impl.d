lib/vm/parse.ml: Asm Format In_channel Insn List Printf Result String
