(** Binary encoding of graft programs.

    Programs are serialised to a flat word stream — the "compiled code" the
    paper's MiSFIT signs (§3.3) and the dynamic linker verifies. Each
    instruction occupies four words: opcode plus three operand words. *)

val words_per_insn : int

val to_words : Insn.t array -> int array
(** Serialise a program. *)

val of_words : int array -> (Insn.t array, string) result
(** Deserialise; reports truncated streams and unknown opcodes. *)
