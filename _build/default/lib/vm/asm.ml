type reg = Insn.reg

type item =
  | Label of string
  | Li of reg * int
  | Mov of reg * reg
  | Alu of Insn.alu * reg * reg * reg
  | Alui of Insn.alu * reg * reg * int
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Br of Insn.cond * reg * reg * string
  | Jmp of string
  | Call of string
  | Callr of reg
  | Ret
  | Kcall of string
  | Kcall_id of int
  | Kcallr of reg
  | Push of reg
  | Pop of reg
  | Sandbox of reg
  | Checkcall of reg
  | Halt

type reloc = { index : int; name : string }
type obj = { code : Insn.t array; relocs : reloc list }

(* First pass: map every label to the index of the next real instruction. *)
let label_table items =
  let table = Hashtbl.create 16 in
  let rec scan index = function
    | [] -> Ok table
    | Label name :: rest ->
        if Hashtbl.mem table name then
          Error (Printf.sprintf "duplicate label %S" name)
        else begin
          Hashtbl.add table name index;
          scan index rest
        end
    | _ :: rest -> scan (index + 1) rest
  in
  scan 0 items

let assemble items =
  Result.bind (label_table items) @@ fun labels ->
  let lookup name =
    match Hashtbl.find_opt labels name with
    | Some index -> Ok index
    | None -> Error (Printf.sprintf "undefined label %S" name)
  in
  let relocs = ref [] in
  let code = ref [] in
  let count = ref 0 in
  let emit i =
    code := i :: !code;
    incr count;
    Ok ()
  in
  let emit_at_label l make = Result.bind (lookup l) (fun t -> emit (make t)) in
  let translate = function
    | Label _ -> Ok ()
    | Li (r, v) -> emit (Insn.Li (r, v))
    | Mov (a, b) -> emit (Insn.Mov (a, b))
    | Alu (op, d, a, b) -> emit (Insn.Alu (op, d, a, b))
    | Alui (op, d, a, v) -> emit (Insn.Alui (op, d, a, v))
    | Ld (d, b, o) -> emit (Insn.Ld (d, b, o))
    | St (v, b, o) -> emit (Insn.St (v, b, o))
    | Br (c, a, b, l) -> emit_at_label l (fun t -> Insn.Br (c, a, b, t))
    | Jmp l -> emit_at_label l (fun t -> Insn.Jmp t)
    | Call l -> emit_at_label l (fun t -> Insn.Call t)
    | Callr r -> emit (Insn.Callr r)
    | Ret -> emit Insn.Ret
    | Kcall name ->
        relocs := { index = !count; name } :: !relocs;
        emit (Insn.Kcall (-1))
    | Kcall_id id -> emit (Insn.Kcall id)
    | Kcallr r -> emit (Insn.Kcallr r)
    | Push r -> emit (Insn.Push r)
    | Pop r -> emit (Insn.Pop r)
    | Sandbox r -> emit (Insn.Sandbox r)
    | Checkcall r -> emit (Insn.Checkcall r)
    | Halt -> emit Insn.Halt
  in
  let rec go = function
    | [] -> Ok ()
    | item :: rest -> Result.bind (translate item) (fun () -> go rest)
  in
  Result.bind (go items) @@ fun () ->
  let code = Array.of_list (List.rev !code) in
  let length = Array.length code in
  let first_problem =
    Array.to_list code
    |> List.find_map (fun i ->
           match Insn.validate ~program_length:length i with
           | Ok () -> None
           | Error e -> Some e)
  in
  match first_problem with
  | Some e -> Error e
  | None -> Ok { code; relocs = List.rev !relocs }

let assemble_exn items =
  match assemble items with
  | Ok obj -> obj
  | Error e -> invalid_arg ("Asm.assemble: " ^ e)

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let sp = Insn.sp
