(** Credentials a graft runs with.

    A graft runs with the user identity of the process that installs it
    (§3.3); graft-callable functions check this identity before touching
    files, memory or devices, so the graft's protection domain equals its
    installer's. Privileged users (uid 0) may additionally graft restricted
    global policy points (§2.3). *)

type t = { uid : int; user : string; limits : Vino_txn.Rlimit.t }

val root : t
(** The privileged kernel identity, with unlimited resources. *)

val user : ?uid:int -> string -> limits:Vino_txn.Rlimit.t -> t
(** An ordinary user; [uid] defaults to a fresh non-zero id. *)

val is_privileged : t -> bool
val pp : Format.formatter -> t -> unit
