type event =
  | Load_rejected of { point : string; reason : string }
  | Graft_installed of { point : string; user : string }
  | Graft_removed of { point : string }
  | Graft_failed of { point : string; reason : string }
  | Handler_added of { point : string; handler : int; user : string }
  | Handler_failed of { point : string; handler : int; reason : string }

type entry = { at_us : float; event : event }
type t = { mutable log : entry list (* newest first *) }

let create () = { log = [] }
let record t ~now_us event = t.log <- { at_us = now_us; event } :: t.log
let entries t = List.rev t.log
let count t = List.length t.log
let clear t = t.log <- []

let is_failure = function
  | Load_rejected _ | Graft_failed _ | Handler_failed _ -> true
  | Graft_installed _ | Graft_removed _ | Handler_added _ -> false

let failures t = List.filter (fun e -> is_failure e.event) (entries t)

let pp_event ppf = function
  | Load_rejected { point; reason } ->
      Format.fprintf ppf "load rejected at %s: %s" point reason
  | Graft_installed { point; user } ->
      Format.fprintf ppf "graft installed at %s by %s" point user
  | Graft_removed { point } -> Format.fprintf ppf "graft removed from %s" point
  | Graft_failed { point; reason } ->
      Format.fprintf ppf "graft at %s failed: %s" point reason
  | Handler_added { point; handler; user } ->
      Format.fprintf ppf "handler %d added to %s by %s" handler point user
  | Handler_failed { point; handler; reason } ->
      Format.fprintf ppf "handler %d on %s failed: %s" handler point reason

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%10.1f us] %a@." e.at_us pp_event e.event)
    (entries t)
