lib/core/event_point.ml: Array Audit Cred Format Kernel Linker List Printf Vino_sim Vino_txn Vino_vm Wrapper
