lib/core/cred.ml: Format Vino_txn
