lib/core/kcall.mli: Cred Vino_txn Vino_vm
