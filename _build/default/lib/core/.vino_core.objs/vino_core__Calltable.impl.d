lib/core/calltable.ml: Array
