lib/core/wrapper.ml: Calltable Kcall Kernel Vino_sim Vino_txn Vino_vm
