lib/core/kernel.mli: Audit Calltable Kcall Segalloc Vino_misfit Vino_sim Vino_txn Vino_vm
