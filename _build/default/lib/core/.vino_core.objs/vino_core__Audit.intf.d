lib/core/audit.mli: Format
