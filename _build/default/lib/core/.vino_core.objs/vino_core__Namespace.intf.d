lib/core/namespace.mli: Cred Event_point Graft_point Kernel Vino_misfit Vino_txn
