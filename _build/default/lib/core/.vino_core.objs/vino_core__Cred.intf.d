lib/core/cred.mli: Format Vino_txn
