lib/core/event_point.mli: Cred Kernel Vino_misfit Vino_txn
