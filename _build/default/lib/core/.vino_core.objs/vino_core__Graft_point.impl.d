lib/core/graft_point.ml: Audit Cred Format Kernel Linker Printf Vino_misfit Vino_sim Vino_txn Vino_vm Wrapper
