lib/core/wrapper.mli: Cred Kernel Vino_txn Vino_vm
