lib/core/kcall.ml: Cred Hashtbl List Printf Vino_txn Vino_vm
