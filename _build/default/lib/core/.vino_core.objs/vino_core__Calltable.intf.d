lib/core/calltable.mli:
