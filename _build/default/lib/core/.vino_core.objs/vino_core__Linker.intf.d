lib/core/linker.mli: Kernel Vino_misfit Vino_vm
