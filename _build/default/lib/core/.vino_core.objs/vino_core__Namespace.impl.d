lib/core/namespace.ml: Cred Event_point Graft_point Hashtbl List Printf Result Vino_misfit Vino_txn
