lib/core/segalloc.mli: Vino_vm
