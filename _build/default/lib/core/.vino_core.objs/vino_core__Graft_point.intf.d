lib/core/graft_point.mli: Cred Kernel Vino_misfit Vino_txn Vino_vm
