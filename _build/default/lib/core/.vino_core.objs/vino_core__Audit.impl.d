lib/core/audit.ml: Format List
