lib/core/segalloc.ml: Array Hashtbl Vino_vm
