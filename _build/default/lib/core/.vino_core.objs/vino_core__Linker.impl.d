lib/core/linker.ml: Array Kcall Kernel Printf Result Segalloc Vino_misfit Vino_vm
