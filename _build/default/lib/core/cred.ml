type t = { uid : int; user : string; limits : Vino_txn.Rlimit.t }

let root = { uid = 0; user = "root"; limits = Vino_txn.Rlimit.unlimited () }

let next_uid = ref 1000

let user ?uid name ~limits =
  let uid =
    match uid with
    | Some u -> u
    | None ->
        let u = !next_uid in
        incr next_uid;
        u
  in
  { uid; user = name; limits }

let is_privileged t = t.uid = 0
let pp ppf t = Format.fprintf ppf "%s(%d)" t.user t.uid
