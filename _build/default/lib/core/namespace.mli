(** The kernel-maintained graft namespace (§3.4).

    Applications obtain a handle for a graft point by looking up its name —
    composed of the object being grafted and the function being replaced
    (e.g. ["openfile42.compute-ra"]) — and install through the handle, as in
    Figure 1. Handles are uniform over function and event graft points. *)

type kind = Function_point | Event_point

type handle = {
  hname : string;
  kind : kind;
  hrestricted : bool;
  grafted : unit -> bool;
  install :
    Cred.t ->
    ?limits:Vino_txn.Rlimit.t ->
    Vino_misfit.Image.t ->
    (unit, string) result;
  uninstall : unit -> unit;
}

type t

val create : unit -> t

val register : t -> handle -> unit
(** @raise Invalid_argument on duplicate names. *)

val unregister : t -> string -> unit
val lookup : t -> string -> handle option
val names : t -> string list

val of_function_point :
  ('a, 'b) Graft_point.t ->
  Kernel.t ->
  ?shared_words:int ->
  unit ->
  handle

val of_event_point : Event_point.t -> Kernel.t -> handle
