(** Kernel audit trail for graft security events.

    Every decision the protection machinery takes — image rejected,
    graft installed, transaction aborted, graft forcibly removed — is
    recorded with its virtual timestamp, so an operator (or a test) can
    reconstruct exactly how a disaster was survived. *)

type event =
  | Load_rejected of { point : string; reason : string }
  | Graft_installed of { point : string; user : string }
  | Graft_removed of { point : string }
  | Graft_failed of { point : string; reason : string }
  | Handler_added of { point : string; handler : int; user : string }
  | Handler_failed of { point : string; handler : int; reason : string }

type entry = { at_us : float; event : event }
type t

val create : unit -> t
val record : t -> now_us:float -> event -> unit

val entries : t -> entry list
(** Oldest first. *)

val count : t -> int
val clear : t -> unit

val failures : t -> entry list
(** Only rejections/failures. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
