type kind = Function_point | Event_point

type handle = {
  hname : string;
  kind : kind;
  hrestricted : bool;
  grafted : unit -> bool;
  install :
    Cred.t ->
    ?limits:Vino_txn.Rlimit.t ->
    Vino_misfit.Image.t ->
    (unit, string) result;
  uninstall : unit -> unit;
}

type t = { table : (string, handle) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let register t h =
  if Hashtbl.mem t.table h.hname then
    invalid_arg
      (Printf.sprintf "Namespace.register: duplicate graft point %S" h.hname);
  Hashtbl.replace t.table h.hname h

let unregister t name = Hashtbl.remove t.table name
let lookup t name = Hashtbl.find_opt t.table name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort compare

let of_function_point point kernel ?(shared_words = 0) () =
  {
    hname = Graft_point.name point;
    kind = Function_point;
    hrestricted = Graft_point.restricted point;
    grafted = (fun () -> Graft_point.grafted point);
    install =
      (fun cred ?limits image ->
        Graft_point.replace point kernel ~cred ~shared_words ?limits image);
    uninstall = (fun () -> Graft_point.remove point kernel);
  }

let of_event_point point kernel =
  {
    hname = Event_point.name point;
    kind = Event_point;
    hrestricted = false;
    grafted = (fun () -> Event_point.handler_count point > 0);
    install =
      (fun cred ?limits image ->
        Result.map ignore (Event_point.add_handler point kernel ~cred ?limits image));
    uninstall = (fun () -> ());
  }
