(** Measurement accumulators used by the experiment harness.

    The paper drops the top and bottom 10% of samples before computing means
    and standard deviations (§4); {!trimmed_mean} and {!trimmed_stddev}
    reproduce that. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float

val trimmed_mean : ?fraction:float -> t -> float
(** Mean after dropping the top and bottom [fraction] (default 0.10). *)

val trimmed_stddev : ?fraction:float -> t -> float
val min_value : t -> float
val max_value : t -> float
val percentile : t -> float -> float

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
end
