lib/sim/tick.mli: Engine
