lib/sim/pqueue.mli:
