lib/sim/tick.ml: Engine Vino_vm
