lib/sim/stats.mli:
