lib/sim/engine.ml: Effect List Pqueue Printf Vino_vm
