lib/sim/engine.mli:
