type t = { mutable samples : float list; mutable n : int }

let create () = { samples = []; n = 0 }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1

let count t = t.n

let mean_of = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev_of = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean_of xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let mean t = mean_of t.samples
let stddev t = stddev_of t.samples

let trimmed ?(fraction = 0.10) t =
  let sorted = List.sort compare t.samples in
  let n = List.length sorted in
  let drop = int_of_float (fraction *. float_of_int n) in
  sorted |> List.filteri (fun k _ -> k >= drop && k < n - drop)

let trimmed_mean ?fraction t = mean_of (trimmed ?fraction t)
let trimmed_stddev ?fraction t = stddev_of (trimmed ?fraction t)

let min_value t = List.fold_left min infinity t.samples
let max_value t = List.fold_left max neg_infinity t.samples

let percentile t p =
  match List.sort compare t.samples with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let rank = p /. 100. *. float_of_int (n - 1) in
      let low = int_of_float rank in
      let high = min (low + 1) (n - 1) in
      let frac = rank -. float_of_int low in
      let nth k = List.nth sorted k in
      (nth low *. (1. -. frac)) +. (nth high *. frac)

module Counter = struct
  type t = int ref

  let create () = ref 0
  let incr ?(by = 1) t = t := !t + by
  let value t = !t
end
