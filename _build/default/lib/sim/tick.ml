type t = { engine : Engine.t; tick : int }

let default_tick = Vino_vm.Costs.cycles_of_us 10_000. (* 10 ms *)

let create engine ?(tick = default_tick) () =
  if tick <= 0 then invalid_arg "Tick.create: tick must be positive";
  { engine; tick }

let tick t = t.tick

let round_up_to_boundary t time =
  (time + t.tick - 1) / t.tick * t.tick

(* avoid overflow for effectively-infinite timeouts *)
let saturating_add now after =
  if after >= max_int - now - 1 then max_int / 2 else now + after

let arm t ~after f =
  let now = Engine.now t.engine in
  let deadline = round_up_to_boundary t (saturating_add now after) in
  Engine.at t.engine deadline f

let latency t ~after =
  let now = Engine.now t.engine in
  round_up_to_boundary t (saturating_add now after) - now
