(** Clock-tick–aligned timeouts.

    The paper (§4.5) schedules transaction time-outs on system-clock
    boundaries, which occur every 10 ms; the delay for timing out a
    transaction is therefore between 10 and 20 ms. This module reproduces
    that behaviour: a timeout armed for [after] cycles fires on the first
    tick boundary at or after [now + after]. The ablation bench compares
    this against fine-grained timeouts (a wheel with [tick = 1]). *)

type t

val default_tick : int
(** 10 ms at 120 MHz. *)

val create : Engine.t -> ?tick:int -> unit -> t
val tick : t -> int

val arm : t -> after:int -> (unit -> unit) -> Engine.cancel
(** [arm w ~after f]: run [f] on the first tick boundary >= now + after. *)

val latency : t -> after:int -> int
(** The actual delay [arm] would impose for a nominal [after], from now. *)
