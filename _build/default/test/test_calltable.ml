(* Tests for the sparse open hash table of graft-callable ids. *)

module Calltable = Vino_core.Calltable

let test_add_mem_remove () =
  let t = Calltable.create () in
  Calltable.add t 5;
  Calltable.add t 9;
  Alcotest.(check bool) "5 present" true (Calltable.mem t 5);
  Alcotest.(check bool) "9 present" true (Calltable.mem t 9);
  Alcotest.(check bool) "7 absent" false (Calltable.mem t 7);
  Alcotest.(check int) "cardinal" 2 (Calltable.cardinal t);
  Calltable.remove t 5;
  Alcotest.(check bool) "5 gone" false (Calltable.mem t 5);
  Alcotest.(check bool) "9 still there" true (Calltable.mem t 9);
  Alcotest.(check int) "cardinal after remove" 1 (Calltable.cardinal t)

let test_add_is_idempotent () =
  let t = Calltable.create () in
  Calltable.add t 3;
  Calltable.add t 3;
  Alcotest.(check int) "no duplicates" 1 (Calltable.cardinal t)

let test_stays_sparse () =
  let t = Calltable.create ~initial_slots:8 () in
  for k = 0 to 199 do
    Calltable.add t k
  done;
  Alcotest.(check int) "all inserted" 200 (Calltable.cardinal t);
  Alcotest.(check bool) "load factor <= 1/4" true (Calltable.load_factor t <= 0.25);
  for k = 0 to 199 do
    Alcotest.(check bool) (Printf.sprintf "%d present" k) true
      (Calltable.mem t k)
  done

let test_probe_cost_is_small () =
  (* The paper reports 10-15 cycles per indirect call via a sparse open
     table: the average probe count must stay near 1. *)
  let t = Calltable.create () in
  for k = 0 to 99 do
    Calltable.add t (k * 7)
  done;
  for k = 0 to 999 do
    ignore (Calltable.mem t k)
  done;
  Alcotest.(check bool) "average probes < 2" true (Calltable.average_probes t < 2.)

let prop_model_check =
  (* Compare against a reference set over random add/remove/mem traces. *)
  QCheck2.Test.make ~name:"calltable agrees with a reference set" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 200) (pair (int_range 0 2) (int_range 0 50)))
    (fun ops ->
      let t = Calltable.create ~initial_slots:8 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (op, id) ->
          match op with
          | 0 ->
              Calltable.add t id;
              Hashtbl.replace model id ();
              true
          | 1 ->
              if Hashtbl.mem model id then begin
                Calltable.remove t id;
                Hashtbl.remove model id
              end;
              true
          | _ -> Calltable.mem t id = Hashtbl.mem model id)
        ops
      && Calltable.cardinal t = Hashtbl.length model)

let suite =
  [
    ( "calltable",
      [
        Alcotest.test_case "add/mem/remove" `Quick test_add_mem_remove;
        Alcotest.test_case "add is idempotent" `Quick test_add_is_idempotent;
        Alcotest.test_case "table stays sparse under growth" `Quick
          test_stays_sparse;
        Alcotest.test_case "probe cost matches the paper's 10-15 cycles"
          `Quick test_probe_cost_is_small;
        QCheck_alcotest.to_alcotest prop_model_check;
      ] );
  ]
