(* Tests for ports and the kernel HTTP server graft. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Event_point = Vino_core.Event_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Port = Vino_net.Port
module Httpd = Vino_net.Httpd

let app = Cred.user "net-test" ~limits:(Rlimit.unlimited ())

let test_port_protocol_enforced () =
  let kernel = Kernel.create ~mem_words:(1 lsl 14) () in
  let tcp = Port.create kernel Tcp ~number:80 in
  let udp = Port.create kernel Udp ~number:2049 in
  Alcotest.check_raises "datagram on tcp"
    (Invalid_argument "Port.datagram: not a UDP port") (fun () ->
      Port.datagram tcp ~payload:[||]);
  Alcotest.check_raises "connect on udp"
    (Invalid_argument "Port.connect: not a TCP port") (fun () ->
      Port.connect udp ~payload:[||])

let test_events_counted () =
  let kernel = Kernel.create ~mem_words:(1 lsl 14) () in
  let tcp = Port.create kernel Tcp ~number:8080 in
  Port.connect tcp ~payload:[| 1 |];
  Port.connect tcp ~payload:[| 2 |];
  Kernel.run kernel;
  Alcotest.(check int) "two events" 2 (Port.events tcp)

let httpd_fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 15) () in
  let httpd = Httpd.create kernel () in
  Httpd.add_document httpd ~path:42 ~size:1234;
  (match Httpd.install httpd ~cred:app with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (kernel, httpd)

let test_httpd_serves_documents () =
  let kernel, httpd = httpd_fixture () in
  Httpd.get httpd ~path:42;
  Kernel.run kernel;
  Alcotest.(check (list (pair int int))) "200 with size" [ (200, 1234) ]
    (Httpd.responses httpd)

let test_httpd_404 () =
  let kernel, httpd = httpd_fixture () in
  Httpd.get httpd ~path:7;
  Kernel.run kernel;
  Alcotest.(check (list (pair int int))) "404" [ (404, 0) ]
    (Httpd.responses httpd)

let test_httpd_bad_method () =
  let kernel, httpd = httpd_fixture () in
  Port.connect (Httpd.port httpd) ~payload:[| 99; 42 |];
  Kernel.run kernel;
  Alcotest.(check (list (pair int int))) "400" [ (400, 0) ]
    (Httpd.responses httpd)

let test_httpd_survives_many_requests_transactionally () =
  let kernel, httpd = httpd_fixture () in
  for k = 1 to 20 do
    Httpd.get httpd ~path:(if k mod 2 = 0 then 42 else 9);
    Kernel.run kernel
  done;
  Alcotest.(check int) "20 responses" 20 (List.length (Httpd.responses httpd));
  Alcotest.(check int) "every request ran in its own committed transaction"
    20
    (Vino_txn.Txn.commits kernel.Kernel.txn_mgr);
  Alcotest.(check int) "handler still installed" 1
    (Event_point.handler_count (Port.event_point (Httpd.port httpd)))

module Nfsd = Vino_net.Nfsd

let nfs_fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Vino_fs.Disk.create kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:32 () in
  let file =
    Vino_fs.File.openf ~kernel ~cache ~disk ~name:"exported" ~first_block:0
      ~blocks:16 ()
  in
  let nfsd = Nfsd.create kernel () in
  Nfsd.export nfsd ~fileid:7 file;
  (match Nfsd.install nfsd ~cred:app with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (kernel, nfsd)

let test_nfs_reads_through_disk_and_cache () =
  let kernel, nfsd = nfs_fixture () in
  Nfsd.read_request nfsd ~fileid:7 ~block:3;
  Kernel.run kernel;
  Nfsd.read_request nfsd ~fileid:7 ~block:3;
  Kernel.run kernel;
  (match Nfsd.responses nfsd with
  | [ Nfsd.Ok_read { cache_hit = false }; Nfsd.Ok_read { cache_hit = true } ]
    ->
      ()
  | rs -> Alcotest.failf "unexpected responses (%d)" (List.length rs));
  (* the second read took virtual time too, but far less: the handler
     really went to the simulated disk the first time *)
  Alcotest.(check bool) "simulated time passed (disk I/O)" true
    (Kernel.now_us kernel > 5_000.)

let test_nfs_error_paths () =
  let kernel, nfsd = nfs_fixture () in
  Nfsd.read_request nfsd ~fileid:99 ~block:0;
  Kernel.run kernel;
  Nfsd.read_request nfsd ~fileid:7 ~block:999;
  Kernel.run kernel;
  Alcotest.(check bool) "noent then badblock" true
    (Nfsd.responses nfsd = [ Nfsd.No_such_file; Nfsd.Bad_block ]);
  (* the handler survived both error paths *)
  Alcotest.(check int) "handler alive" 1
    (Event_point.handler_count (Port.event_point (Nfsd.port nfsd)))

let test_audit_trail_of_event_points () =
  let kernel, nfsd = nfs_fixture () in
  Nfsd.read_request nfsd ~fileid:7 ~block:1;
  Kernel.run kernel;
  let installed =
    List.exists
      (fun e ->
        match e.Vino_core.Audit.event with
        | Vino_core.Audit.Handler_added { point = "udp.port-2049"; _ } -> true
        | _ -> false)
      (Vino_core.Audit.entries kernel.Kernel.audit)
  in
  Alcotest.(check bool) "handler install audited" true installed

let test_second_httpd_rejected () =
  let kernel, _ = httpd_fixture () in
  match Httpd.create kernel ~port:8080 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate HTTP kernel functions accepted"

module Netout = Vino_net.Netout
module Graft_point = Vino_core.Graft_point

(* a graft that tries to send [count] packets to destination 5 *)
let flooder_source count : Vino_vm.Asm.item list =
  [
    Li (Vino_vm.Asm.r5, 0);
    Li (Vino_vm.Asm.r6, count);
    Label "loop";
    Br (Vino_vm.Insn.Ge, Vino_vm.Asm.r5, Vino_vm.Asm.r6, "done");
    Li (Vino_vm.Asm.r1, 5);
    Kcall "net.send";
    Alui (Vino_vm.Insn.Add, Vino_vm.Asm.r5, Vino_vm.Asm.r5, 1);
    Jmp "loop";
    Label "done";
    Li (Vino_vm.Asm.r0, 0);
    Ret;
  ]

let netout_fixture ~packet_quota =
  let kernel = Kernel.create ~mem_words:(1 lsl 15) () in
  let net = Netout.create kernel () in
  let point =
    Graft_point.create ~name:"flood.point"
      ~default:(fun () -> ())
      ~setup:(fun _ () -> ())
      ~read_result:(fun _ () -> Ok ())
      ()
  in
  let limits = Rlimit.create ~net_packets:packet_quota () in
  let image =
    match
      Kernel.seal kernel (Vino_vm.Asm.assemble_exn (flooder_source 100))
    with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match Graft_point.replace point kernel ~cred:app ~limits image with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (kernel, net, point)

let invoke kernel point =
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         Graft_point.invoke point kernel ~cred:app ()));
  Kernel.run kernel

let test_packet_quota_stops_flood () =
  let kernel, net, point = netout_fixture ~packet_quota:10 in
  invoke kernel point;
  Alcotest.(check int) "only the quota got out" 10 (Netout.transmitted net);
  Alcotest.(check int) "90 denied" 90 (Netout.quota_denials net);
  Alcotest.(check bool) "graft survived (denial is not a fault)" true
    (Graft_point.grafted point)

let test_aborted_sends_never_hit_the_wire () =
  (* same flood, but the graft crashes after queueing: the transaction
     aborts, the deferred transmissions are dropped and the quota is
     refunded by the undo log *)
  let kernel = Kernel.create ~mem_words:(1 lsl 15) () in
  let net = Netout.create kernel () in
  let limits = Rlimit.create ~net_packets:10 () in
  let point =
    Graft_point.create ~name:"crashy-flood"
      ~default:(fun () -> ())
      ~setup:(fun _ () -> ())
      ~read_result:(fun _ () -> Ok ())
      ()
  in
  let source =
    [
      Vino_vm.Asm.Li (Vino_vm.Asm.r1, 5);
      Kcall "net.send";
      Li (Vino_vm.Asm.r1, 5);
      Kcall "net.send";
      (* crash *)
      Li (Vino_vm.Asm.r2, 0);
      Li (Vino_vm.Asm.r3, 1);
      Alu (Vino_vm.Insn.Div, Vino_vm.Asm.r0, Vino_vm.Asm.r3, Vino_vm.Asm.r2);
      Ret;
    ]
  in
  let image =
    match Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match Graft_point.replace point kernel ~cred:app ~limits image with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  invoke kernel point;
  Alcotest.(check int) "nothing transmitted" 0 (Netout.transmitted net);
  Alcotest.(check int) "quota fully refunded" 0
    (Rlimit.used limits Rlimit.Net_packets)

let test_committed_sends_transmit () =
  let kernel, net, point = netout_fixture ~packet_quota:200 in
  invoke kernel point;
  Alcotest.(check int) "all 100 transmitted" 100 (Netout.transmitted net);
  Alcotest.(check int) "to the right destination" 100
    (Netout.transmitted_to net ~dest:5)

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "port protocol enforced" `Quick
          test_port_protocol_enforced;
        Alcotest.test_case "events counted" `Quick test_events_counted;
        Alcotest.test_case "httpd serves documents" `Quick
          test_httpd_serves_documents;
        Alcotest.test_case "httpd 404" `Quick test_httpd_404;
        Alcotest.test_case "httpd rejects bad method" `Quick
          test_httpd_bad_method;
        Alcotest.test_case "httpd survives many transactional requests"
          `Quick test_httpd_survives_many_requests_transactionally;
        Alcotest.test_case "second httpd rejected" `Quick
          test_second_httpd_rejected;
        Alcotest.test_case "NFS reads through cache and disk" `Quick
          test_nfs_reads_through_disk_and_cache;
        Alcotest.test_case "NFS error paths survive" `Quick
          test_nfs_error_paths;
        Alcotest.test_case "event installs are audited" `Quick
          test_audit_trail_of_event_points;
        Alcotest.test_case "packet quota stops a flood (§2.2)" `Quick
          test_packet_quota_stops_flood;
        Alcotest.test_case "aborted sends never hit the wire" `Quick
          test_aborted_sends_never_hit_the_wire;
        Alcotest.test_case "committed sends transmit" `Quick
          test_committed_sends_transmit;
      ] );
  ]
