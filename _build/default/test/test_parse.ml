(* Tests for the .gasm text format. *)

module Parse = Vino_vm.Parse
module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn

let parse_exn source =
  match Parse.parse source with
  | Ok items -> items
  | Error e -> Alcotest.fail e

let test_basic_program () =
  let items =
    parse_exn
      {|
      ; double the argument and call the kernel
          li    r2, 2
          mul   r0, r1, r2
          kcall counter.incr
      loop:
          addi  r3, r3, 1
          blt   r3, r2, loop
          ret
      |}
  in
  Alcotest.(check int) "seven items" 7 (List.length items);
  match items with
  | [
   Asm.Li (2, 2);
   Asm.Alu (Insn.Mul, 0, 1, 2);
   Asm.Kcall "counter.incr";
   Asm.Label "loop";
   Asm.Alui (Insn.Add, 3, 3, 1);
   Asm.Br (Insn.Lt, 3, 2, "loop");
   Asm.Ret;
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_memory_and_stack () =
  match parse_exn "ld r1, r2, 4\nst r1, sp, -1\npush r3\npop r4\nhalt" with
  | [
   Asm.Ld (1, 2, 4);
   Asm.St (1, 15, -1);
   Asm.Push 3;
   Asm.Pop 4;
   Asm.Halt;
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_errors_carry_line_numbers () =
  (match Parse.parse "li r0, 1\nbogus r1" with
  | Error e ->
      Alcotest.(check bool) "line 2 reported" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "bogus mnemonic accepted");
  (match Parse.parse "li r99, 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad register accepted");
  (match Parse.parse "li r0, banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad immediate accepted");
  match Parse.parse "add r0, r1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity accepted"

let test_parse_assembles_and_runs () =
  (* the text program must execute like its eDSL equivalent *)
  let items = parse_exn "li r1, 6\nli r2, 7\nmul r0, r1, r2\nhalt" in
  let obj = Asm.assemble_exn items in
  let mem = Vino_vm.Mem.create 512 in
  let seg = Vino_vm.Mem.segment ~base:256 ~size:256 in
  let cpu = Vino_vm.Cpu.make ~mem ~seg () in
  (match Vino_vm.Cpu.run Vino_vm.Cpu.env_trusted cpu obj.Asm.code with
  | Vino_vm.Cpu.Halted -> ()
  | o -> Alcotest.failf "unexpected %a" Vino_vm.Cpu.pp_outcome o);
  Alcotest.(check int) "computed" 42 (Vino_vm.Cpu.reg cpu 0)

let test_print_parse_roundtrip () =
  (* every builtin graft source must round-trip through the text format *)
  let sources =
    [
      Vino_fs.Readahead.app_directed_source ~lock_kcall:"ra.lock:f";
      Vino_vmem.Grafts.protect_hot_pages_source ~lock_kcall:"evict.lock:v" ();
      Vino_sched.Grafts.scan_and_return_self_source ~lock_kcall:"s.lock" ();
      Vino_stream.Grafts.xor_encrypt_source ~key:123;
      Vino_net.Httpd.server_source;
      Vino_net.Nfsd.server_source;
    ]
  in
  List.iter
    (fun source ->
      let text = Parse.to_string source in
      match Parse.parse text with
      | Ok reparsed ->
          Alcotest.(check bool) "round trip" true (reparsed = source)
      | Error e -> Alcotest.fail e)
    sources

(* Property: printing any well-formed item list reparses to itself. *)
let prop_roundtrip =
  let open QCheck2 in
  let item_gen =
    Gen.(
      let reg = int_range 0 13 in
      oneof
        [
          map2 (fun r v -> Asm.Li (r, v)) reg (int_range (-1000) 1000);
          map2 (fun a b -> Asm.Mov (a, b)) reg reg;
          map3 (fun d a b -> Asm.Alu (Insn.Xor, d, a, b)) reg reg reg;
          map3 (fun d a v -> Asm.Alui (Insn.Add, d, a, v)) reg reg
            (int_range (-99) 99);
          map3 (fun d b o -> Asm.Ld (d, b, o)) reg reg (int_range 0 64);
          map (fun r -> Asm.Push r) reg;
          return Asm.Ret;
          return (Asm.Kcall "some.fn");
        ])
  in
  Test.make ~name:"print/parse round trip" ~count:200
    Gen.(list_size (int_range 0 30) item_gen)
    (fun items ->
      match Parse.parse (Parse.to_string items) with
      | Ok reparsed -> reparsed = items
      | Error _ -> false)

let suite =
  [
    ( "parse",
      [
        Alcotest.test_case "basic program" `Quick test_basic_program;
        Alcotest.test_case "memory and stack forms" `Quick
          test_memory_and_stack;
        Alcotest.test_case "errors carry line numbers" `Quick
          test_errors_carry_line_numbers;
        Alcotest.test_case "parsed text assembles and runs" `Quick
          test_parse_assembles_and_runs;
        Alcotest.test_case "builtin grafts round-trip" `Quick
          test_print_parse_roundtrip;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
