(* Round-trip and robustness tests for the program encoder. *)

module Insn = Vino_vm.Insn
module Encode = Vino_vm.Encode

let arbitrary_insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg = int_range 0 (Insn.num_regs - 1) in
  let target = int_range 0 200 in
  let imm = int_range (-1000) 1000 in
  let alu =
    oneofl
      [
        Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Rem; Insn.And; Insn.Or;
        Insn.Xor; Insn.Shl; Insn.Shr;
      ]
  in
  let cond =
    oneofl [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ]
  in
  oneof
    [
      map2 (fun r v -> Insn.Li (r, v)) reg imm;
      map2 (fun a b -> Insn.Mov (a, b)) reg reg;
      map3 (fun op d (a, b) -> Insn.Alu (op, d, a, b)) alu reg (pair reg reg);
      map3 (fun op (d, a) v -> Insn.Alui (op, d, a, v)) alu (pair reg reg) imm;
      map3 (fun d b o -> Insn.Ld (d, b, o)) reg reg imm;
      map3 (fun v b o -> Insn.St (v, b, o)) reg reg imm;
      map3
        (fun c (a, b) t -> Insn.Br (c, a, b, t))
        cond (pair reg reg) target;
      map (fun t -> Insn.Jmp t) target;
      map (fun t -> Insn.Call t) target;
      map (fun r -> Insn.Callr r) reg;
      return Insn.Ret;
      map (fun id -> Insn.Kcall id) (int_range (-1) 100);
      map (fun r -> Insn.Kcallr r) reg;
      map (fun r -> Insn.Push r) reg;
      map (fun r -> Insn.Pop r) reg;
      map (fun r -> Insn.Sandbox r) reg;
      map (fun r -> Insn.Checkcall r) reg;
      return Insn.Halt;
    ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode round trip" ~count:300
    QCheck2.Gen.(array_size (int_range 0 50) arbitrary_insn)
    (fun prog ->
      match Encode.of_words (Encode.to_words prog) with
      | Ok decoded -> decoded = prog
      | Error _ -> false)

let test_truncated_stream () =
  let words = Encode.to_words [| Insn.Halt; Insn.Ret |] in
  let cut = Array.sub words 0 (Array.length words - 1) in
  match Encode.of_words cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated stream accepted"

let test_unknown_opcode () =
  match Encode.of_words [| 999; 0; 0; 0 |] with
  | Error msg ->
      Alcotest.(check bool) "mentions opcode" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unknown opcode accepted"

let test_empty_program () =
  Alcotest.(check int) "no words" 0 (Array.length (Encode.to_words [||]));
  match Encode.of_words [||] with
  | Ok [||] -> ()
  | Ok _ -> Alcotest.fail "expected empty program"
  | Error e -> Alcotest.fail e

let suite =
  [
    ( "encode",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        Alcotest.test_case "truncated stream rejected" `Quick
          test_truncated_stream;
        Alcotest.test_case "unknown opcode rejected" `Quick test_unknown_opcode;
        Alcotest.test_case "empty program" `Quick test_empty_program;
      ] );
  ]
