(* Tests for the symbolic assembler. *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn

let test_labels_resolve () =
  let obj =
    Asm.assemble_exn
      [
        Label "start";
        Li (Asm.r0, 1);
        Br (Insn.Eq, Asm.r0, Asm.r0, "end");
        Jmp "start";
        Label "end";
        Halt;
      ]
  in
  (match obj.code.(1) with
  | Insn.Br (Eq, 0, 0, 3) -> ()
  | i -> Alcotest.failf "unexpected %a" Insn.pp i);
  match obj.code.(2) with
  | Insn.Jmp 0 -> ()
  | i -> Alcotest.failf "unexpected %a" Insn.pp i

let test_label_at_end () =
  (* A label pointing one past the last instruction is undefined behaviour we
     reject at validation: branch to it falls outside the program. *)
  match Asm.assemble [ Li (Asm.r0, 1); Jmp "end"; Label "end" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "label at end should be rejected"

let test_duplicate_label () =
  match Asm.assemble [ Label "a"; Halt; Label "a"; Halt ] with
  | Error msg ->
      Alcotest.(check bool) "mentions duplicate" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "duplicate label accepted"

let test_undefined_label () =
  match Asm.assemble [ Jmp "nowhere" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined label accepted"

let test_bad_register_rejected () =
  match Asm.assemble [ Mov (99, 0); Halt ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "register 99 accepted"

let test_kcall_relocations () =
  let obj =
    Asm.assemble_exn
      [ Li (Asm.r1, 1); Kcall "fs.read"; Kcall "fs.write"; Halt ]
  in
  Alcotest.(check int) "two relocs" 2 (List.length obj.relocs);
  let first = List.nth obj.relocs 0 and second = List.nth obj.relocs 1 in
  Alcotest.(check int) "first index" 1 first.Asm.index;
  Alcotest.(check string) "first name" "fs.read" first.Asm.name;
  Alcotest.(check int) "second index" 2 second.Asm.index;
  Alcotest.(check string) "second name" "fs.write" second.Asm.name;
  match obj.code.(1) with
  | Insn.Kcall -1 -> ()
  | i -> Alcotest.failf "placeholder expected, got %a" Insn.pp i

let test_assemble_exn_raises () =
  Alcotest.check_raises "invalid arg"
    (Invalid_argument "Asm.assemble: undefined label \"x\"") (fun () ->
      ignore (Asm.assemble_exn [ Jmp "x" ]))

let suite =
  [
    ( "asm",
      [
        Alcotest.test_case "labels resolve to indices" `Quick
          test_labels_resolve;
        Alcotest.test_case "trailing label rejected" `Quick test_label_at_end;
        Alcotest.test_case "duplicate label rejected" `Quick
          test_duplicate_label;
        Alcotest.test_case "undefined label rejected" `Quick
          test_undefined_label;
        Alcotest.test_case "bad register rejected" `Quick
          test_bad_register_rejected;
        Alcotest.test_case "named kernel calls produce relocations" `Quick
          test_kcall_relocations;
        Alcotest.test_case "assemble_exn raises Invalid_argument" `Quick
          test_assemble_exn_raises;
      ] );
  ]
