(* Tests for the discrete-event engine, wait queues and tick timeouts. *)

module Engine = Vino_sim.Engine
module Waitq = Vino_sim.Waitq
module Tick = Vino_sim.Tick
module Pqueue = Vino_sim.Pqueue

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.add q ~key:5 "c";
  Pqueue.add q ~key:1 "a";
  Pqueue.add q ~key:3 "b";
  Pqueue.add q ~key:3 "b2";
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "time then FIFO order"
    [ "a"; "b"; "b2"; "c" ]
    (List.rev !order)

let prop_pqueue_sorted =
  QCheck2.Test.make ~name:"pqueue pops keys in nondecreasing order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1000))
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.add q ~key:k k) keys;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (k, _) -> k >= last && drain k
      in
      drain min_int)

let test_delay_advances_clock () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore
    (Engine.spawn e ~name:"a" (fun () ->
         Engine.delay 100;
         seen := (Engine.now e, "a") :: !seen));
  ignore
    (Engine.spawn e ~name:"b" (fun () ->
         Engine.delay 50;
         seen := (Engine.now e, "b") :: !seen));
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "interleaved by virtual time"
    [ (50, "b"); (100, "a") ]
    (List.rev !seen);
  Alcotest.(check int) "final clock" 100 (Engine.now e)

let test_at_and_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let _c1 = Engine.at e 10 (fun () -> fired := 1 :: !fired) in
  let c2 = Engine.at e 20 (fun () -> fired := 2 :: !fired) in
  let _c3 = Engine.at e 30 (fun () -> fired := 3 :: !fired) in
  c2 ();
  Engine.run e;
  Alcotest.(check (list int)) "cancelled event skipped" [ 1; 3 ]
    (List.rev !fired)

let test_spawn_failure_recorded () =
  let e = Engine.create () in
  ignore (Engine.spawn e ~name:"crasher" (fun () -> failwith "boom"));
  Engine.run e;
  match Engine.failures e with
  | [ ("crasher", Failure _) ] -> ()
  | _ -> Alcotest.fail "failure not recorded"

let test_kill_blocked_process () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let observed = ref "not run" in
  let p =
    Engine.spawn e ~name:"victim" (fun () ->
        (try Waitq.wait q with Engine.Stopped -> observed := "stopped");
        if !observed = "not run" then observed := "woken")
  in
  ignore
    (Engine.spawn e ~name:"killer" (fun () ->
         Engine.delay 100;
         Engine.kill e p));
  Engine.run e;
  Alcotest.(check string) "stopped exception delivered" "stopped" !observed

let test_waitq_fifo_signal () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let order = ref [] in
  let waiter name =
    ignore
      (Engine.spawn e ~name (fun () ->
           Waitq.wait q;
           order := name :: !order))
  in
  waiter "first";
  waiter "second";
  waiter "third";
  ignore
    (Engine.spawn e ~name:"signaller" (fun () ->
         Engine.delay 10;
         ignore (Waitq.signal q);
         Engine.delay 10;
         ignore (Waitq.signal q);
         Engine.delay 10;
         ignore (Waitq.broadcast q)));
  Engine.run e;
  Alcotest.(check (list string))
    "FIFO wake order"
    [ "first"; "second"; "third" ]
    (List.rev !order)

let test_waitq_timeout () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let outcome = ref None in
  ignore
    (Engine.spawn e (fun () -> outcome := Some (Waitq.wait_timeout q 500)));
  Engine.run e;
  (match !outcome with
  | Some Waitq.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check int) "clock advanced to deadline" 500 (Engine.now e);
  Alcotest.(check int) "waiter removed from queue" 0 (Waitq.length q)

let test_waitq_signal_beats_timeout () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let outcome = ref None in
  ignore
    (Engine.spawn e (fun () -> outcome := Some (Waitq.wait_timeout q 500)));
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 100;
         ignore (Waitq.signal q)));
  Engine.run e;
  match !outcome with
  | Some Waitq.Signalled -> ()
  | _ -> Alcotest.fail "expected signal to win"

let test_blocked_detection () =
  let e = Engine.create () in
  let q = Waitq.create e in
  ignore (Engine.spawn e ~name:"stuck" (fun () -> Waitq.wait q));
  Engine.run e;
  Alcotest.(check (list string)) "deadlocked process listed" [ "stuck" ]
    (Engine.blocked e)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore
    (Engine.spawn e (fun () ->
         for _ = 1 to 10 do
           Engine.delay 100;
           incr count
         done));
  Engine.run ~until:450 e;
  Alcotest.(check int) "only events before the limit ran" 4 !count;
  Engine.run e;
  Alcotest.(check int) "resume completes the rest" 10 !count

let test_tick_alignment () =
  let e = Engine.create () in
  let w = Tick.create e ~tick:1000 () in
  let fired_at = ref (-1) in
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 1500;
         (* now = 1500; a 100-cycle timeout must fire at the 2000 boundary *)
         let (_ : Engine.cancel) =
           Tick.arm w ~after:100 (fun () -> fired_at := Engine.now e)
         in
         ()));
  Engine.run e;
  Alcotest.(check int) "fires on next tick boundary" 2000 !fired_at

let test_tick_latency_bounds () =
  (* Paper §4.5: with a 10 ms tick the abort delay is between 10 and 20 ms
     for a 10 ms nominal timeout. *)
  let e = Engine.create () in
  let w = Tick.create e () in
  let tick = Tick.tick w in
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 777;
         let lat = Tick.latency w ~after:tick in
         Alcotest.(check bool) "latency in [tick, 2*tick)" true
           (lat >= tick && lat < 2 * tick)));
  Engine.run e

(* Property: however timers and processes interleave, callbacks observe a
   nondecreasing clock and every non-cancelled timer fires exactly once. *)
let prop_timer_discipline =
  QCheck2.Test.make ~name:"timers fire once, clock monotone" ~count:150
    QCheck2.Gen.(
      list_size (int_range 0 40) (pair (int_range 0 5_000) bool))
    (fun timers ->
      let e = Engine.create () in
      let fired = Array.make (List.length timers) 0 in
      let last = ref min_int in
      let monotone = ref true in
      let cancels =
        List.mapi
          (fun k (time, keep) ->
            let cancel =
              Engine.at e time (fun () ->
                  fired.(k) <- fired.(k) + 1;
                  if Engine.now e < !last then monotone := false;
                  last := Engine.now e)
            in
            (cancel, keep))
          timers
      in
      List.iter (fun (cancel, keep) -> if not keep then cancel ()) cancels;
      Engine.run e;
      !monotone
      && List.for_all2
           (fun (_, keep) count -> count = if keep then 1 else 0)
           cancels (Array.to_list fired))

let test_stats_trimming () =
  let s = Vino_sim.Stats.create () in
  (* 8 well-behaved samples plus two wild outliers *)
  List.iter (Vino_sim.Stats.add s)
    [ 10.; 10.; 10.; 10.; 10.; 10.; 10.; 10.; 1000.; 0. ];
  Alcotest.(check (float 0.001))
    "trimmed mean drops outliers" 10.
    (Vino_sim.Stats.trimmed_mean s);
  Alcotest.(check bool) "raw mean is polluted" true
    (Vino_sim.Stats.mean s > 50.)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "pqueue orders by time then FIFO" `Quick
          test_pqueue_ordering;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        Alcotest.test_case "delay advances virtual clock" `Quick
          test_delay_advances_clock;
        Alcotest.test_case "at/cancel" `Quick test_at_and_cancel;
        Alcotest.test_case "process failures recorded" `Quick
          test_spawn_failure_recorded;
        Alcotest.test_case "kill delivers Stopped to blocked process" `Quick
          test_kill_blocked_process;
        Alcotest.test_case "waitq wakes in FIFO order" `Quick
          test_waitq_fifo_signal;
        Alcotest.test_case "waitq timeout fires and dequeues" `Quick
          test_waitq_timeout;
        Alcotest.test_case "signal beats timeout" `Quick
          test_waitq_signal_beats_timeout;
        Alcotest.test_case "deadlocked processes are reported" `Quick
          test_blocked_detection;
        Alcotest.test_case "run ~until stops and resumes" `Quick
          test_run_until;
        Alcotest.test_case "tick timeouts align to boundaries" `Quick
          test_tick_alignment;
        Alcotest.test_case "tick latency in [T, 2T)" `Quick
          test_tick_latency_bounds;
        QCheck_alcotest.to_alcotest prop_timer_discipline;
        Alcotest.test_case "stats trims 10% outliers" `Quick
          test_stats_trimming;
      ] );
  ]
