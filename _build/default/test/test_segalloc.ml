(* Tests for the buddy segment allocator. *)

module Segalloc = Vino_core.Segalloc
module Mem = Vino_vm.Mem

let alloc_exn t words =
  match Segalloc.alloc t words with
  | Ok seg -> seg
  | Error `No_memory -> Alcotest.fail "unexpected out of memory"

let test_alloc_returns_valid_segments () =
  let t = Segalloc.create ~base:0 ~size:1024 in
  let seg = alloc_exn t 100 in
  Alcotest.(check int) "rounded to power of two" 128 seg.Mem.size;
  Alcotest.(check int) "aligned" 0 (seg.Mem.base mod seg.Mem.size)

let test_minimum_block () =
  let t = Segalloc.create ~base:0 ~size:1024 in
  let seg = alloc_exn t 1 in
  Alcotest.(check int) "minimum 8 words" 8 seg.Mem.size

let test_exhaustion () =
  let t = Segalloc.create ~base:0 ~size:64 in
  let _a = alloc_exn t 32 in
  let _b = alloc_exn t 32 in
  match Segalloc.alloc t 8 with
  | Error `No_memory -> ()
  | Ok _ -> Alcotest.fail "allocator overcommitted"

let test_free_and_coalesce () =
  let t = Segalloc.create ~base:0 ~size:256 in
  let a = alloc_exn t 64 in
  let b = alloc_exn t 64 in
  let c = alloc_exn t 64 in
  let d = alloc_exn t 64 in
  Alcotest.(check int) "fully used" 0 (Segalloc.free_words t);
  Segalloc.free t a;
  Segalloc.free t b;
  Segalloc.free t c;
  Segalloc.free t d;
  Alcotest.(check int) "fully free" 256 (Segalloc.free_words t);
  (* after full coalescing a maximal block must be available again *)
  let big = alloc_exn t 256 in
  Alcotest.(check int) "coalesced to max block" 256 big.Mem.size

let test_double_free_rejected () =
  let t = Segalloc.create ~base:0 ~size:64 in
  let seg = alloc_exn t 8 in
  Segalloc.free t seg;
  match Segalloc.free t seg with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double free accepted"

let test_nonzero_base () =
  let t = Segalloc.create ~base:4096 ~size:1024 in
  let seg = alloc_exn t 100 in
  Alcotest.(check bool) "within arena" true
    (seg.Mem.base >= 4096 && seg.Mem.base + seg.Mem.size <= 4096 + 1024);
  Alcotest.(check int) "aligned for sandboxing" 0
    (seg.Mem.base mod seg.Mem.size)

(* Property: random alloc/free traces never hand out overlapping segments,
   and free+coalesce conserves total memory. *)
let prop_no_overlap =
  QCheck2.Test.make ~name:"segments never overlap; memory conserved"
    ~count:150
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 100))
    (fun sizes ->
      let t = Segalloc.create ~base:0 ~size:4096 in
      let live = ref [] in
      let overlap (a : Mem.segment) (b : Mem.segment) =
        a.Mem.base < b.Mem.base + b.Mem.size
        && b.Mem.base < a.Mem.base + a.Mem.size
      in
      let ok = ref true in
      List.iteri
        (fun k words ->
          (* every third step frees the oldest live segment *)
          if k mod 3 = 2 && !live <> [] then begin
            match List.rev !live with
            | oldest :: _ ->
                Segalloc.free t oldest;
                live := List.filter (fun s -> s != oldest) !live
            | [] -> ()
          end
          else
            match Segalloc.alloc t words with
            | Error `No_memory -> ()
            | Ok seg ->
                if List.exists (overlap seg) !live then ok := false;
                live := seg :: !live)
        sizes;
      let live_words =
        List.fold_left (fun acc (s : Mem.segment) -> acc + s.Mem.size) 0 !live
      in
      !ok && Segalloc.used_words t = live_words)

let suite =
  [
    ( "segalloc",
      [
        Alcotest.test_case "valid aligned power-of-two segments" `Quick
          test_alloc_returns_valid_segments;
        Alcotest.test_case "minimum block size" `Quick test_minimum_block;
        Alcotest.test_case "exhaustion reported" `Quick test_exhaustion;
        Alcotest.test_case "free coalesces buddies" `Quick
          test_free_and_coalesce;
        Alcotest.test_case "double free rejected" `Quick
          test_double_free_rejected;
        Alcotest.test_case "non-zero arena base" `Quick test_nonzero_base;
        QCheck_alcotest.to_alcotest prop_no_overlap;
      ] );
  ]
