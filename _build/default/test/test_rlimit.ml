(* Tests for per-thread resource limits (quantity-constrained resources). *)

module Rlimit = Vino_txn.Rlimit

let granted = function Ok () -> true | Error `Denied -> false

let test_zero_limits_deny_everything () =
  (* "When a graft is installed, it initially has limits of zero." *)
  let graft = Rlimit.zero () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Rlimit.resource_name r ^ " denied")
        false
        (granted (Rlimit.request graft r 1)))
    Rlimit.all_resources

let test_request_release () =
  let t = Rlimit.create ~memory_words:100 () in
  Alcotest.(check bool) "grant within limit" true
    (granted (Rlimit.request t Memory_words 60));
  Alcotest.(check int) "used" 60 (Rlimit.used t Memory_words);
  Alcotest.(check bool) "deny past limit" false
    (granted (Rlimit.request t Memory_words 41));
  Alcotest.(check bool) "grant exactly to limit" true
    (granted (Rlimit.request t Memory_words 40));
  Rlimit.release t Memory_words 100;
  Alcotest.(check int) "all released" 0 (Rlimit.used t Memory_words);
  Rlimit.release t Memory_words 7;
  Alcotest.(check int) "over-release clamps" 0 (Rlimit.used t Memory_words)

let test_transfer () =
  (* "The installing thread may transfer arbitrary amounts from its own
     limits to the newly installed graft." *)
  let installer = Rlimit.create ~memory_words:100 () in
  let graft = Rlimit.zero () in
  Alcotest.(check bool) "transfer ok" true
    (granted (Rlimit.transfer ~src:installer ~dst:graft Memory_words 30));
  Alcotest.(check int) "graft limit" 30 (Rlimit.limit graft Memory_words);
  Alcotest.(check int) "installer limit" 70
    (Rlimit.limit installer Memory_words);
  Alcotest.(check bool) "graft can now allocate" true
    (granted (Rlimit.request graft Memory_words 30))

let test_transfer_respects_usage () =
  let src = Rlimit.create ~memory_words:100 () in
  ignore (Rlimit.request src Memory_words 80);
  let dst = Rlimit.zero () in
  Alcotest.(check bool) "cannot strand usage" false
    (granted (Rlimit.transfer ~src ~dst Memory_words 30));
  Alcotest.(check bool) "up to slack is fine" true
    (granted (Rlimit.transfer ~src ~dst Memory_words 20))

let test_delegation_shares_account () =
  (* "...or the thread can request that all of the graft's allocation
     requests be billed against the installing thread's own limits." *)
  let installer = Rlimit.create ~memory_words:50 () in
  let graft = Rlimit.delegate installer in
  Alcotest.(check bool) "same account" true
    (Rlimit.same_account installer graft);
  ignore (Rlimit.request graft Memory_words 30);
  Alcotest.(check int) "billed to installer" 30
    (Rlimit.used installer Memory_words);
  Alcotest.(check bool) "installer squeezed out" false
    (granted (Rlimit.request installer Memory_words 21));
  Alcotest.(check bool) "transfer to self denied" false
    (granted (Rlimit.transfer ~src:installer ~dst:graft Memory_words 10))

let test_pooling () =
  (* Multiple processes pooling wired memory for a shared buffer pool. *)
  let a = Rlimit.create ~wired_pages:10 () in
  let b = Rlimit.create ~wired_pages:15 () in
  let pool = Rlimit.zero () in
  ignore (Rlimit.transfer ~src:a ~dst:pool Wired_pages 10);
  ignore (Rlimit.transfer ~src:b ~dst:pool Wired_pages 15);
  Alcotest.(check int) "pooled" 25 (Rlimit.limit pool Wired_pages);
  Alcotest.(check bool) "pool usable" true
    (granted (Rlimit.request pool Wired_pages 25))

let test_invalid_amounts () =
  let t = Rlimit.unlimited () in
  Alcotest.check_raises "request 0"
    (Invalid_argument "Rlimit.request: amount must be positive") (fun () ->
      ignore (Rlimit.request t Memory_words 0));
  Alcotest.check_raises "release -1"
    (Invalid_argument "Rlimit.release: amount must be positive") (fun () ->
      Rlimit.release t Memory_words (-1))

(* Property: usage never exceeds limit under any op sequence. *)
let prop_usage_bounded =
  QCheck2.Test.make ~name:"usage never exceeds limit" ~count:300
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (list_size (int_range 0 60) (pair bool (int_range 1 100))))
    (fun (limit, ops) ->
      let t = Rlimit.create ~memory_words:limit () in
      List.iter
        (fun (is_request, n) ->
          if is_request then ignore (Rlimit.request t Memory_words n)
          else Rlimit.release t Memory_words n)
        ops;
      Rlimit.used t Memory_words >= 0
      && Rlimit.used t Memory_words <= Rlimit.limit t Memory_words)

let suite =
  [
    ( "rlimit",
      [
        Alcotest.test_case "new grafts start at zero" `Quick
          test_zero_limits_deny_everything;
        Alcotest.test_case "request/release accounting" `Quick
          test_request_release;
        Alcotest.test_case "transfer moves headroom" `Quick test_transfer;
        Alcotest.test_case "transfer cannot strand usage" `Quick
          test_transfer_respects_usage;
        Alcotest.test_case "delegation bills the installer" `Quick
          test_delegation_shares_account;
        Alcotest.test_case "pooled delegation (shared buffer pool)" `Quick
          test_pooling;
        Alcotest.test_case "invalid amounts rejected" `Quick
          test_invalid_amounts;
        QCheck_alcotest.to_alcotest prop_usage_bounded;
      ] );
  ]
