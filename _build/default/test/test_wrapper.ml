(* Tests for the invocation wrapper: sliced preemptible execution, CPU
   budgets, kernel-call integration — plus semantic-equivalence properties
   between original and MiSFIT-rewritten code, and the time-out
   calibration harness. *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Wrapper = Vino_core.Wrapper
module Linker = Vino_core.Linker

let kernel_fixture () = Kernel.create ~mem_words:(1 lsl 16) ~tick:1_000 ()

let load_exn kernel source ~words =
  let obj = Asm.assemble_exn source in
  match Kernel.seal kernel obj with
  | Error e -> Alcotest.fail e
  | Ok image -> (
      match Linker.load kernel ~words image with
      | Ok loaded -> loaded
      | Error e -> Alcotest.fail e)

let exec_in_process kernel ~slice ~budget loaded =
  let result = ref None in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"wrap" (fun () ->
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"w" () in
         let _, outcome =
           Wrapper.exec kernel ~txn ~cred:Vino_core.Cred.root
             ~limits:(Rlimit.unlimited ()) ~seg:loaded.Linker.seg
             ~code:loaded.Linker.code ~slice ~budget
             ~setup:(fun _ -> ())
             ()
         in
         (match outcome with
         | Cpu.Halted -> ignore (Txn.commit txn)
         | _ -> Txn.abort txn ~reason:"test");
         result := Some outcome));
  Kernel.run kernel;
  !result

(* a busy loop of roughly [n] iterations *)
let busy_loop n : Asm.item list =
  [
    Li (Asm.r1, n);
    Li (Asm.r2, 0);
    Label "loop";
    Br (Insn.Ge, Asm.r2, Asm.r1, "out");
    Alui (Insn.Add, Asm.r2, Asm.r2, 1);
    Jmp "loop";
    Label "out";
    Li (Asm.r0, 0);
    Ret;
  ]

let test_execution_advances_virtual_time () =
  let kernel = kernel_fixture () in
  let loaded = load_exn kernel (busy_loop 10_000) ~words:512 in
  let before = Engine.now kernel.Kernel.engine in
  (match exec_in_process kernel ~slice:5_000 ~budget:max_int loaded with
  | Some Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  let elapsed = Engine.now kernel.Kernel.engine - before in
  (* ~10k iterations x ~5 cycles each, plus txn costs *)
  Alcotest.(check bool) "tens of thousands of cycles elapsed" true
    (elapsed > 40_000)

let test_timer_fires_during_graft_execution () =
  (* preemptibility: an engine timer interleaves with a running graft
     because slices advance the clock *)
  let kernel = kernel_fixture () in
  let loaded = load_exn kernel (busy_loop 100_000) ~words:512 in
  let fired_mid_run = ref false in
  let (_ : Engine.cancel) =
    Engine.at kernel.Kernel.engine 50_000 (fun () -> fired_mid_run := true)
  in
  (match exec_in_process kernel ~slice:2_000 ~budget:max_int loaded with
  | Some Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check bool) "timer fired while the graft was running" true
    !fired_mid_run

let test_budget_cuts_off () =
  let kernel = kernel_fixture () in
  let loaded =
    load_exn kernel [ Asm.Label "spin"; Jmp "spin" ] ~words:512
  in
  match exec_in_process kernel ~slice:10_000 ~budget:100_000 loaded with
  | Some Cpu.Out_of_fuel -> ()
  | o ->
      Alcotest.failf "expected out-of-fuel, got %s"
        (match o with
        | Some oc -> Format.asprintf "%a" Cpu.pp_outcome oc
        | None -> "nothing")

let test_abort_observed_between_slices () =
  let kernel = kernel_fixture () in
  let loaded =
    load_exn kernel [ Asm.Label "spin"; Jmp "spin" ] ~words:512
  in
  let result = ref None in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"wrap" (fun () ->
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"w" () in
         let (_ : Engine.cancel) =
           Engine.after kernel.Kernel.engine 30_000 (fun () ->
               Txn.request_abort txn "killed from outside")
         in
         let _, outcome =
           Wrapper.exec kernel ~txn ~cred:Vino_core.Cred.root
             ~limits:(Rlimit.unlimited ()) ~seg:loaded.Linker.seg
             ~code:loaded.Linker.code ~slice:5_000 ~budget:max_int
             ~setup:(fun _ -> ())
             ()
         in
         (if Txn.is_active txn then Txn.abort txn ~reason:"cleanup");
         result := Some outcome));
  Kernel.run kernel;
  match !result with
  | Some (Cpu.Aborted "killed from outside") -> ()
  | o ->
      Alcotest.failf "expected abort, got %s"
        (match o with
        | Some oc -> Format.asprintf "%a" Cpu.pp_outcome oc
        | None -> "nothing")

let test_kcall_can_block_on_engine () =
  (* a kernel call that performs engine waits (I/O-style) suspends the
     graft invocation and resumes it transparently *)
  let kernel = kernel_fixture () in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"slow.op" (fun ctx ->
        Engine.delay 123_456;
        Kcall.return ctx.Kcall.cpu 99;
        Kcall.ok)
  in
  let loaded = load_exn kernel [ Asm.Kcall "slow.op"; Ret ] ~words:512 in
  let before = Engine.now kernel.Kernel.engine in
  (match exec_in_process kernel ~slice:10_000 ~budget:max_int loaded with
  | Some Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check bool) "kernel-side delay accounted" true
    (Engine.now kernel.Kernel.engine - before >= 123_456)

(* Property: MiSFIT rewriting preserves the semantics of programs whose
   addresses stay inside the segment — same final registers, same memory. *)
let prop_rewrite_preserves_semantics =
  let open QCheck2 in
  let insn_gen =
    Gen.(
      oneof
        [
          (* in-segment stores/loads via small offsets on a base register *)
          map2
            (fun slot v -> [ Insn.Li (1, slot); Insn.Li (2, v); Insn.St (2, 1, 0) ])
            (int_range 0 63) (int_range (-50) 50);
          map2
            (fun slot rd -> [ Insn.Li (1, slot); Insn.Ld (rd, 1, 0) ])
            (int_range 0 63) (int_range 3 9);
          map2
            (fun a b -> [ Insn.Alui (Insn.Add, a, b, 1) ])
            (int_range 3 9) (int_range 3 9);
          map (fun r -> [ Insn.Push r; Insn.Pop r ]) (int_range 3 9);
        ])
  in
  Test.make ~name:"rewriting preserves in-segment semantics" ~count:150
    Gen.(list_size (int_range 0 25) insn_gen)
    (fun chunks ->
      let body = List.concat chunks in
      (* relative addresses: execute against a segment at base 0 so the
         original and rewritten versions see the same addresses *)
      let code = Array.of_list (body @ [ Insn.Halt ]) in
      let run program =
        let mem = Mem.create 1024 in
        let seg = Mem.segment ~base:0 ~size:256 in
        let cpu = Cpu.make ~mem ~seg () in
        match Cpu.run Cpu.env_trusted cpu program with
        | Cpu.Halted ->
            Some (List.init 10 (Cpu.reg cpu), Mem.blit_out mem 0 256)
        | _ -> None
      in
      match
        ( Vino_misfit.Rewrite.process ~optimize:false code,
          Vino_misfit.Rewrite.process ~optimize:true code )
      with
      | Ok rewritten, Ok optimized -> (
          match (run code, run rewritten, run optimized) with
          | Some (regs1, mem1), Some (regs2, mem2), Some (regs3, mem3) ->
              regs1 = regs2 && mem1 = mem2 && regs1 = regs3 && mem1 = mem3
          | _, _, _ -> false)
      | _, _ -> false)

let test_timeout_calibration () =
  let module TC = Vino_measure.Timeout_calib in
  let r = TC.calibrate TC.bitmap_workload in
  Alcotest.(check bool) "bitmap holds are microseconds" true
    (r.TC.observed_max_us < 100.);
  Alcotest.(check bool) "recommendation above the tail" true
    (r.TC.recommended_timeout_us > r.TC.observed_max_us);
  let v =
    TC.validate TC.bitmap_workload ~timeout_us:r.TC.recommended_timeout_us
  in
  Alcotest.(check int) "no honest transaction aborted" 0 v.TC.false_aborts;
  Alcotest.(check bool) "hog recovered (tick-bound ~10ms)" true
    (v.TC.hog_recovery_us > 0. && v.TC.hog_recovery_us < 25_000.)

let suite =
  [
    ( "wrapper",
      [
        Alcotest.test_case "execution advances virtual time" `Quick
          test_execution_advances_virtual_time;
        Alcotest.test_case "timers fire during graft execution" `Quick
          test_timer_fires_during_graft_execution;
        Alcotest.test_case "budget cuts off runaway grafts" `Quick
          test_budget_cuts_off;
        Alcotest.test_case "async abort observed between slices" `Quick
          test_abort_observed_between_slices;
        Alcotest.test_case "kernel calls may block on the engine" `Quick
          test_kcall_can_block_on_engine;
        QCheck_alcotest.to_alcotest prop_rewrite_preserves_semantics;
        Alcotest.test_case "time-out calibration (§4.5 future work)" `Slow
          test_timeout_calibration;
      ] );
  ]
