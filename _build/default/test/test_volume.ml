(* Tests for the volume layer: bitmap allocation, directory, deletion,
   fragmentation, and the tight-timeout bitmap lock. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Volume = Vino_fs.Volume
module File = Vino_fs.File
module Disk = Vino_fs.Disk

let app = Cred.user "vol-test" ~limits:(Rlimit.unlimited ())

let fixture ?(blocks = 256) () =
  let kernel = Kernel.create ~mem_words:(1 lsl 15) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let volume = Volume.create kernel ~disk ~blocks () in
  (kernel, volume)

let in_kernel kernel f =
  let out = ref None in
  ignore (Engine.spawn kernel.Kernel.engine (fun () -> out := Some (f ())));
  Kernel.run kernel;
  (match Engine.failures kernel.Kernel.engine with
  | [] -> ()
  | (n, e) :: _ -> Alcotest.failf "%s: %s" n (Printexc.to_string e));
  Option.get !out

let create_exn kernel volume ~name ~blocks =
  in_kernel kernel (fun () ->
      match Volume.create_file volume ~name ~blocks with
      | Ok file -> file
      | Error e -> Alcotest.fail e)

let test_create_open_read () =
  let kernel, volume = fixture () in
  let file = create_exn kernel volume ~name:"data" ~blocks:16 in
  Alcotest.(check int) "allocated" 16 (Volume.used_blocks volume);
  Alcotest.(check (list (pair string int))) "listed" [ ("data", 16) ]
    (Volume.list_files volume);
  (* opening again gives an independent open-file object on the same extent *)
  let file2 =
    in_kernel kernel (fun () ->
        match Volume.open_file volume ~name:"data" with
        | Ok f -> f
        | Error e -> Alcotest.fail e)
  in
  (in_kernel kernel (fun () ->
       ignore (File.read file ~cred:app ~block:3);
       (* second handle hits the shared cache *)
       match File.read file2 ~cred:app ~block:3 with
       | `Hit -> ()
       | `Miss -> Alcotest.fail "handles must share the volume cache"));
  Alcotest.(check bool) "distinct pattern-lock functions" true
    (File.ra_lock_name file <> File.ra_lock_name file2)

let test_duplicate_and_missing () =
  let kernel, volume = fixture () in
  let (_ : File.t) = create_exn kernel volume ~name:"a" ~blocks:4 in
  (match
     in_kernel kernel (fun () -> Volume.create_file volume ~name:"a" ~blocks:4)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate name accepted");
  match
    in_kernel kernel (fun () -> Volume.open_file volume ~name:"ghost")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened a ghost"

let test_exhaustion_and_delete () =
  let kernel, volume = fixture ~blocks:32 () in
  let (_ : File.t) = create_exn kernel volume ~name:"big" ~blocks:30 in
  (match
     in_kernel kernel (fun () ->
         Volume.create_file volume ~name:"more" ~blocks:4)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overcommitted volume");
  (match
     in_kernel kernel (fun () -> Volume.delete_file volume ~name:"big")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all free again" 32 (Volume.free_blocks volume);
  let (_ : File.t) = create_exn kernel volume ~name:"more" ~blocks:4 in
  Alcotest.(check int) "reallocated" 4 (Volume.used_blocks volume)

let test_first_fit_and_fragmentation () =
  let kernel, volume = fixture ~blocks:64 () in
  let (_ : File.t) = create_exn kernel volume ~name:"a" ~blocks:16 in
  let (_ : File.t) = create_exn kernel volume ~name:"b" ~blocks:16 in
  let (_ : File.t) = create_exn kernel volume ~name:"c" ~blocks:16 in
  Alcotest.(check (float 0.001)) "contiguous so far" 0.
    (Volume.fragmentation volume);
  (* free the middle file: now the free space is split *)
  (match
     in_kernel kernel (fun () -> Volume.delete_file volume ~name:"b")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "fragmented" true (Volume.fragmentation volume > 0.);
  (* a 20-block file cannot fit in either 16-block hole *)
  (match
     in_kernel kernel (fun () ->
         Volume.create_file volume ~name:"d" ~blocks:20)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "impossible contiguous allocation succeeded");
  (* but a 16-block file first-fits into b's old hole *)
  let (_ : File.t) = create_exn kernel volume ~name:"e" ~blocks:16 in
  Alcotest.(check (float 0.001)) "hole plugged" 0.
    (Volume.fragmentation volume)

let test_deleted_blocks_leave_cache () =
  let kernel, volume = fixture () in
  let file = create_exn kernel volume ~name:"tmp" ~blocks:8 in
  in_kernel kernel (fun () ->
      ignore (File.read file ~cred:app ~block:0);
      match Volume.delete_file volume ~name:"tmp" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
  (* the extent's cached blocks are gone: a new file on the same blocks
     must not see stale residency *)
  let file2 = create_exn kernel volume ~name:"fresh" ~blocks:8 in
  in_kernel kernel (fun () ->
      match File.read file2 ~cred:app ~block:0 with
      | `Miss -> ()
      | `Hit -> Alcotest.fail "stale cache entry survived deletion")

(* Property: random create/delete traces keep the bitmap accounting
   consistent and extents disjoint. *)
let prop_volume_consistent =
  QCheck2.Test.make ~name:"volume accounting stays consistent" ~count:40
    QCheck2.Gen.(list_size (int_range 1 30) (pair bool (int_range 1 20)))
    (fun ops ->
      let kernel, volume = fixture ~blocks:128 () in
      let live = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      ignore
        (Engine.spawn kernel.Kernel.engine (fun () ->
             List.iter
               (fun (create, blocks) ->
                 if create then begin
                   incr counter;
                   let name = Printf.sprintf "f%d" !counter in
                   match Volume.create_file volume ~name ~blocks with
                   | Ok _ -> live := (name, blocks) :: !live
                   | Error _ -> ()
                 end
                 else
                   match !live with
                   | (name, _) :: rest -> (
                       match Volume.delete_file volume ~name with
                       | Ok () -> live := rest
                       | Error _ -> ok := false)
                   | [] -> ())
               ops));
      Kernel.run kernel;
      let expected = List.fold_left (fun a (_, b) -> a + b) 0 !live in
      !ok
      && Volume.used_blocks volume = expected
      && List.length (Volume.list_files volume) = List.length !live)

let suite =
  [
    ( "volume",
      [
        Alcotest.test_case "create/open/read through shared cache" `Quick
          test_create_open_read;
        Alcotest.test_case "duplicate and missing names" `Quick
          test_duplicate_and_missing;
        Alcotest.test_case "exhaustion, delete, reuse" `Quick
          test_exhaustion_and_delete;
        Alcotest.test_case "first fit and fragmentation" `Quick
          test_first_fit_and_fragmentation;
        Alcotest.test_case "deletion purges the cache" `Quick
          test_deleted_blocks_leave_cache;
        QCheck_alcotest.to_alcotest prop_volume_consistent;
      ] );
  ]
