(* Tests for stream channels and their grafts. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Channel = Vino_stream.Channel
module Grafts = Vino_stream.Grafts

let app = Cred.user "stream-test" ~limits:(Rlimit.unlimited ())

let fixture ?buffer_words () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let channel = Channel.create kernel ~name:"chan" ?buffer_words () in
  (kernel, channel)

let transfer_in_kernel kernel channel data =
  let out = ref [||] in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"xfer" (fun () ->
         out := Channel.transfer channel ~cred:app data));
  Kernel.run kernel;
  (match Engine.failures kernel.Kernel.engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s: %s" name (Printexc.to_string exn));
  !out

let install_exn kernel channel source =
  let image =
    match Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  match Channel.install channel ~cred:app image with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ungrafted_is_identity () =
  let kernel, channel = fixture ~buffer_words:64 () in
  let data = Array.init 64 (fun k -> k * 3) in
  let out = transfer_in_kernel kernel channel data in
  Alcotest.(check (array int)) "plain bcopy" data out

let test_xor_encrypts_and_decrypts () =
  let kernel, channel = fixture ~buffer_words:64 () in
  install_exn kernel channel (Grafts.xor_encrypt_source ~key:0xAB);
  let data = Array.init 64 (fun k -> k * 7) in
  let encrypted = transfer_in_kernel kernel channel data in
  Alcotest.(check bool) "actually transformed" true (encrypted <> data);
  Array.iteri
    (fun k v -> Alcotest.(check int) "xor applied" (data.(k) lxor 0xAB) v)
    encrypted;
  (* symmetric: transferring the ciphertext recovers the plaintext *)
  let decrypted = transfer_in_kernel kernel channel encrypted in
  Alcotest.(check (array int)) "round trip" data decrypted

let test_copy_graft_is_identity () =
  let kernel, channel = fixture ~buffer_words:32 () in
  install_exn kernel channel Grafts.copy_source;
  let data = Array.init 32 (fun k -> 1000 - k) in
  Alcotest.(check (array int)) "copy graft" data
    (transfer_in_kernel kernel channel data)

let test_sfi_slows_but_preserves () =
  let kernel, channel = fixture ~buffer_words:256 () in
  let data = Array.init 256 (fun k -> k) in
  let obj =
    Vino_vm.Asm.assemble_exn (Grafts.xor_encrypt_source ~key:0x11)
  in
  (* unsafe-sealed graft *)
  (match Channel.install channel ~cred:app (Kernel.seal_unsafe kernel obj) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let t0 = ref 0 in
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         let a = Engine.now kernel.Kernel.engine in
         ignore (Channel.transfer channel ~cred:app data);
         t0 := Engine.now kernel.Kernel.engine - a));
  Kernel.run kernel;
  (* safe-sealed graft *)
  let kernel2, channel2 = fixture ~buffer_words:256 () in
  install_exn kernel2 channel2 (Grafts.xor_encrypt_source ~key:0x11);
  let t1 = ref 0 in
  let out = ref [||] in
  ignore
    (Engine.spawn kernel2.Kernel.engine (fun () ->
         let a = Engine.now kernel2.Kernel.engine in
         out := Channel.transfer channel2 ~cred:app data;
         t1 := Engine.now kernel2.Kernel.engine - a));
  Kernel.run kernel2;
  Alcotest.(check bool) "SFI costs more" true (!t1 > !t0);
  Alcotest.(check bool) "SFI under ~2.5x of unsafe" true
    (float_of_int !t1 < 2.5 *. float_of_int !t0);
  Array.iteri
    (fun k v -> Alcotest.(check int) "same result" (data.(k) lxor 0x11) v)
    !out

let test_oversized_transfer_rejected () =
  let kernel, channel = fixture ~buffer_words:16 () in
  ignore kernel;
  Alcotest.check_raises "too big"
    (Invalid_argument "Channel.transfer: buffer too large") (fun () ->
      ignore (Channel.transfer channel ~cred:app (Array.make 17 0)))

let test_crashing_stream_graft_falls_back_to_bcopy () =
  let kernel, channel = fixture ~buffer_words:16 () in
  install_exn kernel channel
    [
      Li (Vino_vm.Asm.r5, 0);
      Li (Vino_vm.Asm.r6, 1);
      Alu (Vino_vm.Insn.Div, Vino_vm.Asm.r0, Vino_vm.Asm.r6, Vino_vm.Asm.r5);
      Ret;
    ];
  let data = Array.init 16 (fun k -> k + 1) in
  let out = transfer_in_kernel kernel channel data in
  Alcotest.(check (array int)) "fell back to plain copy" data out;
  Alcotest.(check bool) "graft removed" false (Channel.grafted channel)

let test_optimized_seal_same_output () =
  (* sealing with redundant-sandbox elimination must not change what the
     graft computes *)
  let kernel, channel = fixture ~buffer_words:64 () in
  let obj = Vino_vm.Asm.assemble_exn (Grafts.xor_encrypt_source ~key:0x3C) in
  (match
     Channel.install channel ~cred:app
       (match Kernel.seal ~optimize:true kernel obj with
       | Ok i -> i
       | Error e -> Alcotest.fail e)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let data = Array.init 64 (fun k -> k * 11) in
  let out = transfer_in_kernel kernel channel data in
  Array.iteri
    (fun k v -> Alcotest.(check int) "same transform" (data.(k) lxor 0x3C) v)
    out

let suite =
  [
    ( "stream",
      [
        Alcotest.test_case "ungrafted transfer is identity" `Quick
          test_ungrafted_is_identity;
        Alcotest.test_case "xor graft encrypts/decrypts" `Quick
          test_xor_encrypts_and_decrypts;
        Alcotest.test_case "copy graft is identity" `Quick
          test_copy_graft_is_identity;
        Alcotest.test_case "SFI slows the stream but preserves output"
          `Quick test_sfi_slows_but_preserves;
        Alcotest.test_case "oversized transfer rejected" `Quick
          test_oversized_transfer_rejected;
        Alcotest.test_case "crashing stream graft falls back to bcopy"
          `Quick test_crashing_stream_graft_falls_back_to_bcopy;
        Alcotest.test_case "optimised seal computes identically" `Quick
          test_optimized_seal_same_output;
      ] );
  ]
