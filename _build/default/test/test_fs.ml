(* Tests for the file-system substrate: disk model, LRU cache, prefetch
   daemon, open files and the compute-ra graft point. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Disk = Vino_fs.Disk
module Cache = Vino_fs.Cache
module Prefetch = Vino_fs.Prefetch
module File = Vino_fs.File
module Readahead = Vino_fs.Readahead

let app = Cred.user "fs-test" ~limits:(Rlimit.unlimited ())

(* ------------------------------- disk -------------------------------- *)

let test_disk_sequential_faster () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  let sequential = ref 0 and random = ref 0 in
  ignore
    (Engine.spawn e (fun () ->
         let t0 = Engine.now e in
         for b = 1 to 10 do
           Disk.read disk ~block:b
         done;
         sequential := Engine.now e - t0;
         let t1 = Engine.now e in
         List.iter
           (fun b -> Disk.read disk ~block:b)
           [ 5000; 100; 90_000; 12; 40_000; 7; 66_000; 3; 9_000; 1 ];
         random := Engine.now e - t1));
  Engine.run e;
  Alcotest.(check bool) "sequential much faster" true
    (!random > 5 * !sequential);
  Alcotest.(check int) "20 requests served" 20 (Disk.requests_served disk);
  Alcotest.(check bool) "sequential hits counted" true
    (Disk.sequential_hits disk >= 10)

let test_disk_random_service_time_magnitude () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  let us = Vino_vm.Costs.us_of_cycles (Disk.service_time disk ~block:100_000) in
  Alcotest.(check bool) "random access ~10-25 ms" true
    (us > 10_000. && us < 25_000.)

let test_disk_fifo_order () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  let order = ref [] in
  ignore
    (Engine.spawn e (fun () ->
         List.iter
           (fun b ->
             Disk.submit disk Disk.Read ~block:b ~on_complete:(fun () ->
                 order := b :: !order))
           [ 500; 10; 300 ]));
  Engine.run e;
  Alcotest.(check (list int)) "FIFO completion" [ 500; 10; 300 ]
    (List.rev !order)

let test_disk_elevator_reorders () =
  let e = Engine.create () in
  let disk = Disk.create e ~scheduling:Disk.Elevator () in
  let order = ref [] in
  ignore
    (Engine.spawn e (fun () ->
         (* submitted while the disk is idle at block 0; elevator should
            sweep upward: 10, 300, 500 *)
         List.iter
           (fun b ->
             Disk.submit disk Disk.Read ~block:b ~on_complete:(fun () ->
                 order := b :: !order))
           [ 500; 10; 300 ]));
  Engine.run e;
  match List.rev !order with
  | [ first; _; _ ] when first <> 500 -> ()
  | o ->
      Alcotest.failf "elevator served head-first request first: %s"
        (String.concat "," (List.map string_of_int o))

let test_disk_bad_block_rejected () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  Alcotest.check_raises "negative block"
    (Invalid_argument "Disk.submit: block out of range") (fun () ->
      Disk.submit disk Disk.Read ~block:(-1) ~on_complete:ignore)

(* ------------------------------- cache ------------------------------- *)

let evicted_block = function
  | Some e -> Some e.Cache.block
  | None -> None

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:3 () in
  Alcotest.(check (option int)) "no eviction yet" None
    (evicted_block (Cache.insert c 1));
  ignore (Cache.insert c 2);
  ignore (Cache.insert c 3);
  Alcotest.(check (option int)) "LRU (1) evicted" (Some 1)
    (evicted_block (Cache.insert c 4));
  (* touch 2 so 3 becomes LRU *)
  Alcotest.(check bool) "hit refreshes" true (Cache.lookup c 2);
  Alcotest.(check (option int)) "3 evicted after refresh" (Some 3)
    (evicted_block (Cache.insert c 5));
  Alcotest.(check (list int)) "order LRU..MRU" [ 4; 2; 5 ] (Cache.lru_order c)

let test_cache_dirty_tracking () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.insert c ~dirty:true 1);
  ignore (Cache.insert c 2);
  Alcotest.(check bool) "1 dirty" true (Cache.is_dirty c 1);
  Alcotest.(check bool) "2 clean" false (Cache.is_dirty c 2);
  Cache.mark_dirty c 2;
  Alcotest.(check (list int)) "both dirty (dirtied order)" [ 1; 2 ]
    (Cache.dirty_blocks c);
  Cache.clean c 1;
  Alcotest.(check (list int)) "one dirty" [ 2 ] (Cache.dirty_blocks c);
  (* evicting a dirty block reports it for write-back *)
  Cache.mark_dirty c 1;
  match Cache.insert c 3 with
  | Some { Cache.block = 1; dirty = true } -> ()
  | _ -> Alcotest.fail "dirty eviction not reported"


let test_cache_counters () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.insert c 7);
  ignore (Cache.lookup c 7);
  ignore (Cache.lookup c 8);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let prop_cache_never_exceeds_capacity =
  QCheck2.Test.make ~name:"cache never exceeds capacity" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 16) (list_size (int_range 0 100) (int_range 0 40)))
    (fun (cap, blocks) ->
      let c = Cache.create ~capacity:cap () in
      List.iter (fun b -> ignore (Cache.insert c b)) blocks;
      Cache.length c <= cap
      && List.length (Cache.lru_order c) = Cache.length c)

(* ----------------------------- prefetch ------------------------------ *)

let test_prefetch_fills_cache () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  let cache = Cache.create ~capacity:64 () in
  let p = Prefetch.create e ~cache ~disk () in
  Prefetch.push p [ 10; 11; 12 ];
  Engine.run e;
  Alcotest.(check int) "three issued" 3 (Prefetch.issued p);
  List.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "block %d cached" b) true
        (Cache.mem cache b))
    [ 10; 11; 12 ]

let test_prefetch_drops_resident () =
  let e = Engine.create () in
  let disk = Disk.create e () in
  let cache = Cache.create ~capacity:64 () in
  let p = Prefetch.create e ~cache ~disk () in
  ignore (Cache.insert cache 5);
  Prefetch.push p [ 5; 5 ];
  Engine.run e;
  Alcotest.(check int) "nothing issued" 0 (Prefetch.issued p);
  Alcotest.(check int) "both dropped" 2 (Prefetch.dropped p)

let test_prefetch_budget_throttles () =
  (* a graft asking for everything must not flood memory: the budget stalls
     issue until the application consumes *)
  let e = Engine.create () in
  let disk = Disk.create e () in
  let cache = Cache.create ~capacity:256 () in
  let p = Prefetch.create e ~cache ~disk ~buffer_budget:4 () in
  Prefetch.push p (List.init 20 (fun k -> 100 + k));
  Engine.run e;
  Alcotest.(check int) "issue stops at the budget" 4 (Prefetch.issued p);
  Alcotest.(check int) "rest still queued" 16 (Prefetch.pending p);
  (* application consumes two: two more may issue *)
  Prefetch.note_consumed p 100;
  Prefetch.note_consumed p 101;
  Engine.run e;
  Alcotest.(check int) "issue resumes" 6 (Prefetch.issued p)

(* ------------------------------- file -------------------------------- *)

type fx = { kernel : Kernel.t; cache : Cache.t; file : File.t }

let file_fixture ?ra_window () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:128 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"t" ~first_block:100 ~blocks:64
      ?ra_window ()
  in
  { kernel; cache; file }

let in_kernel fx f =
  ignore (Engine.spawn fx.kernel.Kernel.engine ~name:"body" f);
  Kernel.run fx.kernel;
  match Engine.failures fx.kernel.Kernel.engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s: %s" name (Printexc.to_string exn)

let test_file_sequential_readahead () =
  let fx = file_fixture ~ra_window:2 () in
  in_kernel fx (fun () ->
      ignore (File.read fx.file ~cred:app ~block:0);
      ignore (File.read fx.file ~cred:app ~block:1));
  (* sequential detection on block 1 should have prefetched blocks 2,3 *)
  Alcotest.(check bool) "block 3 prefetched (disk block 103)" true
    (Cache.mem fx.cache 103);
  let fx2 = file_fixture ~ra_window:2 () in
  in_kernel fx2 (fun () ->
      ignore (File.read fx2.file ~cred:app ~block:0);
      ignore (File.read fx2.file ~cred:app ~block:9));
  Alcotest.(check bool) "random access: no prefetch" false
    (Cache.mem fx2.cache 110)

let test_file_cache_hit_after_prefetch () =
  let fx = file_fixture ~ra_window:1 () in
  in_kernel fx (fun () ->
      ignore (File.read fx.file ~cred:app ~block:0);
      ignore (File.read fx.file ~cred:app ~block:1);
      (* allow the prefetch daemon to complete I/O *)
      Engine.delay (Vino_txn.Tcosts.us 50_000.);
      match File.read fx.file ~cred:app ~block:2 with
      | `Hit -> ()
      | `Miss -> Alcotest.fail "prefetched block should hit");
  Alcotest.(check bool) "stall time recorded" true
    (File.stall_cycles fx.file > 0)

let test_file_app_directed_graft_end_to_end () =
  let fx = file_fixture () in
  let source =
    Readahead.app_directed_source ~lock_kcall:(File.ra_lock_name fx.file)
  in
  let image =
    match Kernel.seal fx.kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match
     Graft_point.replace (File.ra_point fx.file) fx.kernel ~cred:app
       ~shared_words:16 image
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  in_kernel fx (fun () ->
      (* announce 40, read 7: 40 is non-sequential but gets prefetched *)
      Readahead.announce fx.kernel (File.ra_point fx.file) 40;
      ignore (File.read fx.file ~cred:app ~block:7);
      Engine.delay (Vino_txn.Tcosts.us 50_000.);
      match File.read fx.file ~cred:app ~block:40 with
      | `Hit -> ()
      | `Miss -> Alcotest.fail "announced block was not prefetched");
  Alcotest.(check bool) "graft survived" true
    (Graft_point.grafted (File.ra_point fx.file))

let test_file_malicious_ra_rejected () =
  (* a graft that asks to prefetch block 9999 (outside the file) must be
     caught by result validation and removed *)
  let fx = file_fixture () in
  let source : Vino_vm.Asm.item list =
    [
      Alui (Vino_vm.Insn.Add, Vino_vm.Asm.r8, Vino_vm.Asm.r4, 8);
      Li (Vino_vm.Asm.r6, 9999);
      St (Vino_vm.Asm.r6, Vino_vm.Asm.r8, 0);
      Li (Vino_vm.Asm.r0, 1);
      Mov (Vino_vm.Asm.r1, Vino_vm.Asm.r8);
      Ret;
    ]
  in
  let image =
    match Kernel.seal fx.kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match
     Graft_point.replace (File.ra_point fx.file) fx.kernel ~cred:app
       ~shared_words:16 image
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  in_kernel fx (fun () -> ignore (File.read fx.file ~cred:app ~block:3));
  Alcotest.(check bool) "graft removed after invalid extent" false
    (Graft_point.grafted (File.ra_point fx.file));
  Alcotest.(check int) "nothing bogus queued" 0
    (Prefetch.pending (File.prefetcher fx.file))

module Syncer = Vino_fs.Syncer

let test_file_write_path () =
  let fx = file_fixture () in
  let syncer =
    Syncer.create fx.kernel ~cache:fx.cache
      ~disk:(Disk.create fx.kernel.Kernel.engine ())
      ()
  in
  ignore syncer;
  in_kernel fx (fun () ->
      File.write fx.file ~cred:app ~block:5;
      File.write fx.file ~cred:app ~block:6;
      (* written blocks are resident and dirty; reading them hits *)
      match File.read fx.file ~cred:app ~block:5 with
      | `Hit -> ()
      | `Miss -> Alcotest.fail "written block should be cached");
  Alcotest.(check int) "two writes" 2 (File.writes fx.file);
  Alcotest.(check bool) "block 6 still dirty" true
    (Cache.is_dirty fx.cache 106)

let test_syncer_flushes () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:64 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"w" ~first_block:0 ~blocks:64 ()
  in
  let syncer = Syncer.create kernel ~cache ~disk () in
  File.attach_syncer file syncer;
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         for b = 0 to 9 do
           File.write file ~cred:app ~block:b
         done;
         Syncer.sync syncer));
  Kernel.run kernel;
  Alcotest.(check int) "ten blocks flushed" 10 (Syncer.flushed syncer);
  Alcotest.(check (list int)) "nothing left dirty" []
    (Cache.dirty_blocks cache);
  Alcotest.(check int) "disk saw the writes" 10 (Disk.writes_served disk);
  Syncer.stop syncer;
  Kernel.run kernel

let test_syncer_threshold_kicks () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:64 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"w" ~first_block:0 ~blocks:64 ()
  in
  let syncer = Syncer.create kernel ~cache ~disk ~threshold:4 () in
  File.attach_syncer file syncer;
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         for b = 0 to 5 do
           File.write file ~cred:app ~block:b
         done));
  Kernel.run kernel;
  Alcotest.(check bool) "daemon flushed past the threshold" true
    (Syncer.flushed syncer >= 4);
  Syncer.stop syncer;
  Kernel.run kernel

let test_graftable_flush_order () =
  (* the paper's "a buffer to flush" prioritization graft: nearest-first
     write-back instead of ascending order *)
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:64 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"w" ~first_block:0 ~blocks:64 ()
  in
  let syncer = Syncer.create kernel ~cache ~disk () in
  let image =
    match
      Kernel.seal kernel (Vino_vm.Asm.assemble_exn Syncer.nearest_first_source)
    with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match
     Graft_point.replace (Syncer.flush_point syncer) kernel ~cred:app
       ~heap_words:1024 image
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         List.iter
           (fun b -> File.write file ~cred:app ~block:b)
           [ 50; 3; 48; 7; 49 ];
         Syncer.sync syncer));
  Kernel.run kernel;
  (* starting from -1 the nearest dirty block is 3, then 7, then the 48s *)
  Alcotest.(check (list int)) "nearest-first order" [ 3; 7; 48; 49; 50 ]
    (Syncer.flush_order syncer);
  Alcotest.(check bool) "flush graft survived" true
    (Graft_point.grafted (Syncer.flush_point syncer));
  Syncer.stop syncer;
  Kernel.run kernel

let test_flush_graft_bad_choice_verified () =
  (* a policy that returns a non-dirty block: the kernel ignores it and
     flushes in default order *)
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:64 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"w" ~first_block:0 ~blocks:64 ()
  in
  let syncer = Syncer.create kernel ~cache ~disk () in
  let image =
    match
      Kernel.seal kernel
        (Vino_vm.Asm.assemble_exn [ Li (Vino_vm.Asm.r0, 999); Ret ])
    with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match
     Graft_point.replace (Syncer.flush_point syncer) kernel ~cred:app image
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         List.iter
           (fun b -> File.write file ~cred:app ~block:b)
           [ 9; 2; 5 ];
         Syncer.sync syncer));
  Kernel.run kernel;
  Alcotest.(check (list int)) "fell back to aging (dirtied) order"
    [ 9; 2; 5 ]
    (Syncer.flush_order syncer)

let test_dirty_eviction_writes_back () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let disk = Disk.create kernel.Kernel.engine () in
  let cache = Cache.create ~capacity:4 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"w" ~first_block:0 ~blocks:64 ()
  in
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         (* dirty the whole tiny cache, then read fresh blocks to force
            dirty evictions *)
         for b = 0 to 3 do
           File.write file ~cred:app ~block:b
         done;
         for b = 10 to 13 do
           ignore (File.read file ~cred:app ~block:b)
         done));
  Kernel.run kernel;
  Alcotest.(check int) "four dirty blocks written back" 4
    (File.writebacks file);
  Alcotest.(check bool) "disk performed the write-backs" true
    (Disk.writes_served disk >= 4)

let test_file_bad_block_rejected () =
  let fx = file_fixture () in
  in_kernel fx (fun () ->
      match File.read fx.file ~cred:app ~block:64 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "out-of-file read accepted")

let suite =
  [
    ( "fs",
      [
        Alcotest.test_case "sequential I/O beats random" `Quick
          test_disk_sequential_faster;
        Alcotest.test_case "random access ~16 ms" `Quick
          test_disk_random_service_time_magnitude;
        Alcotest.test_case "FIFO completion order" `Quick test_disk_fifo_order;
        Alcotest.test_case "elevator reorders" `Quick
          test_disk_elevator_reorders;
        Alcotest.test_case "bad block rejected" `Quick
          test_disk_bad_block_rejected;
        Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_eviction;
        Alcotest.test_case "hit/miss counters" `Quick test_cache_counters;
        Alcotest.test_case "dirty tracking and write-back reporting" `Quick
          test_cache_dirty_tracking;
        QCheck_alcotest.to_alcotest prop_cache_never_exceeds_capacity;
        Alcotest.test_case "prefetch fills the cache" `Quick
          test_prefetch_fills_cache;
        Alcotest.test_case "prefetch drops resident blocks" `Quick
          test_prefetch_drops_resident;
        Alcotest.test_case "prefetch budget throttles (100MB rule)" `Quick
          test_prefetch_budget_throttles;
        Alcotest.test_case "default sequential read-ahead" `Quick
          test_file_sequential_readahead;
        Alcotest.test_case "prefetched block hits" `Quick
          test_file_cache_hit_after_prefetch;
        Alcotest.test_case "app-directed graft end to end" `Quick
          test_file_app_directed_graft_end_to_end;
        Alcotest.test_case "malicious extent rejected, graft removed" `Quick
          test_file_malicious_ra_rejected;
        Alcotest.test_case "out-of-file read rejected" `Quick
          test_file_bad_block_rejected;
        Alcotest.test_case "write path marks blocks dirty" `Quick
          test_file_write_path;
        Alcotest.test_case "syncer flushes on demand" `Quick
          test_syncer_flushes;
        Alcotest.test_case "syncer threshold kicks the daemon" `Quick
          test_syncer_threshold_kicks;
        Alcotest.test_case "dirty eviction writes back" `Quick
          test_dirty_eviction_writes_back;
        Alcotest.test_case "graftable flush order (buffer-to-flush)" `Quick
          test_graftable_flush_order;
        Alcotest.test_case "bad flush choice verified and ignored" `Quick
          test_flush_graft_bad_choice_verified;
      ] );
  ]
