(* Tests for the scheduler and the schedule-delegate graft point. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Runq = Vino_sched.Runq
module Grafts = Vino_sched.Grafts

let app = Cred.user "sched-test" ~limits:(Rlimit.unlimited ())

type fx = { kernel : Kernel.t; runq : Runq.t }

let fixture ?(tasks = 3) () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let runq = Runq.create kernel () in
  let ts =
    List.init tasks (fun k ->
        Runq.spawn_task runq ~name:(Printf.sprintf "t%d" k))
  in
  ({ kernel; runq }, ts)

let in_kernel fx f =
  ignore (Engine.spawn fx.kernel.Kernel.engine ~name:"body" f);
  Kernel.run fx.kernel;
  match Engine.failures fx.kernel.Kernel.engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s: %s" name (Printexc.to_string exn)

let schedule_ids fx n =
  let ids = ref [] in
  in_kernel fx (fun () ->
      for _ = 1 to n do
        match Runq.schedule fx.runq ~cred:app with
        | Some task -> ids := Runq.task_id task :: !ids
        | None -> Alcotest.fail "empty run queue"
      done);
  List.rev !ids

let install_delegate fx task source =
  let image =
    match Kernel.seal fx.kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  match
    Graft_point.replace (Runq.delegate_point task) fx.kernel ~cred:app
      ~shared_words:4 image
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_round_robin () =
  let fx, tasks = fixture () in
  let ids = List.map Runq.task_id tasks in
  Alcotest.(check (list int)) "cyclic order" (ids @ ids) (schedule_ids fx 6)

let test_switch_charges_time () =
  let fx, _ = fixture () in
  let elapsed = ref 0 in
  in_kernel fx (fun () ->
      let t0 = Engine.now fx.kernel.Kernel.engine in
      ignore (Runq.schedule fx.runq ~cred:app);
      elapsed := Engine.now fx.kernel.Kernel.engine - t0);
  Alcotest.(check bool) "~27+1 us per decision" true
    (let us = Vino_vm.Costs.us_of_cycles !elapsed in
     us >= 27. && us <= 30.)

let test_handoff_delegate () =
  let fx, tasks = fixture () in
  let a, b =
    match tasks with a :: b :: _ -> (a, b) | _ -> assert false
  in
  Runq.join_group fx.runq a ~group:7;
  Runq.join_group fx.runq b ~group:7;
  install_delegate fx a (Grafts.handoff_source ~target:(Runq.task_id b));
  let ids = schedule_ids fx 3 in
  Alcotest.(check int) "a's slot went to b" (Runq.task_id b) (List.nth ids 0);
  Alcotest.(check int) "redirect counted" 1
    (Runq.delegate_redirects fx.runq)

let test_delegation_needs_group_consent () =
  let fx, tasks = fixture () in
  let a, b =
    match tasks with a :: b :: _ -> (a, b) | _ -> assert false
  in
  (* b never consented *)
  Runq.join_group fx.runq a ~group:7;
  install_delegate fx a (Grafts.handoff_source ~target:(Runq.task_id b));
  let ids = schedule_ids fx 3 in
  Alcotest.(check int) "a keeps its own slot" (Runq.task_id a)
    (List.nth ids 0);
  Alcotest.(check int) "rejected as antisocial" 1
    (Runq.invalid_delegations fx.runq)

let test_bogus_tid_rejected () =
  let fx, tasks = fixture () in
  let a = List.hd tasks in
  Runq.join_group fx.runq a ~group:7;
  install_delegate fx a (Grafts.handoff_source ~target:424242);
  let ids = schedule_ids fx 1 in
  Alcotest.(check int) "fallback to self" (Runq.task_id a) (List.hd ids);
  Alcotest.(check int) "invalid counted" 1 (Runq.invalid_delegations fx.runq)

let test_scan_delegate_returns_self () =
  let fx, tasks = fixture ~tasks:8 () in
  let a = List.hd tasks in
  install_delegate fx a
    (Grafts.scan_and_return_self_source
       ~lock_kcall:(Runq.proclist_lock_name fx.runq)
       ());
  let ids = schedule_ids fx 1 in
  Alcotest.(check int) "scanning delegate keeps the slot" (Runq.task_id a)
    (List.hd ids);
  Alcotest.(check bool) "graft survived" true
    (Graft_point.grafted (Runq.delegate_point a))

let test_crashing_delegate_falls_back () =
  let fx, tasks = fixture () in
  let a = List.hd tasks in
  install_delegate fx a
    [
      Li (Vino_vm.Asm.r5, 0);
      Li (Vino_vm.Asm.r6, 1);
      Alu (Vino_vm.Insn.Div, Vino_vm.Asm.r0, Vino_vm.Asm.r6, Vino_vm.Asm.r5);
      Ret;
    ];
  let ids = schedule_ids fx 1 in
  Alcotest.(check int) "self scheduled via default" (Runq.task_id a)
    (List.hd ids);
  Alcotest.(check bool) "crashing delegate removed" false
    (Graft_point.grafted (Runq.delegate_point a))

let test_remove_task_skipped () =
  let fx, tasks = fixture () in
  let a, b, c =
    match tasks with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  Runq.remove_task fx.runq b;
  let ids = schedule_ids fx 4 in
  Alcotest.(check (list int)) "b skipped"
    [ Runq.task_id a; Runq.task_id c; Runq.task_id a; Runq.task_id c ]
    ids

let suite =
  [
    ( "sched",
      [
        Alcotest.test_case "round robin" `Quick test_round_robin;
        Alcotest.test_case "switch cost charged" `Quick
          test_switch_charges_time;
        Alcotest.test_case "handoff delegate (UI to video)" `Quick
          test_handoff_delegate;
        Alcotest.test_case "delegation needs group consent (Rule 8)" `Quick
          test_delegation_needs_group_consent;
        Alcotest.test_case "bogus tid rejected via hash check" `Quick
          test_bogus_tid_rejected;
        Alcotest.test_case "64-entry scan delegate returns self" `Quick
          test_scan_delegate_returns_self;
        Alcotest.test_case "crashing delegate removed, default used" `Quick
          test_crashing_delegate_falls_back;
        Alcotest.test_case "removed tasks skipped" `Quick
          test_remove_task_skipped;
      ] );
  ]
