test/test_segalloc.ml: Alcotest List QCheck2 QCheck_alcotest Vino_core Vino_vm
