test/main.mli:
