test/test_core.ml: Alcotest Array Format List Option Printexc String Vino_core Vino_misfit Vino_sim Vino_txn Vino_vm
