test/test_encode.ml: Alcotest Array QCheck2 QCheck_alcotest String Vino_vm
