test/test_net.ml: Alcotest List Vino_core Vino_fs Vino_net Vino_sim Vino_txn Vino_vm
