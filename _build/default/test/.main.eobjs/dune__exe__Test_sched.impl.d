test/test_sched.ml: Alcotest List Printexc Printf Vino_core Vino_sched Vino_sim Vino_txn Vino_vm
