test/test_vmem.ml: Alcotest List Printexc Vino_core Vino_fs Vino_sim Vino_txn Vino_vm Vino_vmem
