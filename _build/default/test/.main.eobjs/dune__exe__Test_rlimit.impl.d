test/test_rlimit.ml: Alcotest List QCheck2 QCheck_alcotest Vino_txn
