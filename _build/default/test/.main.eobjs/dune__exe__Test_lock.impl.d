test/test_lock.ml: Alcotest List Printf QCheck2 QCheck_alcotest String Vino_sim Vino_txn
