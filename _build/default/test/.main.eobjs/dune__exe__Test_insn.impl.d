test/test_insn.ml: Alcotest Array Format List Vino_vm
