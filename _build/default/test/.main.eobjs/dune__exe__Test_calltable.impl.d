test/test_calltable.ml: Alcotest Hashtbl List Printf QCheck2 QCheck_alcotest Vino_core
