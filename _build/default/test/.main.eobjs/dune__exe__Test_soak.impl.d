test/test_soak.ml: Alcotest List Printexc Printf Vino_core Vino_fs Vino_net Vino_sched Vino_sim Vino_txn Vino_vm Vino_vmem
