test/test_engine.ml: Alcotest Array List QCheck2 QCheck_alcotest Vino_sim
