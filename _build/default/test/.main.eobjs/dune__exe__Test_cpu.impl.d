test/test_cpu.ml: Alcotest Vino_vm
