test/test_parse.ml: Alcotest Gen List QCheck2 QCheck_alcotest String Test Vino_fs Vino_net Vino_sched Vino_stream Vino_vm Vino_vmem
