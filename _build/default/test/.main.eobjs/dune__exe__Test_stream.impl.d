test/test_stream.ml: Alcotest Array Printexc Vino_core Vino_sim Vino_stream Vino_txn Vino_vm
