test/test_asm.ml: Alcotest Array List String Vino_vm
