test/test_fs.ml: Alcotest List Printexc Printf QCheck2 QCheck_alcotest String Vino_core Vino_fs Vino_sim Vino_txn Vino_vm
