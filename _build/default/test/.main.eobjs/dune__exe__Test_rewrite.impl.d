test/test_rewrite.ml: Alcotest Array Gen List QCheck2 QCheck_alcotest Test Vino_misfit Vino_vm
