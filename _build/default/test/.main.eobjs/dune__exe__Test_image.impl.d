test/test_image.ml: Alcotest Array Filename In_channel List Out_channel Printf Sys Vino_misfit Vino_vm
