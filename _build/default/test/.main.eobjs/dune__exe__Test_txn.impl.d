test/test_txn.ml: Alcotest Array Gen List Printexc Printf QCheck2 QCheck_alcotest Test Vino_sim Vino_txn Vino_vm
