test/test_mem.ml: Alcotest QCheck2 QCheck_alcotest Vino_vm
