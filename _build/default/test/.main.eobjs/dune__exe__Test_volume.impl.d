test/test_volume.ml: Alcotest List Option Printexc Printf QCheck2 QCheck_alcotest Vino_core Vino_fs Vino_sim Vino_txn
