test/test_wrapper.ml: Alcotest Array Format Gen List QCheck2 QCheck_alcotest Test Vino_core Vino_measure Vino_misfit Vino_sim Vino_txn Vino_vm
