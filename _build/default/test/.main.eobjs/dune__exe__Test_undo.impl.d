test/test_undo.ml: Alcotest Array List QCheck2 QCheck_alcotest Vino_txn
