examples/misbehave.ml: Format Printf Vino_core Vino_misfit Vino_sim Vino_txn Vino_vm
