examples/kv_log.ml: Printf Vino_core Vino_fs Vino_sim Vino_txn Vino_vm
