examples/http_server.mli:
