examples/sched_group.ml: Printf Vino_core Vino_sched Vino_sim Vino_txn Vino_vm
