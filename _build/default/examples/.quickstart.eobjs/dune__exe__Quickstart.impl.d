examples/quickstart.ml: Printf String Vino_core Vino_fs Vino_sim Vino_txn Vino_vm
