examples/readahead_db.mli:
