examples/readahead_db.ml: List Printf Vino_core Vino_fs Vino_sim Vino_txn Vino_vm
