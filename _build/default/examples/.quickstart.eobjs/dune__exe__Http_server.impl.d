examples/http_server.ml: List Printf Vino_core Vino_net Vino_txn Vino_vm
