examples/misbehave.mli:
