examples/kv_log.mli:
