examples/quickstart.mli:
