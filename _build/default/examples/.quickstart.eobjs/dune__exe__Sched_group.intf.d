examples/sched_group.mli:
