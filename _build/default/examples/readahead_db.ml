(* The §4.1 database workload, end to end: the cost-benefit analysis that
   motivates read-ahead grafting.

   A database-style application reads 3000 random 4 KB blocks from a 12 MB
   file, computing between reads. With the default (sequential-only)
   read-ahead policy every read stalls on the disk; with the
   application-directed graft each read's successor is already in the
   cache when the application gets to it. The application wins whenever
   its compute time exceeds the graft's ~107 us cost — here it does, by a
   factor that shows up directly in elapsed virtual time.

   Run with: dune exec examples/readahead_db.exe *)

module Kernel = Vino_core.Kernel
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module File = Vino_fs.File
module Readahead = Vino_fs.Readahead
module Engine = Vino_sim.Engine

let blocks = 3072 (* 12 MB file *)
let reads = 3000
let compute_us = 16_000. (* work per block; > one disk access *)

(* the paper's workload: random order, known in advance *)
let access_pattern =
  let state = ref 12345 in
  List.init reads (fun _ ->
      state := ((!state * 1103515245) + 12341) land 0x3FFFFFFF;
      !state mod blocks)

let run_workload ~grafted () =
  let kernel = Kernel.create () in
  let disk = Vino_fs.Disk.create kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:256 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"db" ~first_block:0 ~blocks ()
  in
  let app = Cred.user "db-client" ~limits:(Rlimit.unlimited ()) in
  if grafted then begin
    let source =
      Readahead.app_directed_source ~lock_kcall:(File.ra_lock_name file)
    in
    let image =
      match Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
      | Ok image -> image
      | Error e -> failwith e
    in
    match
      Vino_core.Graft_point.replace (File.ra_point file) kernel ~cred:app
        ~shared_words:16 image
    with
    | Ok () -> ()
    | Error e -> failwith e
  end;
  let elapsed = ref 0 in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"db-client" (fun () ->
         let t0 = Engine.now kernel.Kernel.engine in
         let rec go = function
           | [] -> ()
           | block :: rest ->
               (match rest with
               | next :: _ ->
                   Readahead.announce kernel (File.ra_point file) next
               | [] -> ());
               ignore (File.read file ~cred:app ~block);
               Engine.delay (Vino_txn.Tcosts.us compute_us);
               go rest
         in
         go access_pattern;
         elapsed := Engine.now kernel.Kernel.engine - t0));
  Kernel.run kernel;
  (!elapsed, File.cache_hits file, File.stall_cycles file)

let () =
  Printf.printf
    "database workload: %d random reads of a %d-block file, %.1f ms compute \
     per block\n\n"
    reads blocks (compute_us /. 1000.);
  let t_plain, hits_plain, stall_plain = run_workload ~grafted:false () in
  let t_graft, hits_graft, stall_graft = run_workload ~grafted:true () in
  let ms cycles = Vino_vm.Costs.us_of_cycles cycles /. 1000. in
  Printf.printf "%-28s %14s %12s %14s\n" "" "elapsed (ms)" "cache hits"
    "stall (ms)";
  Printf.printf "%-28s %14.1f %12d %14.1f\n" "default read-ahead"
    (ms t_plain) hits_plain (ms stall_plain);
  Printf.printf "%-28s %14.1f %12d %14.1f\n" "application-directed graft"
    (ms t_graft) hits_graft (ms stall_graft);
  Printf.printf "\nspeedup: %.2fx; stall time reduced by %.0f%%\n"
    (float_of_int t_plain /. float_of_int t_graft)
    (100.
    *. (1. -. (float_of_int stall_graft /. float_of_int stall_plain)))
