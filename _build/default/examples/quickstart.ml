(* Quickstart — the Figure 1 flow end to end.

   Boot a kernel, open a file, look up its compute-ra graft point in the
   kernel namespace, seal an application-directed read-ahead graft with the
   toolchain, install it through the handle, and watch reads start
   prefetching.

   Run with: dune exec examples/quickstart.exe *)

module Kernel = Vino_core.Kernel
module Namespace = Vino_core.Namespace
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module File = Vino_fs.File
module Readahead = Vino_fs.Readahead
module Engine = Vino_sim.Engine

let () =
  (* 1. Boot a VINO kernel. *)
  let kernel = Kernel.create () in
  let disk = Vino_fs.Disk.create kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:1024 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"mydata" ~first_block:0 ~blocks:512
      ()
  in

  (* 2. The kernel publishes the graft point in its namespace. *)
  let ns = Namespace.create () in
  Namespace.register ns
    (Namespace.of_function_point (File.ra_point file) kernel ~shared_words:16
       ());
  Printf.printf "graft points available: %s\n"
    (String.concat ", " (Namespace.names ns));

  (* 3. The application compiles its graft through the trusted toolchain
        (MiSFIT rewriting + signing). *)
  let source =
    Readahead.app_directed_source ~lock_kcall:(File.ra_lock_name file)
  in
  let image =
    match Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok image -> image
    | Error e -> failwith e
  in

  (* 4. Fig 1: obtain the handle and replace the member function. *)
  let app = Cred.user "quickstart-app" ~limits:(Rlimit.unlimited ()) in
  let handle =
    match Namespace.lookup ns "mydata.compute-ra" with
    | Some h -> h
    | None -> failwith "graft point not found"
  in
  (match handle.Namespace.install app image with
  | Ok () -> print_endline "graft installed"
  | Error e -> failwith ("install failed: " ^ e));

  (* 5. Read blocks in a random order, announcing each next read; the graft
        turns announcements into prefetches. *)
  let order = [ 17; 300; 42; 451; 89; 250; 3; 499; 120; 77 ] in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"app" (fun () ->
         let rec go = function
           | [] -> ()
           | block :: rest ->
               (match rest with
               | next :: _ ->
                   Readahead.announce kernel (File.ra_point file) next
               | [] -> Readahead.announce kernel (File.ra_point file) (-1));
               let outcome = File.read file ~cred:app ~block in
               Printf.printf "  read block %3d: %s   (t = %.0f us)\n" block
                 (match outcome with `Hit -> "cache hit " | `Miss -> "disk read")
                 (Kernel.now_us kernel);
               (* think a little between reads, letting prefetch win *)
               Engine.delay (Vino_txn.Tcosts.us 20_000.);
               go rest
         in
         go order));
  Kernel.run kernel;

  Printf.printf
    "\nreads: %d, cache hits: %d, prefetches issued: %d, stall: %.0f us\n"
    (File.reads file) (File.cache_hits file)
    (Vino_fs.Prefetch.issued (File.prefetcher file))
    (Vino_vm.Costs.us_of_cycles (File.stall_cycles file));
  Printf.printf "graft still installed: %b\n"
    (Graft_point.grafted (File.ra_point file))
