(* Figure 2 — dropping an HTTP server into the kernel as an event graft.

   A handler graft is added to TCP port 80's event point. Each connection
   spawns a worker thread running the handler inside a transaction; the
   handler looks documents up and responds through graft-callable kernel
   functions. A second, buggy handler (divides by zero on its first event)
   is aborted, rolled back, and removed — the server keeps serving.

   Run with: dune exec examples/http_server.exe *)

module Kernel = Vino_core.Kernel
module Event_point = Vino_core.Event_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Httpd = Vino_net.Httpd
module Port = Vino_net.Port
module Asm = Vino_vm.Asm

let () =
  let kernel = Kernel.create () in
  let httpd = Httpd.create kernel () in
  let admin = Cred.user "webmaster" ~limits:(Rlimit.unlimited ()) in

  (* publish some documents (paths are hashes in this model) *)
  Httpd.add_document httpd ~path:1001 ~size:4096;
  Httpd.add_document httpd ~path:1002 ~size:12_288;

  (* install the HTTP server graft *)
  (match Httpd.install httpd ~cred:admin with
  | Ok hid -> Printf.printf "HTTP server graft installed (handler %d)\n" hid
  | Error e -> failwith e);

  (* also add a buggy logging handler that crashes on its first event *)
  let buggy : Asm.item list =
    [
      Li (Asm.r5, 0);
      Li (Asm.r6, 1);
      Alu (Vino_vm.Insn.Div, Asm.r0, Asm.r6, Asm.r5);
      Ret;
    ]
  in
  (match Kernel.seal kernel (Asm.assemble_exn buggy) with
  | Ok image -> (
      match
        Event_point.add_handler
          (Port.event_point (Httpd.port httpd))
          kernel ~cred:admin image
      with
      | Ok hid -> Printf.printf "buggy logger installed (handler %d)\n" hid
      | Error e -> failwith e)
  | Error e -> failwith e);

  let ep = Port.event_point (Httpd.port httpd) in
  Printf.printf "handlers on port 80: %d\n\n" (Event_point.handler_count ep);

  (* clients connect *)
  Httpd.get httpd ~path:1001;
  Kernel.run kernel;
  Httpd.get httpd ~path:1002;
  Kernel.run kernel;
  Httpd.get httpd ~path:9999;
  Kernel.run kernel;

  List.iter
    (fun (status, size) -> Printf.printf "  -> HTTP %d (%d bytes)\n" status size)
    (Httpd.responses httpd);

  Printf.printf
    "\nafter three requests: %d handler(s) left (buggy one aborted and \
     removed), %d handler failure(s) logged\n"
    (Event_point.handler_count ep)
    (Event_point.handler_failures ep);
  Printf.printf "kernel transactions: %d begun, %d committed, %d aborted\n"
    (Vino_txn.Txn.begins kernel.Kernel.txn_mgr)
    (Vino_txn.Txn.commits kernel.Kernel.txn_mgr)
    (Vino_txn.Txn.aborts kernel.Kernel.txn_mgr)
