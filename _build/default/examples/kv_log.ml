(* A small persistent log store on the full storage stack: volume
   (bitmap + directory), open files, the dirty-block cache, and the
   write-back daemon with its graftable flush policy — the paper's
   taxonomy's third Prioritization example, "a buffer to flush".

   The store appends records scattered across its log file (think hash
   buckets), then syncs. With the default ascending flush order the disk
   seeks back and forth; with the nearest-first flush graft installed the
   write-back sweeps — same blocks, fewer milliseconds.

   Run with: dune exec examples/kv_log.exe *)

module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Engine = Vino_sim.Engine
module Volume = Vino_fs.Volume
module File = Vino_fs.File
module Syncer = Vino_fs.Syncer
module Disk = Vino_fs.Disk

let app = Cred.user "kv-store" ~limits:(Rlimit.unlimited ())

(* bucket placement: spread keys across the file like a static hash table *)
let bucket_of_key key ~buckets = key * 2654435761 land 0x7FFFFFFF mod buckets

let run ~grafted =
  let kernel = Kernel.create () in
  let disk = Disk.create kernel.Kernel.engine () in
  let volume =
    (* flush only on explicit sync, so the two runs are comparable *)
    Volume.create kernel ~disk ~blocks:40_000 ~syncer_threshold:10_000 ()
  in
  let elapsed = ref 0 in
  let flush_count = ref 0 in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"kv" (fun () ->
         let log =
           match Volume.create_file volume ~name:"kv.log" ~blocks:32_768 with
           | Ok f -> f
           | Error e -> failwith e
         in
         if grafted then begin
           let image =
             match
               Kernel.seal kernel
                 (Vino_vm.Asm.assemble_exn Syncer.nearest_first_source)
             with
             | Ok i -> i
             | Error e -> failwith e
           in
           match
             Graft_point.replace
               (Syncer.flush_point (Volume.syncer volume))
               kernel ~cred:app ~heap_words:1024 image
           with
           | Ok () -> ()
           | Error e -> failwith e
         end;
         (* insert 48 records into scattered buckets *)
         for key = 1 to 48 do
           let block = bucket_of_key key ~buckets:32_768 in
           File.write log ~cred:app ~block
         done;
         let t0 = Engine.now kernel.Kernel.engine in
         Syncer.sync (Volume.syncer volume);
         elapsed := Engine.now kernel.Kernel.engine - t0;
         flush_count := Syncer.flushed (Volume.syncer volume);
         (* reads after sync hit the cache *)
         (match File.read log ~cred:app ~block:(bucket_of_key 1 ~buckets:32_768) with
         | `Hit -> ()
         | `Miss -> failwith "written record not cached");
         Syncer.stop (Volume.syncer volume)));
  Kernel.run kernel;
  (!elapsed, !flush_count)

let () =
  print_endline "kv-log: 48 scattered records, then sync\n";
  let t_plain, n_plain = run ~grafted:false in
  let t_graft, n_graft = run ~grafted:true in
  let ms c = Vino_vm.Costs.us_of_cycles c /. 1000. in
  Printf.printf "%-36s %10s %8s\n" "" "sync (ms)" "flushes";
  Printf.printf "%-36s %10.1f %8d\n" "default flush order (ascending)"
    (ms t_plain) n_plain;
  Printf.printf "%-36s %10.1f %8d\n" "nearest-first flush graft"
    (ms t_graft) n_graft;
  Printf.printf
    "\nsame %d write-backs, %.0f%% less sync time — rotation dominates \
     short seeks,\nso a flush-order graft can only win back the seek \
     component. Policy\nchoice, measured, not guessed: exactly what graft \
     points are for.\n"
    n_plain
    (100. *. (1. -. (float_of_int t_graft /. float_of_int t_plain)))
