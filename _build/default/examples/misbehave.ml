(* Dealing with disaster: a gauntlet of misbehaved kernel extensions.

   One kernel survives, in order: a wild-store graft, a private-data thief,
   an infinite loop, a memory hog, a lock hoarder contending with an
   innocent transaction, a covert denial of service against a watchdogged
   point, and a forged image. After every disaster the kernel's state is
   verified intact and the next graft installs normally (Table 1, Rule 9).

   Run with: dune exec examples/misbehave.exe *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred

let kernel = Kernel.create ~tick:12_000 (* 100 us ticks for a snappy demo *) ()
let important_kernel_state = ref 1000

let () =
  (* a guarded accessor with undo, a limited allocator, and a secret *)
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"state.add" (fun ctx ->
        let old = !important_kernel_state in
        (match ctx.Kcall.txn with
        | Some txn ->
            Txn.push_undo txn ~label:"state.restore" (fun () ->
                important_kernel_state := old)
        | None -> ());
        important_kernel_state := old + Kcall.arg ctx.Kcall.cpu 0;
        Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"mem.alloc" (fun ctx ->
        let words = Kcall.arg ctx.Kcall.cpu 0 in
        match Rlimit.request ctx.Kcall.limits Rlimit.Memory_words words with
        | Error `Denied ->
            Kcall.return ctx.Kcall.cpu 0;
            Kcall.ok
        | Ok () ->
            Kcall.return ctx.Kcall.cpu 1;
            Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"secret.read" ~callable:false
      (fun ctx ->
        Kcall.return ctx.Kcall.cpu 0xC0FFEE;
        Kcall.ok)
  in
  ()

let contested_lock = Kernel.make_lock kernel ~timeout:24_000 ~name:"resourceA" ()

let point =
  Graft_point.create ~name:"victim.point" ~watchdog:600_000
    ~budget:2_000_000
    ~default:(fun x -> x + 1)
    ~setup:(fun cpu x -> Cpu.set_reg cpu 1 x)
    ~read_result:(fun cpu _ -> Ok (Cpu.reg cpu 0))
    ()

let mallory = Cred.user "mallory" ~limits:(Rlimit.zero ())

let install source =
  match Kernel.seal kernel (Asm.assemble_exn source) with
  | Error e -> failwith e
  | Ok image -> (
      match Graft_point.replace point kernel ~cred:mallory image with
      | Ok () -> ()
      | Error e -> failwith e)

let invoke_in_process () =
  let result = ref None in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"invoker" (fun () ->
         result := Some (Graft_point.invoke point kernel ~cred:mallory 41)));
  Kernel.run kernel;
  !result

let report disaster =
  let r = invoke_in_process () in
  Printf.printf "%-34s -> result %s | graft %s | kernel state %d %s\n"
    disaster
    (match r with Some v -> string_of_int v | None -> "?")
    (if Graft_point.grafted point then "SURVIVED" else "removed ")
    !important_kernel_state
    (if !important_kernel_state = 1000 then "(intact)" else "(CORRUPTED!)")

let () =
  print_endline "== Surviving misbehaved kernel extensions ==\n";

  (* 0. an honest graft, to show the machinery working *)
  install [ Alui (Insn.Add, Asm.r0, Asm.r1, 1); Ret ];
  report "well-behaved graft";

  (* 1. wild store at kernel address 7 — confined by SFI *)
  install
    [
      Li (Asm.r5, 7);
      Li (Asm.r6, 0xBAD);
      St (Asm.r6, Asm.r5, 0);
      Alui (Insn.Add, Asm.r0, Asm.r1, 1);
      Ret;
    ];
  report "wild store into kernel memory";
  Printf.printf "%-34s    kernel word 7 = %d (untouched)\n" ""
    (Mem.load kernel.Kernel.mem 7);

  (* 2. stealing private data through an indirect call *)
  install [ Li (Asm.r5, 2); Kcallr Asm.r5; Ret ];
  report "indirect call to secret.read";

  (* 3. mutate kernel state, then crash: transaction undoes it *)
  install
    [
      Li (Asm.r1, 666);
      Kcall "state.add";
      Li (Asm.r5, 0);
      Li (Asm.r6, 1);
      Alu (Insn.Div, Asm.r0, Asm.r6, Asm.r5);
      Ret;
    ];
  report "state change followed by crash";

  (* 4. infinite loop: cut off by the CPU budget *)
  install [ Asm.Label "spin"; Jmp "spin" ];
  report "infinite loop (lock-free)";

  (* 5. memory hog: zero limits deny it *)
  install [ Li (Asm.r1, 1_000_000); Kcall "mem.alloc"; Ret ];
  report "1M-word allocation (0=denied)";

  (* 6. §2.2's fragment: lock(resourceA); while(1). An innocent
     transaction wants resourceA; its timeout aborts the hog. *)
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"resourceA.lock" (fun ctx ->
        match ctx.Kcall.txn with
        | None -> Kcall.abort "lock outside transaction"
        | Some txn -> (
            match Txn.acquire_lock txn contested_lock Exclusive with
            | Ok () -> Kcall.ok
            | Error reason -> Kcall.abort reason))
  in
  install [ Kcall "resourceA.lock"; Asm.Label "spin2"; Jmp "spin2" ];
  let innocent_got_lock = ref false in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"hog-invoker" (fun () ->
         ignore (Graft_point.invoke point kernel ~cred:mallory 41)));
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"innocent" (fun () ->
         Engine.delay 50_000;
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"innocent" () in
         (match Txn.acquire_lock txn contested_lock Exclusive with
         | Ok () -> innocent_got_lock := true
         | Error _ -> ());
         ignore (Txn.commit txn)));
  Kernel.run kernel;
  Printf.printf "%-34s -> innocent txn %s | graft %s | kernel state %d\n"
    "lock(resourceA); while(1);"
    (if !innocent_got_lock then "got the lock" else "STARVED")
    (if Graft_point.grafted point then "SURVIVED" else "removed ")
    !important_kernel_state;

  (* 7. covert denial of service: never return; the watchdog fires *)
  install [ Asm.Label "spin3"; Jmp "spin3" ];
  report "covert DoS against watchdogged point";

  (* 8. a forged image straight from the attacker *)
  let forged =
    Vino_misfit.Image.seal_unsafe ~key:"attacker-key"
      (Asm.assemble_exn [ Li (Asm.r0, 0); Ret ])
  in
  (match Graft_point.replace point kernel ~cred:mallory forged with
  | Ok () -> print_endline "forged image LOADED (bug!)"
  | Error e -> Printf.printf "%-34s -> rejected: %s\n" "forged signature" e);

  Printf.printf
    "\nfinal: kernel state %d, %d transactions aborted, %d committed — the \
     kernel never crashed.\n"
    !important_kernel_state
    (Txn.aborts kernel.Kernel.txn_mgr)
    (Txn.commits kernel.Kernel.txn_mgr);

  print_endline "\naudit trail of the disasters:";
  Format.printf "%a@." Vino_core.Audit.pp kernel.Kernel.audit
