(* §4.3's motivation: a multimedia application hands its timeslice to the
   thread that needs it.

   A UI thread and a video thread cooperate; frames are due periodically.
   Under default round-robin the UI thread often gets scheduled when a
   frame is due and can only burn its slice. With a schedule-delegate graft
   the UI thread checks the "frame due" flag its application sets in the
   shared window and hands off directly to the video thread.

   We also show Rule 8: a delegate that tries to steer the CPU to a thread
   outside its consenting group is ignored.

   Run with: dune exec examples/sched_group.exe *)

module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Runq = Vino_sched.Runq
module Grafts = Vino_sched.Grafts
module Engine = Vino_sim.Engine
module Mem = Vino_vm.Mem

let frame_flag_slot = 0

let run ~grafted =
  let kernel = Kernel.create () in
  let runq = Runq.create kernel () in
  let ui = Runq.spawn_task runq ~name:"ui" in
  let video = Runq.spawn_task runq ~name:"video" in
  let other = Runq.spawn_task runq ~name:"batch" in
  Runq.join_group runq ui ~group:1;
  Runq.join_group runq video ~group:1;
  let app = Cred.user "player" ~limits:(Rlimit.unlimited ()) in
  if grafted then begin
    let source =
      Grafts.conditional_handoff_source ~flag_addr:frame_flag_slot
        ~target:(Runq.task_id video)
    in
    match Kernel.seal kernel (Vino_vm.Asm.assemble_exn source) with
    | Error e -> failwith e
    | Ok image -> (
        match
          Graft_point.replace (Runq.delegate_point ui) kernel ~cred:app
            ~shared_words:4 image
        with
        | Ok () -> ()
        | Error e -> failwith e)
  end;
  let set_frame_due v =
    match Graft_point.shared_base (Runq.delegate_point ui) with
    | Some base -> Mem.store kernel.Kernel.mem (base + frame_flag_slot) v
    | None -> ()
  in
  (* frames fall due exactly when the round-robin would hand the CPU to
     the UI thread — the worst case the paper describes *)
  let video_got_needed_slot = ref 0 in
  let frames = ref 0 in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"cpu" (fun () ->
         for decision = 1 to 30 do
           let frame_due = decision mod 3 = 1 in
           set_frame_due (if frame_due then 1 else 0);
           match Runq.schedule runq ~cred:app with
           | Some task ->
               if frame_due then begin
                 incr frames;
                 if Runq.task_id task = Runq.task_id video then
                   incr video_got_needed_slot
               end
           | None -> ()
         done));
  Kernel.run kernel;
  ignore other;
  (!video_got_needed_slot, !frames, Runq.delegate_redirects runq,
   Runq.invalid_delegations runq)

let () =
  let hit_plain, frames, _, _ = run ~grafted:false in
  let hit_graft, _, redirects, _ = run ~grafted:true in
  Printf.printf
    "frame-due slots where the video thread actually ran (of %d):\n" frames;
  Printf.printf "  default round-robin:      %d\n" hit_plain;
  Printf.printf "  with handoff graft:       %d (%d delegations)\n" hit_graft
    redirects;

  (* Rule 8: delegating outside the group is ignored *)
  let kernel = Kernel.create () in
  let runq = Runq.create kernel () in
  let attacker = Runq.spawn_task runq ~name:"attacker" in
  let bystander = Runq.spawn_task runq ~name:"bystander" in
  Runq.join_group runq attacker ~group:1;
  (* bystander never joined any group *)
  let app = Cred.user "attacker" ~limits:(Rlimit.unlimited ()) in
  (match
     Kernel.seal kernel
       (Vino_vm.Asm.assemble_exn
          (Grafts.handoff_source ~target:(Runq.task_id bystander)))
   with
  | Error e -> failwith e
  | Ok image -> (
      match
        Graft_point.replace (Runq.delegate_point attacker) kernel ~cred:app
          image
      with
      | Ok () -> ()
      | Error e -> failwith e));
  let stolen = ref 0 in
  ignore
    (Engine.spawn kernel.Kernel.engine (fun () ->
         for _ = 1 to 10 do
           match Runq.schedule runq ~cred:app with
           | Some task
             when Runq.task_id task = Runq.task_id bystander
                  && Runq.invalid_delegations runq >= 0 ->
               (* the bystander runs on its own turns; count only turns the
                  attacker tried to redirect *)
               ()
           | Some _ | None -> ()
         done;
         stolen := Runq.delegate_redirects runq));
  Kernel.run kernel;
  Printf.printf
    "\nRule 8 check: attacker delegating to a non-consenting thread: %d \
     redirects honoured, %d rejected as antisocial\n"
    !stolen
    (Runq.invalid_delegations runq)
