(* Differential tests for the closure-threaded translator.

   {!Vino_vm.Jit} claims bit-identity with {!Vino_vm.Cpu.run} at every
   observable point. These tests check the claim the hard way: a
   fixed-seed corpus of random programs — plus {!Vino_vm.Mutate}-spliced
   and MiSFIT-rewritten variants of each — runs under both modes in
   wrapper-style refuelled slices, and every architectural observable is
   compared after every slice:

   - outcome, pc, cycles, instruction/access counters, the
     sandbox/checkcall cycle attributions, call depth and call stack;
   - all registers and all of memory;
   - the exact (id, cycles, insns, pc) the kernel-call dispatcher saw on
     each [Kcall]/[Kcallr] (counters must be flushed before kernel code
     observes the cpu);
   - how many times the abort flag was polled and how many times the
     [Checkcall] predicate ran, under several poll intervals including
     poll-every-instruction and an abort that fires mid-run.

   A final golden test renders Tables 3-7 to JSON under both execution
   modes and requires the bytes to be identical. *)

module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Jit = Vino_vm.Jit
module Asm = Vino_vm.Asm
module Mutate = Vino_vm.Mutate
module Rewrite = Vino_misfit.Rewrite
module Json = Vino_trace.Json
module Table = Vino_measure.Table

let mem_words = 256
let seg_base = 128
let seg_size = 128

(* ------------------------------------------------------------------ *)
(* Random programs (Asm level, so Mutate can operate on them)          *)
(* ------------------------------------------------------------------ *)

let alu_ops =
  [| Insn.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr |]

let cond_ops = [| Insn.Eq; Ne; Lt; Le; Gt; Ge |]

(* r0..r13: everything except MiSFIT's scratch register and sp, so the
   rewriter accepts the program. *)
let gen_reg st = Random.State.int st 14

let gen_program st : Asm.item list =
  let nblocks = 2 + Random.State.int st 4 in
  let label k = Printf.sprintf "L%d" k in
  let any_label () = label (Random.State.int st nblocks) in
  let reg () = gen_reg st in
  let item () : Asm.item =
    match Random.State.int st 100 with
    | n when n < 18 -> Li (reg (), Random.State.int st 300 - 50)
    | n when n < 26 -> Mov (reg (), reg ())
    | n when n < 38 ->
        Alu (alu_ops.(Random.State.int st 10), reg (), reg (), reg ())
    | n when n < 48 ->
        Alui
          ( alu_ops.(Random.State.int st 10),
            reg (),
            reg (),
            Random.State.int st 7 - 2 )
    | n when n < 54 -> Ld (reg (), reg (), Random.State.int st 8)
    | n when n < 60 -> St (reg (), reg (), Random.State.int st 8)
    | n when n < 64 -> Sandbox (reg ())
    | n when n < 72 ->
        Br (cond_ops.(Random.State.int st 6), reg (), reg (), any_label ())
    | n when n < 76 -> Jmp (any_label ())
    | n when n < 80 -> Call (any_label ())
    | n when n < 82 -> Ret
    | n when n < 86 -> Kcall_id (Random.State.int st 8)
    | n when n < 88 -> Kcallr (reg ())
    | n when n < 91 -> Checkcall (reg ())
    | n when n < 94 -> Push (reg ())
    | n when n < 96 -> Pop (reg ())
    | _ -> Halt
  in
  List.concat
    (List.init nblocks (fun k ->
         Asm.Label (label k)
         :: List.init (1 + Random.State.int st 6) (fun _ -> item ())))
  @ [ Asm.Halt ]

(* Label-closed fragments for Mutate splicing. *)
let gen_fragment st : Asm.item list =
  match Random.State.int st 3 with
  | 0 ->
      (* bounded countdown loop *)
      [
        Asm.Li (Asm.r9, 3 + Random.State.int st 5);
        Label "f";
        Alui (Insn.Sub, Asm.r9, Asm.r9, 1);
        Br (Insn.Gt, Asm.r9, Asm.r0, "f");
      ]
  | 1 -> [ Asm.St (Asm.r1, Asm.r2, 1); Kcall_id 1 ]
  | _ -> [ Asm.Push Asm.r3; Pop Asm.r3 ]

(* The variants of one generated program that the corpus compares:
   Mutate-derived source surgery and the MiSFIT-rewritten safe path. *)
let variants st source =
  let frag = gen_fragment st in
  let asm items = (Asm.assemble_exn items).Asm.code in
  let base = asm source in
  let muts =
    [
      ("base", base);
      ("prelude", asm (Mutate.splice_prelude ~prelude:frag source));
      ("returns", asm (Mutate.before_returns ~payload:frag source));
      ("diverge", asm (Mutate.splice_prelude ~prelude:Mutate.diverge source));
    ]
  in
  match Rewrite.process base with
  | Ok rewritten -> muts @ [ ("rewritten", rewritten) ]
  | Error _ -> muts

(* ------------------------------------------------------------------ *)
(* Instrumented environment and differential runner                    *)
(* ------------------------------------------------------------------ *)

type config = {
  cname : string;
  slice : int;  (** fuel granted per slice *)
  max_slices : int;
  poll_every : int;
  abort_after : int option;  (** poll count at which an abort appears *)
}

let configs =
  [
    { cname = "one-slice"; slice = 2000; max_slices = 1; poll_every = 32;
      abort_after = None };
    { cname = "sliced-abort"; slice = 93; max_slices = 40; poll_every = 4;
      abort_after = Some 7 };
    { cname = "poll-per-insn"; slice = 257; max_slices = 8; poll_every = 1;
      abort_after = None };
  ]

(* The kernel-call dispatcher observes the cpu (so translated mode must
   have flushed every counter), charges cycles, writes registers, aborts
   or faults, depending on the id class. *)
let make_env buf =
  let polls = ref 0 and checks = ref 0 and abort_at = ref max_int in
  let kcall id (t : Cpu.t) =
    Buffer.add_string buf
      (Printf.sprintf "kcall id=%d cy=%d in=%d pc=%d\n" id (Cpu.cycles t)
         (Cpu.insns_executed t) t.Cpu.pc);
    match ((id mod 5) + 5) mod 5 with
    | 0 -> Cpu.K_ok
    | 1 ->
        Cpu.charge t 17;
        Cpu.K_ok
    | 2 ->
        Cpu.set_reg t 0 (Cpu.cycles t land 0xFF);
        Cpu.K_ok
    | 3 -> if id = 3 then Cpu.K_abort "kabort" else Cpu.K_ok
    | _ -> Cpu.K_fault (Cpu.Bad_kcall id)
  in
  let call_ok id =
    incr checks;
    Buffer.add_string buf (Printf.sprintf "checkcall id=%d\n" id);
    id land 1 = 0
  in
  let poll () =
    incr polls;
    if !polls >= !abort_at then Some "async-abort" else None
  in
  ({ Cpu.kcall; call_ok; poll }, polls, checks, abort_at)

let pp_snap buf tag outcome (c : Cpu.t) =
  Buffer.add_string buf
    (Format.asprintf
       "%s: %a pc=%d cy=%d in=%d acc=%d sb=%d cc=%d depth=%d stack=[%s] \
        regs=[%s]\n"
       tag Cpu.pp_outcome outcome c.Cpu.pc (Cpu.cycles c)
       (Cpu.insns_executed c) (Cpu.mem_accesses c) (Cpu.sandbox_cycles c)
       (Cpu.checkcall_cycles c)
       c.Cpu.depth
       (String.concat ";" (List.map string_of_int c.Cpu.callstack))
       (String.concat ";"
          (Array.to_list (Array.map string_of_int c.Cpu.regs))))

(* Execute [code] under [cfg] in one mode, returning a full rendering of
   everything observable. [step] runs one slice. *)
let run_mode ~init_regs ~init_mem cfg step_of code =
  let buf = Buffer.create 512 in
  let env, polls, checks, abort_at = make_env buf in
  (match cfg.abort_after with Some n -> abort_at := n | None -> ());
  let mem = Mem.create mem_words in
  Mem.blit_in mem 0 init_mem;
  let seg = Mem.segment ~base:seg_base ~size:seg_size in
  let cpu = Cpu.make ~mem ~seg ~fuel:cfg.slice () in
  Array.iteri (fun k v -> Cpu.set_reg cpu k v) init_regs;
  let step = step_of env cpu code in
  let rec slices k =
    let o = step () in
    pp_snap buf (Printf.sprintf "slice%d" k) o cpu;
    match o with
    | Cpu.Out_of_fuel when k < cfg.max_slices ->
        Cpu.refuel cpu cfg.slice;
        slices (k + 1)
    | _ -> ()
  in
  slices 1;
  Buffer.add_string buf
    (Printf.sprintf "polls=%d checks=%d mem=[%s]\n" !polls !checks
       (String.concat ";"
          (Array.to_list
             (Array.map string_of_int (Mem.blit_out mem 0 mem_words)))));
  Buffer.contents buf

let interp_step env cpu code ~poll_every () = Cpu.run ~poll_every env cpu code

let trans_step trans env cpu _code ~poll_every () =
  Jit.run ~poll_every env cpu trans

let differential ~seed ~vname ~cfg ~init_regs ~init_mem code =
  let a =
    run_mode ~init_regs ~init_mem cfg
      (fun env cpu code () -> interp_step env cpu code ~poll_every:cfg.poll_every ())
      code
  in
  let trans = Jit.translate code in
  let b =
    run_mode ~init_regs ~init_mem cfg
      (fun env cpu code () ->
        trans_step trans env cpu code ~poll_every:cfg.poll_every ())
      code
  in
  Alcotest.(check string)
    (Printf.sprintf "seed=%d %s %s" seed vname cfg.cname)
    a b

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)
(* ------------------------------------------------------------------ *)

let corpus_seeds = List.init 30 (fun k -> k + 1)

let init_for st =
  let init_regs =
    Array.init Insn.num_regs (fun k ->
        match k with
        | 1 -> seg_base
        | 2 -> seg_base + 17
        | 3 -> seg_base + seg_size - 3
        | 4 -> seg_base + 5
        | _ when k = Insn.sp -> seg_base + seg_size
        | _ -> Random.State.int st 600 - 100)
  in
  let init_mem =
    Array.init mem_words (fun _ -> Random.State.int st 1000 - 200)
  in
  (init_regs, init_mem)

(* One corpus seed is fully self-contained: the generator state, program,
   variants and initial machine state all derive from the seed, so seeds
   shard across domains (VINO_TEST_DOMAINS=N) with no shared state. A
   failing differential raises out of its domain and Pool.map re-raises
   the lowest-index failure in the runner. *)
let run_seed seed =
  let st = Random.State.make [| 0xD1FF; seed |] in
  let source = gen_program st in
  let vs = variants st source in
  let init_regs, init_mem = init_for st in
  List.iter
    (fun (vname, code) ->
      List.iter
        (fun cfg -> differential ~seed ~vname ~cfg ~init_regs ~init_mem code)
        configs)
    vs

let test_domains =
  match Sys.getenv_opt "VINO_TEST_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let test_corpus () =
  if test_domains <= 1 then List.iter run_seed corpus_seeds
  else
    let pool = Vino_par.Pool.create ~domains:test_domains () in
    Fun.protect
      ~finally:(fun () -> Vino_par.Pool.shutdown pool)
      (fun () -> ignore (Vino_par.Pool.map ~pool run_seed corpus_seeds))

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_empty_program () =
  let cfg = List.hd configs in
  differential ~seed:0 ~vname:"empty" ~cfg
    ~init_regs:(Array.make Insn.num_regs 0)
    ~init_mem:(Array.make mem_words 0) [||]

(* Checked mode is the interpreted-extension measurement model;
   {!Jit.run} must fall back to interpretation and agree exactly. *)
let test_checked_fallback () =
  let code =
    [|
      Insn.Li (1, seg_base + 2);
      Ld (2, 1, 0);
      Alui (Insn.Add, 2, 2, 1);
      St (2, 1, 0);
      Halt;
    |]
  in
  let run translated =
    let mem = Mem.create mem_words in
    Mem.store mem (seg_base + 2) 41;
    let seg = Mem.segment ~base:seg_base ~size:seg_size in
    let cpu = Cpu.make ~mem ~seg ~checked:true ~fuel:10_000 () in
    let o =
      if translated then Jit.run Cpu.env_trusted cpu (Jit.translate code)
      else Cpu.run Cpu.env_trusted cpu code
    in
    (o, Cpu.cycles cpu, Mem.load mem (seg_base + 2))
  in
  let oi, ci, mi = run false and ot, ct, mt = run true in
  Alcotest.(check bool) "same outcome" true (oi = ot);
  Alcotest.(check int) "same cycles (incl. check charges)" ci ct;
  Alcotest.(check int) "same memory" mi mt

let test_translation_shape () =
  (* The encryption loop translates to a handful of blocks with the
     MiSFIT access triples fused; sanity-check the stats are exposed. *)
  let code =
    (Asm.assemble_exn (Vino_stream.Grafts.xor_encrypt_source ~key:1)).Asm.code
  in
  match Rewrite.process code with
  | Error e -> Alcotest.fail e
  | Ok rewritten ->
      let t = Jit.translate rewritten in
      Alcotest.(check bool) "has blocks" true (Jit.block_count t > 0);
      Alcotest.(check bool) "fused the access sequences" true
        (Jit.fused_pairs t >= 2);
      Alcotest.(check int) "keeps the source" (Array.length rewritten)
        (Array.length (Jit.source t))

(* ------------------------------------------------------------------ *)
(* Golden test: Tables 3-7 under both modes                            *)
(* ------------------------------------------------------------------ *)

let with_mode m f =
  let old = !Jit.default_mode in
  Jit.default_mode := m;
  Fun.protect ~finally:(fun () -> Jit.default_mode := old) f

let render_tables () =
  let tables =
    [
      ("table3", Vino_measure.Sc_readahead.table ~iterations:2 ());
      ("table4", Vino_measure.Sc_evict.table ~iterations:2 ());
      ("table5", Vino_measure.Sc_sched.table ~iterations:2 ());
      ("table6", Vino_measure.Sc_crypt.table ~iterations:2 ());
      ("table7", Vino_measure.Abort_model.table7 ~iterations:2 ());
    ]
  in
  String.concat "\n"
    (List.map
       (fun (name, rows) ->
         Json.to_string (Table.to_json ~name ~title:name rows))
       tables)

let test_tables_golden () =
  let interp = with_mode Jit.Interp render_tables in
  let translated = with_mode Jit.Translated render_tables in
  Alcotest.(check string) "tables 3-7 byte-identical" interp translated

let suite =
  [
    ( "jit",
      [
        Alcotest.test_case "differential fuzz corpus" `Quick test_corpus;
        Alcotest.test_case "empty program" `Quick test_empty_program;
        Alcotest.test_case "checked-mode fallback" `Quick
          test_checked_fallback;
        Alcotest.test_case "translation shape" `Quick test_translation_shape;
        Alcotest.test_case "tables 3-7 golden across modes" `Quick
          test_tables_golden;
      ] );
  ]
