(* Differential tests for the closure-threaded translator.

   {!Vino_vm.Jit} claims bit-identity with {!Vino_vm.Cpu.run} at every
   observable point. These tests check the claim the hard way: a
   fixed-seed corpus of random programs — plus {!Vino_vm.Mutate}-spliced
   and MiSFIT-rewritten variants of each — runs under both modes in
   wrapper-style refuelled slices, and every architectural observable is
   compared after every slice:

   - outcome, pc, cycles, instruction/access counters, the
     sandbox/checkcall cycle attributions, call depth and call stack;
   - all registers and all of memory;
   - the exact (id, cycles, insns, pc) the kernel-call dispatcher saw on
     each [Kcall]/[Kcallr] (counters must be flushed before kernel code
     observes the cpu);
   - how many times the abort flag was polled and how many times the
     [Checkcall] predicate ran, under several poll intervals including
     poll-every-instruction and an abort that fires mid-run.

   A final golden test renders Tables 3-7 to JSON under both execution
   modes and requires the bytes to be identical. *)

module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Jit = Vino_vm.Jit
module Asm = Vino_vm.Asm
module Mutate = Vino_vm.Mutate
module Rewrite = Vino_misfit.Rewrite
module Json = Vino_trace.Json
module Table = Vino_measure.Table

let mem_words = 256
let seg_base = 128
let seg_size = 128

(* ------------------------------------------------------------------ *)
(* Random programs (Asm level, so Mutate can operate on them)          *)
(* ------------------------------------------------------------------ *)

let alu_ops =
  [| Insn.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr |]

let cond_ops = [| Insn.Eq; Ne; Lt; Le; Gt; Ge |]

(* r0..r13: everything except MiSFIT's scratch register and sp, so the
   rewriter accepts the program. *)
let gen_reg st = Random.State.int st 14

let gen_program st : Asm.item list =
  let nblocks = 2 + Random.State.int st 4 in
  let label k = Printf.sprintf "L%d" k in
  let any_label () = label (Random.State.int st nblocks) in
  let reg () = gen_reg st in
  let item () : Asm.item =
    match Random.State.int st 100 with
    | n when n < 18 -> Li (reg (), Random.State.int st 300 - 50)
    | n when n < 26 -> Mov (reg (), reg ())
    | n when n < 38 ->
        Alu (alu_ops.(Random.State.int st 10), reg (), reg (), reg ())
    | n when n < 48 ->
        Alui
          ( alu_ops.(Random.State.int st 10),
            reg (),
            reg (),
            Random.State.int st 7 - 2 )
    | n when n < 54 -> Ld (reg (), reg (), Random.State.int st 8)
    | n when n < 60 -> St (reg (), reg (), Random.State.int st 8)
    | n when n < 64 -> Sandbox (reg ())
    | n when n < 72 ->
        Br (cond_ops.(Random.State.int st 6), reg (), reg (), any_label ())
    | n when n < 76 -> Jmp (any_label ())
    | n when n < 80 -> Call (any_label ())
    | n when n < 82 -> Ret
    | n when n < 86 -> Kcall_id (Random.State.int st 8)
    | n when n < 88 -> Kcallr (reg ())
    | n when n < 91 -> Checkcall (reg ())
    | n when n < 94 -> Push (reg ())
    | n when n < 96 -> Pop (reg ())
    | _ -> Halt
  in
  List.concat
    (List.init nblocks (fun k ->
         Asm.Label (label k)
         :: List.init (1 + Random.State.int st 6) (fun _ -> item ())))
  @ [ Asm.Halt ]

(* Label-closed fragments for Mutate splicing. *)
let gen_fragment st : Asm.item list =
  match Random.State.int st 3 with
  | 0 ->
      (* bounded countdown loop *)
      [
        Asm.Li (Asm.r9, 3 + Random.State.int st 5);
        Label "f";
        Alui (Insn.Sub, Asm.r9, Asm.r9, 1);
        Br (Insn.Gt, Asm.r9, Asm.r0, "f");
      ]
  | 1 -> [ Asm.St (Asm.r1, Asm.r2, 1); Kcall_id 1 ]
  | _ -> [ Asm.Push Asm.r3; Pop Asm.r3 ]

(* Entry facts mirroring [init_for]'s fixed registers (r1..r4 all point
   into the segment, sp at the top) and the differential environment's
   [call_ok] predicate — so the static verifier can prove some of the
   random accesses safe and the corpus exercises proof-carrying
   translation on real (not hand-picked) programs. *)
let fuzz_verifier =
  Vino_verify.Verify.config
    ~entry:
      [
        (1, Vino_verify.Verify.seg_window ());
        (2, Vino_verify.Verify.seg_window ~off:17 ());
        (3, Vino_verify.Verify.seg_window ~off:(seg_size - 3) ());
        (4, Vino_verify.Verify.seg_window ~off:5 ());
      ]
    ~callable:(fun id -> id land 1 = 0)
    ~words:seg_size ()

(* The variants of one generated program that the corpus compares:
   Mutate-derived source surgery, the MiSFIT-rewritten safe path, and —
   when the static verifier accepts the program — the proof-carrying
   variant, translated with the proof's safe-access map. Most random
   programs are verifier-rejected (a random access is genuinely
   out-of-bounds on some path); [test_corpus] asserts the corpus still
   yields a healthy number of verified variants. *)
let variants st source =
  let frag = gen_fragment st in
  let asm items = (Asm.assemble_exn items).Asm.code in
  let base = asm source in
  let muts =
    [
      ("base", base, None);
      ("prelude", asm (Mutate.splice_prelude ~prelude:frag source), None);
      ("returns", asm (Mutate.before_returns ~payload:frag source), None);
      ( "diverge",
        asm (Mutate.splice_prelude ~prelude:Mutate.diverge source),
        None );
    ]
  in
  let muts =
    match Rewrite.process base with
    | Ok rewritten -> muts @ [ ("rewritten", rewritten, None) ]
    | Error _ -> muts
  in
  match Rewrite.process_proved ~verifier:fuzz_verifier base with
  | Ok (code, Some proof) ->
      muts @ [ ("verified", code, Some (Vino_verify.Proof.safe proof)) ]
  | Ok (_, None) | Error _ -> muts

(* ------------------------------------------------------------------ *)
(* Instrumented environment and differential runner                    *)
(* ------------------------------------------------------------------ *)

type config = {
  cname : string;
  slice : int;  (** fuel granted per slice *)
  max_slices : int;
  poll_every : int;
  abort_after : int option;  (** poll count at which an abort appears *)
}

let configs =
  [
    { cname = "one-slice"; slice = 2000; max_slices = 1; poll_every = 32;
      abort_after = None };
    { cname = "sliced-abort"; slice = 93; max_slices = 40; poll_every = 4;
      abort_after = Some 7 };
    { cname = "poll-per-insn"; slice = 257; max_slices = 8; poll_every = 1;
      abort_after = None };
  ]

(* The kernel-call dispatcher observes the cpu (so translated mode must
   have flushed every counter), charges cycles, writes registers, aborts
   or faults, depending on the id class. *)
let make_env buf =
  let polls = ref 0 and checks = ref 0 and abort_at = ref max_int in
  let kcall id (t : Cpu.t) =
    Buffer.add_string buf
      (Printf.sprintf "kcall id=%d cy=%d in=%d pc=%d\n" id (Cpu.cycles t)
         (Cpu.insns_executed t) t.Cpu.pc);
    match ((id mod 5) + 5) mod 5 with
    | 0 -> Cpu.K_ok
    | 1 ->
        Cpu.charge t 17;
        Cpu.K_ok
    | 2 ->
        Cpu.set_reg t 0 (Cpu.cycles t land 0xFF);
        Cpu.K_ok
    | 3 -> if id = 3 then Cpu.K_abort "kabort" else Cpu.K_ok
    | _ -> Cpu.K_fault (Cpu.Bad_kcall id)
  in
  let call_ok id =
    incr checks;
    Buffer.add_string buf (Printf.sprintf "checkcall id=%d\n" id);
    id land 1 = 0
  in
  let poll () =
    incr polls;
    if !polls >= !abort_at then Some "async-abort" else None
  in
  ({ Cpu.kcall; call_ok; poll }, polls, checks, abort_at)

let pp_snap buf tag outcome (c : Cpu.t) =
  Buffer.add_string buf
    (Format.asprintf
       "%s: %a pc=%d cy=%d in=%d acc=%d sb=%d cc=%d depth=%d stack=[%s] \
        regs=[%s]\n"
       tag Cpu.pp_outcome outcome c.Cpu.pc (Cpu.cycles c)
       (Cpu.insns_executed c) (Cpu.mem_accesses c) (Cpu.sandbox_cycles c)
       (Cpu.checkcall_cycles c)
       c.Cpu.depth
       (String.concat ";" (List.map string_of_int (Cpu.call_stack c)))
       (String.concat ";"
          (Array.to_list (Array.map string_of_int c.Cpu.regs))))

(* Execute [code] under [cfg] in one mode, returning a full rendering of
   everything observable. [step] runs one slice. *)
let run_mode ~init_regs ~init_mem cfg step_of code =
  let buf = Buffer.create 512 in
  let env, polls, checks, abort_at = make_env buf in
  (match cfg.abort_after with Some n -> abort_at := n | None -> ());
  let mem = Mem.create mem_words in
  Mem.blit_in mem 0 init_mem;
  let seg = Mem.segment ~base:seg_base ~size:seg_size in
  let cpu = Cpu.make ~mem ~seg ~fuel:cfg.slice () in
  Array.iteri (fun k v -> Cpu.set_reg cpu k v) init_regs;
  let step = step_of env cpu code in
  let rec slices k =
    let o = step () in
    pp_snap buf (Printf.sprintf "slice%d" k) o cpu;
    match o with
    | Cpu.Out_of_fuel when k < cfg.max_slices ->
        Cpu.refuel cpu cfg.slice;
        slices (k + 1)
    | _ -> ()
  in
  slices 1;
  Buffer.add_string buf
    (Printf.sprintf "polls=%d checks=%d mem=[%s]\n" !polls !checks
       (String.concat ";"
          (Array.to_list
             (Array.map string_of_int (Mem.blit_out mem 0 mem_words)))));
  Buffer.contents buf

let interp_step env cpu code ~poll_every () = Cpu.run ~poll_every env cpu code

let trans_step trans env cpu _code ~poll_every () =
  Jit.run ~poll_every env cpu trans

let differential ~seed ~vname ~cfg ~init_regs ~init_mem ?safe code =
  let a =
    run_mode ~init_regs ~init_mem cfg
      (fun env cpu code () -> interp_step env cpu code ~poll_every:cfg.poll_every ())
      code
  in
  let trans = Jit.translate ?safe code in
  let b =
    run_mode ~init_regs ~init_mem cfg
      (fun env cpu code () ->
        trans_step trans env cpu code ~poll_every:cfg.poll_every ())
      code
  in
  Alcotest.(check string)
    (Printf.sprintf "seed=%d %s %s" seed vname cfg.cname)
    a b

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)
(* ------------------------------------------------------------------ *)

(* VINO_JIT_SEEDS widens (or narrows) the fixed-seed corpus: the default
   30 keeps the tier-1 run fast; the nightly workflow sets 100 for a
   deeper sweep. Seeds are always 1..n, so a nightly failure replays
   locally with the same env var. *)
let corpus_size =
  match Sys.getenv_opt "VINO_JIT_SEEDS" with
  | None | Some "" -> 30
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> invalid_arg "VINO_JIT_SEEDS must be a positive integer")

let corpus_seeds = List.init corpus_size (fun k -> k + 1)

let init_for st =
  let init_regs =
    Array.init Insn.num_regs (fun k ->
        match k with
        | 1 -> seg_base
        | 2 -> seg_base + 17
        | 3 -> seg_base + seg_size - 3
        | 4 -> seg_base + 5
        | _ when k = Insn.sp -> seg_base + seg_size
        | _ -> Random.State.int st 600 - 100)
  in
  let init_mem =
    Array.init mem_words (fun _ -> Random.State.int st 1000 - 200)
  in
  (init_regs, init_mem)

(* One corpus seed is fully self-contained: the generator state, program,
   variants and initial machine state all derive from the seed, so seeds
   shard across domains (VINO_TEST_DOMAINS=N) with no shared state. A
   failing differential raises out of its domain and Pool.map re-raises
   the lowest-index failure in the runner. *)
(* VINO_JIT_VARIANTS narrows the corpus to a comma-separated set of
   variant names ("all" or unset runs everything) — the CI matrix uses
   it to give the proof-carrying variant its own visible job. *)
let variant_enabled =
  match Sys.getenv_opt "VINO_JIT_VARIANTS" with
  | None | Some "" | Some "all" -> fun _ -> true
  | Some s ->
      let names = String.split_on_char ',' s in
      fun v -> List.mem v names

let run_seed seed =
  let st = Random.State.make [| 0xD1FF; seed |] in
  let source = gen_program st in
  let vs = variants st source in
  let init_regs, init_mem = init_for st in
  List.iter
    (fun (vname, code, safe) ->
      if variant_enabled vname then
        List.iter
          (fun cfg ->
            differential ~seed ~vname ~cfg ~init_regs ~init_mem ?safe code)
          configs)
    vs;
  (* how many variants actually carried a proof (before filtering), so
     the corpus test can assert the proof-carrying path is exercised,
     not silently skipped *)
  List.length
    (List.filter (fun (_, _, safe) -> Option.is_some safe) vs)

(* The fused-xblock mode: cross-block fusion on versus off, both
   translated. Fusion must be invisible to every observable — same
   snapshots, same counters, same memory — it may only change how many
   closures the program compiles to. This pins the widened fusion
   (access groups, mega loop passes, exact-window unrolling) to the
   unfused translation over the whole corpus. *)
let differential_xblock ~seed ~vname ~cfg ~init_regs ~init_mem ?safe code =
  let run trans =
    run_mode ~init_regs ~init_mem cfg
      (fun env cpu code () ->
        trans_step trans env cpu code ~poll_every:cfg.poll_every ())
      code
  in
  let fused = run (Jit.translate ?safe ~xblock:true code) in
  let unfused = run (Jit.translate ?safe ~xblock:false code) in
  Alcotest.(check string)
    (Printf.sprintf "seed=%d %s %s fused-xblock" seed vname cfg.cname)
    fused unfused

let run_seed_xblock seed =
  let st = Random.State.make [| 0xD1FF; seed |] in
  let source = gen_program st in
  let vs = variants st source in
  let init_regs, init_mem = init_for st in
  List.iter
    (fun (vname, code, safe) ->
      if variant_enabled vname then
        List.iter
          (fun cfg ->
            differential_xblock ~seed ~vname ~cfg ~init_regs ~init_mem ?safe
              code)
          configs)
    vs;
  0

let test_domains =
  match Sys.getenv_opt "VINO_TEST_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let test_corpus () =
  let proved =
    if test_domains <= 1 then List.map run_seed corpus_seeds
    else
      let pool = Vino_par.Pool.create ~domains:test_domains () in
      Fun.protect
        ~finally:(fun () -> Vino_par.Pool.shutdown pool)
        (fun () -> Vino_par.Pool.map ~pool run_seed corpus_seeds)
  in
  Alcotest.(check bool)
    "corpus exercises the proof-carrying variant" true
    (List.fold_left ( + ) 0 proved > 0)

let test_corpus_xblock () =
  let results =
    if test_domains <= 1 then List.map run_seed_xblock corpus_seeds
    else
      let pool = Vino_par.Pool.create ~domains:test_domains () in
      Fun.protect
        ~finally:(fun () -> Vino_par.Pool.shutdown pool)
        (fun () -> Vino_par.Pool.map ~pool run_seed_xblock corpus_seeds)
  in
  ignore (results : int list)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let test_empty_program () =
  let cfg = List.hd configs in
  differential ~seed:0 ~vname:"empty" ~cfg
    ~init_regs:(Array.make Insn.num_regs 0)
    ~init_mem:(Array.make mem_words 0) [||]

(* Checked mode is the interpreted-extension measurement model;
   {!Jit.run} must fall back to interpretation and agree exactly. *)
let test_checked_fallback () =
  let code =
    [|
      Insn.Li (1, seg_base + 2);
      Ld (2, 1, 0);
      Alui (Insn.Add, 2, 2, 1);
      St (2, 1, 0);
      Halt;
    |]
  in
  let run translated =
    let mem = Mem.create mem_words in
    Mem.store mem (seg_base + 2) 41;
    let seg = Mem.segment ~base:seg_base ~size:seg_size in
    let cpu = Cpu.make ~mem ~seg ~checked:true ~fuel:10_000 () in
    let o =
      if translated then Jit.run Cpu.env_trusted cpu (Jit.translate code)
      else Cpu.run Cpu.env_trusted cpu code
    in
    (o, Cpu.cycles cpu, Mem.load mem (seg_base + 2))
  in
  let oi, ci, mi = run false and ot, ct, mt = run true in
  Alcotest.(check bool) "same outcome" true (oi = ot);
  Alcotest.(check int) "same cycles (incl. check charges)" ci ct;
  Alcotest.(check int) "same memory" mi mt

let test_translation_shape () =
  (* The encryption loop translates to a handful of blocks with the
     MiSFIT access triples fused; sanity-check the stats are exposed. *)
  let code =
    (Asm.assemble_exn (Vino_stream.Grafts.xor_encrypt_source ~key:1)).Asm.code
  in
  match Rewrite.process code with
  | Error e -> Alcotest.fail e
  | Ok rewritten ->
      let t = Jit.translate rewritten in
      Alcotest.(check bool) "has blocks" true (Jit.block_count t > 0);
      Alcotest.(check bool) "fused the access sequences" true
        (Jit.fused_pairs t >= 2);
      Alcotest.(check int) "keeps the source" (Array.length rewritten)
        (Array.length (Jit.source t))

(* ------------------------------------------------------------------ *)
(* Golden test: Tables 3-7 under both modes                            *)
(* ------------------------------------------------------------------ *)

let with_mode m f =
  let old = !Jit.default_mode in
  Jit.default_mode := m;
  Fun.protect ~finally:(fun () -> Jit.default_mode := old) f

let render_tables () =
  let tables =
    [
      ("table3", Vino_measure.Sc_readahead.table ~iterations:2 ());
      ("table4", Vino_measure.Sc_evict.table ~iterations:2 ());
      ("table5", Vino_measure.Sc_sched.table ~iterations:2 ());
      ("table6", Vino_measure.Sc_crypt.table ~iterations:2 ());
      ("table7", Vino_measure.Abort_model.table7 ~iterations:2 ());
    ]
  in
  String.concat "\n"
    (List.map
       (fun (name, rows) ->
         Json.to_string (Table.to_json ~name ~title:name rows))
       tables)

let test_tables_golden () =
  let interp = with_mode Jit.Interp render_tables in
  let translated = with_mode Jit.Translated render_tables in
  Alcotest.(check string) "tables 3-7 byte-identical" interp translated

(* ------------------------------------------------------------------ *)
(* Translation cache: proof-hash keying, concurrency, digest rendering *)
(* ------------------------------------------------------------------ *)

module Kernel = Vino_core.Kernel
module Proof = Vino_verify.Proof

let cache_code = [| Insn.Li (1, seg_base); Ld (2, 1, 0); Halt |]

(* The same post-link code translated with and without a certificate must
   occupy distinct cache entries (Sign digest alone no longer keys the
   cache), and each entry must be served back on a repeat lookup. *)
let test_cache_proof_key () =
  let k = Kernel.create ~mem_words:(1 lsl 16) () in
  let proof =
    Proof.make ~words:seg_size ~safe:[| false; true; false |] ~calls:[]
  in
  let t0 = Kernel.translate k cache_code in
  let t1 = Kernel.translate k ~proof cache_code in
  Alcotest.(check bool) "distinct translations" true (t0 != t1);
  Alcotest.(check int) "plain translation elides nothing" 0
    (Jit.elided_accesses t0);
  Alcotest.(check int) "proof-carrying elides the proven load" 1
    (Jit.elided_accesses t1);
  let stats = Kernel.translation_stats k in
  Alcotest.(check int) "two cache entries" 2 (List.length stats);
  Alcotest.(check int) "exactly one proof-keyed entry" 1
    (List.length
       (List.filter (fun (key, _, _) -> String.contains key '/') stats));
  Alcotest.(check bool) "same proof hits its entry" true
    (Kernel.translate k ~proof cache_code == t1);
  Alcotest.(check bool) "no proof hits its entry" true
    (Kernel.translate k cache_code == t0)

(* The per-kernel cache under concurrent loads from a domain pool: 128
   translate calls over 8 distinct programs from 4 domains must neither
   crash (the unsynchronised-Hashtbl bug) nor duplicate entries. *)
let test_cache_concurrent () =
  let k = Kernel.create ~mem_words:(1 lsl 16) () in
  let codes = List.init 8 (fun i -> [| Insn.Li (1, i); Insn.Halt |]) in
  let jobs = List.concat (List.init 16 (fun _ -> codes)) in
  let pool = Vino_par.Pool.create ~domains:(max 4 test_domains) () in
  Fun.protect
    ~finally:(fun () -> Vino_par.Pool.shutdown pool)
    (fun () ->
      ignore
        (Vino_par.Pool.map ~pool
           (fun code -> ignore (Kernel.translate k code : Jit.t))
           jobs));
  Alcotest.(check int) "one entry per distinct program" 8
    (List.length (Kernel.translation_stats k))

(* The LRU bound under churn: a capacity-1 cache alternating between two
   programs re-translates on every lookup (4 misses, 3 evictions, never
   a hit), while capacity 2 holds both; shrinking the bound evicts
   immediately, least-recently-used first. The stats listing must stay
   sorted so [vino inspect]-style dumps are CI-diffable. *)
let test_cache_lru_eviction () =
  let a = [| Insn.Li (1, 100); Insn.Halt |] in
  let b = [| Insn.Li (1, 200); Insn.Halt |] in
  let k = Kernel.create ~mem_words:(1 lsl 16) ~jit_cache_cap:1 () in
  List.iter (fun c -> ignore (Kernel.translate k c : Jit.t)) [ a; b; a; b ];
  let s = Kernel.jit_cache_stats k in
  Alcotest.(check int) "alternation misses every time" 4 s.Kernel.jit_misses;
  Alcotest.(check int) "each miss evicts the resident entry" 3
    s.Kernel.jit_evictions;
  Alcotest.(check int) "no hits at capacity 1" 0 s.Kernel.jit_hits;
  Alcotest.(check int) "one live entry" 1 s.Kernel.jit_entries;
  let k2 = Kernel.create ~mem_words:(1 lsl 16) ~jit_cache_cap:2 () in
  let t_a = Kernel.translate k2 a in
  ignore (Kernel.translate k2 b : Jit.t);
  Alcotest.(check bool) "repeat lookup hits at capacity 2" true
    (Kernel.translate k2 a == t_a);
  let s2 = Kernel.jit_cache_stats k2 in
  Alcotest.(check int) "capacity 2: two misses" 2 s2.Kernel.jit_misses;
  Alcotest.(check int) "capacity 2: one hit" 1 s2.Kernel.jit_hits;
  Alcotest.(check int) "capacity 2: no evictions" 0 s2.Kernel.jit_evictions;
  Kernel.set_jit_cache_cap k2 1;
  let s3 = Kernel.jit_cache_stats k2 in
  Alcotest.(check int) "shrink evicts to the new bound" 1
    s3.Kernel.jit_entries;
  Alcotest.(check int) "shrink counts its eviction" 1 s3.Kernel.jit_evictions;
  Alcotest.(check bool) "most recently used survives the shrink" true
    (Kernel.translate k2 a == t_a);
  let k3 = Kernel.create ~mem_words:(1 lsl 16) ~jit_cache_cap:8 () in
  List.iter
    (fun i ->
      ignore (Kernel.translate k3 [| Insn.Li (1, i); Insn.Halt |] : Jit.t))
    [ 5; 3; 9; 1 ];
  let keys =
    List.map (fun (key, _, _) -> key) (Kernel.translation_stats k3)
  in
  Alcotest.(check (list string)) "stats listing sorted for CI diffing"
    (List.sort compare keys) keys

(* [translation_stats] digests must be injective: the old rendering
   masked with [land max_int], aliasing values that differ only in the
   top bit. *)
let test_digest_hex_lossless () =
  let hex n = Kernel.digest_hex (Vino_misfit.Sign.forge n) in
  Alcotest.(check string) "-1 renders as 63-bit unsigned" "7fffffffffffffff"
    (hex (-1));
  Alcotest.(check string) "max_int keeps its distinct rendering"
    "3fffffffffffffff" (hex max_int);
  Alcotest.(check string) "min_int renders its top bit" "4000000000000000"
    (hex min_int);
  Alcotest.(check bool) "no top-bit aliasing" true (hex (-1) <> hex max_int);
  Alcotest.(check bool) "no zero aliasing" true (hex min_int <> hex 0)

let suite =
  [
    ( "jit",
      [
        Alcotest.test_case "differential fuzz corpus" `Quick test_corpus;
        Alcotest.test_case "fused-xblock differential over corpus" `Quick
          test_corpus_xblock;
        Alcotest.test_case "empty program" `Quick test_empty_program;
        Alcotest.test_case "checked-mode fallback" `Quick
          test_checked_fallback;
        Alcotest.test_case "translation shape" `Quick test_translation_shape;
        Alcotest.test_case "tables 3-7 golden across modes" `Quick
          test_tables_golden;
        Alcotest.test_case "cache keyed by digest + proof hash" `Quick
          test_cache_proof_key;
        Alcotest.test_case "cache LRU bound: eviction, shrink, sorted stats"
          `Quick test_cache_lru_eviction;
        Alcotest.test_case "cache safe under a domain pool" `Quick
          test_cache_concurrent;
        Alcotest.test_case "cache digests render losslessly" `Quick
          test_digest_hex_lossless;
      ] );
  ]
