(* Tests for the static kcall-flow analysis and its dispatch-time
   enforcement: Cfg edge cases feeding the graph, the conservative
   fallbacks, the unreachable-site warning, and the interp/translated
   differential on a hijacked call sequence. *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Audit = Vino_core.Audit
module Wrapper = Vino_core.Wrapper
module Linker = Vino_core.Linker
module Kflow = Vino_verify.Kflow
module Verify = Vino_verify.Verify
module Report = Vino_verify.Report
module Trace = Vino_trace.Trace

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let analyse ?(nfuncs = 2) source =
  let obj = Asm.assemble_exn source in
  Kflow.analyse ~nfuncs obj.Asm.code

(* --------------------------- graph extraction ------------------------- *)

let test_empty_program () =
  let g = Kflow.analyse ~nfuncs:3 [||] in
  Alcotest.(check int) "no nodes" 0 (Kflow.node_count g);
  Alcotest.(check int) "no edges" 0 (Kflow.edge_count g);
  Alcotest.(check int) "no sites" 0 (Kflow.sites g);
  Alcotest.(check bool) "not degraded" false (Kflow.degraded g);
  let t = Kflow.compile g in
  Alcotest.(check bool) "nothing permitted" false
    (Kflow.permits t ~last:Kflow.entry ~next:0)

let test_single_block_loop () =
  (* kcall 0; jmp back: the loop back-edge must produce the self-edge
     0 -> 0, and no exit kcall (the block never reaches graft exit). *)
  let g = analyse [ Label "top"; Kcall_id 0; Jmp "top" ] in
  Alcotest.(check int) "one node" 1 (Kflow.node_count g);
  Alcotest.(check int) "self-edge only" 1 (Kflow.edge_count g);
  Alcotest.(check (list int)) "entry = {0}" [ 0 ] (Kflow.entry_ids g);
  Alcotest.(check (list int)) "no exit kcall" [] (Kflow.exit_ids g);
  let t = Kflow.compile g in
  Alcotest.(check bool) "entry -> 0" true
    (Kflow.permits t ~last:Kflow.entry ~next:0);
  Alcotest.(check bool) "0 -> 0" true (Kflow.permits t ~last:0 ~next:0);
  Alcotest.(check bool) "0 -> 1 not feasible" false
    (Kflow.permits t ~last:0 ~next:1)

let test_branch_arms_join_on_same_kcall () =
  (* Both arms of a conditional end in the same kcall: one edge 0 -> 1,
     exit = {1}, whichever arm ran. *)
  let g =
    analyse
      [
        Kcall_id 0;
        Br (Insn.Ge, Asm.r1, Asm.r2, "arm2");
        Kcall_id 1;
        Jmp "out";
        Label "arm2";
        Kcall_id 1;
        Label "out";
        Li (Asm.r0, 0);
        Ret;
      ]
  in
  Alcotest.(check int) "two nodes" 2 (Kflow.node_count g);
  Alcotest.(check int) "one edge despite two sites" 1 (Kflow.edge_count g);
  Alcotest.(check (list int)) "entry = {0}" [ 0 ] (Kflow.entry_ids g);
  Alcotest.(check (list int)) "exit = {1}" [ 1 ] (Kflow.exit_ids g);
  Alcotest.(check int) "three kcall sites" 3 (Kflow.sites g);
  let t = Kflow.compile g in
  Alcotest.(check bool) "0 -> 1" true (Kflow.permits t ~last:0 ~next:1);
  Alcotest.(check bool) "1 -> 0 not feasible" false
    (Kflow.permits t ~last:1 ~next:0)

let test_kcall_only_in_dead_path () =
  (* The only kcall sits behind an unconditional jump: it is statically
     unreachable, so it contributes nothing to the graph — and the
     dispatcher would abort it if it somehow ran. *)
  let source =
    [
      Asm.Jmp "out"; Kcall_id 0; Label "out"; Li (Asm.r0, 0); Ret;
    ]
  in
  let g = analyse source in
  Alcotest.(check int) "site counted" 1 (Kflow.sites g);
  Alcotest.(check int) "but no node" 0 (Kflow.node_count g);
  Alcotest.(check int) "and no edge" 0 (Kflow.edge_count g);
  Alcotest.(check bool) "may exit with no kcall" true
    (Kflow.may_exit_without_kcall g);
  let t = Kflow.compile g in
  Alcotest.(check bool) "dead kcall not permitted" false
    (Kflow.permits t ~last:Kflow.entry ~next:0)

let test_unreachable_kcall_site_warns () =
  (* Satellite: the verifier flags statically-unreachable kcall sites as a
     warning (dead code), never an error. *)
  let obj =
    Asm.assemble_exn
      [ Asm.Jmp "out"; Kcall_id 0; Label "out"; Li (Asm.r0, 0); Ret ]
  in
  let conf = Verify.config ~entry:[] ~words:4096 ~stage:`Source () in
  let report = Verify.analyse conf obj.Asm.code in
  Alcotest.(check bool) "still ok" true (Report.ok report);
  let site_warnings =
    List.filter
      (fun (d : Report.diag) ->
        d.index = Some 1
        && contains d.message "unreachable kernel-call site")
      (Report.warnings report)
  in
  Alcotest.(check int) "one unreachable-kcall warning at index 1" 1
    (List.length site_warnings)

let test_kcallr_saturates_rows () =
  (* A laundered indirect kernel call is unresolvable: its row — and the
     row of everything it may precede — must saturate, never abort. *)
  let g =
    analyse
      [ Asm.Li (Asm.r1, 0); Kcallr Asm.r1; Kcall_id 1; Li (Asm.r0, 0); Ret ]
  in
  Alcotest.(check bool) "not fully degraded" false (Kflow.degraded g);
  Alcotest.(check bool) "some rows saturated" true (Kflow.full_rows g > 0);
  let t = Kflow.compile g in
  Alcotest.(check bool) "entry -> 0 (unknown target)" true
    (Kflow.permits t ~last:Kflow.entry ~next:0);
  Alcotest.(check bool) "entry -> 1" true
    (Kflow.permits t ~last:Kflow.entry ~next:1);
  Alcotest.(check bool) "0 -> 1" true (Kflow.permits t ~last:0 ~next:1)

let test_callr_degrades_graph () =
  (* An indirect intra-graft call defeats the CFG: the whole graph falls
     back to fully permissive — but ids outside the registry stay out. *)
  let g =
    analyse
      [
        Asm.Li (Asm.r1, 4);
        Callr Asm.r1;
        Li (Asm.r0, 0);
        Ret;
        Kcall_id 0;
        Ret;
      ]
  in
  Alcotest.(check bool) "degraded" true (Kflow.degraded g);
  let t = Kflow.compile g in
  Alcotest.(check bool) "1 -> 0 permitted" true
    (Kflow.permits t ~last:1 ~next:0);
  Alcotest.(check bool) "0 -> 1 permitted" true
    (Kflow.permits t ~last:0 ~next:1);
  Alcotest.(check bool) "unregistered id still refused" false
    (Kflow.permits t ~last:0 ~next:5)

(* ------------------------ dispatch enforcement ------------------------ *)

let witness_source : Asm.item list =
  [ Kcall "kf.lock"; Kcall "kf.use"; Li (Asm.r0, 0); Ret ]

(* Same two kcalls, individually legal, statically-illegal order. *)
let hijack_source : Asm.item list =
  [ Kcall "kf.use"; Kcall "kf.lock"; Li (Asm.r0, 0); Ret ]

let fixture () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) ~tick:1_000 () in
  let use_ran = ref false in
  ignore (Kernel.register_kcall kernel ~name:"kf.lock" (fun _ -> Kcall.ok));
  ignore
    (Kernel.register_kcall kernel ~name:"kf.use" (fun _ ->
         use_ran := true;
         Kcall.ok));
  (kernel, use_ran)

let pin_witness kernel =
  let obj = Asm.assemble_exn witness_source in
  match Linker.flow_of_obj kernel obj with
  | Error e -> Alcotest.fail e
  | Ok table ->
      kernel.Kernel.flow_enforce <- true;
      kernel.Kernel.flow_pin <- Some table

let load_exn kernel source =
  let obj = Asm.assemble_exn source in
  match Kernel.seal kernel obj with
  | Error e -> Alcotest.fail e
  | Ok image -> (
      match Linker.load kernel ~words:512 image with
      | Ok loaded -> loaded
      | Error e -> Alcotest.fail e)

let run_loaded ~mode kernel (loaded : Linker.loaded) =
  let result = ref None in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"kflow" (fun () ->
         let txn = Txn.begin_ kernel.Kernel.txn_mgr ~name:"kf" () in
         let cpu, outcome =
           Wrapper.exec kernel ~txn ~cred:Vino_core.Cred.root
             ~limits:(Rlimit.unlimited ()) ~seg:loaded.Linker.seg
             ~code:loaded.Linker.code ~flow:loaded.Linker.flow
             ~trans:loaded.Linker.trans ~mode
             ~setup:(fun _ -> ())
             ()
         in
         (match outcome with
         | Cpu.Halted -> ignore (Txn.commit txn)
         | _ -> Txn.abort txn ~reason:"kflow-test");
         result := Some (cpu, outcome)));
  Kernel.run kernel;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "graft never ran"

(* One hijack run under a pinned witness table; returns everything the
   differential needs to compare. *)
let hijack_observation mode =
  let kernel, use_ran = fixture () in
  pin_witness kernel;
  let loaded = load_exn kernel hijack_source in
  let sink = Trace.create () in
  let cpu, outcome =
    Trace.with_t sink (fun () -> run_loaded ~mode kernel loaded)
  in
  let message =
    match outcome with
    | Cpu.Aborted m -> m
    | o -> Alcotest.failf "expected abort, got %a" Cpu.pp_outcome o
  in
  Alcotest.(check bool) "violation attributed in the message" true
    (contains message "kcall-flow violation");
  Alcotest.(check bool) "hijacked kcall never executed" false !use_ran;
  Alcotest.(check int) "one flow check" 1
    (Trace.counter_value sink "kflow.checks");
  Alcotest.(check int) "one flow violation" 1
    (Trace.counter_value sink "kflow.violations");
  Alcotest.(check bool) "violation in the audit trail" true
    (List.exists
       (function Audit.Flow_violation _ -> true | _ -> false)
       (List.map
          (fun (e : Audit.entry) -> e.event)
          (Audit.entries kernel.Kernel.audit)));
  Alcotest.(check int) "transaction aborted" 1
    (Txn.aborts kernel.Kernel.txn_mgr);
  ( message,
    Cpu.cycles cpu,
    List.init Insn.num_regs (Cpu.reg cpu),
    Engine.now kernel.Kernel.engine )

let test_hijack_differential_interp_vs_translated () =
  let m1, c1, r1, t1 = hijack_observation Vino_vm.Jit.Interp in
  let m2, c2, r2, t2 = hijack_observation Vino_vm.Jit.Translated in
  Alcotest.(check string) "same abort message" m1 m2;
  Alcotest.(check int) "same cycle count" c1 c2;
  Alcotest.(check (list int)) "same registers" r1 r2;
  Alcotest.(check int) "same virtual end time" t1 t2

let test_legal_sequence_unaffected () =
  (* Enforcement on, no pin: the graft runs against its own extracted
     table, so the witness protocol commits untouched. *)
  List.iter
    (fun mode ->
      let kernel, use_ran = fixture () in
      kernel.Kernel.flow_enforce <- true;
      let loaded = load_exn kernel witness_source in
      let sink = Trace.create () in
      let _, outcome =
        Trace.with_t sink (fun () -> run_loaded ~mode kernel loaded)
      in
      (match outcome with
      | Cpu.Halted -> ()
      | o -> Alcotest.failf "expected halt, got %a" Cpu.pp_outcome o);
      Alcotest.(check bool) "both kcalls ran" true !use_ran;
      Alcotest.(check int) "two flow checks" 2
        (Trace.counter_value sink "kflow.checks");
      Alcotest.(check int) "no violation" 0
        (Trace.counter_value sink "kflow.violations");
      Alcotest.(check int) "committed" 1 (Txn.commits kernel.Kernel.txn_mgr))
    [ Vino_vm.Jit.Interp; Vino_vm.Jit.Translated ]

let test_enforcement_off_by_default () =
  (* Without flow_enforce the hijack is not flow-checked (it still runs
     under every other protection) — the mechanism is opt-in, so all
     pre-existing cycle counts are unchanged. *)
  let kernel, use_ran = fixture () in
  let loaded = load_exn kernel hijack_source in
  let sink = Trace.create () in
  let _, outcome =
    Trace.with_t sink (fun () ->
        run_loaded ~mode:Vino_vm.Jit.Translated kernel loaded)
  in
  (match outcome with
  | Cpu.Halted -> ()
  | o -> Alcotest.failf "expected halt, got %a" Cpu.pp_outcome o);
  Alcotest.(check bool) "kcalls ran" true !use_ran;
  Alcotest.(check int) "no flow checks charged" 0
    (Trace.counter_value sink "kflow.checks")

let suite =
  [
    ( "kflow",
      [
        Alcotest.test_case "empty program, empty graph" `Quick
          test_empty_program;
        Alcotest.test_case "single-block loop self-edge" `Quick
          test_single_block_loop;
        Alcotest.test_case "branch arms join on the same kcall" `Quick
          test_branch_arms_join_on_same_kcall;
        Alcotest.test_case "kcall only in dead path excluded" `Quick
          test_kcall_only_in_dead_path;
        Alcotest.test_case "unreachable kcall site warns" `Quick
          test_unreachable_kcall_site_warns;
        Alcotest.test_case "kcallr saturates rows" `Quick
          test_kcallr_saturates_rows;
        Alcotest.test_case "callr degrades the whole graph" `Quick
          test_callr_degrades_graph;
        Alcotest.test_case "hijack: interp/translated differential" `Quick
          test_hijack_differential_interp_vs_translated;
        Alcotest.test_case "legal sequence unaffected by enforcement" `Quick
          test_legal_sequence_unaffected;
        Alcotest.test_case "enforcement off by default" `Quick
          test_enforcement_off_by_default;
      ] );
  ]
