(* The observability layer: ring accounting, counter monotonicity,
   same-seed determinism of the span stream, the audit ring, and the
   golden zero-cost property — installing a sink must not move a single
   virtual cycle of the measured tables. *)

module Ring = Vino_trace.Ring
module Span = Vino_trace.Span
module Trace = Vino_trace.Trace
module Json = Vino_trace.Json
module Profile = Vino_trace.Profile
module Audit = Vino_core.Audit

let ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for k = 1 to 10 do
    Ring.push r k
  done;
  Alcotest.(check (list int)) "newest 4 retained" [ 7; 8; 9; 10 ] (Ring.to_list r);
  Alcotest.(check int) "length" 4 (Ring.length r);
  Alcotest.(check int) "total" 10 (Ring.total r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "cleared length" 0 (Ring.length r);
  Alcotest.(check int) "cleared total" 0 (Ring.total r);
  Alcotest.(check int) "cleared dropped" 0 (Ring.dropped r)

let ring_partial () =
  let r = Ring.create ~capacity:8 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0))

let span_ring_drops () =
  let sink = Trace.create ~span_capacity:8 () in
  Trace.with_t sink (fun () ->
      for k = 1 to 20 do
        Trace.span Span.Dispatch ~label:"x" ~start:k ~dur:1
      done);
  Alcotest.(check int) "retained" 8 (List.length (Trace.spans sink));
  Alcotest.(check int) "total" 20 (Trace.spans_total sink);
  Alcotest.(check int) "dropped" 12 (Trace.spans_dropped sink)

(* Counters must be monotonic: negative increments are refused, and a
   disaster campaign only ever moves them up. *)
let counter_monotonic () =
  let sink = Trace.create () in
  Trace.with_t sink (fun () ->
      Trace.incr "a";
      Alcotest.check_raises "negative refused"
        (Invalid_argument "Counters.incr: counters are monotonic") (fun () ->
          Trace.incr ~by:(-1) "a"));
  Alcotest.(check int) "a" 1 (Trace.counter_value sink "a")

let campaign_counters () =
  let sink = Trace.create () in
  let watched =
    [ "txn.begins"; "txn.aborts"; "graft.invocations"; "audit.graft_installed" ]
  in
  let snapshots =
    Trace.with_t sink (fun () ->
        List.map
          (fun seed ->
            ignore (Vino_disaster.Campaign.run ~seed ~count:10 ());
            List.map (fun c -> Trace.counter_value sink c) watched)
          [ 1; 2; 3 ])
  in
  (* each campaign adds work: every watched counter strictly increases *)
  List.iteri
    (fun i snap ->
      if i > 0 then
        List.iter2
          (fun prev now ->
            if now <= prev then
              Alcotest.failf "counter went %d -> %d across campaigns" prev now)
          (List.nth snapshots (i - 1))
          snap)
    snapshots;
  List.iter2
    (fun name v ->
      if v <= 0 then Alcotest.failf "counter %s never moved" name)
    watched (List.hd snapshots)

(* Deterministic simulation: the same seed must produce the identical
   span stream, span for span. Open-file lock labels embed a
   process-global descriptor uniquifier (File.open_counter) that advances
   across runs by design; strip it so only simulation state is compared. *)
let same_seed_same_spans () =
  let strip_uniquifier s =
    String.to_seq s |> List.of_seq
    |> List.fold_left
         (fun (acc, skipping) c ->
           if c = '#' then (acc, true)
           else if skipping && c >= '0' && c <= '9' then (acc, true)
           else (c :: acc, false))
         ([], false)
    |> fun (acc, _) -> String.init (List.length acc) (List.nth (List.rev acc))
  in
  let capture seed =
    let sink = Trace.create () in
    Trace.with_t sink (fun () ->
        ignore (Vino_disaster.Campaign.run ~seed ~count:12 ()));
    List.map
      (fun s -> strip_uniquifier (Format.asprintf "%a" Span.pp s))
      (Trace.spans sink)
  in
  let a = capture 7 and b = capture 7 and c = capture 8 in
  Alcotest.(check (list string)) "same seed, identical spans" a b;
  if a = c then Alcotest.fail "different seeds produced identical spans"

(* Golden zero-cost test: the Table 3 cycle counts must be bit-identical
   with a sink installed and without. Tracing never touches the virtual
   clock, so even a full sink must not move a measurement. *)
let zero_cost_golden () =
  let measure () =
    List.map
      (fun p -> Vino_measure.Sc_readahead.measure ~iterations:5 p)
      [ Vino_measure.Path.Base; Vino_measure.Path.Vino;
        Vino_measure.Path.Null; Vino_measure.Path.Unsafe;
        Vino_measure.Path.Safe ]
  in
  let plain = measure () in
  let sink = Trace.create () in
  let traced = Trace.with_t sink (fun () -> measure ()) in
  let again = measure () in
  Alcotest.(check (list (float 0.0))) "sink installed: identical" plain traced;
  Alcotest.(check (list (float 0.0))) "sink removed again: identical" plain again;
  if Trace.counter_value sink "txn.begins" = 0 then
    Alcotest.fail "sink saw no events — instrumentation not wired"

(* The profiler splits an invocation into sandbox/body/txn/undo with
   body = total - charged buckets. *)
let profile_buckets () =
  let p = Profile.create () in
  Profile.push_frame p ~ctx:1 ~point:"gp" ~now:100;
  Profile.charge p ~ctx:1 Profile.Sandbox 10;
  Profile.charge p ~ctx:1 Profile.Txn 20;
  Profile.charge p ~ctx:1 Profile.Undo 5;
  Profile.pop_frame p ~ctx:1 ~now:200;
  match Profile.rows p with
  | [ r ] ->
      Alcotest.(check string) "point" "gp" r.Profile.point;
      Alcotest.(check int) "total" 100 r.Profile.total;
      Alcotest.(check int) "sandbox" 10 r.Profile.sandbox;
      Alcotest.(check int) "txn" 20 r.Profile.txn;
      Alcotest.(check int) "undo" 5 r.Profile.undo;
      Alcotest.(check int) "body" 65 r.Profile.body
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* Nested invocations: the child's cycles are excluded from the parent's
   total, so per-point numbers don't double-count. *)
let profile_nesting () =
  let p = Profile.create () in
  Profile.push_frame p ~ctx:1 ~point:"outer" ~now:0;
  Profile.push_frame p ~ctx:1 ~point:"inner" ~now:10;
  Profile.charge p ~ctx:1 Profile.Txn 4;
  Profile.pop_frame p ~ctx:1 ~now:40;
  Profile.pop_frame p ~ctx:1 ~now:100;
  let find name =
    List.find (fun r -> r.Profile.point = name) (Profile.rows p)
  in
  Alcotest.(check int) "inner total" 30 (find "inner").Profile.total;
  Alcotest.(check int) "outer total excludes inner" 70 (find "outer").Profile.total;
  Alcotest.(check int) "inner txn charge stays inner" 4 (find "inner").Profile.txn;
  Alcotest.(check int) "outer txn" 0 (find "outer").Profile.txn

let audit_ring () =
  let a = Audit.create ~capacity:3 () in
  for k = 1 to 5 do
    Audit.record a ~now_us:(float_of_int k)
      (Audit.Graft_removed { point = Printf.sprintf "p%d" k })
  done;
  Alcotest.(check int) "count capped" 3 (Audit.count a);
  Alcotest.(check int) "total" 5 (Audit.total a);
  Alcotest.(check int) "dropped" 2 (Audit.dropped a);
  (match Audit.entries a with
  | { Audit.event = Audit.Graft_removed { point }; _ } :: _ ->
      Alcotest.(check string) "oldest retained" "p3" point
  | _ -> Alcotest.fail "unexpected audit entries");
  Audit.clear a;
  Alcotest.(check int) "cleared" 0 (Audit.count a);
  Alcotest.(check int) "cleared dropped" 0 (Audit.dropped a)

let audit_counters_unified () =
  let sink = Trace.create () in
  Trace.with_t sink (fun () ->
      let a = Audit.create () in
      Audit.record a ~now_us:1.0
        (Audit.Graft_installed { point = "p"; user = "u" });
      Audit.record a ~now_us:2.0
        (Audit.Graft_failed { point = "p"; reason = "r" }));
  Alcotest.(check int) "audit.graft_installed" 1
    (Trace.counter_value sink "audit.graft_installed");
  Alcotest.(check int) "audit.graft_failed" 1
    (Trace.counter_value sink "audit.graft_failed")

let json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "he\"llo\n");
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("nil", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
      Alcotest.(check string) "roundtrip" (Json.to_string j) (Json.to_string j');
      (match Json.member "n" j' with
      | Some v -> Alcotest.(check (option int)) "int" (Some (-42)) (Json.int_value v)
      | None -> Alcotest.fail "missing n")

let report_json_shape () =
  let sink = Trace.create () in
  Trace.with_t sink (fun () ->
      ignore (Vino_disaster.Campaign.run ~seed:3 ~count:5 ()));
  let j = Trace.report_json ~scenario:"test" sink in
  (match Json.member "schema" j with
  | Some (Json.String "vino-trace-v1") -> ()
  | _ -> Alcotest.fail "bad schema");
  (match Json.member "profile" j with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "empty profile");
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report does not re-parse: %s" e

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "ring: wraparound + dropped accounting" `Quick
          ring_wraparound;
        Alcotest.test_case "ring: partial fill, bad capacity" `Quick
          ring_partial;
        Alcotest.test_case "span ring drops oldest" `Quick span_ring_drops;
        Alcotest.test_case "counters are monotonic" `Quick counter_monotonic;
        Alcotest.test_case "campaign only moves counters up" `Quick
          campaign_counters;
        Alcotest.test_case "same seed, identical span stream" `Quick
          same_seed_same_spans;
        Alcotest.test_case "golden: sink leaves Table 3 cycles bit-identical"
          `Quick zero_cost_golden;
        Alcotest.test_case "profiler: sandbox/body/txn/undo buckets" `Quick
          profile_buckets;
        Alcotest.test_case "profiler: nested invocations don't double-count"
          `Quick profile_nesting;
        Alcotest.test_case "audit: ring cap, dropped, clear" `Quick audit_ring;
        Alcotest.test_case "audit: events bump unified counters" `Quick
          audit_counters_unified;
        Alcotest.test_case "json: emit/parse roundtrip" `Quick json_roundtrip;
        Alcotest.test_case "trace report json re-parses" `Quick
          report_json_shape;
      ] );
  ]
