(* Multi-tenant graft server (lib/net/serve.ml): determinism across the
   domain pool, admission control + audit, runaway containment under
   inherited limits, execution-path parity and translation-cache churn. *)

module Serve = Vino_net.Serve
module Pool = Vino_par.Pool

(* Small enough to keep tier-1 fast, big enough that every shard holds
   at least two tenants and every tenant sees a reinstall burst. *)
let small =
  { Serve.default with Serve.tenants = 4; requests = 8; shards = 2 }

(* The report is a pure function of the config: running the shards
   serially and over a 3-domain pool must produce equal reports, and
   repeating a run must reproduce it bit-for-bit. *)
let test_determinism () =
  let serial = Serve.run small in
  let pool = Pool.create ~domains:3 () in
  let pooled =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Serve.run ~pool small)
  in
  Alcotest.(check bool) "pooled report equals serial" true (serial = pooled);
  Alcotest.(check bool)
    "repeat run reproduces" true
    (Serve.run small = serial);
  Alcotest.(check int) "every arrival served" (small.Serve.tenants * 8)
    serial.Serve.served;
  Alcotest.(check bool) "makespan positive" true (serial.Serve.drain_us > 0.);
  Alcotest.(check bool) "throughput positive" true
    (serial.Serve.throughput_rps > 0.)

(* Samples come back sorted by (tenant, request) with no duplicates, so
   JSON dumps diff cleanly. *)
let test_samples_sorted () =
  let r = Serve.run small in
  let keys = List.map (fun (t, req, _) -> (t, req)) r.Serve.samples in
  Alcotest.(check bool) "sorted by tenant then request" true
    (List.sort compare keys = keys);
  Alcotest.(check int) "no duplicate (tenant, request)"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* A tight in-flight cap under a fast arrival rate sheds load, and every
   shed arrival lands an [Admission_rejected] entry in its shard's audit
   trail — the counts must agree exactly. *)
let test_admission_control () =
  let r =
    Serve.run { small with Serve.max_inflight = 1; interval = 1_000 }
  in
  Alcotest.(check bool) "cap sheds load" true (r.Serve.rejected > 0);
  Alcotest.(check int) "every rejection audited" r.Serve.rejected
    r.Serve.admission_audited;
  Alcotest.(check int) "served + rejected accounts for every arrival"
    (small.Serve.tenants * small.Serve.requests)
    (r.Serve.served + r.Serve.rejected);
  Alcotest.(check int) "no handler failures" 0 r.Serve.handler_failures

(* A runaway tenant flooding [net.send] is capped by its own inherited
   [Net_packets] slice: it transmits at most its quota, the rest are
   quota denials, and every other tenant's latency samples — including
   its same-shard neighbours' — are bit-identical to the run without the
   runaway. *)
let test_runaway_contained () =
  let base = Serve.run small in
  let r = Serve.run { small with Serve.runaway = Some 0 } in
  Alcotest.(check bool) "flood transmits something" true
    (r.Serve.transmitted > 0);
  Alcotest.(check bool) "slice caps the flood" true
    (r.Serve.transmitted <= small.Serve.net_quota);
  Alcotest.(check bool) "overflow denied, not transmitted" true
    (r.Serve.quota_denials > 0);
  Alcotest.(check int) "no handler failures" 0 r.Serve.handler_failures;
  List.iter
    (fun t ->
      Alcotest.(check (list (float 0.)))
        (Printf.sprintf "tenant %d unperturbed" t)
        (Serve.latencies ~tenant:t base)
        (Serve.latencies ~tenant:t r))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "the runaway's own samples do change" true
    (Serve.latencies ~tenant:0 base <> Serve.latencies ~tenant:0 r)

(* Translation is a host-time optimisation: interpreted and translated
   runs are cycle-identical (the jit-differential invariant), while the
   verified path elides proven safety checks and is strictly faster. *)
let test_path_parity () =
  let ri = Serve.run { small with Serve.path = Serve.Interp } in
  let rt = Serve.run { small with Serve.path = Serve.Translated } in
  let rv = Serve.run { small with Serve.path = Serve.Verified } in
  Alcotest.(check bool) "interp and translated samples bit-identical" true
    (ri.Serve.samples = rt.Serve.samples);
  let sum r =
    List.fold_left (fun acc l -> acc +. l) 0. (Serve.latencies r)
  in
  Alcotest.(check bool) "verified strictly faster in aggregate" true
    (sum rv < sum rt)

(* Tenant churn (periodic reinstalls) drives the per-kernel translation
   cache: with enough capacity the reinstalled graft's code is a hit;
   with more tenants than capacity the shard thrashes and evicts. *)
let test_cache_churn () =
  let r = Serve.run small in
  Alcotest.(check bool)
    "reinstalls hit the cache" true
    (r.Serve.jit_hits > 0);
  Alcotest.(check int) "one miss per tenant" small.Serve.tenants
    r.Serve.jit_misses;
  Alcotest.(check int) "no evictions within capacity" 0 r.Serve.jit_evictions;
  let thrash = Serve.run { small with Serve.tenants = 6 } in
  Alcotest.(check bool) "over-capacity shard evicts" true
    (thrash.Serve.jit_evictions > 0);
  Alcotest.(check bool) "eviction forces re-translation" true
    (thrash.Serve.jit_misses > 6);
  let no_churn = Serve.run { small with Serve.reinstall_every = 0 } in
  Alcotest.(check int) "no churn, no cache hits" 0 no_churn.Serve.jit_hits

let test_config_validation () =
  List.iter
    (fun cfg ->
      match Serve.run cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid config accepted")
    [
      { small with Serve.tenants = 0 };
      { small with Serve.requests = 0 };
      { small with Serve.shards = 0 };
      { small with Serve.runaway = Some 4 };
      { small with Serve.runaway = Some (-1) };
    ]

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "deterministic across the domain pool" `Quick
          test_determinism;
        Alcotest.test_case "samples sorted and unique" `Quick
          test_samples_sorted;
        Alcotest.test_case "admission control audited exactly" `Quick
          test_admission_control;
        Alcotest.test_case "runaway tenant contained by its slice" `Quick
          test_runaway_contained;
        Alcotest.test_case "interp/translated parity, verified faster" `Quick
          test_path_parity;
        Alcotest.test_case "churn drives the translation cache" `Quick
          test_cache_churn;
        Alcotest.test_case "config validation" `Quick test_config_validation;
      ] );
  ]
