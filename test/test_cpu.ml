(* Tests for the graft-VM interpreter. *)

module Insn = Vino_vm.Insn
module Mem = Vino_vm.Mem
module Cpu = Vino_vm.Cpu
module Asm = Vino_vm.Asm
module Costs = Vino_vm.Costs

let outcome = Alcotest.testable Cpu.pp_outcome ( = )

(* A 1 KiB machine whose graft segment is the upper 256 words. *)
let machine ?fuel () =
  let mem = Mem.create 1024 in
  let seg = Mem.segment ~base:768 ~size:256 in
  let cpu = Cpu.make ~mem ~seg ?fuel () in
  (mem, seg, cpu)

let run ?(env = Cpu.env_trusted) cpu items =
  let obj = Asm.assemble_exn items in
  Cpu.run env cpu obj.code

let test_arith_and_halt () =
  let _, _, cpu = machine () in
  let o =
    run cpu [ Li (Asm.r1, 6); Li (Asm.r2, 7); Alu (Mul, Asm.r0, Asm.r1, Asm.r2); Halt ]
  in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check int) "result" 42 (Cpu.reg cpu 0)

let test_toplevel_ret_halts () =
  let _, _, cpu = machine () in
  let o = run cpu [ Li (Asm.r0, 9); Ret ] in
  Alcotest.check outcome "ret halts" Cpu.Halted o;
  Alcotest.(check int) "result" 9 (Cpu.reg cpu 0)

let test_call_ret () =
  let _, _, cpu = machine () in
  let o =
    run cpu
      [
        Li (Asm.r1, 5);
        Call "double";
        Halt;
        Label "double";
        Alu (Insn.Add, Asm.r0, Asm.r1, Asm.r1);
        Ret;
      ]
  in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check int) "doubled" 10 (Cpu.reg cpu 0)

let test_branch_loop () =
  (* Sum 1..10 with a backward branch. *)
  let _, _, cpu = machine () in
  let o =
    run cpu
      [
        Li (Asm.r1, 10);
        Li (Asm.r0, 0);
        Li (Asm.r2, 0);
        Label "loop";
        Br (Insn.Gt, Asm.r2, Asm.r1, "done");
        Alu (Insn.Add, Asm.r0, Asm.r0, Asm.r2);
        Alui (Insn.Add, Asm.r2, Asm.r2, 1);
        Jmp "loop";
        Label "done";
        Halt;
      ]
  in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check int) "sum" 55 (Cpu.reg cpu 0)

let test_memory_and_stack () =
  let mem, seg, cpu = machine () in
  let base = seg.Mem.base in
  let o =
    run cpu
      [
        Li (Asm.r1, base);
        Li (Asm.r2, 123);
        St (Asm.r2, Asm.r1, 3);
        Ld (Asm.r3, Asm.r1, 3);
        Push (Asm.r3);
        Pop (Asm.r0);
        Halt;
      ]
  in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check int) "through memory and stack" 123 (Cpu.reg cpu 0);
  Alcotest.(check int) "stored in place" 123 (Mem.load mem (base + 3))

let test_wild_store_faults () =
  let _, _, cpu = machine () in
  let o = run cpu [ Li (Asm.r1, 100_000); St (Asm.r1, Asm.r1, 0); Halt ] in
  match o with
  | Cpu.Faulted (Memory_fault { write = true; _ }) -> ()
  | o -> Alcotest.failf "expected write fault, got %a" Cpu.pp_outcome o

let test_division_fault () =
  let _, _, cpu = machine () in
  let o =
    run cpu [ Li (Asm.r1, 1); Li (Asm.r2, 0); Alu (Div, Asm.r0, Asm.r1, Asm.r2) ]
  in
  Alcotest.check outcome "div fault" (Cpu.Faulted Cpu.Division_by_zero) o

let test_bad_pc_fault () =
  let _, _, cpu = machine () in
  let o = run cpu [ Li (Asm.r1, 400); Callr Asm.r1 ] in
  Alcotest.check outcome "bad pc" (Cpu.Faulted (Cpu.Bad_pc 400)) o

let test_fuel_stops_infinite_loop () =
  let _, _, cpu = machine ~fuel:10_000 () in
  let o = run cpu [ Label "spin"; Jmp "spin" ] in
  Alcotest.check outcome "out of fuel" Cpu.Out_of_fuel o;
  Alcotest.(check bool) "cycles near fuel" true (Cpu.cycles cpu >= 10_000)

let test_poll_aborts () =
  let _, _, cpu = machine () in
  let polls = ref 0 in
  let env =
    {
      Cpu.env_trusted with
      poll =
        (fun () ->
          incr polls;
          if !polls >= 3 then Some "resource hog" else None);
    }
  in
  let o = run ~env cpu [ Label "spin"; Jmp "spin" ] in
  Alcotest.check outcome "aborted" (Cpu.Aborted "resource hog") o

let test_kcall_dispatch () =
  let _, _, cpu = machine () in
  let env =
    {
      Cpu.env_trusted with
      kcall =
        (fun id st ->
          if id = 7 then begin
            Cpu.set_reg st 0 (Cpu.reg st 1 * 2);
            Cpu.charge st 100;
            Cpu.K_ok
          end
          else Cpu.K_fault (Cpu.Bad_kcall id));
    }
  in
  let o = run ~env cpu [ Li (Asm.r1, 21); Kcall_id 7; Halt ] in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check int) "kernel result" 42 (Cpu.reg cpu 0);
  Alcotest.(check bool) "kernel charged cycles" true (Cpu.cycles cpu > 100)

let test_kcall_abort_propagates () =
  let _, _, cpu = machine () in
  let env =
    { Cpu.env_trusted with kcall = (fun _ _ -> Cpu.K_abort "lock timeout") }
  in
  let o = run ~env cpu [ Kcall_id 1; Halt ] in
  Alcotest.check outcome "abort" (Cpu.Aborted "lock timeout") o

let test_checkcall () =
  let _, _, cpu = machine () in
  let env = { Cpu.env_trusted with call_ok = (fun id -> id = 5) } in
  let ok = run ~env cpu [ Li (Asm.r1, 5); Checkcall Asm.r1; Halt ] in
  Alcotest.check outcome "allowed id passes" Cpu.Halted ok;
  let _, _, cpu2 = machine () in
  let bad = run ~env cpu2 [ Li (Asm.r1, 6); Checkcall Asm.r1; Halt ] in
  Alcotest.check outcome "bad id faults"
    (Cpu.Faulted (Cpu.Bad_call_target 6))
    bad

let test_sandbox_insn () =
  let _, seg, cpu = machine () in
  let o =
    run cpu [ Li (Asm.r1, 5); Sandbox Asm.r1; Mov (Asm.r0, Asm.r1); Halt ]
  in
  Alcotest.check outcome "halts" Cpu.Halted o;
  Alcotest.(check bool) "address confined" true
    (Mem.in_segment seg (Cpu.reg cpu 0))

let test_call_stack_overflow () =
  let _, _, cpu = machine () in
  let o = run cpu [ Label "rec"; Call "rec" ] in
  Alcotest.check outcome "overflow" (Cpu.Faulted Cpu.Call_stack_overflow) o

let test_cycle_accounting () =
  let _, _, cpu = machine () in
  let o = run cpu [ Li (Asm.r1, 1); Li (Asm.r2, 2); Halt ] in
  Alcotest.check outcome "halts" Cpu.Halted o;
  let c = Costs.default in
  Alcotest.(check int) "exact cycles"
    ((2 * c.Costs.li) + c.Costs.halt)
    (Cpu.cycles cpu);
  Alcotest.(check int) "insns" 3 (Cpu.insns_executed cpu)

let test_checked_mode_faults_out_of_segment () =
  (* the interpreted-extension model: accesses are bounds-checked by the
     environment instead of sandboxed by rewriting *)
  let mem = Mem.create 1024 in
  let seg = Mem.segment ~base:768 ~size:256 in
  let cpu = Cpu.make ~mem ~seg ~checked:true () in
  let obj =
    Asm.assemble_exn [ Li (Asm.r1, 3); St (Asm.r1, Asm.r1, 0); Halt ]
  in
  (match Cpu.run Cpu.env_trusted cpu obj.Asm.code with
  | Cpu.Faulted (Cpu.Memory_fault { addr = 3; write = true }) -> ()
  | o -> Alcotest.failf "expected checked fault, got %a" Cpu.pp_outcome o);
  Alcotest.(check int) "kernel memory untouched" 0 (Mem.load mem 3)

let test_checked_mode_charges_per_access () =
  let run ~checked =
    let mem = Mem.create 1024 in
    let seg = Mem.segment ~base:768 ~size:256 in
    let cpu = Cpu.make ~mem ~seg ~checked () in
    let obj =
      Asm.assemble_exn
        [
          Li (Asm.r1, 768);
          Li (Asm.r2, 5);
          St (Asm.r2, Asm.r1, 0);
          Ld (Asm.r0, Asm.r1, 0);
          Halt;
        ]
    in
    (match Cpu.run Cpu.env_trusted cpu obj.Asm.code with
    | Cpu.Halted -> ()
    | o -> Alcotest.failf "unexpected %a" Cpu.pp_outcome o);
    Cpu.cycles cpu
  in
  Alcotest.(check int) "two checked accesses"
    (2 * Cpu.default_check_access_cost)
    (run ~checked:true - run ~checked:false)

let test_sp_starts_at_segment_top () =
  let _, seg, cpu = machine () in
  Alcotest.(check int) "sp" (seg.Mem.base + seg.Mem.size)
    (Cpu.reg cpu Insn.sp)

(* Property: cycles -> us -> cycles is the identity (cycles_of_us rounds
   to nearest rather than truncating, so the float detour is lossless
   for any representable count). *)
let prop_cycles_of_us_roundtrip =
  QCheck2.Test.make ~name:"cycles_of_us inverts us_of_cycles" ~count:1000
    QCheck2.Gen.(int_range 0 2_000_000_000)
    (fun cy -> Costs.cycles_of_us (Costs.us_of_cycles cy) = cy)

let suite =
  [
    ( "cpu",
      [
        Alcotest.test_case "arithmetic and halt" `Quick test_arith_and_halt;
        Alcotest.test_case "top-level ret completes graft" `Quick
          test_toplevel_ret_halts;
        Alcotest.test_case "call/ret" `Quick test_call_ret;
        Alcotest.test_case "branch loop computes sum" `Quick test_branch_loop;
        Alcotest.test_case "memory and stack ops" `Quick test_memory_and_stack;
        Alcotest.test_case "wild store faults (unsafe code)" `Quick
          test_wild_store_faults;
        Alcotest.test_case "division by zero faults" `Quick test_division_fault;
        Alcotest.test_case "control transfer out of program faults" `Quick
          test_bad_pc_fault;
        Alcotest.test_case "fuel preempts infinite loop" `Quick
          test_fuel_stops_infinite_loop;
        Alcotest.test_case "abort poll is honoured" `Quick test_poll_aborts;
        Alcotest.test_case "kernel call dispatch" `Quick test_kcall_dispatch;
        Alcotest.test_case "kernel-call abort propagates" `Quick
          test_kcall_abort_propagates;
        Alcotest.test_case "checkcall accepts/rejects" `Quick test_checkcall;
        Alcotest.test_case "sandbox instruction confines" `Quick
          test_sandbox_insn;
        Alcotest.test_case "runaway recursion overflows call stack" `Quick
          test_call_stack_overflow;
        Alcotest.test_case "cycle accounting is exact" `Quick
          test_cycle_accounting;
        Alcotest.test_case "checked mode faults out-of-segment" `Quick
          test_checked_mode_faults_out_of_segment;
        Alcotest.test_case "checked mode charges per access" `Quick
          test_checked_mode_charges_per_access;
        Alcotest.test_case "stack pointer initialised to segment top" `Quick
          test_sp_starts_at_segment_top;
        QCheck_alcotest.to_alcotest prop_cycles_of_us_roundtrip;
      ] );
  ]
