(* Aggregated alcotest runner for the whole repository. *)

let () =
  Alcotest.run "vino"
    (List.concat
       [
         Test_insn.suite;
         Test_mem.suite;
         Test_cpu.suite;
         Test_asm.suite;
         Test_encode.suite;
         Test_parse.suite;
         Test_rewrite.suite;
         Test_verify.suite;
         Test_image.suite;
         Test_engine.suite;
         Test_undo.suite;
         Test_rlimit.suite;
         Test_lock.suite;
         Test_txn.suite;
         Test_arena.suite;
         Test_calltable.suite;
         Test_segalloc.suite;
         Test_core.suite;
         Test_fs.suite;
         Test_volume.suite;
         Test_vmem.suite;
         Test_sched.suite;
         Test_stream.suite;
         Test_net.suite;
         Test_serve.suite;
         Test_jit.suite;
         Test_wrapper.suite;
         Test_measure.suite;
         Test_kflow.suite;
         Test_disaster.suite;
         Test_snapshot.suite;
         Test_soak.suite;
         Test_trace.suite;
         Test_par.suite;
         Test_stats.suite;
         Test_pqueue.suite;
       ])
